"""Integration tests: full solvers on the thread-SPMD backend.

These validate the *distributed* code path end to end — each rank holds
only its shard, partial sums flow through real (simulated) collectives —
against the sequential single-rank run.
"""

import numpy as np
import pytest

from repro.linalg.distmatrix import ColPartitionedMatrix, RowPartitionedMatrix
from repro.machine.spec import CRAY_XC30
from repro.mpi.thread_backend import spmd_run
from repro.solvers.lasso import acc_bcd, bcd, sa_acc_bcd
from repro.solvers.svm import dcd, sa_dcd

LAM = 0.9


class TestLassoDistributed:
    @pytest.mark.parametrize("P", [2, 3, 4])
    def test_bcd_matches_sequential(self, small_regression, P):
        A, b, _ = small_regression
        x_seq = bcd(A, b, LAM, mu=4, max_iter=80, seed=7, record_every=0).x

        def fn(comm, rank):
            return bcd(A, b, LAM, mu=4, max_iter=80, seed=7, comm=comm,
                       record_every=0).x

        res = spmd_run(fn, P)
        for xv in res.values:
            assert np.allclose(xv, x_seq, atol=1e-10)

    def test_all_ranks_agree_bitwise(self, small_regression):
        A, b, _ = small_regression

        def fn(comm, rank):
            return sa_acc_bcd(A, b, LAM, mu=2, s=8, max_iter=64, seed=1,
                              comm=comm, record_every=0).x

        res = spmd_run(fn, 4)
        for xv in res.values[1:]:
            assert np.array_equal(res.values[0], xv)

    def test_sa_acc_threads_match_sequential(self, small_regression):
        A, b, _ = small_regression
        x_seq = sa_acc_bcd(A, b, LAM, mu=2, s=16, max_iter=96, seed=3,
                           record_every=0).x

        def fn(comm, rank):
            return sa_acc_bcd(A, b, LAM, mu=2, s=16, max_iter=96, seed=3,
                              comm=comm, record_every=0).x

        res = spmd_run(fn, 3)
        assert np.allclose(res.values[0], x_seq, atol=1e-10)

    def test_prebuilt_dist_matrix(self, small_regression):
        A, b, _ = small_regression

        def fn(comm, rank):
            M = RowPartitionedMatrix.from_global(A, comm)
            return acc_bcd(M, b, LAM, mu=2, max_iter=40, seed=0,
                           record_every=0).x

        res = spmd_run(fn, 2)
        x_seq = acc_bcd(A, b, LAM, mu=2, max_iter=40, seed=0, record_every=0).x
        assert np.allclose(res.values[0], x_seq, atol=1e-10)

    def test_histories_equal_across_ranks(self, small_regression):
        A, b, _ = small_regression

        def fn(comm, rank):
            return bcd(A, b, LAM, mu=2, max_iter=20, seed=0, comm=comm).history.metric

        res = spmd_run(fn, 3)
        assert res.values[0] == res.values[1] == res.values[2]


class TestSvmDistributed:
    @pytest.mark.parametrize("P", [2, 4])
    def test_dcd_matches_sequential(self, small_classification, P):
        A, b = small_classification
        seq = dcd(A, b, loss="l1", max_iter=200, seed=5, record_every=0)

        def fn(comm, rank):
            res = dcd(A, b, loss="l1", max_iter=200, seed=5, comm=comm,
                      record_every=0)
            return res.x, res.extras["alpha"]

        out = spmd_run(fn, P)
        for xv, av in out.values:
            assert np.allclose(xv, seq.x, atol=1e-10)
            assert np.allclose(av, seq.extras["alpha"], atol=1e-10)

    def test_sa_dcd_threads(self, small_classification):
        A, b = small_classification
        seq = sa_dcd(A, b, loss="l2", s=16, max_iter=160, seed=5,
                     record_every=0)

        def fn(comm, rank):
            return sa_dcd(A, b, loss="l2", s=16, max_iter=160, seed=5,
                          comm=comm, record_every=0).x

        out = spmd_run(fn, 3)
        for xv in out.values:
            assert np.allclose(xv, seq.x, atol=1e-10)

    def test_prebuilt_col_matrix(self, small_classification):
        A, b = small_classification

        def fn(comm, rank):
            M = ColPartitionedMatrix.from_global(A, comm)
            return dcd(M, b, loss="l1", max_iter=100, seed=0, record_every=0).x

        out = spmd_run(fn, 2)
        seq = dcd(A, b, loss="l1", max_iter=100, seed=0, record_every=0)
        assert np.allclose(out.values[0], seq.x, atol=1e-10)


class TestCostParityThreadVsVirtual:
    def test_same_message_counts(self, small_regression):
        """Thread-P and virtual-P modes must charge identical comm costs."""
        A, b, _ = small_regression
        P, H = 4, 32

        def fn(comm, rank):
            bcd(A, b, LAM, mu=2, max_iter=H, seed=0, comm=comm, record_every=0)

        thread_res = spmd_run(fn, P, machine=CRAY_XC30)

        from repro.mpi.virtual_backend import VirtualComm

        vc = VirtualComm(P, machine=CRAY_XC30)
        bcd(A, b, LAM, mu=2, max_iter=H, seed=0, comm=vc, record_every=0)
        assert thread_res.ledgers[0].messages == vc.ledger.messages
        assert thread_res.ledgers[0].words == pytest.approx(vc.ledger.words)
