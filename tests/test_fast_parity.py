"""Fused (fast=True) vs reference (fast=False) inner-loop parity.

The kernel layer's contract is *bit-identical* iterate sequences: the
fused loops remove Python/NumPy overhead, allocations, and redundant
eigensolves but never re-associate floating-point reductions. These
tests enforce exact equality (``np.array_equal``, not ``allclose``) on
the solution, the recorded objective/gap history, and the modelled cost
ledger — any arithmetic drift in the fast path fails loudly here.
"""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.experiments.runner import load_scaled
from repro.mpi.thread_backend import spmd_run
from repro.prox.penalties import ElasticNetPenalty, GroupLassoPenalty
from repro.solvers.lasso import sa_acc_bcd, sa_acc_cd, sa_bcd
from repro.solvers.svm.dcd import sa_dcd

LAM = 0.7


def _assert_same(rf, rn, check_cost=True):
    assert np.array_equal(rf.x, rn.x)
    assert rf.iterations == rn.iterations
    assert rf.converged == rn.converged
    assert rf.history.iterations == rn.history.iterations
    assert rf.history.metric == rn.history.metric
    if check_cost:
        # the model charges the algorithm's work, not Python overhead:
        # fused and naive must cost the same modelled seconds
        assert rf.cost.seconds == rn.cost.seconds
        assert rf.cost.messages == rn.cost.messages
        assert rf.cost.words == rn.cost.words


class TestSaAccBcdParity:
    @pytest.mark.parametrize("mu,s", [(1, 1), (1, 8), (1, 64), (4, 8), (3, 16)])
    def test_sparse(self, small_regression, mu, s):
        A, b, _ = small_regression
        rf = sa_acc_bcd(A, b, LAM, mu=mu, s=s, max_iter=96, seed=5, fast=True)
        rn = sa_acc_bcd(A, b, LAM, mu=mu, s=s, max_iter=96, seed=5, fast=False)
        _assert_same(rf, rn)

    @pytest.mark.parametrize("mu,s", [(1, 16), (4, 8)])
    def test_dense(self, dense_regression, mu, s):
        A, b, _ = dense_regression
        rf = sa_acc_bcd(A, b, LAM, mu=mu, s=s, max_iter=64, seed=1, fast=True)
        rn = sa_acc_bcd(A, b, LAM, mu=mu, s=s, max_iter=64, seed=1, fast=False)
        _assert_same(rf, rn)

    def test_elastic_net(self, small_regression):
        A, b, _ = small_regression
        pen = ElasticNetPenalty(lam=0.3, scale=0.5)
        rf = sa_acc_bcd(A, b, pen, mu=2, s=12, max_iter=72, seed=6, fast=True)
        rn = sa_acc_bcd(A, b, pen, mu=2, s=12, max_iter=72, seed=6, fast=False)
        _assert_same(rf, rn)

    def test_group_lasso_blocks(self, small_regression):
        A, b, _ = small_regression
        n = A.shape[1]
        pen = GroupLassoPenalty(lam=0.4, group_ids=np.arange(n) // 4)
        rf = sa_acc_bcd(A, b, pen, mu=2, s=8, max_iter=48, seed=2, fast=True)
        rn = sa_acc_bcd(A, b, pen, mu=2, s=8, max_iter=48, seed=2, fast=False)
        _assert_same(rf, rn)

    def test_x0_and_tolerance_stop(self, small_regression):
        A, b, _ = small_regression
        x0 = np.linspace(-0.4, 0.4, A.shape[1])
        kw = dict(mu=1, s=16, max_iter=400, seed=3, x0=x0, tol=1e-4)
        rf = sa_acc_bcd(A, b, LAM, fast=True, **kw)
        rn = sa_acc_bcd(A, b, LAM, fast=False, **kw)
        _assert_same(rf, rn)

    def test_record_every_zero(self, small_regression):
        A, b, _ = small_regression
        kw = dict(mu=1, s=8, max_iter=50, seed=0, record_every=0)
        rf = sa_acc_bcd(A, b, LAM, fast=True, **kw)
        rn = sa_acc_bcd(A, b, LAM, fast=False, **kw)
        _assert_same(rf, rn)

    def test_sa_acc_cd_passthrough(self, small_regression):
        A, b, _ = small_regression
        rf = sa_acc_cd(A, b, LAM, s=24, max_iter=96, seed=7, fast=True)
        rn = sa_acc_cd(A, b, LAM, s=24, max_iter=96, seed=7, fast=False)
        _assert_same(rf, rn)

    def test_theta_extras_match(self, small_regression):
        A, b, _ = small_regression
        rf = sa_acc_bcd(A, b, LAM, mu=2, s=8, max_iter=64, seed=0, fast=True)
        rn = sa_acc_bcd(A, b, LAM, mu=2, s=8, max_iter=64, seed=0, fast=False)
        assert rf.extras["theta"] == rn.extras["theta"]


class TestSaBcdParity:
    @pytest.mark.parametrize("mu,s", [(1, 8), (1, 32), (4, 8)])
    def test_sparse(self, small_regression, mu, s):
        A, b, _ = small_regression
        rf = sa_bcd(A, b, LAM, mu=mu, s=s, max_iter=96, seed=2, fast=True)
        rn = sa_bcd(A, b, LAM, mu=mu, s=s, max_iter=96, seed=2, fast=False)
        _assert_same(rf, rn)

    def test_dense(self, dense_regression):
        A, b, _ = dense_regression
        rf = sa_bcd(A, b, LAM, mu=2, s=16, max_iter=64, seed=9, fast=True)
        rn = sa_bcd(A, b, LAM, mu=2, s=16, max_iter=64, seed=9, fast=False)
        _assert_same(rf, rn)


class TestSaDcdParity:
    @pytest.mark.parametrize("loss,s", [("l1", 8), ("l1", 32), ("l2", 16)])
    def test_sparse(self, small_classification, loss, s):
        A, b = small_classification
        rf = sa_dcd(A, b, loss=loss, s=s, max_iter=200, seed=4, fast=True)
        rn = sa_dcd(A, b, loss=loss, s=s, max_iter=200, seed=4, fast=False)
        _assert_same(rf, rn)
        assert np.array_equal(rf.extras["alpha"], rn.extras["alpha"])
        assert np.array_equal(rf.extras["x_local"], rn.extras["x_local"])

    def test_dense(self, dense_classification):
        A, b = dense_classification
        rf = sa_dcd(A, b, loss="l1", s=8, max_iter=120, seed=1, fast=True)
        rn = sa_dcd(A, b, loss="l1", s=8, max_iter=120, seed=1, fast=False)
        _assert_same(rf, rn)
        assert np.array_equal(rf.extras["alpha"], rn.extras["alpha"])

    def test_record_every(self, small_classification):
        A, b = small_classification
        kw = dict(loss="l2", s=12, max_iter=96, seed=8, record_every=24)
        rf = sa_dcd(A, b, fast=True, **kw)
        rn = sa_dcd(A, b, fast=False, **kw)
        _assert_same(rf, rn)


def _rel_drift(x, ref):
    return np.linalg.norm(x - ref) / max(np.linalg.norm(ref), 1e-300)


class TestParityModes:
    """The parity knob: exact keeps the bit-parity contract at mu > 1;
    fp-tolerant re-associates but stays within 1e-9 relative drift."""

    @pytest.mark.parametrize("mu,s", [(4, 8), (8, 32)])
    def test_exact_parity_mu_gt_1(self, small_regression, mu, s):
        A, b, _ = small_regression
        kw = dict(mu=mu, s=s, max_iter=96, seed=5)
        rn = sa_acc_bcd(A, b, LAM, fast=False, **kw)
        rf = sa_acc_bcd(A, b, LAM, fast=True, parity="exact", **kw)
        _assert_same(rf, rn)

    @pytest.mark.parametrize("solver", [sa_bcd, sa_acc_bcd])
    def test_fp_tolerant_drift_bounded(self, small_regression, solver):
        A, b, _ = small_regression
        kw = dict(mu=4, s=16, max_iter=96, seed=2)
        rn = solver(A, b, LAM, fast=False, **kw)
        rf = solver(A, b, LAM, fast=True, parity="fp-tolerant", **kw)
        assert _rel_drift(rf.x, rn.x) <= 1e-9
        # the ledger charges the algorithm's work: identical in both modes
        assert rf.cost.seconds == rn.cost.seconds
        assert rf.cost.messages == rn.cost.messages
        assert rf.cost.words == rn.cost.words

    def test_fp_tolerant_fig3_config(self):
        """Acceptance: <= 1e-9 relative iterate drift at mu=8, s=32 on
        the fig3 benchmark configuration."""
        ds = load_scaled("news20", target_cells=20_000.0, seed=0)
        kw = dict(mu=8, s=32, max_iter=384, seed=3, record_every=32)
        rn = sa_acc_bcd(ds.A, ds.b, 1.0, fast=False, **kw)
        rf = sa_acc_bcd(ds.A, ds.b, 1.0, fast=True, parity="fp-tolerant", **kw)
        assert _rel_drift(rf.x, rn.x) <= 1e-9
        assert rf.iterations == rn.iterations

    @pytest.mark.parametrize("solver", [sa_bcd, sa_acc_bcd])
    def test_fp_tolerant_dense_blocks(self, dense_regression, solver):
        A, b, _ = dense_regression
        kw = dict(mu=4, s=8, max_iter=64, seed=9)
        rn = solver(A, b, LAM, fast=False, **kw)
        rf = solver(A, b, LAM, fast=True, parity="fp-tolerant", **kw)
        assert _rel_drift(rf.x, rn.x) <= 1e-9
        assert rf.cost.seconds == rn.cost.seconds

    def test_fp_tolerant_mu1_shares_exact_loop(self, small_regression):
        A, b, _ = small_regression
        kw = dict(mu=1, s=16, max_iter=96, seed=4)
        re_ = sa_acc_bcd(A, b, LAM, parity="exact", **kw)
        rf = sa_acc_bcd(A, b, LAM, parity="fp-tolerant", **kw)
        _assert_same(rf, re_)

    @pytest.mark.parametrize("solver", [sa_bcd, sa_acc_bcd])
    def test_unknown_parity_rejected(self, small_regression, solver):
        A, b, _ = small_regression
        with pytest.raises(SolverError):
            solver(A, b, LAM, parity="sloppy")

    def test_sa_dcd_accepts_parity(self, small_classification):
        A, b = small_classification
        rf = sa_dcd(A, b, loss="l1", s=8, max_iter=80, seed=4,
                    parity="fp-tolerant")
        rn = sa_dcd(A, b, loss="l1", s=8, max_iter=80, seed=4, fast=False)
        _assert_same(rf, rn)
        with pytest.raises(SolverError):
            sa_dcd(A, b, parity="sloppy")


class TestDistributedParity:
    """The fused loops run the same SPMD code path on thread ranks."""

    def test_thread_spmd_matches(self, small_regression):
        A, b, _ = small_regression

        def run(comm, rank, fast):
            from repro.linalg.distmatrix import RowPartitionedMatrix

            dist = RowPartitionedMatrix.from_global(A, comm)
            res = sa_acc_bcd(dist, b, LAM, mu=2, s=8, max_iter=48, seed=5, fast=fast)
            return res.x

        xs_fast = spmd_run(run, 3, args=(True,)).values
        xs_naive = spmd_run(run, 3, args=(False,)).values
        for xf, xn in zip(xs_fast, xs_naive, strict=True):
            assert np.array_equal(xf, xs_fast[0])
            assert np.array_equal(xf, xn)
