"""Tests for LIBSVM-style preprocessing."""

import numpy as np
import pytest
import scipy.sparse as sp

from conftest import dense_of
from repro.datasets.preprocess import (
    add_bias_column,
    scale_columns_max_abs,
    scale_rows_unit_norm,
)
from repro.errors import DatasetError


class TestRowNorm:
    def test_dense_unit_rows(self):
        A = np.array([[3.0, 4.0], [0.0, 2.0]])
        out = scale_rows_unit_norm(A)
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0)

    def test_sparse_matches_dense(self, small_regression):
        A, _, _ = small_regression
        out_sp = scale_rows_unit_norm(A)
        out_d = scale_rows_unit_norm(dense_of(A))
        assert np.allclose(dense_of(out_sp), out_d)

    def test_zero_rows_stay_zero(self):
        A = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 1.0]]))
        out = scale_rows_unit_norm(A)
        assert dense_of(out)[0].sum() == 0.0

    def test_sparsity_preserved(self, small_regression):
        A, _, _ = small_regression
        assert scale_rows_unit_norm(A).nnz == A.nnz


class TestColMaxAbs:
    def test_dense_range(self):
        A = np.array([[2.0, -8.0], [-1.0, 4.0]])
        out = scale_columns_max_abs(A)
        assert np.max(np.abs(out)) <= 1.0 + 1e-12
        assert np.allclose(np.max(np.abs(out), axis=0), 1.0)

    def test_sparse_matches_dense(self, small_regression):
        A, _, _ = small_regression
        out_sp = scale_columns_max_abs(A)
        out_d = scale_columns_max_abs(dense_of(A))
        assert np.allclose(dense_of(out_sp), out_d)

    def test_empty_column_ok(self):
        A = sp.csr_matrix(np.array([[1.0, 0.0], [2.0, 0.0]]))
        out = scale_columns_max_abs(A)
        assert dense_of(out)[:, 1].sum() == 0.0


class TestBias:
    def test_dense(self):
        A = np.ones((3, 2))
        out = add_bias_column(A, 2.0)
        assert out.shape == (3, 3)
        assert np.all(out[:, 2] == 2.0)

    def test_sparse(self, small_regression):
        A, _, _ = small_regression
        out = add_bias_column(A)
        assert sp.issparse(out) and out.shape[1] == A.shape[1] + 1
        assert np.all(dense_of(out)[:, -1] == 1.0)

    def test_zero_bias_rejected(self):
        with pytest.raises(DatasetError):
            add_bias_column(np.ones((2, 2)), 0.0)

    def test_svm_uses_bias(self, small_classification):
        # end-to-end: bias column shifts the decision boundary
        from repro import fit_svm

        A, b = small_classification
        Ab = add_bias_column(A)
        res = fit_svm(Ab, b, loss="l2", max_iter=2000, seed=0)
        assert np.isfinite(res.final_metric)
