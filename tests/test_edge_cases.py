"""Edge-case and failure-injection tests across the solver stack."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import fit_lasso, fit_svm
from repro.datasets import make_classification, make_sparse_regression
from repro.solvers.lasso import acc_bcd, bcd, sa_acc_bcd, sa_bcd
from repro.solvers.svm import dcd, sa_dcd


class TestLassoEdges:
    def test_full_block_mu_equals_n(self, small_regression):
        A, b, _ = small_regression
        n = A.shape[1]
        r = bcd(A, b, 0.5, mu=n, max_iter=30, seed=0)
        rs = sa_bcd(A, b, 0.5, mu=n, s=5, max_iter=30, seed=0)
        assert np.allclose(r.x, rs.x, atol=1e-10)
        assert r.history.metric[-1] < r.history.metric[0]

    def test_zero_matrix_no_progress_no_crash(self):
        A = sp.csr_matrix((20, 10))
        b = np.ones(20)
        res = bcd(A, b, 0.5, mu=2, max_iter=10, seed=0)
        assert np.count_nonzero(res.x) == 0
        assert res.final_metric == pytest.approx(10.0)  # 0.5*||b||^2

    def test_zero_matrix_acc(self):
        A = np.zeros((8, 4))
        b = np.ones(8)
        res = sa_acc_bcd(A, b, 0.5, mu=2, s=4, max_iter=12, seed=0)
        assert np.all(res.x == 0.0)

    def test_single_column(self):
        A, b, _ = make_sparse_regression(30, 1, density=1.0, seed=0)
        r = acc_bcd(A, b, 0.01, mu=1, max_iter=40, seed=0)
        rs = sa_acc_bcd(A, b, 0.01, mu=1, s=8, max_iter=40, seed=0)
        assert np.allclose(r.x, rs.x, atol=1e-10)

    def test_single_row(self):
        A, b, _ = make_sparse_regression(1, 10, density=1.0, seed=0)
        res = bcd(A, b, 0.01, mu=2, max_iter=50, seed=0)
        assert res.history.metric[-1] <= res.history.metric[0]

    def test_max_iter_one(self, small_regression):
        A, b, _ = small_regression
        r = bcd(A, b, 0.5, mu=2, max_iter=1, seed=0)
        rs = sa_bcd(A, b, 0.5, mu=2, s=8, max_iter=1, seed=0)
        assert r.iterations == rs.iterations == 1
        assert np.allclose(r.x, rs.x)

    def test_duplicate_columns_matrix(self):
        # rank-deficient A with identical columns: eta finite, no blowup
        col = np.random.default_rng(0).standard_normal((30, 1))
        A = np.hstack([col] * 6)
        b = np.random.default_rng(1).standard_normal(30)
        res = sa_bcd(A, b, 0.1, mu=3, s=4, max_iter=60, seed=0)
        assert np.all(np.isfinite(res.x))
        assert res.history.metric[-1] <= res.history.metric[0] + 1e-9

    def test_huge_lambda_yields_zero(self, small_regression):
        A, b, _ = small_regression
        lam = 100 * float(np.max(np.abs(A.T @ b)))
        res = fit_lasso(A, b, lam=lam, solver="sa-bcd", mu=4, s=8,
                        max_iter=100)
        assert np.count_nonzero(res.x) == 0


class TestSvmEdges:
    def test_two_samples(self):
        A = np.array([[1.0, 0.0], [-1.0, 0.0]])
        b = np.array([1.0, -1.0])
        r = dcd(A, b, loss="l2", max_iter=100, seed=0)
        rs = sa_dcd(A, b, loss="l2", s=20, max_iter=100, seed=0)
        assert np.allclose(r.x, rs.x, atol=1e-12)
        assert r.x[0] > 0  # separating direction found

    def test_all_same_label(self):
        # degenerate but legal: every sample positive
        A, _ = make_classification(20, 8, density=0.8, seed=0)
        b = np.ones(20)
        res = dcd(A, b, loss="l2", max_iter=200, seed=0)
        assert np.all(np.isfinite(res.x))
        assert res.final_metric < res.history.metric[0]

    def test_zero_feature_rows(self):
        # rows with no features: eta = gamma (L2) or 0 (L1) — both guarded
        A = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 2.0], [0.0, 0.0],
                                    [3.0, -1.0]]))
        b = np.array([1.0, -1.0, -1.0, 1.0])
        for loss in ("l1", "l2"):
            res = sa_dcd(A, b, loss=loss, s=10, max_iter=80, seed=0)
            assert np.all(np.isfinite(res.x)), loss

    def test_duplicate_rows_sampled_repeatedly(self):
        # m=2 forces heavy duplicate sampling inside every outer step
        A = np.array([[1.0, 2.0], [2.0, -1.0]])
        b = np.array([1.0, -1.0])
        r = dcd(A, b, loss="l1", max_iter=300, seed=4)
        rs = sa_dcd(A, b, loss="l1", s=100, max_iter=300, seed=4)
        assert np.allclose(r.extras["alpha"], rs.extras["alpha"], atol=1e-12)

    def test_lam_extremes(self, small_classification):
        A, b = small_classification
        tiny = fit_svm(A, b, loss="l1", lam=1e-4, max_iter=500, seed=0)
        big = fit_svm(A, b, loss="l1", lam=100.0, max_iter=500, seed=0)
        assert np.all(np.isfinite(tiny.x)) and np.all(np.isfinite(big.x))
        # alpha box scales with lam for L1
        assert np.max(tiny.extras["alpha"]) <= 1e-4 + 1e-12


class TestDeterminism:
    def test_repeat_runs_bitwise_identical(self, small_regression):
        A, b, _ = small_regression
        x1 = sa_acc_bcd(A, b, 0.5, mu=4, s=8, max_iter=64, seed=9,
                        record_every=0).x
        x2 = sa_acc_bcd(A, b, 0.5, mu=4, s=8, max_iter=64, seed=9,
                        record_every=0).x
        assert np.array_equal(x1, x2)

    def test_different_seeds_differ(self, small_regression):
        A, b, _ = small_regression
        x1 = bcd(A, b, 0.5, mu=2, max_iter=10, seed=1, record_every=0).x
        x2 = bcd(A, b, 0.5, mu=2, max_iter=10, seed=2, record_every=0).x
        assert not np.array_equal(x1, x2)

    def test_symmetric_pack_does_not_change_iterates(self, small_regression):
        A, b, _ = small_regression
        x1 = sa_acc_bcd(A, b, 0.5, mu=4, s=8, max_iter=48, seed=0,
                        symmetric_pack=True, record_every=0).x
        x2 = sa_acc_bcd(A, b, 0.5, mu=4, s=8, max_iter=48, seed=0,
                        symmetric_pack=False, record_every=0).x
        assert np.allclose(x1, x2, atol=1e-13)
