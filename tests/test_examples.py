"""Smoke checks for the example scripts.

Full example runs take minutes; here we verify each script compiles and
that the cheap ones execute end to end via their ``main`` entry points
with the default arguments (heavier ones are exercised by the benchmark
harness through the same library calls).
"""

import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "text_classification_svm", "strong_scaling_study",
            "regularization_path", "communication_cost_planner"} <= names


def test_cost_planner_runs(capsys):
    import importlib.util

    path = next(p for p in EXAMPLES if p.stem == "communication_cost_planner")
    spec = importlib.util.spec_from_file_location("planner_example", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    mod.main()
    out = capsys.readouterr().out
    assert "recommended s" in out and "covtype" in out


def test_scaling_study_runs(capsys):
    import importlib.util

    path = next(p for p in EXAMPLES if p.stem == "strong_scaling_study")
    spec = importlib.util.spec_from_file_location("scaling_example", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    mod.main("leu", "cd")
    out = capsys.readouterr().out
    assert "best setting" in out
