"""Tests for SolverResult JSON serialization."""

import io

import numpy as np
import pytest

from repro import fit_lasso, fit_svm
from repro.errors import SolverError
from repro.solvers.serialization import (
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)


@pytest.fixture(scope="module")
def lasso_result(small_regression_module=None):
    from repro.datasets import make_sparse_regression

    A, b, _ = make_sparse_regression(40, 25, density=0.4, seed=1)
    return fit_lasso(A, b, lam=0.5, solver="sa-accbcd", mu=2, s=8,
                     max_iter=60, record_every=10)


class TestRoundTrip:
    def test_dict_roundtrip(self, lasso_result):
        data = result_to_dict(lasso_result)
        back = result_from_dict(data)
        assert back.solver == lasso_result.solver
        assert np.allclose(back.x, lasso_result.x)
        assert back.iterations == lasso_result.iterations
        assert back.final_metric == lasso_result.final_metric
        assert back.history.metric == lasso_result.history.metric
        assert back.cost.messages == lasso_result.cost.messages

    def test_file_roundtrip(self, tmp_path, lasso_result):
        path = tmp_path / "res.json"
        save_result(path, lasso_result)
        back = load_result(path)
        assert np.allclose(back.x, lasso_result.x)

    def test_stream_roundtrip(self, lasso_result):
        buf = io.StringIO()
        save_result(buf, lasso_result)
        buf.seek(0)
        back = load_result(buf)
        assert back.converged == lasso_result.converged

    def test_svm_extras_arrays(self, small_classification):
        A, b = small_classification
        res = fit_svm(A, b, loss="l1", max_iter=100, seed=0)
        back = result_from_dict(result_to_dict(res))
        assert np.allclose(back.extras["alpha"], res.extras["alpha"])
        assert back.extras["loss"] == "l1"

    def test_unserialisable_extras_dropped(self, lasso_result):
        lasso_result.extras["weird"] = object()
        data = result_to_dict(lasso_result)
        assert "weird" in data["dropped_extras"]
        del lasso_result.extras["weird"]

    def test_bad_version_rejected(self, lasso_result):
        data = result_to_dict(lasso_result)
        data["format_version"] = 99
        with pytest.raises(SolverError):
            result_from_dict(data)

    def test_json_is_plain_text(self, tmp_path, lasso_result):
        path = tmp_path / "res.json"
        save_result(path, lasso_result)
        import json

        with open(path) as fh:
            parsed = json.load(fh)
        assert parsed["solver"].startswith("sa-accbcd")
