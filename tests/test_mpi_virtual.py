"""Tests for the virtual-P backend."""

import math

import numpy as np
import pytest

from repro.errors import CommError
from repro.machine.spec import CRAY_XC30
from repro.mpi.virtual_backend import VirtualComm


class TestSemantics:
    def test_identity_collectives(self):
        c = VirtualComm(virtual_size=64)
        assert c.allreduce(5) == 5
        assert np.array_equal(c.Allreduce(np.arange(3.0)), np.arange(3.0))
        assert c.bcast("x") == "x"
        assert c.allgather("y") == ["y"]

    def test_rank_and_sizes(self):
        c = VirtualComm(virtual_size=128)
        assert c.rank == 0 and c.size == 1 and c.cost_size == 128
        assert c.Get_rank() == 0 and c.Get_size() == 1

    def test_invalid_size(self):
        with pytest.raises(CommError):
            VirtualComm(virtual_size=0)


class TestLedgerReuse:
    """Per-point accounting across sweeps: reset() and child()."""

    def test_reset_zeroes_ledger(self):
        c = VirtualComm(virtual_size=64, machine=CRAY_XC30)
        c.Allreduce(np.ones(8))
        c.account_flops(100.0, "blas1")
        assert c.ledger.messages > 0 and c.ledger.flops > 0
        c.reset()
        assert c.ledger.messages == 0
        assert c.ledger.words == 0.0
        assert c.ledger.flops == 0.0
        assert c.ledger.seconds == 0.0
        assert not c.ledger.by_collective and not c.ledger.by_kind
        # the communicator keeps charging correctly after a reset
        c.Allreduce(np.ones(8))
        assert c.ledger.messages == math.ceil(math.log2(64))

    def test_child_has_fresh_ledger_same_model(self):
        c = VirtualComm(virtual_size=128, machine=CRAY_XC30, imbalance=1.5,
                        flop_scale=3.0, kind_scales={"gather": 7.0})
        c.Allreduce(np.ones(4))
        child = c.child()
        assert child is not c and child.ledger is not c.ledger
        assert child.cost_size == 128 and child.machine is CRAY_XC30
        assert child.ledger.imbalance == 1.5
        assert child.ledger.default_scale == 3.0
        assert child.ledger.kind_scales == {"gather": 7.0}
        assert child.ledger.messages == 0
        # parent totals untouched by the child's traffic
        before = c.ledger.messages
        child.Allreduce(np.ones(4))
        assert c.ledger.messages == before
        assert child.ledger.messages == before  # same pricing model

    def test_ledger_child_matches_config(self):
        c = VirtualComm(virtual_size=32, imbalance=2.0, flop_scale=5.0)
        led = c.ledger.child()
        assert led.flop_divisor == c.ledger.flop_divisor
        assert led.imbalance == 2.0 and led.default_scale == 5.0
        assert led.flops == 0.0 and led.messages == 0


class TestCosts:
    def test_allreduce_priced_at_virtual_p(self):
        c = VirtualComm(virtual_size=1024, machine=CRAY_XC30)
        c.Allreduce(np.ones(10))
        rounds = math.ceil(math.log2(1024))
        assert c.ledger.messages == rounds
        assert c.ledger.words == rounds * 10
        assert c.ledger.comm_seconds == pytest.approx(
            rounds * (CRAY_XC30.alpha + CRAY_XC30.beta * 10)
        )

    def test_flops_divided_by_p(self):
        c = VirtualComm(virtual_size=100, machine=CRAY_XC30)
        c.account_flops(1000.0)
        assert c.ledger.flops == pytest.approx(10.0)

    def test_flop_scale_extrapolates(self):
        c = VirtualComm(virtual_size=100, machine=CRAY_XC30, flop_scale=50.0)
        c.account_flops(1000.0)
        assert c.ledger.flops == pytest.approx(500.0)

    def test_kind_scales(self):
        c = VirtualComm(
            virtual_size=10, flop_scale=100.0, kind_scales={"fixed": 1.0}
        )
        c.account_flops(10.0, "fixed")
        c.account_flops(10.0, "blas1")
        assert c.ledger.by_kind["fixed"] == pytest.approx(1.0)
        assert c.ledger.by_kind["blas1"] == pytest.approx(100.0)

    def test_invalid_flop_scale(self):
        with pytest.raises(CommError):
            VirtualComm(virtual_size=1, flop_scale=0.0)

    def test_size_one_no_comm_cost(self):
        c = VirtualComm(virtual_size=1, machine=CRAY_XC30)
        c.Allreduce(np.ones(100))
        assert c.ledger.comm_seconds == 0.0

    def test_no_machine_counts_only(self):
        c = VirtualComm(virtual_size=256)
        c.Allreduce(np.ones(4))
        assert c.ledger.messages == 8
        assert c.ledger.comm_seconds == 0.0
