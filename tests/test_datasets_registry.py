"""Tests for the paper-dataset registry (Tables II and IV)."""

import numpy as np
import pytest

from repro.datasets.registry import (
    LASSO_DATASETS,
    SVM_DATASETS,
    generate,
    get_dataset,
)
from repro.errors import DatasetError
from repro.utils.validation import nnz_of


class TestRegistryContents:
    def test_table2_rows_present(self):
        # Table II of the paper
        for name in ("url", "news20", "covtype", "epsilon", "leu"):
            assert get_dataset(name).table == "II"

    def test_table4_rows_present(self):
        for name in ("w1a", "duke", "news20.binary", "rcv1.binary", "gisette"):
            assert get_dataset(name).table == "IV"

    def test_exact_paper_numbers(self):
        url = get_dataset("url")
        assert url.features == 3_231_961
        assert url.points == 2_396_130
        assert url.nnz_pct == 0.0036
        cov = get_dataset("covtype")
        assert (cov.features, cov.points, cov.nnz_pct) == (54, 581_012, 22.0)

    def test_task_split(self):
        assert {d.task for d in LASSO_DATASETS} == {"lasso"}
        assert {d.task for d in SVM_DATASETS} == {"svm"}
        assert len(LASSO_DATASETS) == 5 and len(SVM_DATASETS) == 6

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            get_dataset("mnist")

    def test_swapped_orientation(self):
        nb = get_dataset("news20.binary")
        m_rep, n_rep = nb.dims(as_reported=True)
        m_conv, n_conv = nb.dims(as_reported=False)
        assert (m_rep, n_rep) == (n_conv, m_conv)
        # conventional: 19,996 samples x 1,355,191 features
        assert m_conv == 19_996

    def test_density(self):
        assert get_dataset("epsilon").density == 1.0
        assert get_dataset("url").density == pytest.approx(3.6e-5)


class TestScaledDims:
    def test_scaling_shrinks(self):
        m, n = get_dataset("url").scaled_dims(1e-6)
        assert m < 2_396_130 and n < 3_231_961

    def test_skinny_dims_preserved(self):
        m, n = get_dataset("covtype").scaled_dims(0.001)
        assert n == 54  # never shrink a 54-feature matrix's features

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            get_dataset("leu").scaled_dims(0.0)

    def test_max_side(self):
        m, n = get_dataset("url").scaled_dims(1.0, max_side=100)
        assert m <= 100 and n <= 100


class TestGenerate:
    def test_lasso_returns_triple(self):
        A, b, x = generate("news20", scale=0.002, seed=0)
        assert A.shape[0] == b.shape[0]
        assert x.shape[0] == A.shape[1]

    def test_svm_returns_pair(self):
        A, b = generate("rcv1.binary", scale=0.0005, seed=0)
        assert set(np.unique(b)) <= {-1.0, 1.0}

    def test_density_roughly_preserved(self):
        A, b, _ = generate("covtype", scale=0.0005, seed=0)
        d = nnz_of(A) / (A.shape[0] * A.shape[1])
        assert 0.1 < d < 0.4  # covtype is 22% dense

    def test_dense_dataset_generates_dense(self):
        A, b, _ = generate("leu", scale=0.5, seed=0)
        assert isinstance(A, np.ndarray)

    def test_reproducible(self):
        A1, b1 = generate("w1a", scale=0.01, seed=3)
        A2, b2 = generate("w1a", scale=0.01, seed=3)
        assert np.array_equal(b1, b2)
