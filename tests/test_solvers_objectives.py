"""Tests for objectives and the lambda = 100 sigma_min convention."""

import numpy as np
import pytest
import scipy.sparse as sp

from conftest import dense_of
from repro.prox.penalties import ElasticNetPenalty, L1Penalty
from repro.solvers.objectives import (
    lambda_from_sigma_min,
    lasso_objective,
    least_squares_loss,
    sigma_max,
    sigma_min,
)


class TestLeastSquares:
    def test_zero_solution(self):
        A = np.eye(3)
        b = np.array([1.0, 2.0, 3.0])
        assert least_squares_loss(A, b, np.zeros(3)) == pytest.approx(0.5 * 14)

    def test_exact_solution(self):
        A = np.eye(2)
        b = np.array([1.0, -1.0])
        assert least_squares_loss(A, b, b) == 0.0

    def test_sparse_matches_dense(self, small_regression):
        A, b, x = small_regression
        xd = np.linspace(-1, 1, A.shape[1])
        assert least_squares_loss(A, b, xd) == pytest.approx(
            least_squares_loss(dense_of(A), b, xd)
        )


class TestLassoObjective:
    def test_float_penalty_is_l1(self, small_regression):
        A, b, _ = small_regression
        x = np.ones(A.shape[1])
        assert lasso_objective(A, b, x, 0.5) == pytest.approx(
            lasso_objective(A, b, x, L1Penalty(0.5))
        )

    def test_penalty_object(self, small_regression):
        A, b, _ = small_regression
        x = np.ones(A.shape[1])
        pen = ElasticNetPenalty(0.3, scale=0.5)
        assert lasso_objective(A, b, x, pen) == pytest.approx(
            least_squares_loss(A, b, x) + pen.value(x)
        )


class TestSigmas:
    def test_identity(self):
        assert sigma_min(np.eye(4)) == pytest.approx(1.0)
        assert sigma_max(np.eye(4)) == pytest.approx(1.0)

    def test_matches_numpy_dense(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((20, 8))
        svals = np.linalg.svd(A, compute_uv=False)
        assert sigma_min(A) == pytest.approx(svals[-1])
        assert sigma_max(A) == pytest.approx(svals[0])

    def test_sparse_matches_dense(self):
        A = sp.random(40, 15, density=0.5, random_state=1, format="csr")
        dense = dense_of(A)
        svals = np.linalg.svd(dense, compute_uv=False)
        assert sigma_min(A) == pytest.approx(svals[-1], rel=1e-6)

    def test_lambda_factor(self):
        A = np.eye(3) * 2.0
        assert lambda_from_sigma_min(A, 100.0) == pytest.approx(200.0)
        assert lambda_from_sigma_min(A, 1.0) == pytest.approx(2.0)
