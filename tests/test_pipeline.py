"""Pipelined SA solvers: iterate parity, ledger honesty, SPMD backends.

The acceptance contract: pipelined ``sa_*`` solvers drift <= 1e-9 from
the blocking reference (they are in fact bit-identical — same sampled
blocks, same rank-ordered folds), charge identical traffic (messages,
words, flops), and charge comm *time* only for the unoverlapped latency
remainder (``charged + hidden == blocking``).
"""

import numpy as np
import pytest

from repro._api import fit_lasso, fit_svm
from repro.datasets import make_sparse_regression
from repro.errors import SolverError
from repro.machine.spec import CRAY_XC30
from repro.mpi.process_backend import process_spmd_run
from repro.mpi.thread_backend import spmd_run
from repro.mpi.virtual_backend import VirtualComm
from repro.solvers.lasso import sa_acc_bcd, sa_bcd
from repro.solvers.svm import sa_dcd

LAM = 0.5


@pytest.fixture(scope="module")
def lasso_problem():
    return make_sparse_regression(400, 150, density=0.1, seed=0)


def _rel_drift(a: np.ndarray, b: np.ndarray) -> float:
    scale = max(float(np.max(np.abs(b))), 1e-30)
    return float(np.max(np.abs(a - b))) / scale


class TestIterateParity:
    @pytest.mark.parametrize("mu,s,H,parity", [
        (1, 8, 64, "exact"),
        (4, 16, 100, "exact"),
        (4, 16, 100, "fp-tolerant"),
        (2, 8, 30, "exact"),  # truncated final outer step (30 % 8 != 0)
    ])
    def test_sa_bcd_drift(self, lasso_problem, mu, s, H, parity):
        A, b, _ = lasso_problem
        kw = dict(mu=mu, s=s, max_iter=H, seed=1, record_every=5, parity=parity)
        base = sa_bcd(A, b, LAM, **kw)
        pip = sa_bcd(A, b, LAM, pipeline=True, **kw)
        assert _rel_drift(pip.x, base.x) <= 1e-9
        assert pip.iterations == base.iterations
        assert pip.history.metric == base.history.metric

    @pytest.mark.parametrize("mu,s,parity,fast", [
        (1, 8, "exact", True),
        (4, 16, "exact", True),
        (4, 16, "fp-tolerant", True),
        (2, 8, "exact", False),
    ])
    def test_sa_acc_bcd_drift(self, lasso_problem, mu, s, parity, fast):
        A, b, _ = lasso_problem
        kw = dict(mu=mu, s=s, max_iter=96, seed=1, record_every=5,
                  parity=parity, fast=fast)
        base = sa_acc_bcd(A, b, LAM, **kw)
        pip = sa_acc_bcd(A, b, LAM, pipeline=True, **kw)
        assert _rel_drift(pip.x, base.x) <= 1e-9
        assert pip.history.metric == base.history.metric

    @pytest.mark.parametrize("loss,s", [("l1", 16), ("l2", 8)])
    def test_sa_dcd_drift(self, small_classification, loss, s):
        A, b = small_classification
        kw = dict(loss=loss, s=s, max_iter=120, seed=2, record_every=0)
        base = sa_dcd(A, b, **kw)
        pip = sa_dcd(A, b, pipeline=True, **kw)
        assert _rel_drift(pip.x, base.x) <= 1e-9
        assert np.array_equal(pip.extras["alpha"], base.extras["alpha"])

    def test_early_stop_matches(self, lasso_problem):
        A, b, _ = lasso_problem
        kw = dict(mu=2, s=8, max_iter=500, seed=1, tol=1e-10, record_every=1)
        base = sa_bcd(A, b, LAM, **kw)
        pip = sa_bcd(A, b, LAM, pipeline=True, **kw)
        assert base.converged and pip.converged
        assert pip.iterations == base.iterations
        assert np.array_equal(pip.x, base.x)

    def test_warm_start_matches(self, lasso_problem):
        A, b, _ = lasso_problem
        x0 = np.linspace(-0.1, 0.1, A.shape[1])
        kw = dict(mu=2, s=8, max_iter=40, seed=3, record_every=0, x0=x0)
        base = sa_acc_bcd(A, b, LAM, **kw)
        pip = sa_acc_bcd(A, b, LAM, pipeline=True, **kw)
        assert np.array_equal(pip.x, base.x)


class TestLedgerHonesty:
    def test_identical_traffic_only_unoverlapped_latency(self, lasso_problem):
        A, b, _ = lasso_problem
        kw = dict(mu=4, s=16, max_iter=96, seed=1, record_every=0)
        base = sa_acc_bcd(A, b, LAM, comm=VirtualComm(1024, machine=CRAY_XC30), **kw)
        pip = sa_acc_bcd(A, b, LAM, comm=VirtualComm(1024, machine=CRAY_XC30),
                         pipeline=True, **kw)
        # traffic and compute identical
        assert pip.cost.messages == base.cost.messages
        assert pip.cost.words == pytest.approx(base.cost.words)
        assert pip.cost.flops == pytest.approx(base.cost.flops)
        # blocking hides nothing; pipelined hides the overlapped part and
        # charged + hidden reconstructs the blocking bill exactly
        assert base.cost.comm_seconds_hidden == 0.0
        assert pip.cost.comm_seconds_hidden > 0.0
        assert pip.cost.comm_seconds + pip.cost.comm_seconds_hidden == \
            pytest.approx(base.cost.comm_seconds)
        assert pip.cost.comm_seconds < base.cost.comm_seconds

    def test_svm_ledger_honesty(self, small_classification):
        A, b = small_classification
        kw = dict(loss="l2", s=16, max_iter=96, seed=0, record_every=0)
        base = sa_dcd(A, b, comm=VirtualComm(256, machine=CRAY_XC30), **kw)
        pip = sa_dcd(A, b, comm=VirtualComm(256, machine=CRAY_XC30),
                     pipeline=True, **kw)
        assert pip.cost.messages == base.cost.messages
        assert pip.cost.words == pytest.approx(base.cost.words)
        assert pip.cost.comm_seconds + pip.cost.comm_seconds_hidden == \
            pytest.approx(base.cost.comm_seconds)


class TestPipelineOnSpmdBackends:
    @pytest.mark.parametrize(
        "runner",
        [spmd_run,
         pytest.param(process_spmd_run, marks=pytest.mark.slow)],
        ids=["thread", "process"])
    def test_lasso_matches_sequential(self, lasso_problem, runner):
        A, b, _ = lasso_problem
        seq = sa_acc_bcd(A, b, LAM, mu=2, s=8, max_iter=48, seed=1,
                         record_every=0).x

        def fn(comm, rank):
            return sa_acc_bcd(A, b, LAM, mu=2, s=8, max_iter=48, seed=1,
                              comm=comm, record_every=0, pipeline=True).x

        res = runner(fn, 3)
        for xv in res.values:
            assert np.allclose(xv, seq, atol=1e-10)

    @pytest.mark.parametrize(
        "runner",
        [spmd_run,
         pytest.param(process_spmd_run, marks=pytest.mark.slow)],
        ids=["thread", "process"])
    def test_svm_matches_sequential(self, small_classification, runner):
        A, b = small_classification
        seq = sa_dcd(A, b, loss="l1", s=16, max_iter=96, seed=5,
                     record_every=0).x

        def fn(comm, rank):
            return sa_dcd(A, b, loss="l1", s=16, max_iter=96, seed=5,
                          comm=comm, record_every=0, pipeline=True).x

        res = runner(fn, 3)
        for xv in res.values:
            assert np.allclose(xv, seq, atol=1e-10)

    def test_pipeline_bitwise_vs_blocking_under_threads(self, lasso_problem):
        A, b, _ = lasso_problem

        def fn(comm, rank, pipeline):
            return sa_bcd(A, b, LAM, mu=2, s=8, max_iter=40, seed=2,
                          comm=comm, record_every=0, pipeline=pipeline).x

        blocking = spmd_run(fn, 3, args=(False,))
        pipelined = spmd_run(fn, 3, args=(True,))
        assert np.array_equal(blocking.values[0], pipelined.values[0])


class TestApiKnob:
    def test_fit_lasso_pipeline(self, lasso_problem):
        A, b, _ = lasso_problem
        base = fit_lasso(A, b, LAM, solver="sa-accbcd", mu=2, s=8, max_iter=40,
                         record_every=0)
        pip = fit_lasso(A, b, LAM, solver="sa-accbcd", mu=2, s=8, max_iter=40,
                        record_every=0, pipeline=True)
        assert np.array_equal(base.x, pip.x)

    def test_fit_svm_pipeline(self, small_classification):
        A, b = small_classification
        base = fit_svm(A, b, solver="sa-svm", s=16, max_iter=80, record_every=0)
        pip = fit_svm(A, b, solver="sa-svm", s=16, max_iter=80, record_every=0,
                      pipeline=True)
        assert np.array_equal(base.x, pip.x)

    def test_pipeline_rejected_for_non_sa(self, lasso_problem):
        A, b, _ = lasso_problem
        with pytest.raises(SolverError, match="pipeline"):
            fit_lasso(A, b, LAM, solver="bcd", pipeline=True)
        with pytest.raises(SolverError, match="pipeline"):
            fit_svm(A, b, solver="svm", pipeline=True)
