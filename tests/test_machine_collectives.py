"""Tests for repro.machine.collectives — the paper's Table-I cost model."""


import pytest

from repro.errors import CostModelError
from repro.machine.collectives import CollectiveModel
from repro.machine.spec import CRAY_XC30, MachineSpec


UNIT = MachineSpec(name="unit", alpha=1.0, beta=1.0)


class TestRounds:
    @pytest.mark.parametrize(
        "p,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (1024, 10), (12288, 14)]
    )
    def test_tree_depth(self, p, expected):
        assert CollectiveModel(UNIT, p).rounds == expected

    def test_invalid_size(self):
        with pytest.raises(CostModelError):
            CollectiveModel(UNIT, 0)


class TestAllreduce:
    def test_singleton_free(self):
        c = CollectiveModel(UNIT, 1).allreduce(100)
        assert c.messages == 0 and c.words == 0 and c.seconds == 0

    def test_paper_model(self):
        # ceil(log2 P) * (alpha + beta*w)
        P, w = 8, 10.0
        c = CollectiveModel(UNIT, P).allreduce(w)
        assert c.messages == 3
        assert c.words == 3 * w
        assert c.seconds == pytest.approx(3 * (1.0 + w))

    def test_latency_scales_logarithmically(self):
        t1 = CollectiveModel(CRAY_XC30, 1024).allreduce(1.0).seconds
        t2 = CollectiveModel(CRAY_XC30, 1024 * 1024).allreduce(1.0).seconds
        assert t2 == pytest.approx(2 * t1)

    def test_reduce_and_bcast_match_tree(self):
        m = CollectiveModel(UNIT, 16)
        assert m.reduce(5.0).seconds == m.bcast(5.0).seconds == m.allreduce(5.0).seconds


class TestOthers:
    def test_allgather_total_words(self):
        m = CollectiveModel(UNIT, 4)
        c = m.allgather(10.0)
        assert c.words == 30.0  # (P-1) * w
        assert c.messages == 2

    def test_allgather_singleton(self):
        c = CollectiveModel(UNIT, 1).allgather(10.0)
        assert c.seconds == 0

    def test_barrier_is_zero_words(self):
        c = CollectiveModel(UNIT, 8).barrier()
        assert c.words == 0 and c.messages == 3

    def test_point_to_point(self):
        c = CollectiveModel(UNIT, 2).point_to_point(7.0)
        assert c.messages == 1 and c.seconds == pytest.approx(8.0)
        assert CollectiveModel(UNIT, 1).point_to_point(7.0).messages == 0
