"""Tests for the distributed matrices — the paper's communication kernels."""

import numpy as np
import pytest

from conftest import dense_of
from repro.errors import PartitionError
from repro.linalg.distmatrix import ColPartitionedMatrix, RowPartitionedMatrix
from repro.linalg.partition import block_partition
from repro.machine.spec import CRAY_XC30
from repro.mpi.thread_backend import spmd_run
from repro.mpi.virtual_backend import VirtualComm


class TestRowPartitioned:
    @pytest.mark.parametrize("P", [1, 2, 3, 4])
    def test_gram_and_project_matches_dense(self, small_regression, P):
        A, b, _ = small_regression
        Ad = dense_of(A)
        idx = np.array([1, 5, 7, 20])

        def fn(comm, rank):
            M = RowPartitionedMatrix.from_global(A, comm)
            lo, hi = M.partition.range_of(rank)
            S = M.sample_columns(idx)
            return M.gram_and_project(S, [b[lo:hi]])

        res = spmd_run(fn, P)
        Sref = Ad[:, idx]
        for G, R in res.values:
            assert np.allclose(G, Sref.T @ Sref)
            assert np.allclose(R[:, 0], Sref.T @ b)

    def test_gram_unsymmetric_pack_same_result(self, small_regression):
        A, b, _ = small_regression
        comm = VirtualComm(1)
        M = RowPartitionedMatrix.from_global(A, comm)
        S = M.sample_columns(np.array([0, 3]))
        G1, R1 = M.gram_and_project(S, [b], symmetric=True)
        # outputs live in reusable buffers: copy before the next collective
        G1, R1 = G1.copy(), R1.copy()
        G2, R2 = M.gram_and_project(S, [b], symmetric=False)
        assert np.allclose(G1, G2) and np.allclose(R1, R2)

    def test_gram_output_buffers_reused(self, small_regression):
        """Steady state: repeated same-shape Gram collectives allocate
        no new output arrays (the ROADMAP 'out=' follow-up)."""
        A, b, _ = small_regression
        M = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        idx = np.array([1, 4, 9])
        S = M.sample_columns(idx)
        G1, R1 = M.gram_and_project(S, [b])
        want_g, want_r = G1.copy(), R1.copy()
        S = M.sample_columns(idx)
        G2, R2 = M.gram_and_project(S, [b])
        assert G2 is G1 and R2 is R1
        assert np.array_equal(G2, want_g) and np.array_equal(R2, want_r)
        # shape change reallocates, then the new shape is steady again
        S3 = M.sample_columns(np.array([0, 2]))
        G3, _ = M.gram_and_project(S3, [b])
        assert G3 is not G1 and G3.shape == (2, 2)

    def test_symmetric_pack_sends_fewer_words(self, small_regression):
        A, b, _ = small_regression
        idx = np.arange(10)

        def run(symmetric):
            comm = VirtualComm(64, machine=CRAY_XC30)
            M = RowPartitionedMatrix.from_global(A, comm)
            S = M.sample_columns(idx)
            M.gram_and_project(S, [b], symmetric=symmetric)
            return comm.ledger.words

        assert run(True) < run(False)

    def test_no_vectors(self, small_regression):
        A, _, _ = small_regression
        M = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        S = M.sample_columns(np.array([2]))
        G, R = M.gram_and_project(S, [])
        assert G.shape == (1, 1) and R.shape == (1, 0)

    def test_matvec_local(self, small_regression):
        A, _, _ = small_regression
        Ad = dense_of(A)
        x = np.arange(A.shape[1], dtype=float)

        def fn(comm, rank):
            M = RowPartitionedMatrix.from_global(A, comm)
            return M.gather_rows(M.matvec_local(x))

        res = spmd_run(fn, 3)
        for v in res.values:
            assert np.allclose(v, Ad @ x)

    def test_apply_column_update(self, small_regression):
        A, _, _ = small_regression
        Ad = dense_of(A)
        M = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        idx = np.array([0, 4])
        S = M.sample_columns(idx)
        out = np.zeros(A.shape[0])
        delta = np.array([2.0, -1.0])
        M.apply_column_update(S, delta, out)
        assert np.allclose(out, Ad[:, idx] @ delta)

    def test_dot_and_norm_partitioned(self, small_regression):
        A, b, _ = small_regression

        def fn(comm, rank):
            M = RowPartitionedMatrix.from_global(A, comm)
            lo, hi = M.partition.range_of(rank)
            return M.norm2_partitioned(b[lo:hi])

        res = spmd_run(fn, 4)
        for v in res.values:
            assert v == pytest.approx(float(b @ b))

    def test_dense_input(self, dense_regression):
        A, b, _ = dense_regression
        M = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        assert not M.is_sparse
        S = M.sample_columns(np.array([1, 2]))
        G, R = M.gram_and_project(S, [b])
        assert np.allclose(G, A[:, [1, 2]].T @ A[:, [1, 2]])

    def test_partition_mismatch_rejected(self, small_regression):
        A, _, _ = small_regression
        bad = block_partition(A.shape[0] + 1, 1)
        with pytest.raises(PartitionError):
            RowPartitionedMatrix.from_global(A, VirtualComm(1), partition=bad)


class TestColPartitioned:
    @pytest.mark.parametrize("P", [1, 2, 4])
    def test_gram_rows_matches_dense(self, small_classification, P):
        A, b = small_classification
        Ad = dense_of(A)
        idx = np.array([3, 9, 11])
        n = A.shape[1]
        x_full = np.linspace(-1, 1, n)

        def fn(comm, rank):
            M = ColPartitionedMatrix.from_global(A, comm)
            lo, hi = M.partition.range_of(rank)
            Y = M.sample_rows(idx)
            return M.gram_rows_and_project(Y, x_full[lo:hi])

        res = spmd_run(fn, P)
        Yref = Ad[idx, :]
        for G, xp in res.values:
            assert np.allclose(G, Yref @ Yref.T)
            assert np.allclose(xp, Yref @ x_full)

    def test_apply_row_update(self, small_classification):
        A, _ = small_classification
        Ad = dense_of(A)
        M = ColPartitionedMatrix.from_global(A, VirtualComm(1))
        idx = np.array([1, 2])
        Y = M.sample_rows(idx)
        x = np.zeros(A.shape[1])
        coeffs = np.array([0.5, -2.0])
        M.apply_row_update(Y, coeffs, x)
        assert np.allclose(x, Ad[idx, :].T @ coeffs)

    def test_matvec_full(self, small_classification):
        A, _ = small_classification
        Ad = dense_of(A)
        n = A.shape[1]
        x_full = np.arange(n, dtype=float)

        def fn(comm, rank):
            M = ColPartitionedMatrix.from_global(A, comm)
            lo, hi = M.partition.range_of(rank)
            return M.matvec_full(x_full[lo:hi])

        res = spmd_run(fn, 3)
        for v in res.values:
            assert np.allclose(v, Ad @ x_full)

    def test_gather_cols_roundtrip(self, small_classification):
        A, _ = small_classification
        n = A.shape[1]
        x_full = np.arange(n, dtype=float)

        def fn(comm, rank):
            M = ColPartitionedMatrix.from_global(A, comm)
            lo, hi = M.partition.range_of(rank)
            return M.gather_cols(x_full[lo:hi])

        res = spmd_run(fn, 4)
        for v in res.values:
            assert np.array_equal(v, x_full)

    def test_dense_input(self, dense_classification):
        A, _ = dense_classification
        M = ColPartitionedMatrix.from_global(A, VirtualComm(1))
        Y = M.sample_rows(np.array([0]))
        G, xp = M.gram_rows_and_project(Y, np.zeros(A.shape[1]))
        assert G[0, 0] == pytest.approx(float(A[0] @ A[0]))

    def test_dot_with_x(self, small_classification):
        A, _ = small_classification
        Ad = dense_of(A)
        M = ColPartitionedMatrix.from_global(A, VirtualComm(1))
        Y = M.sample_rows(np.array([5]))
        x = np.ones(A.shape[1])
        out = M.dot_with_x(Y, x)
        assert np.allclose(out, Ad[[5], :] @ x)


class TestCostAccounting:
    def test_gram_charges_blas3_for_blocks(self, small_regression):
        A, b, _ = small_regression
        comm = VirtualComm(1, machine=CRAY_XC30)
        M = RowPartitionedMatrix.from_global(A, comm)
        S = M.sample_columns(np.arange(8))
        M.gram_and_project(S, [b])
        assert comm.ledger.by_kind.get("blas3", 0) > 0

    def test_single_column_charges_blas1(self, small_regression):
        A, b, _ = small_regression
        comm = VirtualComm(1, machine=CRAY_XC30)
        M = RowPartitionedMatrix.from_global(A, comm)
        S = M.sample_columns(np.array([0]))
        M.gram_and_project(S, [b])
        assert comm.ledger.by_kind.get("blas1", 0) > 0
        assert comm.ledger.by_kind.get("blas3", 0) == 0

    def test_sampling_charges_gather(self, small_regression):
        A, _, _ = small_regression
        comm = VirtualComm(1, machine=CRAY_XC30)
        M = RowPartitionedMatrix.from_global(A, comm)
        M.sample_columns(np.array([0, 1]))
        assert comm.ledger.by_kind.get("gather", 0) > 0
