"""Backend-agnostic SPMD collective contract suite.

Every SPMD backend (thread ranks, forked process ranks) must satisfy the
identical contract: deterministic rank-ordered folds, SPMD-mismatch
detection, failure propagation, cost plumbing, and the nonblocking
``Iallreduce`` semantics. The mixins below carry the tests; each backend
test module subclasses them with a concrete ``run`` (``spmd_run`` or
``process_spmd_run``), so a new backend inherits the whole suite.
"""

import numpy as np
import pytest

from repro.errors import CommAborted, CommError, RankMismatchError
from repro.machine.spec import CRAY_XC30
from repro.mpi.ops import MAX, SUM


class ObjectCollectivesSuite:
    run = None  # staticmethod(spmd_run-compatible) set by subclasses

    def test_allreduce_scalar(self):
        res = self.run(lambda comm, r: comm.allreduce(r + 1), 4)
        assert res.values == [10, 10, 10, 10]

    def test_allreduce_max(self):
        res = self.run(lambda comm, r: comm.allreduce(r, op=MAX), 3)
        assert res.values == [2, 2, 2]

    def test_bcast_from_nonzero_root(self):
        def fn(comm, r):
            return comm.bcast({"v": 42} if r == 2 else None, root=2)

        res = self.run(fn, 4)
        assert all(v == {"v": 42} for v in res.values)

    def test_gather_only_root(self):
        res = self.run(lambda comm, r: comm.gather(r * r, root=1), 3)
        assert res.values[0] is None
        assert res.values[1] == [0, 1, 4]
        assert res.values[2] is None

    def test_allgather_order(self):
        res = self.run(lambda comm, r: comm.allgather(chr(ord("a") + r)), 3)
        assert all(v == ["a", "b", "c"] for v in res.values)

    def test_scatter(self):
        def fn(comm, r):
            objs = [10, 20, 30] if r == 0 else None
            return comm.scatter(objs, root=0)

        res = self.run(fn, 3)
        assert res.values == [10, 20, 30]

    def test_scatter_wrong_count(self):
        def fn(comm, r):
            return comm.scatter([1] if r == 0 else None, root=0)

        with pytest.raises(CommError):
            self.run(fn, 2)

    def test_reduce_to_root(self):
        res = self.run(lambda comm, r: comm.reduce(r + 1, op=SUM, root=0), 4)
        assert res.values[0] == 10 and res.values[1] is None

    def test_barrier_completes(self):
        res = self.run(lambda comm, r: (comm.barrier(), r)[1], 4)
        assert res.values == [0, 1, 2, 3]

    def test_invalid_root(self):
        with pytest.raises(CommError):
            self.run(lambda comm, r: comm.bcast(1, root=5), 2)


class BufferCollectivesSuite:
    run = None

    def test_Allreduce_sum(self):
        def fn(comm, r):
            return comm.Allreduce(np.full(4, float(r)))

        res = self.run(fn, 3)
        for v in res.values:
            assert np.array_equal(v, np.full(4, 3.0))

    def test_Allreduce_identical_across_ranks(self):
        # bitwise identical results on every rank (deterministic fold)
        def fn(comm, r):
            rng = np.random.default_rng(r)
            return comm.Allreduce(rng.standard_normal(100))

        res = self.run(fn, 4)
        for v in res.values[1:]:
            assert np.array_equal(res.values[0], v)

    def test_Allreduce_deterministic_across_runs(self):
        def fn(comm, r):
            rng = np.random.default_rng(r)
            return comm.Allreduce(rng.standard_normal(50))

        a = self.run(fn, 4).values[0]
        b = self.run(fn, 4).values[0]
        assert np.array_equal(a, b)

    def test_Bcast(self):
        def fn(comm, r):
            buf = np.arange(3.0) if r == 0 else np.zeros(3)
            return comm.Bcast(buf, root=0)

        res = self.run(fn, 3)
        for v in res.values:
            assert np.array_equal(v, np.arange(3.0))

    def test_Reduce(self):
        def fn(comm, r):
            return comm.Reduce(np.ones(2), root=1)

        res = self.run(fn, 3)
        assert res.values[0] is None
        assert np.array_equal(res.values[1], 3 * np.ones(2))

    def test_Allgather_concatenates(self):
        def fn(comm, r):
            return comm.Allgather(np.full(2, float(r)))

        res = self.run(fn, 3)
        assert np.array_equal(res.values[0], [0, 0, 1, 1, 2, 2])


class NonblockingSuite:
    """Contract of ``Iallreduce``: blocking-identical values, overlap
    accounting, ring reuse, out= landing, mismatch detection."""

    run = None

    def test_matches_blocking_bitwise(self):
        def fn(comm, r):
            rng = np.random.default_rng(r)
            a = rng.standard_normal(64)
            blocking = comm.Allreduce(a)
            nb = comm.Iallreduce(a).wait()
            assert np.array_equal(blocking, nb)
            return nb

        res = self.run(fn, 4)
        for v in res.values[1:]:
            assert np.array_equal(res.values[0], v)

    def test_out_buffer_and_ring_reuse(self):
        def fn(comm, r):
            outs = []
            out = np.empty(8)
            for k in range(5):  # > ring depth: slots must recycle
                req = comm.Iallreduce(np.full(8, float(r + k)), out=out)
                got = req.wait()
                assert got is out
                outs.append(float(out[0]))
            return outs

        res = self.run(fn, 3)
        assert res.values[0] == res.values[1] == res.values[2]
        assert res.values[0] == [3.0, 6.0, 9.0, 12.0, 15.0]

    def test_two_in_flight(self):
        def fn(comm, r):
            r1 = comm.Iallreduce(np.full(4, 1.0))
            r2 = comm.Iallreduce(np.full(4, 2.0))
            return float(r1.wait()[0]), float(r2.wait()[0])

        res = self.run(fn, 3)
        assert all(v == (3.0, 6.0) for v in res.values)

    def test_test_polls_to_completion(self):
        def fn(comm, r):
            req = comm.Iallreduce(np.full(2, 1.0))
            while not req.test():
                pass
            assert req.completed
            return float(req.wait()[0])  # idempotent after test()

        res = self.run(fn, 2)
        assert res.values == [2.0, 2.0]

    def test_overlap_charges_only_remainder(self):
        def fn(comm, r):
            req = comm.Iallreduce(np.ones(1024))
            comm.account_flops(1e12, "blas3")  # plenty of overlap
            req.wait()
            comm.Allreduce(np.ones(1024))  # blocking reference charge
            return (comm.ledger.comm_seconds, comm.ledger.comm_seconds_hidden,
                    comm.ledger.messages)

        res = self.run(fn, 4, machine=CRAY_XC30)
        comm_s, hidden, messages = res.values[0]
        # the nonblocking call was fully hidden; only the blocking one
        # paid comm_seconds, but both were charged their messages
        assert hidden > 0.0
        assert comm_s == pytest.approx(hidden)
        assert messages == 4  # 2 per allreduce at P=4

    def test_mismatched_nonblocking_detected(self):
        def fn(comm, r):
            if r == 0:
                return comm.Iallreduce(np.ones(2)).wait()
            return comm.Iallreduce(np.ones(3)).wait()

        # payload shapes differ; op.fold broadcasts or raises — either
        # way the SPMD program is wrong and must not hang
        with pytest.raises((RankMismatchError, CommAborted, ValueError)):
            self.run(fn, 2)


class FailureModesSuite:
    run = None

    def test_exception_propagates(self):
        def fn(comm, r):
            if r == 1:
                raise ValueError("rank 1 blew up")
            comm.barrier()  # would deadlock without abort
            return r

        with pytest.raises(ValueError, match="rank 1 blew up"):
            self.run(fn, 3)

    def test_mismatched_collectives_detected(self):
        def fn(comm, r):
            if r == 0:
                comm.allreduce(1)
            else:
                comm.barrier()

        with pytest.raises((RankMismatchError, CommAborted)):
            self.run(fn, 2)

    def test_size_one_works(self):
        res = self.run(lambda comm, r: comm.allreduce(5), 1)
        assert res.values == [5]


class CostPlumbingSuite:
    run = None

    def test_ledgers_returned_per_rank(self):
        def fn(comm, r):
            comm.Allreduce(np.ones(8))
            comm.account_flops(100, "blas1")

        res = self.run(fn, 4, machine=CRAY_XC30)
        assert len(res.ledgers) == 4
        for led in res.ledgers:
            assert led.messages == 2  # ceil(log2 4)
            assert led.flops == 100

    def test_cost_size_overrides(self):
        def fn(comm, r):
            assert comm.size == 2 and comm.cost_size == 1024
            comm.Allreduce(np.ones(1))

        res = self.run(fn, 2, machine=CRAY_XC30, cost_size=1024)
        assert res.ledgers[0].messages == 10

    def test_cost_size_smaller_than_size_rejected(self):
        with pytest.raises(CommError):
            self.run(lambda comm, r: None, 4, cost_size=2)

    def test_flops_divided_by_virtualization(self):
        def fn(comm, r):
            comm.account_flops(1000.0)

        res = self.run(fn, 2, cost_size=8)
        # each real rank stands for 4 virtual ranks
        assert res.ledgers[0].flops == pytest.approx(250.0)
