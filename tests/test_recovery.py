"""Supervised rank recovery: worker pool, checkpoint replay, e2e solves.

Three layers, all on the process backend (the only one whose ranks can
die independently):

* **supervisor unit tests** — the recovery loop respawns dead ranks up
  to ``max_recoveries`` and then raises the original
  :class:`~repro.errors.RankDiedError`; ``recover="raise"`` (the
  default) keeps the PR-6 detect-and-abort behaviour untouched.
* **checkpoint replay** — a rank death mid-run resumes from the latest
  collected checkpoint (``replayed_iterations`` counts what was saved),
  and the recovered value equals the fault-free one.
* **end-to-end solver matrix** — every SA solver family (lasso plain /
  accelerated, SVM dual CD), blocking and pipelined, survives an
  injected ``die`` under ``recover="checkpoint"`` and matches the
  fault-free solve, with the recovery counters on the result's cost
  snapshot and no orphaned worker processes left behind.
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.errors import CommError, RankDiedError
from repro.faults import FaultEvent, FaultPlan, FaultyComm
from repro.machine.spec import CRAY_XC30
from repro.mpi.process_backend import WorkerPool, process_spmd_run
from repro.solvers.lasso import sa_acc_bcd, sa_bcd
from repro.solvers.svm import sa_dcd

SIZE = 2
N_ITER = 10


def _assert_no_orphans(timeout: float = 10.0) -> None:
    """Every forked rank must be reaped once the run returns."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        kids = [p for p in multiprocessing.active_children()
                if p.name.startswith("spmd-proc")]
        if not kids:
            return
        time.sleep(0.05)
    raise AssertionError(f"orphaned SPMD workers: {kids}")


def _accumulating_work(die_at=None):
    """A resumable 10-step allreduce accumulation.

    Checkpoints every step through the recovery context; ``die_at``
    hard-kills rank 1 at that step on the first attempt only, so the
    replayed attempt must pick up from the last shipped checkpoint.
    """

    def work(comm, rank):
        ctx = comm.recovery
        start, acc = 0, 0.0
        if ctx is not None and ctx.resume is not None:
            start = int(ctx.resume["iteration"]) + 1
            acc = float(ctx.resume["acc"])
        for i in range(start, N_ITER):
            if (die_at is not None and rank == 1 and i == die_at
                    and ctx is not None and ctx.recoveries == 0):
                os._exit(13)
            acc += comm.allreduce(float(rank + 1) * (i + 1))
            if ctx is not None:
                ctx.save({"iteration": i, "acc": acc})
        return acc

    return work


class TestSupervisor:
    """The recovery loop itself: caps, raise-mode preservation, reuse."""

    def test_raise_mode_preserved_on_death(self):
        """recover="raise" (the default) keeps detect-and-abort: a dead
        rank surfaces as RankDiedError, exactly as before this PR."""
        with pytest.raises(RankDiedError):
            process_spmd_run(_accumulating_work(die_at=4), SIZE)
        _assert_no_orphans()

    def test_checkpoint_mode_recovers_and_matches(self):
        oracle = process_spmd_run(_accumulating_work(), SIZE)
        res = process_spmd_run(
            _accumulating_work(die_at=4), SIZE,
            recover="checkpoint", max_recoveries=2,
        )
        assert res.values == oracle.values
        for led in res.ledgers:
            assert led.recoveries == 1
            assert led.respawns >= 1
            assert led.replayed_iterations > 0
        for led in oracle.ledgers:
            assert led.recoveries == 0
            assert led.respawns == 0
            assert led.replayed_iterations == 0
        _assert_no_orphans()

    def test_exhausted_recoveries_raise_original_error(self):
        """A rank that dies on every attempt exhausts the cap and the
        original RankDiedError comes out, not a recovery artifact."""

        def always_dies(comm, rank):
            if rank == 1:
                os._exit(13)
            return comm.allreduce(1.0)

        with pytest.raises(RankDiedError):
            process_spmd_run(always_dies, SIZE,
                             recover="checkpoint", max_recoveries=1)
        _assert_no_orphans()

    def test_cap_is_per_run_not_per_death(self):
        """Two deaths on separate attempts fit under max_recoveries=2."""

        def dies_twice(comm, rank):
            ctx = comm.recovery
            if rank == 1 and ctx is not None and ctx.recoveries < 2:
                os._exit(13)
            return comm.allreduce(float(rank))

        res = process_spmd_run(dies_twice, SIZE,
                               recover="checkpoint", max_recoveries=2)
        assert res.values == [1.0] * SIZE
        assert all(led.recoveries == 2 for led in res.ledgers)
        _assert_no_orphans()

    def test_bad_recover_value_rejected(self):
        with pytest.raises(CommError):
            process_spmd_run(_accumulating_work(), SIZE, recover="retry")

    def test_injected_die_via_faultplan_recovers(self):
        """The faults-module ``die`` kind (os._exit inside a collective)
        drives the same supervisor path as a raw exit."""
        def make_work(plan):
            def work(comm, rank):
                ctx = comm.recovery
                wcomm = comm
                if plan is not None and ctx.recoveries == 0:
                    wcomm = FaultyComm(comm, plan)
                total = 0.0
                for i in range(6):
                    total += wcomm.allreduce(float(rank + i))
                return total

            return work

        plan = FaultPlan([FaultEvent(1, 3, "die")])
        oracle = process_spmd_run(make_work(None), SIZE)
        res = process_spmd_run(make_work(plan), SIZE, recover="checkpoint")
        assert res.values == oracle.values
        assert all(led.recoveries == 1 for led in res.ledgers)
        _assert_no_orphans()


class TestWorkerPool:
    """The persistent pool: job reuse, respawn, clean shutdown."""

    def test_sequential_jobs_reuse_workers(self):
        def job(k):
            def work(comm, rank):
                return comm.allreduce(float(rank + 1)) * k

            return work

        with WorkerPool(SIZE, machine=None, cost_size=SIZE) as pool:
            for k in (1, 2, 3):
                res = pool.run(job(k))
                assert res.values == [3.0 * k] * SIZE
        _assert_no_orphans()

    def test_pool_survives_recovery_then_runs_next_job(self):
        """A recovered job leaves the pool healthy for the next one."""
        with WorkerPool(SIZE, machine=None, cost_size=SIZE) as pool:
            res = pool.run(_accumulating_work(die_at=3),
                           recover="checkpoint", max_recoveries=2)
            clean = pool.run(_accumulating_work())
            assert res.values == clean.values
            assert all(led.recoveries == 0 for led in clean.ledgers)
        _assert_no_orphans()

    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(SIZE, machine=None, cost_size=SIZE)
        pool.run(lambda comm, rank: comm.allreduce(1.0))
        pool.shutdown()
        pool.shutdown()
        _assert_no_orphans()


def _lasso_problem():
    rng = np.random.default_rng(7)
    A = rng.standard_normal((24, 12))
    b = rng.standard_normal(24)
    return A, b


def _svm_problem():
    rng = np.random.default_rng(11)
    A = rng.standard_normal((24, 8))
    b = np.where(rng.random(24) < 0.5, -1.0, 1.0)
    return A, b


def _solver_work(family, pipeline, plan):
    """One SA solve with recovery-context checkpointing, optionally
    fault-injected on the first attempt only."""

    def work(comm, rank):
        ctx = comm.recovery
        if ctx is not None and ctx.active:
            ck_every = 4
            ck_sink = ctx.save
            ck_resume = ctx.resume
        else:
            ck_every, ck_sink, ck_resume = 0, None, None
        wcomm = comm
        if plan is not None and (ctx is None or ctx.recoveries == 0):
            wcomm = FaultyComm(comm, plan)
        kwargs = dict(
            s=4, max_iter=24, seed=0, comm=wcomm, record_every=4,
            pipeline=pipeline, checkpoint_every=ck_every,
            checkpoint_sink=ck_sink, resume_from=ck_resume,
        )
        if family == "sa-bcd":
            A, b = _lasso_problem()
            res = sa_bcd(A, b, 0.05, mu=2, **kwargs)
        elif family == "sa-accbcd":
            A, b = _lasso_problem()
            res = sa_acc_bcd(A, b, 0.05, mu=2, **kwargs)
        else:
            A, b = _svm_problem()
            res = sa_dcd(A, b, loss="l2", lam=1.0, **kwargs)
        return {"x": np.asarray(res.x), "metric": float(res.final_metric),
                "cost": res.cost}

    return work


class TestSolverRecoveryMatrix:
    """Acceptance matrix: each SA solver family x blocking/pipelined
    completes under an injected mid-solve rank death with
    recover="checkpoint", matches the fault-free solve to 1e-9, carries
    recoveries > 0 on its cost snapshot, and leaves no orphans."""

    FAMILIES = ("sa-bcd", "sa-accbcd", "sa-svm")

    @pytest.mark.parametrize("pipeline", (False, True),
                             ids=("blocking", "pipelined"))
    @pytest.mark.parametrize("family", FAMILIES)
    def test_die_recover_matches_fault_free(self, family, pipeline):
        plan = FaultPlan([FaultEvent(1, 9, "die")])
        oracle = process_spmd_run(
            _solver_work(family, pipeline, None), SIZE, machine=CRAY_XC30,
        )
        res = process_spmd_run(
            _solver_work(family, pipeline, plan), SIZE, machine=CRAY_XC30,
            recover="checkpoint", max_recoveries=2,
        )
        for r in range(SIZE):
            want, got = oracle.values[r], res.values[r]
            assert np.max(np.abs(got["x"] - want["x"])) <= 1e-9
            assert abs(got["metric"] - want["metric"]) <= 1e-9
            assert got["cost"].recoveries >= 1
            assert got["cost"].respawns >= 1
            assert want["cost"].recoveries == 0
        _assert_no_orphans()

    @pytest.mark.parametrize("family", FAMILIES)
    def test_raise_mode_unchanged(self, family):
        """The same injected death under the default recover="raise"
        still raises RankDiedError — opting out is bit-for-bit PR-6."""
        plan = FaultPlan([FaultEvent(1, 9, "die")])
        with pytest.raises(RankDiedError):
            process_spmd_run(
                _solver_work(family, False, plan), SIZE, machine=CRAY_XC30,
            )
        _assert_no_orphans()
