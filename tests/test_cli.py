"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.datasets import make_sparse_regression, save_libsvm


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_lasso_defaults(self):
        args = build_parser().parse_args(["lasso", "--dataset", "covtype"])
        assert args.solver == "sa-accbcd" and args.s == 16

    def test_dataset_and_file_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["lasso", "--dataset", "covtype", "--file", "x.svm"]
            )

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lasso", "--dataset", "mnist"])


class TestLassoPathCommand:
    def test_path_defaults(self):
        args = build_parser().parse_args(["lasso-path", "--dataset", "news20"])
        assert args.n_lambdas == 16 and args.parity == "exact" and not args.cold

    def test_path_on_file(self, tmp_path, capsys):
        A, b, _ = make_sparse_regression(60, 25, density=0.4, seed=1)
        path = tmp_path / "data.svm"
        save_libsvm(path, A, b)
        rc = main(["lasso-path", "--file", str(path), "--n-lambdas", "4",
                   "--mu", "2", "--s", "4", "--max-iter", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "regularization path" in out and "total iterations" in out
        assert "warm-started" in out

    def test_path_cold_and_parity(self, tmp_path, capsys):
        A, b, _ = make_sparse_regression(50, 20, density=0.4, seed=2)
        path = tmp_path / "data.svm"
        save_libsvm(path, A, b)
        rc = main(["lasso-path", "--file", str(path), "--n-lambdas", "3",
                   "--mu", "2", "--s", "4", "--max-iter", "40", "--cold",
                   "--parity", "fp-tolerant"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cold (shared caches)" in out and "fp-tolerant" in out

    def test_path_virtual_p(self, tmp_path, capsys):
        A, b, _ = make_sparse_regression(50, 20, density=0.4, seed=3)
        path = tmp_path / "data.svm"
        save_libsvm(path, A, b)
        rc = main(["lasso-path", "--file", str(path), "--n-lambdas", "3",
                   "--mu", "2", "--s", "4", "--max-iter", "40", "--p", "64"])
        assert rc == 0
        assert "total modelled time at P=64" in capsys.readouterr().out


class TestCommands:
    def test_lasso_on_registry(self, capsys):
        rc = main(["lasso", "--dataset", "covtype", "--cells", "5000",
                   "--max-iter", "30", "--s", "4", "--record-every", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "final objective" in out and "non-zeros" in out

    def test_lasso_on_libsvm_file(self, tmp_path, capsys):
        A, b, _ = make_sparse_regression(30, 15, density=0.4, seed=0)
        path = tmp_path / "data.svm"
        save_libsvm(path, A, b)
        rc = main(["lasso", "--file", str(path), "--max-iter", "20",
                   "--mu", "2", "--s", "4", "--record-every", "5"])
        assert rc == 0
        assert "final objective" in capsys.readouterr().out

    def test_lasso_save_result(self, tmp_path, capsys):
        out_path = tmp_path / "res.json"
        rc = main(["lasso", "--dataset", "leu", "--cells", "4000",
                   "--max-iter", "20", "--s", "4", "--save", str(out_path)])
        assert rc == 0
        data = json.loads(out_path.read_text())
        assert data["solver"].startswith("sa-accbcd")

    def test_svm(self, capsys):
        rc = main(["svm", "--dataset", "gisette", "--cells", "5000",
                   "--max-iter", "100", "--s", "16", "--record-every", "50"])
        assert rc == 0
        assert "duality gap" in capsys.readouterr().out

    def test_svm_loss_override(self, capsys):
        rc = main(["svm", "--dataset", "w1a", "--cells", "4000",
                   "--max-iter", "50", "--loss", "l2", "--record-every", "25"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sa-svm-l2" in out

    def test_scaling(self, capsys):
        rc = main(["scaling", "--dataset", "covtype", "--cells", "5000",
                   "--ps", "64,256", "--max-iter", "16", "--s", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "256" in out

    def test_plan(self, capsys):
        rc = main(["plan", "--dataset", "url", "--p", "12288"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recommended s" in out

    def test_error_reported_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.svm"
        bad.write_text("not a libsvm line\n")
        rc = main(["lasso", "--file", str(bad), "--max-iter", "5"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err
