"""Tests for repro.utils.validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import SolverError
from repro.utils.validation import (
    as_float64_array,
    check_dense_or_csr,
    check_in_range,
    check_positive,
    check_vector,
    is_sparse,
    nnz_of,
)


class TestCheckDenseOrCsr:
    def test_dense_passthrough(self):
        A = check_dense_or_csr([[1.0, 2.0], [3.0, 4.0]])
        assert isinstance(A, np.ndarray) and A.dtype == np.float64

    def test_sparse_to_csr(self):
        A = check_dense_or_csr(sp.coo_matrix(np.eye(3)))
        assert sp.issparse(A) and A.format == "csr"

    def test_sparse_dtype_coerced(self):
        A = check_dense_or_csr(sp.csr_matrix(np.eye(3, dtype=np.float32)))
        assert A.dtype == np.float64

    def test_1d_rejected(self):
        with pytest.raises(SolverError):
            check_dense_or_csr(np.arange(4.0))

    def test_nan_rejected(self):
        with pytest.raises(SolverError):
            check_dense_or_csr(np.array([[np.nan, 1.0]]))

    def test_duplicates_summed(self):
        A = sp.coo_matrix(([1.0, 2.0], ([0, 0], [0, 0])), shape=(1, 1))
        out = check_dense_or_csr(A)
        assert out[0, 0] == 3.0


class TestCheckVector:
    def test_accepts_list(self):
        v = check_vector([1, 2, 3], 3)
        assert v.dtype == np.float64

    def test_wrong_length(self):
        with pytest.raises(SolverError):
            check_vector([1, 2], 3)

    def test_inf_rejected(self):
        with pytest.raises(SolverError):
            check_vector([1.0, np.inf], 2)


class TestScalarChecks:
    def test_positive_ok(self):
        assert check_positive(2.5, "x") == 2.5

    def test_zero_rejected_strict(self):
        with pytest.raises(SolverError):
            check_positive(0.0, "x")

    def test_zero_ok_nonstrict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_in_range(self):
        assert check_in_range(3, 1, 5, "k") == 3
        with pytest.raises(SolverError):
            check_in_range(6, 1, 5, "k")


class TestHelpers:
    def test_nnz_of_sparse(self):
        assert nnz_of(sp.eye(4, format="csr")) == 4

    def test_nnz_of_dense(self):
        assert nnz_of(np.zeros((2, 3))) == 6

    def test_is_sparse(self):
        assert is_sparse(sp.eye(2)) and not is_sparse(np.eye(2))

    def test_as_float64(self):
        out = as_float64_array([1, 2])
        assert out.dtype == np.float64 and out.flags["C_CONTIGUOUS"]
