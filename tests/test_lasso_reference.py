"""Tests for the sequential reference solvers (ISTA/FISTA/CD mirror)."""

import numpy as np
import pytest

from repro.solvers.lasso.reference import (
    coordinate_descent_reference,
    fista,
    ista,
    lipschitz_constant,
)
from repro.solvers.objectives import lasso_objective, sigma_max


class TestLipschitz:
    def test_dense(self, dense_regression):
        A, _, _ = dense_regression
        assert lipschitz_constant(A) == pytest.approx(sigma_max(A) ** 2, rel=1e-6)

    def test_sparse(self, small_regression):
        A, _, _ = small_regression
        assert lipschitz_constant(A) == pytest.approx(sigma_max(A) ** 2, rel=1e-6)


class TestIsta:
    def test_monotone_decrease(self, small_regression):
        A, b, _ = small_regression
        _, trace = ista(A, b, 0.9, max_iter=200)
        assert all(t2 <= t1 + 1e-10 for t1, t2 in zip(trace, trace[1:], strict=False))

    def test_fista_not_slower(self, small_regression):
        A, b, _ = small_regression
        _, ti = ista(A, b, 0.9, max_iter=300)
        _, tf = fista(A, b, 0.9, max_iter=300)
        assert tf[-1] <= ti[-1] * 1.01

    def test_tol_early_stop(self, small_regression):
        A, b, _ = small_regression
        _, trace = ista(A, b, 0.9, max_iter=10000, tol=1e-12)
        assert len(trace) < 10001

    def test_zero_lambda_solves_least_squares(self, dense_regression):
        A, b, _ = dense_regression
        x, _ = fista(A, b, 0.0, max_iter=5000)
        x_ls, *_ = np.linalg.lstsq(A, b, rcond=None)
        assert lasso_objective(A, b, x, 0.0) == pytest.approx(
            lasso_objective(A, b, x_ls, 0.0), rel=1e-4, abs=1e-8
        )

    def test_large_lambda_gives_zero(self, small_regression):
        A, b, _ = small_regression
        lam = 10 * float(np.max(np.abs(A.T @ b)))
        x, _ = ista(A, b, lam, max_iter=50)
        assert np.count_nonzero(x) == 0

    def test_warm_start(self, small_regression):
        A, b, _ = small_regression
        x1, _ = fista(A, b, 0.9, max_iter=200)
        _, trace = fista(A, b, 0.9, max_iter=5, x0=x1)
        assert trace[0] == pytest.approx(lasso_objective(A, b, x1, 0.9))


class TestCdReference:
    def test_trace_monotone(self, small_regression):
        A, b, _ = small_regression
        _, trace = coordinate_descent_reference(A, b, 0.9, mu=4, max_iter=100, seed=0)
        assert all(t2 <= t1 + 1e-10 for t1, t2 in zip(trace, trace[1:], strict=False))

    def test_reaches_neighbourhood_of_optimum(self, small_regression):
        A, b, _ = small_regression
        x, trace = coordinate_descent_reference(A, b, 0.9, mu=8, max_iter=1500, seed=0)
        _, tf = fista(A, b, 0.9, max_iter=3000)
        assert trace[-1] == pytest.approx(tf[-1], rel=1e-5)
