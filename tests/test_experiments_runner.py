"""Tests for the experiment runner (figure/table engine)."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.experiments.runner import (
    LASSO_SOLVERS,
    SVM_SOLVERS,
    load_scaled,
    run_lasso,
    run_svm,
    speedup_vs_s,
    strong_scaling,
)


@pytest.fixture(scope="module")
def covtype_ds():
    return load_scaled("covtype", target_cells=10_000, seed=0)


@pytest.fixture(scope="module")
def svm_ds():
    return load_scaled("gisette", target_cells=10_000, seed=0)


class TestLoadScaled:
    def test_caching(self, covtype_ds):
        again = load_scaled("covtype", target_cells=10_000, seed=0)
        assert again is covtype_ds

    def test_scaling_metadata(self, covtype_ds):
        assert covtype_ds.flop_scale > 1.0
        assert covtype_ds.gather_scale > 1.0
        assert covtype_ds.kind_scales["fixed"] == 1.0
        assert covtype_ds.task == "lasso"

    def test_svm_gather_scale_is_one(self, svm_ds):
        assert svm_ds.gather_scale == 1.0

    def test_lam_factor(self):
        ds = load_scaled("leu", target_cells=5_000, seed=0, lam_factor=10.0)
        assert ds.lam is not None and ds.lam > 0


class TestRunners:
    def test_all_lasso_solvers_run(self, covtype_ds):
        for name in LASSO_SOLVERS:
            res = run_lasso(covtype_ds, name, s=4, mu=2, max_iter=8, P=16,
                            record_every=0, lam=1.0)
            assert np.all(np.isfinite(res.x))

    def test_all_svm_solvers_run(self, svm_ds):
        for name in SVM_SOLVERS:
            res = run_svm(svm_ds, name, s=4, max_iter=8, P=16)
            assert np.all(np.isfinite(res.x))

    def test_unknown_solver(self, covtype_ds, svm_ds):
        with pytest.raises(SolverError):
            run_lasso(covtype_ds, "sgd")
        with pytest.raises(SolverError):
            run_svm(svm_ds, "pegasos")

    def test_sa_equivalence_through_runner(self, covtype_ds):
        r = run_lasso(covtype_ds, "acccd", max_iter=32, P=64, seed=4,
                      record_every=0, lam=1.0)
        rs = run_lasso(covtype_ds, "sa-acccd", s=8, max_iter=32, P=64, seed=4,
                       record_every=0, lam=1.0)
        assert np.allclose(r.x, rs.x, atol=1e-10)

    def test_modelled_seconds_positive(self, covtype_ds):
        res = run_lasso(covtype_ds, "cd", max_iter=16, P=1024, record_every=0,
                        lam=1.0)
        assert res.cost.seconds > 0
        assert res.cost.comm_seconds > 0


class TestSweeps:
    def test_strong_scaling_lasso(self, covtype_ds):
        pts = strong_scaling(covtype_ds, "acccd", [64, 256, 1024], max_iter=16)
        assert [p.P for p in pts] == [64, 256, 1024]
        # latency term grows with log P
        assert pts[-1].comm_seconds > pts[0].comm_seconds

    def test_strong_scaling_svm(self, svm_ds):
        pts = strong_scaling(svm_ds, "sa-svm-l1", [16, 64], s=4, max_iter=16,
                             task="svm")
        assert all(p.seconds > 0 for p in pts)
        assert all(p.s == 4 for p in pts)

    def test_speedup_vs_s_shape(self, covtype_ds):
        pts = speedup_vs_s(covtype_ds, "acccd", "sa-acccd",
                           [2, 8, 32, 256], P=1024, max_iter=256, lam=1.0)
        totals = [p.total for p in pts]
        # unimodal-ish: some s beats s=2, and very large s decays
        assert max(totals) > totals[0]
        assert totals[-1] < max(totals)

    def test_speedup_communication_monotone_until_bandwidth(self, covtype_ds):
        pts = speedup_vs_s(covtype_ds, "acccd", "sa-acccd", [2, 4, 8],
                           P=1024, max_iter=64, lam=1.0)
        comm = [p.communication for p in pts]
        assert comm[0] < comm[1] < comm[2]

    def test_sa_wins_at_scale(self, svm_ds):
        pts = speedup_vs_s(svm_ds, "svm-l1", "sa-svm-l1", [16], P=3072,
                           max_iter=64, task="svm")
        assert pts[0].total > 1.0
