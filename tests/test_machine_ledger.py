"""Tests for repro.machine.ledger."""

import pytest

from repro.errors import CostModelError
from repro.machine.collectives import CollectiveCost
from repro.machine.ledger import CostLedger, critical_path
from repro.machine.spec import CRAY_XC30


class TestCharging:
    def test_collective_accumulates(self):
        led = CostLedger()
        led.add_collective("allreduce", CollectiveCost(3, 30.0, 1e-5))
        led.add_collective("allreduce", CollectiveCost(3, 30.0, 1e-5))
        assert led.messages == 6 and led.words == 60.0
        assert led.comm_seconds == pytest.approx(2e-5)
        assert led.by_collective["allreduce"][0] == 2

    def test_flops_with_machine(self):
        led = CostLedger(machine=CRAY_XC30)
        led.add_flops(2.5e9, "blas1")
        assert led.compute_seconds == pytest.approx(1.0)
        assert led.flops == 2.5e9

    def test_flops_without_machine_counted_but_free(self):
        led = CostLedger()
        led.add_flops(1000, "blas3")
        assert led.flops == 1000 and led.compute_seconds == 0.0

    def test_divisor(self):
        led = CostLedger(machine=CRAY_XC30, flop_divisor=10.0)
        led.add_flops(100.0)
        assert led.flops == pytest.approx(10.0)

    def test_kind_scales_override_default(self):
        led = CostLedger(default_scale=100.0, kind_scales={"fixed": 1.0})
        led.add_flops(10.0, "blas1")
        led.add_flops(10.0, "fixed")
        assert led.by_kind["blas1"] == pytest.approx(1000.0)
        assert led.by_kind["fixed"] == pytest.approx(10.0)

    def test_imbalance_scales_compute_time(self):
        l1 = CostLedger(machine=CRAY_XC30)
        l2 = CostLedger(machine=CRAY_XC30, imbalance=2.0)
        l1.add_flops(1e9)
        l2.add_flops(1e9)
        assert l2.compute_seconds == pytest.approx(2 * l1.compute_seconds)

    def test_negative_flops_rejected(self):
        with pytest.raises(CostModelError):
            CostLedger().add_flops(-1)

    def test_invalid_configs(self):
        with pytest.raises(CostModelError):
            CostLedger(flop_divisor=0.0)
        with pytest.raises(CostModelError):
            CostLedger(imbalance=0.5)


class TestPausing:
    def test_paused_drops_charges(self):
        led = CostLedger(machine=CRAY_XC30)
        with led.paused():
            led.add_flops(1e9)
            led.add_collective("allreduce", CollectiveCost(1, 1.0, 1.0))
        assert led.seconds == 0.0 and led.flops == 0.0

    def test_paused_restores_state(self):
        led = CostLedger()
        with led.paused():
            pass
        led.add_flops(5.0)
        assert led.flops == 5.0

    def test_paused_nested(self):
        led = CostLedger()
        with led.paused():
            with led.paused():
                led.add_flops(1.0)
            led.add_flops(1.0)
        assert led.flops == 0.0


class TestReading:
    def test_snapshot_immutable_view(self):
        led = CostLedger(machine=CRAY_XC30)
        led.add_flops(2.5e9, "blas1")
        snap = led.snapshot()
        led.add_flops(2.5e9, "blas1")
        assert snap.compute_seconds == pytest.approx(1.0)
        assert snap.seconds == snap.comm_seconds + snap.compute_seconds

    def test_reset(self):
        led = CostLedger(machine=CRAY_XC30)
        led.add_flops(100)
        led.add_collective("bcast", CollectiveCost(1, 2.0, 3.0))
        led.reset()
        assert led.seconds == 0 and led.flops == 0 and not led.by_collective

    def test_summary_structure(self):
        led = CostLedger(machine=CRAY_XC30)
        led.add_collective("allreduce", CollectiveCost(2, 4.0, 0.5))
        s = led.summary()
        assert s["by_collective"]["allreduce"]["calls"] == 1
        assert s["messages"] == 2

    def test_critical_path_takes_slowest(self):
        l1, l2 = CostLedger(machine=CRAY_XC30), CostLedger(machine=CRAY_XC30)
        l1.add_flops(1e9)
        l2.add_flops(3e9)
        cp = critical_path([l1, l2])
        assert cp.compute_seconds == pytest.approx(l2.compute_seconds)

    def test_critical_path_empty_rejected(self):
        with pytest.raises(CostModelError):
            critical_path([])
