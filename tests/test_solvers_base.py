"""Tests for solver infrastructure (history, result, termination)."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.machine.spec import CRAY_XC30
from repro.mpi.virtual_backend import VirtualComm
from repro.solvers.base import ConvergenceHistory, Terminator


class TestConvergenceHistory:
    def test_record_reads_ledger(self):
        comm = VirtualComm(16, machine=CRAY_XC30)
        hist = ConvergenceHistory()
        hist.record(0, 10.0, comm)
        comm.Allreduce(np.ones(4))
        hist.record(1, 5.0, comm)
        assert hist.seconds[0] == 0.0
        assert hist.seconds[1] > 0.0
        assert hist.metric == [10.0, 5.0]
        assert len(hist) == 2

    def test_final_metric(self):
        comm = VirtualComm(1)
        hist = ConvergenceHistory()
        with pytest.raises(SolverError):
            _ = hist.final_metric
        hist.record(0, 3.0, comm)
        assert hist.final_metric == 3.0

    def test_as_arrays(self):
        comm = VirtualComm(1)
        hist = ConvergenceHistory("duality_gap")
        hist.record(0, 1.0, comm)
        arrs = hist.as_arrays()
        assert "duality_gap" in arrs
        assert arrs["iterations"].dtype.kind == "i"


class TestTerminator:
    def test_gap_mode(self):
        t = Terminator(100, tol=0.1, mode="gap")
        assert not t.done(0.5)
        assert t.done(0.05)

    def test_objective_mode_relative_change(self):
        t = Terminator(100, tol=1e-3, mode="objective")
        assert not t.done(100.0)  # first call: no previous value
        assert not t.done(50.0)  # 50% change
        assert t.done(50.001)  # ~2e-5 relative change

    def test_no_tol_never_done(self):
        t = Terminator(10)
        assert not t.done(0.0)

    def test_validation(self):
        with pytest.raises(SolverError):
            Terminator(0)
        with pytest.raises(SolverError):
            Terminator(10, mode="wat")
        with pytest.raises(SolverError):
            Terminator(10, tol=-1.0)
