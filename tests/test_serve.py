"""Multi-tenant serving engine: admission, deadlines, fault isolation.

Five layers:

* **traces** — loader/validator (JSON + JSONL), synthetic generator
  determinism, and the shared ``("sleep", seconds)`` schedule token in
  :func:`repro.streaming.replay_schedule`;
* **admission queue** — bounded rejection with a typed error naming
  the depth, per-tenant round-robin fairness (a saturating tenant
  cannot starve the others), append coalescing, state round-trip;
* **engine (virtual backend)** — backpressure rejections, deadline
  expiry + all-late rollback (model hash unchanged), per-tenant
  quarantine on solver faults with every other tenant untouched and
  the last-good model still serving predicts;
* **checkpoint/resume + recovery (process backend, slow)** — a rank
  death mid-refit recovers through the supervised pool and the
  non-faulted tenants end byte-identical to a fault-free run, with no
  orphaned workers;
* **ledger + CLI** — the new idle/request counters, and ``repro
  serve`` end-to-end with ``--save``.
"""

import json
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.errors import (
    AdmissionError,
    CostModelError,
    ServeError,
    SolverError,
)
from repro.machine.ledger import CostLedger
from repro.machine.spec import CRAY_XC30
from repro.serve import (
    SERVE_CHECKPOINT_VERSION,
    SERVE_REPORT_VERSION,
    AdmissionQueue,
    TenantSpec,
    TraceEvent,
    load_trace,
    serve_trace,
    synthetic_trace,
    validate_trace,
)
from repro.streaming import STREAM_REPORT_VERSION, replay_schedule


def _assert_no_orphans(timeout: float = 10.0) -> None:
    """Every forked rank must be reaped once the run returns."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        kids = [p for p in multiprocessing.active_children()
                if p.name.startswith("spmd-proc")]
        if not kids:
            return
        time.sleep(0.05)
    raise AssertionError(f"orphaned SPMD workers: {kids}")


def _spec(name, m=40, n=12, seed=1, m0=24, **kw):
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((m, n))
    b = rng.standard_normal(m)
    knobs = dict(max_iter=60, tol=1e-5, seed=0)
    knobs.update(kw.pop("knobs", {}))
    return TenantSpec(name=name, A=A, b=b, m0=m0, knobs=knobs, **kw)


def _three_tenants():
    return [_spec("a", seed=1), _spec("b", seed=2), _spec("c", seed=3)]


# ---------------------------------------------------------------------------
# traces
# ---------------------------------------------------------------------------
class TestTraces:
    def test_load_jsonl_and_json_array(self, tmp_path):
        p1 = tmp_path / "t.jsonl"
        p1.write_text('{"t": 0.2, "tenant": "a"}\n'
                      '{"t": 0.1, "tenant": "b", "op": "predict", "rows": 3}\n')
        ev = load_trace(p1)
        # sorted by arrival, defaults filled
        assert [e.tenant for e in ev] == ["b", "a"]
        assert ev[0].op == "predict" and ev[0].rows == 3
        assert ev[1].op == "append" and ev[1].rows == 1
        p2 = tmp_path / "t.json"
        p2.write_text(json.dumps([{"t": 0.0, "tenant": "a", "deadline": 0.5}]))
        assert load_trace(p2)[0].deadline == 0.5

    def test_load_rejects_malformed(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"tenant": "a"}\n')
        with pytest.raises(ServeError, match="'t' and 'tenant'"):
            load_trace(p)
        p.write_text("not json\n")
        with pytest.raises(ServeError, match="not valid JSON"):
            load_trace(p)
        with pytest.raises(ServeError, match="could not read"):
            load_trace(tmp_path / "missing.jsonl")

    def test_validate_rejects_bad_fields(self):
        with pytest.raises(ServeError, match="unknown op"):
            validate_trace([TraceEvent(0.0, "a", op="train")])
        with pytest.raises(ServeError, match="finite"):
            validate_trace([TraceEvent(float("nan"), "a")])
        with pytest.raises(ServeError, match="rows"):
            validate_trace([TraceEvent(0.0, "a", rows=0)])
        with pytest.raises(ServeError, match="deadline"):
            validate_trace([TraceEvent(0.0, "a", deadline=-1.0)])
        with pytest.raises(ServeError, match="unknown tenant"):
            validate_trace([TraceEvent(0.0, "z")], known_tenants={"a"})

    def test_synthetic_trace_deterministic_and_budgeted(self):
        kw = dict(seed=7, mean_gap=0.01, rows=2, predict_frac=0.4,
                  append_budget={"a": 6, "b": 6})
        t1 = synthetic_trace(["a", "b"], 30, **kw)
        t2 = synthetic_trace(["a", "b"], 30, **kw)
        assert t1 == t2
        for name in ("a", "b"):
            appended = sum(e.rows for e in t1
                           if e.tenant == name and e.op == "append")
            assert appended <= 6
        assert all(t1[i].t <= t1[i + 1].t for i in range(len(t1) - 1))

    def test_replay_schedule_sleep_token(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((30, 8))
        b = rng.standard_normal(30)
        rep = replay_schedule(
            A[:20], b[:20],
            [(A[20:25], b[20:25]), ("sleep", 1.5), (A[25:30], b[25:30])],
            max_iter=40, tol=1e-5, virtual_p=4, machine=CRAY_XC30,
        )
        assert rep["format_version"] == STREAM_REPORT_VERSION
        assert rep["totals"]["slept_seconds"] == 1.5
        # the sleep is schedule-visible but produces no revision
        assert [s["op"] for s in rep["schedule"]] == ["append", "sleep",
                                                      "append"]
        assert rep["schedule"][1]["seconds"] == 1.5
        assert len(rep["revisions"]) == 3  # rev0 + two appends

    def test_replay_schedule_rejects_bad_sleep(self):
        A = np.eye(4)
        b = np.ones(4)
        with pytest.raises(SolverError, match="sleep seconds"):
            replay_schedule(A, b, [("sleep", -1.0)], max_iter=5)


# ---------------------------------------------------------------------------
# admission queue
# ---------------------------------------------------------------------------
class TestAdmissionQueue:
    def test_full_queue_rejects_with_typed_error(self):
        q = AdmissionQueue(2, ["a", "b"])
        q.offer(0, "a", is_append=True)
        q.offer(1, "b", is_append=True)
        assert q.full
        with pytest.raises(AdmissionError) as ei:
            q.offer(2, "a", is_append=True, retry_after=0.25)
        assert "depth 2" in str(ei.value)
        assert ei.value.queue_depth == 2
        assert ei.value.retry_after == 0.25

    def test_round_robin_fairness(self):
        # tenant a saturates; b's single request is served on the very
        # next dispatch, not after a's backlog drains
        q = AdmissionQueue(8, ["a", "b"], max_coalesce=1)
        for i in range(5):
            q.offer(i, "a", is_append=True)
        q.offer(5, "b", is_append=True)
        first, second = q.next_batch(), q.next_batch()
        assert first == ("a", [0])
        assert second == ("b", [5])

    def test_append_coalescing_stops_at_barriers(self):
        q = AdmissionQueue(8, ["a"], max_coalesce=4)
        q.offer(0, "a", is_append=True)
        q.offer(1, "a", is_append=True)
        q.offer(2, "a", is_append=False)  # predict/evict barrier
        q.offer(3, "a", is_append=True)
        assert q.next_batch() == ("a", [0, 1])
        assert q.next_batch() == ("a", [2])
        assert q.next_batch() == ("a", [3])
        assert q.next_batch() is None

    def test_state_round_trip(self):
        q = AdmissionQueue(8, ["a", "b"], max_coalesce=2)
        for i in range(3):
            q.offer(i, "a", is_append=True)
        q.offer(3, "b", is_append=False)
        q.next_batch()
        state = q.to_state()
        q2 = AdmissionQueue(8, ["a", "b"], max_coalesce=2)
        q2.from_state(state)
        assert len(q2) == len(q)
        assert q2.next_batch() == q.next_batch()

    def test_validation(self):
        with pytest.raises(ServeError, match="depth"):
            AdmissionQueue(0, ["a"])
        with pytest.raises(ServeError, match="duplicate"):
            AdmissionQueue(4, ["a", "a"])
        q = AdmissionQueue(4, ["a"])
        with pytest.raises(ServeError, match="unknown tenant"):
            q.offer(0, "z", is_append=True)


# ---------------------------------------------------------------------------
# engine, virtual backend
# ---------------------------------------------------------------------------
class TestEngineVirtual:
    def test_burst_backpressure_rejects_beyond_depth(self):
        specs = _three_tenants()
        # one burst at t=0, queue bounded well below the burst size
        trace = synthetic_trace(["a", "b", "c"], 16, seed=3, mean_gap=0.0,
                                rows=2, predict_frac=0.5,
                                append_budget={n: 10 for n in "abc"})
        rep = serve_trace(specs, trace, queue_depth=4,
                          machine=CRAY_XC30, virtual_p=4)
        out = rep["totals"]["outcomes"]
        assert out["rejected"] == 16 - 4
        assert out["completed"] == 4
        rejected = [r for r in rep["requests"] if r["outcome"] == "rejected"]
        assert all("depth 4" in r["error"] for r in rejected)

    def test_deadline_expiry_and_all_late_rollback(self):
        specs = [_spec("a", seed=1)]
        # a burst of appends with a deadline far below any refit's
        # modelled service time: the first dispatched batch commits? no —
        # it finishes past its own deadline, so it must be rolled back
        trace = [TraceEvent(0.0, "a", op="append", rows=2, deadline=1e-9)
                 for _ in range(3)]
        rep = serve_trace(specs, trace, queue_depth=8, max_coalesce=1,
                          machine=CRAY_XC30, virtual_p=4)
        out = rep["totals"]["outcomes"]
        assert out["timed_out"] == 3 and out["completed"] == 0
        ten = rep["tenants"][0]
        # nothing committed: no rows consumed beyond onboarding
        assert ten["rows_consumed"] == specs[0].m0
        assert ten["state"] == "active"  # deadline misses are not faults
        # and the model still serves: identical to a no-op run's model
        oracle = serve_trace(specs, [], machine=CRAY_XC30, virtual_p=4)
        assert ten["model_hash"] == oracle["tenants"][0]["model_hash"]

    def test_solver_fault_quarantines_only_that_tenant(self):
        specs = _three_tenants()
        trace = []
        t = 0.0
        for _ in range(4):  # interleave appends for all tenants
            for name in ("a", "b", "c"):
                trace.append(TraceEvent(t, name, op="append", rows=2))
                t += 1e-5
        trace.append(TraceEvent(t, "b", op="predict", rows=4))

        def boom(comm, tenant, dispatch_no, op):
            if tenant == "b" and op == "refit" and dispatch_no >= 2:
                raise SolverError("injected divergence")

        kw = dict(queue_depth=16, max_coalesce=1, machine=CRAY_XC30,
                  virtual_p=4, tenant_max_faults=1)
        rep = serve_trace(specs, trace, fault_hook=boom, **kw)
        by_name = {t["name"]: t for t in rep["tenants"]}
        assert by_name["b"]["state"] == "quarantined"
        assert by_name["b"]["faults"] == 2
        assert by_name["a"]["state"] == "active"
        assert by_name["c"]["state"] == "active"
        # the quarantined tenant still serves predicts from last-good
        predicts = [r for r in rep["requests"]
                    if r["tenant"] == "b" and r["op"] == "predict"]
        assert predicts and predicts[0]["outcome"] == "completed"
        assert predicts[0]["result_hash"] is not None
        # other tenants are byte-identical to a fault-free run
        oracle = serve_trace(specs, trace, **kw)
        oracle_by = {t["name"]: t for t in oracle["tenants"]}
        for name in ("a", "c"):
            assert by_name[name]["model_hash"] == oracle_by[name]["model_hash"]
        assert rep["totals"]["outcomes"]["failed"] == 2
        assert rep["totals"]["outcomes"]["quarantined"] >= 1

    def test_fairness_under_saturation(self):
        # tenant a floods the queue; b's lone append must not wait for
        # a's whole backlog
        specs = [_spec("a", seed=1), _spec("b", seed=2)]
        trace = [TraceEvent(0.0, "a", op="append", rows=1)
                 for _ in range(6)]
        trace.append(TraceEvent(0.0, "b", op="append", rows=2))
        rep = serve_trace(specs, trace, queue_depth=16, max_coalesce=1,
                          machine=CRAY_XC30, virtual_p=4)
        done = [r for r in rep["requests"] if r["outcome"] == "completed"]
        order = [r["tenant"] for r in sorted(done,
                                             key=lambda r: r["completed_at"])]
        assert order.index("b") <= 1
        assert rep["totals"]["outcomes"]["completed"] == 7

    def test_svm_tenant_serves(self):
        rng = np.random.default_rng(4)
        A = rng.standard_normal((36, 10))
        b = np.sign(rng.standard_normal(36))
        b[b == 0] = 1.0
        spec = TenantSpec(name="s", A=A, b=b, m0=28, task="svm",
                          knobs=dict(max_iter=80, tol=None, seed=0))
        trace = [TraceEvent(0.0, "s", op="append", rows=4),
                 TraceEvent(0.0, "s", op="predict", rows=5)]
        rep = serve_trace([spec], trace, machine=CRAY_XC30, virtual_p=4)
        t = rep["tenants"][0]
        assert rep["totals"]["outcomes"]["completed"] == 2
        assert t["rows_consumed"] == 32
        assert t["model_hash"] is not None

    def test_report_schema_and_determinism(self):
        specs = _three_tenants()
        trace = synthetic_trace(["a", "b", "c"], 12, seed=9, mean_gap=0.001,
                                rows=2, predict_frac=0.3,
                                append_budget={n: 12 for n in "abc"})
        kw = dict(machine=CRAY_XC30, virtual_p=4, queue_depth=6)
        rep = serve_trace(specs, trace, **kw)
        assert rep["format_version"] == SERVE_REPORT_VERSION
        assert rep["kind"] == "serve-report"
        for key in ("config", "tenants", "requests", "totals", "recovery"):
            assert key in rep
        lat = rep["totals"]["latency"]
        assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        assert json.dumps(rep) == json.dumps(serve_trace(specs, trace, **kw))

    def test_tenant_validation(self):
        with pytest.raises(ServeError, match="at least one tenant"):
            serve_trace([], [])
        s = _spec("a")
        with pytest.raises(ServeError, match="unique"):
            serve_trace([s, _spec("a", seed=2)], [])
        with pytest.raises(ServeError, match="m0"):
            serve_trace([_spec("a", m0=0)], [])
        with pytest.raises(ServeError, match="unknown tenant"):
            serve_trace([s], [TraceEvent(0.0, "zzz")])
        with pytest.raises(ServeError, match="recover"):
            serve_trace([s], [], recover="checkpoint", backend="virtual")


# ---------------------------------------------------------------------------
# checkpoint / resume, recovery (process backend)
# ---------------------------------------------------------------------------
class TestCheckpointResume:
    def test_checkpoint_resume_matches_uninterrupted(self, tmp_path):
        specs = _three_tenants()
        trace = synthetic_trace(["a", "b", "c"], 10, seed=2, mean_gap=0.001,
                                rows=2, predict_frac=0.3,
                                append_budget={n: 12 for n in "abc"})
        kw = dict(machine=CRAY_XC30, virtual_p=4, queue_depth=8)
        full = serve_trace(specs, trace, **kw)
        ck_path = tmp_path / "serve.ck.json"
        # run only a prefix of the trace, checkpointing as we go...
        serve_trace(specs, trace[:5], checkpoint_path=ck_path, **kw)
        ck = json.loads(ck_path.read_text())
        assert ck["kind"] == "serve-engine"
        assert ck["format_version"] == SERVE_CHECKPOINT_VERSION
        # ...then resume with the whole trace: the prefix is replayed
        # from state, and the final models match the uninterrupted run
        resumed = serve_trace(specs, trace, resume_from=ck, **kw)
        for t_full, t_res in zip(full["tenants"], resumed["tenants"], strict=True):
            assert t_full["model_hash"] == t_res["model_hash"]
        assert (resumed["totals"]["outcomes"]["completed"]
                == full["totals"]["outcomes"]["completed"])

    def test_resume_rejects_mismatched_checkpoint(self, tmp_path):
        from repro.errors import CheckpointError
        specs = [_spec("a")]
        with pytest.raises(CheckpointError, match="serve-engine"):
            serve_trace(specs, [], resume_from={"kind": "other"},
                        machine=CRAY_XC30)
        bad = tmp_path / "nope.json"
        with pytest.raises(CheckpointError, match="could not read"):
            serve_trace(specs, [], resume_from=bad, machine=CRAY_XC30)


@pytest.mark.slow
class TestProcessRecovery:
    def test_rank_death_recovers_and_isolates(self):
        """The PR acceptance scenario: 3 tenants on the process backend,
        one injected rank death mid-refit; the faulted tenant's batch is
        replayed after recovery and every tenant's final model is
        byte-identical to a fault-free run, with no orphaned workers."""
        specs = _three_tenants()
        trace = synthetic_trace(["a", "b", "c"], 12, seed=5, mean_gap=0.001,
                                rows=2, predict_frac=0.25,
                                append_budget={n: 16 for n in "abc"})
        kw = dict(queue_depth=8, max_coalesce=4, machine=CRAY_XC30,
                  backend="process", ranks=2, recover="checkpoint",
                  max_recoveries=2, run_timeout=180.0)
        oracle = serve_trace(specs, trace, **kw)
        _assert_no_orphans()

        def die_hook(comm, tenant, dispatch_no, op):
            rctx = getattr(comm, "recovery", None)
            if (dispatch_no == 3 and comm.rank == 1
                    and rctx is not None and rctx.recoveries == 0):
                os._exit(13)

        rep = serve_trace(specs, trace, fault_hook=die_hook, **kw)
        _assert_no_orphans()
        assert rep["recovery"]["recoveries"] == 1
        assert rep["recovery"]["respawns"] >= 1
        assert rep["recovery"]["replayed_requests"] >= 1
        by_name = {t["name"]: t for t in rep["tenants"]}
        oracle_by = {t["name"]: t for t in oracle["tenants"]}
        faulted = [n for n, t in by_name.items() if t["faults"] > 0]
        assert len(faulted) == 1
        for name in ("a", "b", "c"):
            # the replay is deterministic, so even the faulted tenant
            # converges to the fault-free model
            assert by_name[name]["model_hash"] == oracle_by[name]["model_hash"]
            assert by_name[name]["state"] == "active"
        assert (rep["totals"]["outcomes"]["completed"]
                == oracle["totals"]["outcomes"]["completed"])
        # predict results are also byte-identical across the fault
        def hashes(r):
            return [(q["eidx"], q["result_hash"]) for q in r["requests"]
                    if q["op"] == "predict" and q["outcome"] == "completed"]
        assert hashes(rep) == hashes(oracle)


# ---------------------------------------------------------------------------
# ledger counters
# ---------------------------------------------------------------------------
class TestLedgerCounters:
    def test_add_idle(self):
        led = CostLedger()
        led.add_idle(1.25)
        led.add_idle(0.25)
        assert led.idle_seconds == 1.5
        with pytest.raises(CostModelError):
            led.add_idle(-1.0)
        led.reset()
        assert led.idle_seconds == 0.0

    def test_add_request_event(self):
        led = CostLedger()
        led.add_request_event("rejected")
        led.add_request_event("timed_out", 3)
        led.add_request_event("quarantined")
        led.add_request_event("recovered", 2)
        assert led.requests_rejected == 1
        assert led.requests_timed_out == 3
        assert led.requests_quarantined == 1
        assert led.requests_recovered == 2
        s = led.summary()
        assert s["requests_timed_out"] == 3
        with pytest.raises(CostModelError):
            led.add_request_event("exploded")
        with pytest.raises(CostModelError):
            led.add_request_event("rejected", -1)
        led.reset()
        assert led.requests_rejected == 0

    def test_serve_patches_counters_onto_report_ledger(self):
        # the engine's final ledger mirrors its request counters (they
        # would otherwise be wiped by mid-run resets)
        specs = [_spec("a", seed=1)]
        trace = [TraceEvent(0.0, "a", op="append", rows=2, deadline=1e-9)]
        rep = serve_trace(specs, trace, machine=CRAY_XC30, virtual_p=4)
        assert rep["totals"]["outcomes"]["timed_out"] == 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestServeCli:
    def test_serve_cli_save(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "serve.json"
        rc = main([
            "serve", "--dataset", "covtype", "--cells", "3000",
            "--tenants", "3", "--requests", "12", "--gap", "0.0005",
            "--p", "4", "--save", str(out),
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "serving 3 lasso tenants" in text
        assert "throughput" in text
        rep = json.loads(out.read_text())
        assert rep["format_version"] == SERVE_REPORT_VERSION
        assert rep["kind"] == "serve-report"
        assert len(rep["tenants"]) == 3
        assert all("recovery" in t for t in rep["tenants"])

    def test_serve_cli_rejects_bad_args(self, capsys):
        from repro.cli import main
        rc = main(["serve", "--dataset", "covtype", "--cells", "3000",
                   "--tenants", "0"])
        assert rc == 2
        assert "--tenants" in capsys.readouterr().err

    def test_stream_cli_sleep_token(self, capsys):
        from repro.cli import main
        rc = main(["stream", "--dataset", "covtype", "--cells", "2000",
                   "--schedule", "8,@0.25,8", "--p", "4"])
        assert rc == 0
        # bad sleep tokens surface as CLI errors, not tracebacks
        for sched in ("8,@oops", "8,@-1"):
            rc = main(["stream", "--dataset", "covtype", "--cells", "2000",
                       "--schedule", sched])
            assert rc == 2
