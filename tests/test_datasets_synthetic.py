"""Tests for synthetic dataset generators."""

import numpy as np
import pytest

from conftest import dense_of
from repro.datasets.synthetic import (
    make_classification,
    make_sparse_regression,
    sparse_random_matrix,
)
from repro.errors import DatasetError
from repro.utils.seeds import shared_generator


class TestSparseRandomMatrix:
    def test_density_respected(self):
        rng = shared_generator(0)
        A = sparse_random_matrix(200, 100, 0.1, rng)
        actual = A.nnz / (200 * 100)
        assert 0.05 < actual < 0.15

    def test_high_density_returns_dense(self):
        rng = shared_generator(0)
        A = sparse_random_matrix(10, 10, 0.99, rng)
        assert isinstance(A, np.ndarray)

    def test_no_empty_rows(self):
        rng = shared_generator(1)
        A = sparse_random_matrix(50, 500, 0.005, rng)
        assert np.all(np.diff(A.indptr) >= 1)

    def test_value_dists(self):
        rng = shared_generator(2)
        B = sparse_random_matrix(20, 20, 0.5, rng, value_dist="binary")
        assert np.all(B.data == 1.0)
        U = sparse_random_matrix(20, 20, 0.5, shared_generator(2), value_dist="uniform")
        assert np.all(U.data >= 0)

    def test_invalid_args(self):
        rng = shared_generator(0)
        with pytest.raises(DatasetError):
            sparse_random_matrix(0, 5, 0.1, rng)
        with pytest.raises(DatasetError):
            sparse_random_matrix(5, 5, 0.0, rng)
        with pytest.raises(DatasetError):
            sparse_random_matrix(5, 5, 0.5, rng, value_dist="cauchy")


class TestMakeSparseRegression:
    def test_shapes(self):
        A, b, x = make_sparse_regression(30, 20, density=0.2, seed=0)
        assert A.shape == (30, 20) and b.shape == (30,) and x.shape == (20,)

    def test_reproducible(self):
        A1, b1, x1 = make_sparse_regression(30, 20, density=0.2, seed=5)
        A2, b2, x2 = make_sparse_regression(30, 20, density=0.2, seed=5)
        assert np.allclose(dense_of(A1), dense_of(A2))
        assert np.allclose(b1, b2) and np.allclose(x1, x2)

    def test_x_true_sparsity(self):
        _, _, x = make_sparse_regression(30, 100, density=0.2, k_nonzero=7, seed=0)
        assert np.count_nonzero(x) == 7

    def test_noiseless_consistent(self):
        A, b, x = make_sparse_regression(30, 20, density=0.5, noise=0.0, seed=0)
        assert np.allclose(np.asarray(A @ x).ravel(), b)

    def test_bad_k(self):
        with pytest.raises(DatasetError):
            make_sparse_regression(10, 5, k_nonzero=9)


class TestMakeClassification:
    def test_labels_binary(self):
        _, b = make_classification(100, 20, density=0.3, seed=1)
        assert set(np.unique(b)) <= {-1.0, 1.0}

    def test_separable_without_noise(self):
        A, b = make_classification(100, 40, density=0.5, margin=0.2,
                                   label_noise=0.0, seed=2)
        # both classes present
        assert (b == 1).any() and (b == -1).any()

    def test_label_noise_flips(self):
        A1, b1 = make_classification(300, 10, density=0.5, label_noise=0.0, seed=3)
        A2, b2 = make_classification(300, 10, density=0.5, label_noise=0.3, seed=3)
        assert (b1 != b2).sum() > 0

    def test_invalid_noise(self):
        with pytest.raises(DatasetError):
            make_classification(10, 5, label_noise=0.7)

    def test_dense_path(self):
        A, b = make_classification(20, 10, density=1.0, seed=4)
        assert isinstance(A, np.ndarray)
