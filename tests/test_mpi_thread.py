"""Tests for the thread-SPMD backend: collectives, determinism, failures.

The backend-agnostic contract lives in ``spmd_collective_suite`` (shared
with the process backend); thread-specific behaviour is tested below.
"""

import time

import numpy as np
import pytest

from repro.errors import CommAborted
from repro.mpi.thread_backend import ThreadComm, ThreadContext, spmd_run
from spmd_collective_suite import (
    BufferCollectivesSuite,
    CostPlumbingSuite,
    FailureModesSuite,
    NonblockingSuite,
    ObjectCollectivesSuite,
)


class TestObjectCollectives(ObjectCollectivesSuite):
    run = staticmethod(spmd_run)


class TestBufferCollectives(BufferCollectivesSuite):
    run = staticmethod(spmd_run)


class TestNonblocking(NonblockingSuite):
    run = staticmethod(spmd_run)


class TestFailureModes(FailureModesSuite):
    run = staticmethod(spmd_run)


class TestCostPlumbing(CostPlumbingSuite):
    run = staticmethod(spmd_run)


class TestThreadSpecific:
    def test_nonblocking_result_is_private_per_rank(self):
        # the background folder folds once; each rank must get its own
        # array (mutating one rank's result may not leak to peers)
        def fn(comm, r):
            res = comm.Iallreduce(np.ones(4)).wait()
            res += r  # would corrupt peers if the result were shared
            comm.barrier()
            return res

        out = spmd_run(fn, 3)
        for r, v in enumerate(out.values):
            assert np.array_equal(v, np.full(4, 3.0 + r))

    def test_latency_emulation_blocking_critical_path(self):
        def fn(comm, r):
            for _ in range(5):
                comm.Allreduce(np.ones(2))

        t0 = time.perf_counter()
        spmd_run(fn, 2, latency=0.01)
        elapsed = time.perf_counter() - t0
        assert elapsed >= 0.05  # 5 collectives x 10 ms on the critical path

    def test_latency_emulation_nonblocking_overlappable(self):
        # computation between post and wait runs while the folder thread
        # sleeps the transit latency: total << blocking's serial sum
        def fn(comm, r):
            req = comm.Iallreduce(np.ones(2))
            t0 = time.perf_counter()
            while time.perf_counter() - t0 < 0.05:
                pass  # "compute" past the transit window
            req.wait()

        t0 = time.perf_counter()
        spmd_run(fn, 2, latency=0.04)
        elapsed = time.perf_counter() - t0
        assert elapsed < 0.09  # not 0.05 compute + 0.04 serial transit

    def test_abort_wakes_nonblocking_waiters(self):
        def fn(comm, r):
            if r == 1:
                raise ValueError("boom")
            # rank 0 posts and waits forever unless the abort wakes it
            req = comm.Iallreduce(np.ones(2))
            return req.wait()

        with pytest.raises(ValueError, match="boom"):
            spmd_run(fn, 2, timeout=10.0)

    def test_context_close_stops_folder(self):
        ctx = ThreadContext(1)
        comm = ThreadComm(ctx, 0)
        comm.Iallreduce(np.ones(2)).wait()
        folder = ctx._folder
        assert folder is not None and folder.is_alive()
        ctx.close()
        folder.join(2.0)
        assert not folder.is_alive()

    def test_hung_rank_times_out(self):
        def fn(comm, r):
            if r == 0:
                comm.barrier()  # rank 1 never joins
            return r

        with pytest.raises(CommAborted):
            spmd_run(fn, 2, timeout=0.5)
