"""Asynchronous bounded-staleness SA solvers: the convergence contract.

The async mode's contract is deliberately *weaker* than the pipelined
mode's bit-parity: with ``async_=True`` a rank steps on Gram/residual
reductions that are up to ``tau`` outer steps stale, so the iterates
diverge from the synchronous path — what is guaranteed (and pinned
here) is:

* **convergence to tolerance** — every SA solver, on every backend, for
  ``tau`` in {1, 2, 4}, reaches the synchronous reference's objective
  within the documented tolerance (``LASSO_RTOL`` relative objective
  error; ``SVM_GAP_FACTOR`` duality-gap factor at an equal iteration
  budget);
* **tau = 0 degenerates exactly** — same op order as ``pipeline=True``,
  hence bit-identical iterates and an identical cost snapshot;
* **checkpoints keep working** — a run killed mid-async resumes to an
  objective within the same convergence tolerance (the staleness
  schedule differs after resume, so bit-parity is explicitly *not*
  promised);
* **the ledger stays honest** — ``comm_seconds + comm_seconds_hidden +
  stale_seconds`` reconstructs the blocking run's communication bill
  exactly, with messages/words/flops charged in full (staleness hides
  time, never traffic), and ``max_staleness`` matching ``tau``;
* **the NB slot ring is safe out of order** — harvesting in-flight
  requests in any order within the ring window is well-defined, and a
  post that would reuse the slot of the rank's own unharvested request
  fails with a typed :class:`~repro.errors.NbRingDepthError` instead of
  deadlocking (regression: the guard must track *which* requests are
  open, not just how many).
"""

import numpy as np
import pytest

from repro._api import fit_lasso, fit_svm
from repro.datasets import make_classification, make_sparse_regression
from repro.errors import NbRingDepthError, SolverError
from repro.faults import InjectedFailure
from repro.machine.spec import CRAY_XC30
from repro.mpi.ops import SUM
from repro.mpi.process_backend import process_spmd_run
from repro.mpi.thread_backend import spmd_run
from repro.path import lasso_path
from repro.solvers.objectives import lambda_max

SEED = 5

#: documented convergence tolerance: async final objective within this
#: relative error of the synchronous reference (same iteration budget)
LASSO_RTOL = 1e-2
#: documented convergence tolerance: async final duality gap within this
#: factor of the synchronous reference's gap (same iteration budget)
SVM_GAP_FACTOR = 3.0

TAUS = (1, 2, 4)
BACKENDS = ("virtual", "thread", "process")
#: (mode name, extra fit kwargs) — the full contract matrix
MODES = (
    ("blocking", {}),
    ("pipelined", {"pipeline": True}),
    ("async-tau1", {"async_": True, "tau": 1}),
    ("async-tau2", {"async_": True, "tau": 2}),
    ("async-tau4", {"async_": True, "tau": 4}),
)


@pytest.fixture(scope="module")
def lasso_problem():
    A, b, _ = make_sparse_regression(200, 60, density=0.2, seed=1)
    return A, b, 0.2 * lambda_max(A, b)


@pytest.fixture(scope="module")
def svm_problem():
    return make_classification(120, 40, density=0.3, seed=5, margin=0.2)


def _lasso_kwargs(solver):
    return dict(solver=solver, mu=2, s=4, max_iter=400, tol=None, seed=SEED,
                record_every=0)


def _svm_kwargs():
    return dict(solver="sa-svm", loss="l2", lam=1.0, s=8, max_iter=4000,
                tol=None, seed=SEED, record_every=0)


@pytest.fixture(scope="module")
def lasso_refs(lasso_problem):
    """Synchronous (blocking, virtual) reference objective per solver."""
    A, b, lam = lasso_problem
    return {
        solver: fit_lasso(A, b, lam, **_lasso_kwargs(solver)).final_metric
        for solver in ("sa-bcd", "sa-accbcd")
    }


@pytest.fixture(scope="module")
def svm_ref(svm_problem):
    X, y = svm_problem
    return fit_svm(X, y, **_svm_kwargs()).final_metric


class TestConvergenceContract:
    """Every SA solver x backend x {blocking, pipelined, async tau in
    {1,2,4}} reaches the synchronous objective within tolerance."""

    @pytest.mark.parametrize("mode,extra", MODES, ids=[m for m, _ in MODES])
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("solver", ["sa-bcd", "sa-accbcd"])
    def test_lasso(self, lasso_problem, lasso_refs, solver, backend, mode,
                   extra):
        A, b, lam = lasso_problem
        res = fit_lasso(A, b, lam, backend=backend, ranks=2,
                        **_lasso_kwargs(solver), **extra)
        ref = lasso_refs[solver]
        rel = abs(res.final_metric - ref) / abs(ref)
        assert rel <= LASSO_RTOL, (
            f"{solver}/{backend}/{mode}: objective {res.final_metric} is"
            f" {rel:.3g} relative from the synchronous reference {ref}"
            f" (documented tolerance {LASSO_RTOL})"
        )
        if extra.get("async_"):
            assert res.cost.max_staleness == extra["tau"]
        else:
            assert res.cost.max_staleness == 0

    @pytest.mark.parametrize("mode,extra", MODES, ids=[m for m, _ in MODES])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_svm(self, svm_problem, svm_ref, backend, mode, extra):
        X, y = svm_problem
        res = fit_svm(X, y, backend=backend, ranks=2, **_svm_kwargs(),
                      **extra)
        assert res.final_metric <= SVM_GAP_FACTOR * svm_ref, (
            f"sa-svm/{backend}/{mode}: duality gap {res.final_metric}"
            f" exceeds {SVM_GAP_FACTOR}x the synchronous reference"
            f" {svm_ref}"
        )
        if extra.get("async_"):
            assert res.cost.max_staleness == extra["tau"]

    def test_async_extra_budget_beats_reference(self, svm_problem, svm_ref):
        """With 3x the budget, stale steps still make real progress."""
        X, y = svm_problem
        kw = _svm_kwargs()
        kw["max_iter"] *= 3
        res = fit_svm(X, y, async_=True, tau=2, **kw)
        assert res.final_metric < svm_ref


class TestTauZeroDegeneratesToPipelined:
    """tau=0 reproduces the pipelined op order exactly: bit-identical
    iterates AND an identical cost snapshot, for every SA solver."""

    @pytest.mark.parametrize("solver", ["sa-bcd", "sa-accbcd"])
    def test_lasso(self, lasso_problem, solver):
        A, b, lam = lasso_problem
        kw = _lasso_kwargs(solver)
        kw["max_iter"] = 120
        piped = fit_lasso(A, b, lam, pipeline=True, virtual_p=64,
                          machine=CRAY_XC30, **kw)
        tau0 = fit_lasso(A, b, lam, async_=True, tau=0, virtual_p=64,
                         machine=CRAY_XC30, **kw)
        assert np.array_equal(piped.x, tau0.x)
        assert piped.cost == tau0.cost
        assert tau0.cost.max_staleness == 0
        assert tau0.cost.stale_seconds == 0.0

    def test_svm(self, svm_problem):
        X, y = svm_problem
        kw = _svm_kwargs()
        kw["max_iter"] = 800
        piped = fit_svm(X, y, pipeline=True, virtual_p=64,
                        machine=CRAY_XC30, **kw)
        tau0 = fit_svm(X, y, async_=True, tau=0, virtual_p=64,
                       machine=CRAY_XC30, **kw)
        assert np.array_equal(piped.x, tau0.x)
        assert piped.cost == tau0.cost


class _CrashingSink:
    def __init__(self, crash_at: int):
        self.crash_at = crash_at
        self.payloads = []

    def __call__(self, payload):
        self.payloads.append(payload)
        if payload["iteration"] >= self.crash_at:
            raise InjectedFailure(
                f"simulated crash at iteration {payload['iteration']}"
            )


class TestAsyncCheckpointResume:
    """A run killed mid-async resumes to the same *objective* within the
    documented tolerance. Bit-parity is explicitly not promised: after
    resume the in-flight ring restarts fresh, so the staleness schedule
    differs from the uninterrupted run's."""

    @pytest.mark.parametrize("solver", ["sa-bcd", "sa-accbcd"])
    def test_lasso(self, lasso_problem, solver):
        A, b, lam = lasso_problem
        kw = _lasso_kwargs(solver)
        kw.update(async_=True, tau=2)
        full = fit_lasso(A, b, lam, **kw)
        sink = _CrashingSink(crash_at=100)
        with pytest.raises(InjectedFailure):
            fit_lasso(A, b, lam, checkpoint_every=20, checkpoint_sink=sink,
                      **kw)
        assert sink.payloads, "no checkpoint was emitted before the crash"
        resumed = fit_lasso(A, b, lam, resume_from=sink.payloads[-1], **kw)
        rel = abs(resumed.final_metric - full.final_metric) / abs(
            full.final_metric)
        assert rel <= LASSO_RTOL
        assert resumed.iterations == full.iterations

    def test_svm(self, svm_problem):
        X, y = svm_problem
        kw = _svm_kwargs()
        kw.update(async_=True, tau=2)
        full = fit_svm(X, y, **kw)
        sink = _CrashingSink(crash_at=800)
        with pytest.raises(InjectedFailure):
            fit_svm(X, y, checkpoint_every=200, checkpoint_sink=sink, **kw)
        assert sink.payloads
        resumed = fit_svm(X, y, resume_from=sink.payloads[-1], **kw)
        assert resumed.final_metric <= SVM_GAP_FACTOR * max(
            full.final_metric, 1e-12)

    def test_async_checkpoint_resumes_blocking(self, lasso_problem):
        """An async checkpoint is a plain solver checkpoint: it resumes
        the synchronous path too (the weaker contract still applies)."""
        A, b, lam = lasso_problem
        kw = _lasso_kwargs("sa-bcd")
        ref = fit_lasso(A, b, lam, **kw)
        sink = _CrashingSink(crash_at=100)
        with pytest.raises(InjectedFailure):
            fit_lasso(A, b, lam, async_=True, tau=2, checkpoint_every=20,
                      checkpoint_sink=sink, **kw)
        resumed = fit_lasso(A, b, lam, resume_from=sink.payloads[-1], **kw)
        rel = abs(resumed.final_metric - ref.final_metric) / abs(
            ref.final_metric)
        assert rel <= LASSO_RTOL


class TestLedgerInvariants:
    """Staleness hides time, never traffic: the three-way split
    reconstructs the blocking bill and every counter is charged in
    full."""

    def _run(self, lasso_problem, **extra):
        A, b, lam = lasso_problem
        kw = _lasso_kwargs("sa-bcd")
        kw["max_iter"] = 200
        return fit_lasso(A, b, lam, virtual_p=64, machine=CRAY_XC30,
                         **kw, **extra)

    @pytest.mark.parametrize("tau", TAUS)
    def test_three_way_reconstruction(self, lasso_problem, tau):
        blocking = self._run(lasso_problem).cost
        anc = self._run(lasso_problem, async_=True, tau=tau).cost
        # traffic is never discounted by staleness; flop counts are
        # data-dependent (the stale iterate path differs) but stay full
        assert anc.messages == blocking.messages
        assert anc.words == blocking.words
        assert anc.flops == pytest.approx(blocking.flops, rel=0.01)
        assert blocking.comm_seconds_hidden == 0.0
        assert blocking.stale_seconds == 0.0
        assert anc.comm_seconds_hidden > 0.0
        assert anc.stale_seconds > 0.0
        recon = (anc.comm_seconds + anc.comm_seconds_hidden
                 + anc.stale_seconds)
        assert recon == pytest.approx(blocking.comm_seconds, rel=1e-12)
        assert anc.max_staleness == tau

    def test_pipelined_keeps_two_way_split(self, lasso_problem):
        """pipeline=True never touches the stale counters."""
        piped = self._run(lasso_problem, pipeline=True).cost
        blocking = self._run(lasso_problem).cost
        assert piped.stale_seconds == 0.0
        assert piped.max_staleness == 0
        recon = piped.comm_seconds + piped.comm_seconds_hidden
        assert recon == pytest.approx(blocking.comm_seconds, rel=1e-12)

    def test_stale_seconds_serializes_and_survives_paths(self, lasso_problem):
        A, b, lam = lasso_problem
        path = lasso_path(A, b, [lam, 0.5 * lam], solver="sa-bcd", mu=2,
                          s=4, max_iter=80, tol=None, seed=SEED,
                          async_=True, tau=2, virtual_p=64,
                          machine=CRAY_XC30)
        total = path.total_cost
        assert total.max_staleness == 2
        assert total.stale_seconds > 0.0
        assert path.extras["async"] is True and path.extras["tau"] == 2


class TestValidation:
    def test_async_and_pipeline_are_mutually_exclusive(self, lasso_problem):
        A, b, lam = lasso_problem
        with pytest.raises(SolverError, match="mutually exclusive"):
            fit_lasso(A, b, lam, solver="sa-bcd", mu=2, s=4, max_iter=8,
                      pipeline=True, async_=True)

    def test_negative_tau_rejected(self, lasso_problem):
        A, b, lam = lasso_problem
        with pytest.raises(SolverError, match="tau"):
            fit_lasso(A, b, lam, solver="sa-bcd", mu=2, s=4, max_iter=8,
                      async_=True, tau=-1)

    def test_async_needs_sa_solver(self, lasso_problem):
        A, b, lam = lasso_problem
        with pytest.raises(SolverError, match="SA solver"):
            fit_lasso(A, b, lam, solver="bcd", mu=2, max_iter=8,
                      async_=True)


class TestNbRingDepthRegression:
    """Out-of-order harvest within the ring window is well-defined; a
    post that would reuse the slot of the rank's own unharvested
    request raises the typed error instead of deadlocking."""

    @staticmethod
    def _out_of_order(comm, rank):
        depth = comm.nb_ring_depth
        reqs = [comm.Iallreduce(np.full(3, float(rank + k + 1)), op=SUM)
                for k in range(depth)]
        # harvest newest-first: fully reversed order within the window
        return [reqs[k].wait().copy() for k in reversed(range(depth))]

    @staticmethod
    def _expected_sums(size, depth):
        return [np.full(3, sum(r + k + 1 for r in range(size)))
                for k in reversed(range(depth))]

    @pytest.mark.parametrize("runner", [spmd_run, process_spmd_run],
                             ids=["thread", "process"])
    def test_out_of_order_harvest_within_window(self, runner):
        out = runner(self._out_of_order, 2, nb_depth=4)
        expected = self._expected_sums(2, 4)
        for vals in out.values:
            for got, want in zip(vals, expected, strict=True):
                assert np.array_equal(got, want)

    @staticmethod
    def _slot_conflict(comm, rank):
        """depth=3: 0,1 posted; 1,2 harvested out of order; post 3 must
        fail typed — request 0 still holds slot 0 (the old count-based
        guard deadlocked here: only one request is open)."""
        reqs = {}
        reqs[0] = comm.Iallreduce(np.ones(2), op=SUM)
        reqs[1] = comm.Iallreduce(np.ones(2), op=SUM)
        reqs[1].wait()
        reqs[2] = comm.Iallreduce(np.ones(2), op=SUM)
        reqs[2].wait()
        try:
            comm.Iallreduce(np.ones(2), op=SUM)
        except NbRingDepthError as exc:
            info = (exc.depth, exc.outstanding)
        else:
            info = None
        reqs[0].wait()  # leave the world clean for the peers
        return info

    @pytest.mark.parametrize("runner", [spmd_run, process_spmd_run],
                             ids=["thread", "process"])
    def test_post_into_held_slot_raises_typed(self, runner):
        out = runner(self._slot_conflict, 2, nb_depth=3)
        for info in out.values:
            assert info == (3, 1)

    @staticmethod
    def _ring_full(comm, rank):
        depth = comm.nb_ring_depth
        reqs = [comm.Iallreduce(np.ones(2), op=SUM) for _ in range(depth)]
        try:
            comm.Iallreduce(np.ones(2), op=SUM)
        except NbRingDepthError as exc:
            info = (exc.depth, exc.outstanding)
        else:
            info = None
        for r in reqs:
            r.wait()
        return info

    @pytest.mark.parametrize("runner", [spmd_run, process_spmd_run],
                             ids=["thread", "process"])
    def test_full_ring_raises_typed(self, runner):
        out = runner(self._ring_full, 2, nb_depth=2)
        for info in out.values:
            assert info == (2, 2)
