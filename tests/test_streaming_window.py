"""Sliding-window streaming: row eviction, label-only updates, windows.

ISSUE 5 acceptance: every mutation keeps the PR-4 equivalence contract —
interleaved append/evict/label-edit schedules must match a cold solve on
``materialize()`` of the *surviving* rows (fresh matrix, fresh caches,
the engine's own warm start) to <= 1e-9, on every solver x backend
combination; ``lambda_max`` after downdates equals a from-scratch
recompute; and each revision's ledger banking reconstructs the measured
costs exactly.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro._api import fit_lasso, fit_svm
from repro.datasets import make_classification, make_sparse_regression
from repro.errors import PartitionError, SolverError
from repro.linalg.distmatrix import ColPartitionedMatrix, RowPartitionedMatrix
from repro.machine.spec import CRAY_XC30
from repro.mpi.process_backend import process_spmd_run
from repro.mpi.thread_backend import spmd_run
from repro.mpi.virtual_backend import VirtualComm
from repro.solvers.objectives import lambda_max
from repro.streaming import StreamingSweep, replay_schedule

LASSO_SOLVERS = ("bcd", "sa-bcd", "accbcd", "sa-accbcd")
SVM_SOLVERS = ("svm", "sa-svm")
BACKENDS = ("virtual", "thread", "process")


def _lasso_data():
    A, b, _ = make_sparse_regression(240, 60, density=0.2, seed=3)
    B1, y1, _ = make_sparse_regression(30, 60, density=0.2, seed=4)
    B2, y2, _ = make_sparse_regression(18, 60, density=0.2, seed=5)
    return A, b, [(B1, y1), (B2, y2)]


def _svm_data():
    A, b = make_classification(200, 50, density=0.3, seed=7, margin=0.2)
    B1, y1 = make_classification(24, 50, density=0.3, seed=8, margin=0.2)
    B2, y2 = make_classification(16, 50, density=0.3, seed=9, margin=0.2)
    return A, b, [(B1, y1), (B2, y2)]


def _dense(M):
    return np.asarray(M.todense()) if sp.issparse(M) else np.asarray(M)


def _run_backend(fn, backend, ranks):
    if backend == "virtual":
        return [fn(VirtualComm(1), 0)]
    runner = spmd_run if backend == "thread" else process_spmd_run
    return runner(fn, ranks).values


# ---------------------------------------------------------------------------
# remove_rows: the mutable-matrix primitive
# ---------------------------------------------------------------------------


class TestRemoveRowsRowPartitioned:
    def test_single_rank_matches_delete(self):
        A, b, _ = _lasso_data()
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        removed = dist.remove_rows([0, 5, 7, 239])
        keep = np.setdiff1d(np.arange(A.shape[0]), [0, 5, 7, 239])
        assert removed.sum() == 4
        assert dist.shape == (A.shape[0] - 4, A.shape[1])
        assert np.allclose(_dense(dist.local), _dense(A)[keep])
        assert dist.local_nnz == dist.local.nnz

    def test_sampling_view_invalidated_and_rebuilt(self):
        A, b, _ = _lasso_data()
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        idx = np.array([0, 3, 5])
        dist.sample_columns(idx)
        assert dist._csc_cache is not None
        dist.remove_rows([1, 2])
        assert dist._csc_cache is None  # stale view dropped
        after = _dense(dist.sample_columns(idx))
        keep = np.setdiff1d(np.arange(A.shape[0]), [1, 2])
        assert np.allclose(after, _dense(A)[keep][:, idx])

    def test_collective_buffers_survive_removal(self):
        A, b, _ = _lasso_data()
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        idx = np.arange(4)
        S = dist.sample_columns(idx)
        dist.gram_and_project(S, [np.zeros(dist.local.shape[0])])
        send_before, gram_before = dist._send_buf, dist._gram_out
        dist.remove_rows(np.arange(10))
        S = dist.sample_columns(idx)
        G, _ = dist.gram_and_project(S, [np.zeros(dist.local.shape[0])])
        assert dist._send_buf is send_before
        assert dist._gram_out is gram_before
        assert np.allclose(G, _dense(S).T @ _dense(S))

    def test_spmd_removal_updates_partition(self):
        A, b, _ = _lasso_data()
        drop = np.array([0, 11, 40, 100, 239])

        def fn(comm, rank):
            dist = RowPartitionedMatrix.from_global(A, comm)
            old_counts = dist.partition.counts().copy()
            removed = dist.remove_rows(drop)
            assert dist.shape[0] == A.shape[0] - drop.size
            assert np.array_equal(dist.partition.counts(),
                                  old_counts - removed)
            assert dist.local.shape[0] == dist.partition.counts()[rank]
            return _dense(dist.local)

        res = spmd_run(fn, 3)
        stacked = np.vstack(res.values)
        # from_global slices contiguous row ranges, so the shard
        # concatenation preserves the global order of the survivors
        assert np.allclose(stacked,
                           _dense(A)[np.setdiff1d(np.arange(A.shape[0]), drop)])

    def test_emptying_one_ranks_shard_is_legal(self):
        A, b, _ = _lasso_data()

        def fn(comm, rank):
            dist = RowPartitionedMatrix.from_global(A, comm)
            lo, hi = dist.partition.range_of(0)
            removed = hi - lo
            dist.remove_rows(np.arange(lo, hi))  # rank 0 loses every row
            assert dist.partition.count_of(0) == 0
            # sampling and the Gram collective still work on every rank
            S = dist.sample_columns(np.array([0, 2, 4]))
            G, _ = dist.gram_and_project(S, [np.zeros(dist.local.shape[0])])
            assert np.all(np.isfinite(G))
            # an nnz-balanced append repopulates the empty shard
            dist.append_rows(A[:12])
            assert dist.partition.counts().sum() == dist.shape[0]
            assert dist.shape[0] == A.shape[0] - removed + 12
            return True

        assert all(spmd_run(fn, 2).values)

    def test_out_of_range_and_total_removal_rejected(self):
        A, b, _ = _lasso_data()
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        with pytest.raises(PartitionError, match="lie in"):
            dist.remove_rows([A.shape[0]])
        with pytest.raises(PartitionError, match="every row"):
            dist.remove_rows(np.arange(A.shape[0]))

    def test_empty_removal_is_noop(self):
        A, b, _ = _lasso_data()
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        dist.sample_columns(np.array([0]))
        view = dist._csc_cache
        assert dist.remove_rows([]).sum() == 0
        assert dist._csc_cache is view  # nothing invalidated

    def test_empty_append_is_noop(self):
        A, b, _ = _lasso_data()
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        dist.sample_columns(np.array([0]))
        view = dist._csc_cache
        part = dist.append_rows(A[:0])
        assert part.n == 0 and dist.shape == A.shape
        assert dist._csc_cache is view

    def test_duplicate_indices_merged(self):
        A, b, _ = _lasso_data()
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        removed = dist.remove_rows([3, 3, 7])
        assert removed.sum() == 2 and dist.shape[0] == A.shape[0] - 2


class TestRemoveRowsColPartitioned:
    def test_single_rank_matches_delete(self):
        A, b, _ = _svm_data()
        dist = ColPartitionedMatrix.from_global(A, VirtualComm(1))
        n_removed = dist.remove_rows([1, 2, 199])
        keep = np.setdiff1d(np.arange(A.shape[0]), [1, 2, 199])
        assert n_removed == 3
        assert dist.shape == (A.shape[0] - 3, A.shape[1])
        assert np.allclose(_dense(dist.local), _dense(A)[keep])

    def test_spmd_removal_keeps_column_partition(self):
        A, b, _ = _svm_data()
        drop = np.array([0, 50, 150])

        def fn(comm, rank):
            dist = ColPartitionedMatrix.from_global(A, comm)
            offsets_before = dist.partition.offsets
            dist.remove_rows(drop)
            assert dist.partition.offsets == offsets_before
            lo, hi = dist.partition.range_of(rank)
            keep = np.setdiff1d(np.arange(A.shape[0]), drop)
            assert np.allclose(_dense(dist.local), _dense(A)[keep][:, lo:hi])
            # row sampling sees the compacted order
            Y = dist.sample_rows(np.array([0]))
            assert np.allclose(_dense(Y).ravel(), _dense(A)[keep][0, lo:hi])
            return True

        assert all(spmd_run(fn, 3).values)

    def test_errors_and_noop(self):
        A, b, _ = _svm_data()
        dist = ColPartitionedMatrix.from_global(A, VirtualComm(1))
        with pytest.raises(PartitionError, match="lie in"):
            dist.remove_rows([-1])
        with pytest.raises(PartitionError, match="every row"):
            dist.remove_rows(np.arange(A.shape[0]))
        assert dist.remove_rows([]) == 0
        dist.append_rows(A[:0])  # empty append: no-op
        assert dist.shape == A.shape


# ---------------------------------------------------------------------------
# engine state: downdates, windows, label edits, ledger reconstruction
# ---------------------------------------------------------------------------


class TestWindowedEngineState:
    def test_downdated_lambda_max_matches_recompute(self):
        A, b, batches = _lasso_data()
        eng = StreamingSweep(A, b, task="lasso")
        eng.append(*batches[0])
        for ids in ([0, 1, 2], [250, 30, 31], [5]):
            eng.evict(ids)
            A_eff, b_eff = eng.materialize()
            assert eng.lambda_max == pytest.approx(
                lambda_max(A_eff, b_eff), rel=1e-9
            )

    def test_downdated_lambda_max_on_ranks(self):
        A, b, batches = _lasso_data()

        def fn(comm, rank):
            eng = StreamingSweep(A, b, task="lasso", comm=comm)
            eng.append(*batches[0])
            eng.evict(np.arange(25))
            eng.update_labels([30, 40], [0.25, -0.75])
            A_eff, b_eff = eng.materialize()
            return eng.lambda_max, lambda_max(A_eff, b_eff)

        for got, want in spmd_run(fn, 2).values:
            assert got == pytest.approx(want, rel=1e-9)

    def test_label_update_lambda_max_and_placement(self):
        A, b, _ = _lasso_data()
        eng = StreamingSweep(A, b, task="lasso")
        ids = np.array([7, 100, 239])
        vals = np.array([2.0, -1.5, 0.0])
        eng.update_labels(ids, vals)
        order = eng.arrival_order()
        A_eff, b_eff = eng.materialize()
        for i, v in zip(ids, vals, strict=True):
            assert b_eff[np.nonzero(order == i)[0][0]] == v
        assert eng.lambda_max == pytest.approx(
            lambda_max(A_eff, b_eff), rel=1e-9
        )

    def test_materialize_tracks_full_history(self):
        """A_eff == full arrival history indexed by arrival_order(), for
        any interleaving of appends, evictions, and label edits."""
        A, b, batches = _lasso_data()
        hist_A = [_dense(A)] + [_dense(B) for B, _ in batches]
        hist_A = np.vstack(hist_A)
        hist_b = np.concatenate([b] + [y for _, y in batches])

        def fn(comm, rank):
            eng = StreamingSweep(A, b, task="lasso", comm=comm)
            eng.append(*batches[0])
            eng.evict([0, 10, 245])
            eng.update_labels([50, 60], [1.0, -1.0])
            eng.append(*batches[1])
            eng.evict([271])
            A_eff, b_eff = eng.materialize()
            return _dense(A_eff), b_eff, eng.arrival_order()

        hist_b_edit = hist_b.copy()
        hist_b_edit[[50, 60]] = [1.0, -1.0]
        for A_eff, b_eff, order in spmd_run(fn, 3).values:
            assert np.allclose(A_eff, hist_A[order])
            assert np.allclose(b_eff, hist_b_edit[order])
            survivors = np.setdiff1d(
                np.arange(hist_A.shape[0]), [0, 10, 245, 271]
            )
            assert np.array_equal(np.sort(order), survivors)

    def test_window_trims_oldest_within_revision(self):
        A, b, batches = _lasso_data()
        eng = StreamingSweep(A, b, task="lasso", max_rows=A.shape[0])
        eng.append(*batches[0])
        k = batches[0][0].shape[0]
        assert eng.n_rows == A.shape[0]
        rev = eng.revisions[-1]
        assert rev.rows_added == k and rev.rows_removed == k
        assert np.array_equal(eng.surviving_rows(),
                              np.arange(k, A.shape[0] + k))
        # the trim is measured separately from the append
        assert rev.evict_cost.flops > 0
        assert rev.append_cost.flops > 0

    def test_window_rejects_oversized_initial_data(self):
        A, b, _ = _lasso_data()
        with pytest.raises(SolverError, match="max_rows"):
            StreamingSweep(A, b, task="lasso", max_rows=10)
        with pytest.raises(SolverError, match="max_rows"):
            StreamingSweep(A, b, task="lasso", max_rows=0)

    def test_per_revision_ledger_reconstruction(self):
        """Each revision's banked snapshots equal the ledger's measured
        state after the mutating call — exactly, field by field."""
        A, b, batches = _lasso_data()
        eng = StreamingSweep(A, b, task="lasso", virtual_p=8,
                             machine=CRAY_XC30, mu=2, s=8, max_iter=32,
                             tol=None)

        def snap_equal(a, c):
            return (a.comm_seconds == c.comm_seconds
                    and a.compute_seconds == c.compute_seconds
                    and a.messages == c.messages and a.words == c.words
                    and a.flops == c.flops)

        eng.append(*batches[0])
        assert snap_equal(eng.revisions[-1].append_cost
                          + eng.revisions[-1].evict_cost,
                          eng.comm.ledger.snapshot())
        eng.evict(np.arange(12))
        assert snap_equal(eng.revisions[-1].evict_cost,
                          eng.comm.ledger.snapshot())
        assert eng.revisions[-1].evict_cost.messages > 0  # the Allreduce
        eng.update_labels([20, 21], [0.5, -0.5])
        assert snap_equal(eng.revisions[-1].append_cost,
                          eng.comm.ledger.snapshot())
        res = eng.solve(lam=0.5)
        assert snap_equal(eng.revisions[-1].solve_costs[0],
                          eng.comm.ledger.snapshot())
        assert res.cost is eng.revisions[-1].solve_costs[0]

    def test_evict_cheaper_than_rescan(self):
        """The downdate is O(nnz(evicted)) + one n-word Allreduce, not an
        O(nnz(A)) rescan of the survivors."""
        A, b, _ = _lasso_data()
        eng = StreamingSweep(A, b, task="lasso", virtual_p=8,
                             machine=CRAY_XC30)
        # revision 0 derives A^T b with one full-data spmv
        full_spmv = eng.comm.ledger.by_kind["spmv"]
        eng.evict([0, 1])
        # the eviction's matvec work touches only the evicted rows — far
        # below the full-data product a rescan would pay (the remaining
        # evict_cost is the unavoidable shard compaction, charged as
        # gather/scalar kinds)
        assert 0 < eng.comm.ledger.by_kind["spmv"] < 0.1 * full_spmv
        # and exactly one n-word collective, like the incremental append
        assert eng.revisions[-1].evict_cost.messages == \
            eng.revisions[0].append_cost.messages

    def test_empty_append_and_evict_are_noops(self):
        A, b, batches = _lasso_data()
        eng = StreamingSweep(A, b, task="lasso")
        rev = eng.revision
        assert eng.append(batches[0][0][:0], batches[0][1][:0]) == rev
        assert eng.evict([]) == rev
        assert eng.update_labels([], []) == rev
        assert len(eng.revisions) == 1  # no spurious revisions

    def test_mutation_validation(self):
        A, b, batches = _lasso_data()
        eng = StreamingSweep(A, b, task="lasso")
        with pytest.raises(SolverError, match="labels must match"):
            eng.append(batches[0][0], batches[0][1][:-1])
        with pytest.raises(SolverError, match="not\\s+present"):
            eng.evict([9999])
        with pytest.raises(SolverError, match="every row"):
            eng.evict(np.arange(A.shape[0]))
        with pytest.raises(SolverError, match="duplicate"):
            eng.update_labels([3, 3], [1.0, 2.0])
        with pytest.raises(SolverError, match="labels must match"):
            eng.update_labels([3], [1.0, 2.0])
        with pytest.raises(SolverError, match="not\\s+present"):
            eng.update_labels([9999], [1.0])
        eng.evict([5])
        with pytest.raises(SolverError, match="not\\s+present"):
            eng.evict([5])  # already gone

    def test_svm_dual_shrinks_and_label_edits_reset(self):
        A, b, batches = _svm_data()
        eng = StreamingSweep(A, b, task="svm", s=8, max_iter=80, tol=None,
                             lam=0.5, loss="l2")
        eng.solve()
        alpha = eng._alpha_warm.copy()
        eng.evict([0, 3])
        assert eng._alpha_warm.shape[0] == A.shape[0] - 2
        keep = np.setdiff1d(np.arange(A.shape[0]), [0, 3])
        assert np.array_equal(eng._alpha_warm, alpha[keep])
        # flipping labels resets only the flipped coordinates
        before = eng._alpha_warm.copy()
        order = eng.arrival_order()
        flip = order[[4, 5]]
        eng.update_labels(flip, -eng.b[[4, 5]])
        assert np.all(eng._alpha_warm[[4, 5]] == 0.0)
        mask = np.ones(before.shape[0], dtype=bool)
        mask[[4, 5]] = False
        assert np.array_equal(eng._alpha_warm[mask], before[mask])
        with pytest.raises(SolverError, match="labels"):
            eng.update_labels([10], [2.0])  # not in {-1, +1}
        eng.solve()  # still solvable after the surgery

    def test_svm_window(self):
        A, b, batches = _svm_data()
        eng = StreamingSweep(A, b, task="svm", max_rows=A.shape[0], s=8,
                             max_iter=80, tol=None, lam=0.5, loss="l2")
        eng.append(*batches[0])
        k = batches[0][0].shape[0]
        assert eng.n_rows == A.shape[0]
        assert np.array_equal(eng.arrival_order(),
                              np.arange(k, A.shape[0] + k))


# ---------------------------------------------------------------------------
# the equivalence contract: interleaved schedules, every solver x backend
# ---------------------------------------------------------------------------

_EQ_KW = dict(mu=2, s=8, max_iter=96, tol=None, seed=1, record_every=8)
_EQ_SVM_KW = dict(s=8, max_iter=160, tol=None, seed=1, record_every=40)


def _interleaved_lasso(comm, rank, solver, pipeline):
    """Append / evict / label-edit schedule vs cold solves on the
    surviving materialized data, from the engine's own warm start."""
    A, b, batches = _lasso_data()
    kw = dict(_EQ_KW)
    if not solver.startswith("sa-"):
        kw.pop("s")
        pipeline = False
    eng = StreamingSweep(A, b, task="lasso", comm=comm, solver=solver,
                         pipeline=pipeline, max_rows=A.shape[0] + 20, **kw)
    lam = 0.05 * eng.lambda_max
    eng.solve(lam=lam, warm_start=False)
    steps = [
        lambda: eng.append(*batches[0]),          # 240 -> 260 (window: -10)
        lambda: eng.evict(eng.surviving_rows()[:8]),
        lambda: eng.update_labels(eng.surviving_rows()[:5],
                                  np.linspace(-1.0, 1.0, 5)),
        lambda: eng.append(*batches[1]),
        lambda: eng.evict(eng.surviving_rows()[-4:]),
    ]
    for step in steps:
        step()
        x_warm = None if eng._x_warm is None else eng._x_warm.copy()
        res = eng.solve(lam=lam)
        A_eff, b_eff = eng.materialize()
        cold_dist = RowPartitionedMatrix.from_global(
            A_eff, comm, partition=eng.dist.partition
        )
        cold = fit_lasso(cold_dist, b_eff, lam, solver=solver, comm=comm,
                         x0=x_warm, pipeline=pipeline, **kw)
        scale = max(float(np.max(np.abs(cold.x))), 1e-30)
        drift = float(np.max(np.abs(res.x - cold.x))) / scale
        assert drift <= 1e-9, (solver, drift)
    return True


def _interleaved_svm(comm, rank, solver, pipeline):
    A, b, batches = _svm_data()
    kw = dict(_EQ_SVM_KW)
    if solver != "sa-svm":
        kw.pop("s")
        pipeline = False
    eng = StreamingSweep(A, b, task="svm", comm=comm, solver=solver,
                         loss="l2", lam=0.5, pipeline=pipeline,
                         max_rows=A.shape[0] + 20, **kw)
    eng.solve(warm_start=False)
    steps = [
        lambda: eng.append(*batches[0]),          # 200 -> 224 (window: -4)
        lambda: eng.evict(eng.surviving_rows()[:6]),
        lambda: eng.update_labels(eng.surviving_rows()[:3],
                                  -eng.b[np.isin(eng.arrival_order(),
                                                 eng.surviving_rows()[:3])]),
        lambda: eng.append(*batches[1]),
    ]
    for step in steps:
        step()
        alpha0 = eng._alpha_warm.copy()
        res = eng.solve()
        A_eff, b_eff = eng.materialize()
        cold_dist = ColPartitionedMatrix.from_global(
            A_eff, comm, partition=eng.dist.partition
        )
        cold = fit_svm(cold_dist, b_eff, loss="l2", lam=0.5, solver=solver,
                       comm=comm, alpha0=alpha0, pipeline=pipeline, **kw)
        scale = max(float(np.max(np.abs(cold.x))), 1e-30)
        drift = float(np.max(np.abs(res.x - cold.x))) / scale
        assert drift <= 1e-9, (solver, drift)
    return True


class TestEvictionEquivalence:
    """ISSUE 5 acceptance: interleaved append/evict/label-edit schedules
    match cold solves on the surviving data <= 1e-9, for every solver x
    backend combination."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("solver", LASSO_SOLVERS)
    def test_lasso(self, solver, backend):
        ranks = 1 if backend == "virtual" else 2
        fn = lambda comm, rank: _interleaved_lasso(comm, rank, solver, False)  # noqa: E731
        assert all(_run_backend(fn, backend, ranks))

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("solver", SVM_SOLVERS)
    def test_svm(self, solver, backend):
        ranks = 1 if backend == "virtual" else 2
        fn = lambda comm, rank: _interleaved_svm(comm, rank, solver, False)  # noqa: E731
        assert all(_run_backend(fn, backend, ranks))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_lasso_pipelined(self, backend):
        ranks = 1 if backend == "virtual" else 2
        fn = lambda comm, rank: _interleaved_lasso(comm, rank, "sa-accbcd", True)  # noqa: E731
        assert all(_run_backend(fn, backend, ranks))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_svm_pipelined(self, backend):
        ranks = 1 if backend == "virtual" else 2
        fn = lambda comm, rank: _interleaved_svm(comm, rank, "sa-svm", True)  # noqa: E731
        assert all(_run_backend(fn, backend, ranks))


# ---------------------------------------------------------------------------
# replay harness: event ops, window, schema v2
# ---------------------------------------------------------------------------


class TestReplayEvents:
    def test_event_schedule_schema(self):
        A, b, batches = _lasso_data()
        rep = replay_schedule(
            A, b,
            [batches[0], ("evict_oldest", 12), ("relabel_oldest", 5),
             ("evict", [40, 41]), batches[1]],
            task="lasso", lam=0.5, mu=2, s=8, max_iter=48, tol=None,
            virtual_p=8, machine=CRAY_XC30, compare_cold=True,
        )
        assert rep["format_version"] == 3
        assert rep["max_rows"] is None
        assert rep["schedule"] == [
            {"op": "append", "rows": 30}, {"op": "evict", "rows": 12},
            {"op": "labels", "rows": 5}, {"op": "evict", "rows": 2},
            {"op": "append", "rows": 18},
        ]
        revs = rep["revisions"]
        assert [e["rows_removed"] for e in revs] == [0, 0, 12, 0, 2, 0]
        assert [e["labels_changed"] for e in revs] == [0, 0, 0, 5, 0, 0]
        for e in revs:
            assert {"rows_removed", "labels_changed", "evict_cost"} <= set(e)
        assert revs[2]["evict_cost"]["seconds"] > 0
        # totals include every revision's eviction work
        totals = rep["totals"]["warm_refit_cost"]
        assert totals["seconds"] == pytest.approx(
            sum(e["warm"]["cost"]["seconds"] + e["append_cost"]["seconds"]
                + e["evict_cost"]["seconds"] for e in revs[1:])
        )

    def test_windowed_replay(self):
        A, b, batches = _lasso_data()
        rep = replay_schedule(A, b, batches, task="lasso", lam=0.5,
                              max_rows=A.shape[0], mu=2, s=8, max_iter=48,
                              tol=None)
        assert rep["max_rows"] == A.shape[0]
        for e, (B, _) in zip(rep["revisions"][1:], batches, strict=True):
            assert e["rows_added"] == B.shape[0]
            assert e["rows_removed"] == B.shape[0]  # window keeps m fixed
            assert e["rows_total"] == A.shape[0]

    def test_replay_events_on_real_ranks(self):
        A, b, batches = _lasso_data()
        for backend in ("thread", "process"):
            rep = replay_schedule(
                A, b, [batches[0], ("evict_oldest", 10)], task="lasso",
                lam=0.5, mu=2, s=8, max_iter=48, tol=None,
                backend=backend, ranks=2,
            )
            assert rep["revisions"][2]["rows_removed"] == 10

    def test_svm_relabel_event(self):
        A, b, batches = _svm_data()
        rep = replay_schedule(
            A, b, [batches[0], ("relabel_oldest", 4)], task="svm",
            loss="l2", lam=0.5, s=8, max_iter=96, tol=None,
            record_every=48,
        )
        assert rep["revisions"][2]["labels_changed"] == 4

    def test_noop_events_emit_no_entry(self):
        """Empty mutations are engine no-ops; the replay must not emit a
        duplicate revision entry (which would double-count its cost)."""
        A, b, batches = _lasso_data()
        B, y = batches[0]
        rep = replay_schedule(
            A, b,
            [batches[0], ("evict", []), ("labels", [], []),
             ("append", B[:0], y[:0])],
            task="lasso", lam=0.5, mu=2, s=8, max_iter=48, tol=None,
        )
        assert [e["rev"] for e in rep["revisions"]] == [0, 1]
        assert rep["totals"]["warm_refit_cost"]["seconds"] == pytest.approx(
            rep["revisions"][1]["warm"]["cost"]["seconds"]
            + rep["revisions"][1]["append_cost"]["seconds"]
            + rep["revisions"][1]["evict_cost"]["seconds"]
        )

    def test_unknown_event_rejected(self):
        A, b, batches = _lasso_data()
        with pytest.raises(SolverError, match="event"):
            replay_schedule(A, b, [("merge", 3)], task="lasso")
        with pytest.raises(SolverError, match="event"):
            replay_schedule(A, b, [(1, 2, 3)], task="lasso")
