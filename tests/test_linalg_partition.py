"""Tests for 1-D partitions, including hypothesis invariants."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.linalg.partition import (
    Partition1D,
    balanced_nnz_partition,
    block_partition,
)


class TestBlockPartition:
    def test_even_split(self):
        p = block_partition(12, 3)
        assert p.offsets == (0, 4, 8, 12)

    def test_remainder_goes_first(self):
        p = block_partition(10, 3)
        assert tuple(p.counts()) == (4, 3, 3)

    def test_more_ranks_than_items(self):
        p = block_partition(2, 5)
        assert p.n == 2 and p.size == 5
        assert sum(p.counts()) == 2

    def test_zero_items(self):
        p = block_partition(0, 3)
        assert all(c == 0 for c in p.counts())

    def test_invalid(self):
        with pytest.raises(PartitionError):
            block_partition(-1, 2)
        with pytest.raises(PartitionError):
            block_partition(5, 0)


class TestQueries:
    def test_owner_of(self):
        p = block_partition(10, 3)
        assert p.owner_of(0) == 0 and p.owner_of(3) == 0
        assert p.owner_of(4) == 1 and p.owner_of(9) == 2

    def test_owner_out_of_range(self):
        p = block_partition(10, 3)
        with pytest.raises(PartitionError):
            p.owner_of(10)

    def test_to_local(self):
        p = block_partition(10, 3)
        assert p.to_local(1, 4) == 0
        with pytest.raises(PartitionError):
            p.to_local(0, 4)

    def test_local_slice(self):
        p = block_partition(10, 2)
        assert p.local_slice(1) == slice(5, 10)

    def test_bad_rank(self):
        with pytest.raises(PartitionError):
            block_partition(4, 2).range_of(2)

    def test_invalid_offsets(self):
        with pytest.raises(PartitionError):
            Partition1D((1, 3))
        with pytest.raises(PartitionError):
            Partition1D((0, 5, 3))
        with pytest.raises(PartitionError):
            Partition1D((0,))


class TestBalancedNnz:
    def test_dense_falls_back_to_block(self):
        A = np.ones((10, 4))
        p = balanced_nnz_partition(A, 2, axis=0)
        assert p.offsets == block_partition(10, 2).offsets

    def test_balances_skewed_rows(self):
        # first row holds almost all non-zeros
        rows = [0] * 90 + list(range(1, 11))
        cols = list(range(90)) + [0] * 10
        A = sp.coo_matrix((np.ones(100), (rows, cols)), shape=(11, 90)).tocsr()
        p = balanced_nnz_partition(A, 2, axis=0)
        counts = np.diff(A.indptr)
        nnz0 = counts[p.local_slice(0)].sum()
        nnz1 = counts[p.local_slice(1)].sum()
        # naive row split would be 95/5; balanced should be ~90/10
        assert nnz0 <= 92

    def test_column_axis(self):
        A = sp.random(20, 30, density=0.3, random_state=0, format="csr")
        p = balanced_nnz_partition(A, 4, axis=1)
        assert p.n == 30 and p.size == 4

    def test_empty_matrix(self):
        A = sp.csr_matrix((5, 5))
        p = balanced_nnz_partition(A, 2, axis=0)
        assert p.n == 5 and p.size == 2

    def test_invalid_axis(self):
        with pytest.raises(PartitionError):
            balanced_nnz_partition(sp.eye(3, format="csr"), 2, axis=2)


@settings(max_examples=60, deadline=None)
@given(n=st.integers(0, 300), size=st.integers(1, 17))
def test_block_partition_covers_everything(n, size):
    p = block_partition(n, size)
    assert p.n == n and p.size == size
    assert sum(p.counts()) == n
    # contiguity + monotonicity
    for r in range(size):
        lo, hi = p.range_of(r)
        assert 0 <= lo <= hi <= n
    # near-even: counts differ by at most 1
    counts = p.counts()
    assert counts.max() - counts.min() <= 1 if n else True


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 200),
    size=st.integers(1, 9),
    density=st.floats(0.01, 0.9),
    seed=st.integers(0, 5),
)
def test_balanced_partition_is_valid_partition(n, size, density, seed):
    A = sp.random(n, 13, density=density, random_state=seed, format="csr")
    p = balanced_nnz_partition(A, size, axis=0)
    assert p.n == n and p.size == size
    assert sum(p.counts()) == n
    for i in range(n):
        r = p.owner_of(i)
        lo, hi = p.range_of(r)
        assert lo <= i < hi
