"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.datasets import make_classification, make_sparse_regression


@pytest.fixture(scope="session")
def small_regression():
    """(A sparse 60x40, b, x_true) — Lasso-scale problem."""
    return make_sparse_regression(60, 40, density=0.4, seed=3)


@pytest.fixture(scope="session")
def dense_regression():
    """(A dense 50x30, b, x_true)."""
    return make_sparse_regression(50, 30, density=1.0, seed=9)


@pytest.fixture(scope="session")
def small_classification():
    """(A sparse 80x30, b in {-1,+1}) — SVM-scale problem."""
    return make_classification(80, 30, density=0.5, seed=5, margin=0.2)


@pytest.fixture(scope="session")
def dense_classification():
    """(A dense 60x20, b in {-1,+1})."""
    return make_classification(60, 20, density=1.0, seed=6, margin=0.2)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


def dense_of(A) -> np.ndarray:
    """Dense view of either sparse or dense matrices."""
    if sp.issparse(A):
        return np.asarray(A.todense())
    return np.asarray(A)
