"""Tests for the sklearn-style estimators."""

import numpy as np
import pytest

from repro import SALasso, SASVMClassifier
from repro.errors import SolverError


class TestSALasso:
    def test_fit_predict_score(self, small_regression):
        A, b, _ = small_regression
        est = SALasso(lam=0.2, max_iter=800, tol=1e-10)
        est.fit(A, b)
        assert est.coef_.shape == (A.shape[1],)
        pred = est.predict(A)
        assert pred.shape == (A.shape[0],)
        assert est.score(A, b) > 0.5

    def test_not_fitted(self, small_regression):
        A, b, _ = small_regression
        with pytest.raises(SolverError, match="not fitted"):
            SALasso().predict(A)

    def test_sparsity_property(self, small_regression):
        A, b, _ = small_regression
        lam_big = float(np.max(np.abs(A.T @ b)))
        est = SALasso(lam=lam_big, max_iter=300).fit(A, b)
        assert est.sparsity_ > 0.5

    def test_get_set_params(self):
        est = SALasso(lam=1.0)
        assert est.get_params()["lam"] == 1.0
        est.set_params(lam=2.0, s=32)
        assert est.get_params()["lam"] == 2.0
        with pytest.raises(SolverError):
            est.set_params(bogus=1)

    def test_classical_and_sa_agree(self, small_regression):
        A, b, _ = small_regression
        e1 = SALasso(lam=0.5, solver="accbcd", max_iter=100, tol=None,
                     seed=3).fit(A, b)
        e2 = SALasso(lam=0.5, solver="sa-accbcd", s=10, max_iter=100,
                     tol=None, seed=3).fit(A, b)
        assert np.allclose(e1.coef_, e2.coef_, atol=1e-9)

    def test_perfect_fit_r2(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((80, 10))
        x = rng.standard_normal(10)
        b = A @ x
        est = SALasso(lam=1e-8, mu=5, max_iter=4000, tol=1e-14).fit(A, b)
        assert est.score(A, b) > 0.99


class TestSASVMClassifier:
    def test_fit_predict_score(self, small_classification):
        A, b = small_classification
        clf = SASVMClassifier(loss="l2", max_iter=4000, tol=1e-3)
        clf.fit(A, b)
        assert clf.score(A, b) > 0.85
        assert set(np.unique(clf.predict(A))) <= {-1.0, 1.0}

    def test_arbitrary_label_values(self, small_classification):
        A, b = small_classification
        y = np.where(b > 0, 7.0, 3.0)  # non {-1,+1} labels
        clf = SASVMClassifier(loss="l2", max_iter=2000).fit(A, y)
        assert set(np.unique(clf.predict(A))) <= {3.0, 7.0}
        assert clf.score(A, y) > 0.8

    def test_multiclass_rejected(self, small_classification):
        A, _ = small_classification
        y = np.arange(A.shape[0]) % 3
        with pytest.raises(SolverError, match="binary"):
            SASVMClassifier().fit(A, y)

    def test_duality_gap_property(self, small_classification):
        A, b = small_classification
        clf = SASVMClassifier(loss="l1", max_iter=1500, tol=None).fit(A, b)
        assert clf.duality_gap_ >= -1e-9
        assert clf.dual_coef_.shape == (A.shape[0],)

    def test_not_fitted(self, small_classification):
        A, _ = small_classification
        with pytest.raises(SolverError):
            SASVMClassifier().decision_function(A)
