"""Tests for the sklearn-style estimators."""

import numpy as np
import pytest

from repro import SALasso, SALassoCV, SASVMClassifier, SASVMClassifierCV
from repro.datasets import make_sparse_regression
from repro.errors import SolverError
from repro.path import PathResult


class TestSALassoPath:
    def test_path_method(self, small_regression):
        A, b, _ = small_regression
        est = SALasso(mu=2, s=8, max_iter=200, tol=1e-6)
        path = est.path(A, b, n_lambdas=5, eps=1e-2)
        assert isinstance(path, PathResult)
        assert len(path) == 5
        assert path.coefs.shape == (5, A.shape[1])
        # path() is a query, not a fit
        with pytest.raises(SolverError):
            est.predict(A)

    def test_path_explicit_grid(self, small_regression):
        A, b, _ = small_regression
        est = SALasso(mu=2, s=4, max_iter=60)
        path = est.path(A, b, lambdas=[2.0, 0.5])
        assert np.all(np.diff(path.lambdas) < 0) and len(path) == 2


class TestSALassoCV:
    @pytest.fixture(scope="class")
    def cv_problem(self):
        return make_sparse_regression(240, 60, density=0.2, k_nonzero=6,
                                      noise=0.05, seed=21)

    def test_selects_lambda_and_predicts(self, cv_problem):
        A, b, x_true = cv_problem
        est = SALassoCV(n_lambdas=8, eps=1e-3, cv=3, mu=4, s=8,
                        max_iter=400, tol=1e-6, seed=0)
        est.fit(A, b)
        assert est.lambda_ in est.lambdas_
        assert est.mse_path_.shape == (8, 3)
        assert est.coef_.shape == (A.shape[1],)
        assert est.score(A, b) > 0.9
        # the selected lambda recovers a sparse model
        assert np.count_nonzero(est.coef_) < A.shape[1]

    def test_refit_stops_at_selected_lambda(self, cv_problem):
        A, b, _ = cv_problem
        est = SALassoCV(n_lambdas=6, cv=2, mu=2, s=8, max_iter=200).fit(A, b)
        assert est.path_.lambdas[-1] == pytest.approx(est.lambda_)

    def test_cv_validation(self):
        with pytest.raises(SolverError):
            SALassoCV(cv=1)

    def test_too_few_samples(self):
        A, b, _ = make_sparse_regression(5, 4, density=0.9, seed=0)
        with pytest.raises(SolverError):
            SALassoCV(cv=3, n_lambdas=3).fit(A, b)

    def test_not_fitted(self, cv_problem):
        A, _, _ = cv_problem
        with pytest.raises(SolverError):
            SALassoCV().predict(A)


class TestSALasso:
    def test_fit_predict_score(self, small_regression):
        A, b, _ = small_regression
        est = SALasso(lam=0.2, max_iter=800, tol=1e-10)
        est.fit(A, b)
        assert est.coef_.shape == (A.shape[1],)
        pred = est.predict(A)
        assert pred.shape == (A.shape[0],)
        assert est.score(A, b) > 0.5

    def test_not_fitted(self, small_regression):
        A, b, _ = small_regression
        with pytest.raises(SolverError, match="not fitted"):
            SALasso().predict(A)

    def test_sparsity_property(self, small_regression):
        A, b, _ = small_regression
        lam_big = float(np.max(np.abs(A.T @ b)))
        est = SALasso(lam=lam_big, max_iter=300).fit(A, b)
        assert est.sparsity_ > 0.5

    def test_get_set_params(self):
        est = SALasso(lam=1.0)
        assert est.get_params()["lam"] == 1.0
        est.set_params(lam=2.0, s=32)
        assert est.get_params()["lam"] == 2.0
        with pytest.raises(SolverError):
            est.set_params(bogus=1)

    def test_classical_and_sa_agree(self, small_regression):
        A, b, _ = small_regression
        e1 = SALasso(lam=0.5, solver="accbcd", max_iter=100, tol=None,
                     seed=3).fit(A, b)
        e2 = SALasso(lam=0.5, solver="sa-accbcd", s=10, max_iter=100,
                     tol=None, seed=3).fit(A, b)
        assert np.allclose(e1.coef_, e2.coef_, atol=1e-9)

    def test_perfect_fit_r2(self):
        rng = np.random.default_rng(0)
        A = rng.standard_normal((80, 10))
        x = rng.standard_normal(10)
        b = A @ x
        est = SALasso(lam=1e-8, mu=5, max_iter=4000, tol=1e-14).fit(A, b)
        assert est.score(A, b) > 0.99


class TestSASVMClassifier:
    def test_fit_predict_score(self, small_classification):
        A, b = small_classification
        clf = SASVMClassifier(loss="l2", max_iter=4000, tol=1e-3)
        clf.fit(A, b)
        assert clf.score(A, b) > 0.85
        assert set(np.unique(clf.predict(A))) <= {-1.0, 1.0}

    def test_arbitrary_label_values(self, small_classification):
        A, b = small_classification
        y = np.where(b > 0, 7.0, 3.0)  # non {-1,+1} labels
        clf = SASVMClassifier(loss="l2", max_iter=2000).fit(A, y)
        assert set(np.unique(clf.predict(A))) <= {3.0, 7.0}
        assert clf.score(A, y) > 0.8

    def test_multiclass_rejected(self, small_classification):
        A, _ = small_classification
        y = np.arange(A.shape[0]) % 3
        with pytest.raises(SolverError, match="binary"):
            SASVMClassifier().fit(A, y)

    def test_duality_gap_property(self, small_classification):
        A, b = small_classification
        clf = SASVMClassifier(loss="l1", max_iter=1500, tol=None).fit(A, b)
        assert clf.duality_gap_ >= -1e-9
        assert clf.dual_coef_.shape == (A.shape[0],)

    def test_not_fitted(self, small_classification):
        A, _ = small_classification
        with pytest.raises(SolverError):
            SASVMClassifier().decision_function(A)


class TestSASVMClassifierCV:
    def test_fit_selects_and_refits(self, small_classification):
        A, b = small_classification
        clf = SASVMClassifierCV(n_lambdas=4, cv=2, max_iter=3000, s=32,
                                tol=1e-2, seed=0)
        clf.fit(A, b)
        assert clf.lambda_ in clf.lambdas_
        assert clf.accuracy_path_.shape == (4, 2)
        assert np.all(clf.lambdas_[:-1] <= clf.lambdas_[1:])  # ascending
        assert 0.0 <= clf.accuracy_path_.min() <= clf.accuracy_path_.max() <= 1.0
        assert clf.score(A, b) > 0.8
        assert clf.dual_coef_.shape == (A.shape[0],)

    def test_arbitrary_label_values(self, small_classification):
        A, b = small_classification
        y = np.where(b > 0, "pos", "neg")
        clf = SASVMClassifierCV(n_lambdas=3, cv=2, max_iter=2000, s=32,
                                tol=1e-2).fit(A, y)
        assert set(np.unique(clf.predict(A))) <= {"pos", "neg"}
        assert clf.score(A, y) > 0.8

    def test_explicit_grid(self, small_classification):
        A, b = small_classification
        clf = SASVMClassifierCV(lams=[2.0, 0.5], cv=2, max_iter=1500, s=32,
                                tol=1e-1).fit(A, b)
        assert np.array_equal(clf.lambdas_, [0.5, 2.0])  # sorted ascending
        assert clf.lambda_ in (0.5, 2.0)

    def test_refit_stops_at_selected_lambda(self, small_classification):
        A, b = small_classification
        clf = SASVMClassifierCV(n_lambdas=3, cv=2, max_iter=1500, s=32,
                                tol=1e-1).fit(A, b)
        assert clf.path_.lambdas[-1] == pytest.approx(clf.lambda_)

    def test_cv_too_small_rejected(self):
        with pytest.raises(SolverError, match="cv"):
            SASVMClassifierCV(cv=1)

    def test_multiclass_rejected(self, small_classification):
        A, _ = small_classification
        y = np.arange(A.shape[0]) % 3
        with pytest.raises(SolverError, match="binary"):
            SASVMClassifierCV(cv=2).fit(A, y)

    def test_not_fitted(self, small_classification):
        A, _ = small_classification
        with pytest.raises(SolverError):
            SASVMClassifierCV(cv=2).predict(A)


class TestPartialFit:
    """Streaming partial_fit on both estimators (ISSUE 4 tentpole)."""

    def _lasso_data(self):
        A, b, _ = make_sparse_regression(240, 60, density=0.2, seed=3)
        B, y, _ = make_sparse_regression(30, 60, density=0.2, seed=4)
        return A, b, B, y

    def test_lasso_partial_fit_matches_engine(self):
        from repro._api import fit_lasso
        from repro.linalg.distmatrix import RowPartitionedMatrix
        from repro.mpi.virtual_backend import VirtualComm

        A, b, B, y = self._lasso_data()
        kw = dict(lam=0.5, mu=2, s=8, max_iter=96, tol=None, seed=1)
        est = SALasso(**kw)
        est.partial_fit(A, b)
        first = est.coef_.copy()
        est.partial_fit(B, y)
        assert est.stream_.revision == 1
        assert est.coef_.shape == (60,)
        # cold reference on the concatenated data with the same warm start
        A_eff, b_eff = est.stream_.materialize()
        cold_dist = RowPartitionedMatrix.from_global(
            A_eff, VirtualComm(1), partition=est.stream_.dist.partition
        )
        cold = fit_lasso(cold_dist, b_eff, 0.5, solver="sa-accbcd", mu=2,
                         s=8, max_iter=96, tol=None, seed=1, x0=first,
                         record_every=max(1, 96 // 50))
        scale = max(float(np.max(np.abs(cold.x))), 1e-30)
        assert float(np.max(np.abs(est.coef_ - cold.x))) / scale <= 1e-9

    def test_lasso_fit_resets_stream(self):
        A, b, B, y = self._lasso_data()
        est = SALasso(lam=0.5, mu=2, s=8, max_iter=48, tol=None)
        est.partial_fit(A, b).partial_fit(B, y)
        assert hasattr(est, "stream_")
        est.fit(A, b)
        assert not hasattr(est, "stream_")

    def test_lasso_feature_mismatch_rejected(self):
        from repro.errors import PartitionError

        A, b, B, y = self._lasso_data()
        est = SALasso(lam=0.5, mu=2, s=8, max_iter=48, tol=None)
        est.partial_fit(A, b)
        with pytest.raises(PartitionError, match="columns"):
            est.partial_fit(B[:, :-1], y)

    def test_svm_partial_fit_streams_and_predicts(self):
        from repro.datasets import make_classification

        A, ysign = make_classification(200, 50, density=0.3, seed=7,
                                       margin=0.3)
        B, bsign = make_classification(24, 50, density=0.3, seed=8,
                                       margin=0.3)
        y = np.where(ysign > 0, "pos", "neg")
        yb = np.where(bsign > 0, "pos", "neg")
        clf = SASVMClassifier(loss="l2", lam=0.1, s=16, max_iter=8000,
                              tol=1e-2, seed=1)
        clf.partial_fit(A, y)
        m0_alpha = clf.dual_coef_.shape[0]
        clf.partial_fit(B, yb)
        assert clf.stream_.revision == 1
        assert clf.dual_coef_.shape[0] == m0_alpha + 24
        assert set(np.unique(clf.predict(B))) <= {"pos", "neg"}
        assert clf.score(A, y) > 0.7

    def test_svm_single_class_batch_ok_unknown_label_rejected(self):
        from repro.datasets import make_classification

        A, ysign = make_classification(120, 30, density=0.4, seed=2,
                                       margin=0.3)
        B, _ = make_classification(10, 30, density=0.4, seed=3, margin=0.3)
        clf = SASVMClassifier(loss="l2", lam=0.1, s=16, max_iter=2000,
                              tol=None, seed=1)
        clf.partial_fit(A, ysign)
        clf.partial_fit(B, np.ones(10))  # single-class batch is fine
        with pytest.raises(SolverError, match="classes_"):
            clf.partial_fit(B, np.full(10, 7.0))

    def test_svm_first_batch_needs_both_classes(self):
        from repro.datasets import make_classification

        A, _ = make_classification(60, 20, density=0.5, seed=4, margin=0.3)
        clf = SASVMClassifier(max_iter=500)
        with pytest.raises(SolverError, match="binary"):
            clf.partial_fit(A, np.ones(60))


class TestPartialFitWindow:
    """Sliding-window partial_fit: forget= and max_rows= (ISSUE 5)."""

    def _lasso_data(self):
        A, b, _ = make_sparse_regression(240, 60, density=0.2, seed=3)
        B, y, _ = make_sparse_regression(30, 60, density=0.2, seed=4)
        return A, b, B, y

    def test_lasso_forget_evicts_before_append(self):
        A, b, B, y = self._lasso_data()
        est = SALasso(lam=0.5, mu=2, s=8, max_iter=64, tol=None)
        est.partial_fit(A, b)
        est.partial_fit(B, y, forget=np.arange(40))
        assert est.stream_.n_rows == A.shape[0] - 40 + 30
        # the forgotten rows are gone from the surviving set
        assert est.stream_.surviving_rows()[0] == 40
        # two revisions: the eviction, then the append
        assert [r.rows_removed for r in est.stream_.revisions] == [0, 40, 0]
        assert [r.rows_added for r in est.stream_.revisions] == [240, 0, 30]

    def test_lasso_max_rows_window(self):
        A, b, B, y = self._lasso_data()
        est = SALasso(lam=0.5, mu=2, s=8, max_iter=64, tol=None,
                      max_rows=A.shape[0])
        est.partial_fit(A, b)
        est.partial_fit(B, y)
        assert est.stream_.n_rows == A.shape[0]
        assert est.stream_.revisions[-1].rows_removed == B.shape[0]

    def test_empty_batch_is_noop_after_first_fit(self):
        A, b, B, y = self._lasso_data()
        est = SALasso(lam=0.5, mu=2, s=8, max_iter=64, tol=None)
        est.partial_fit(A, b)
        coef = est.coef_.copy()
        est.partial_fit(B[:0], y[:0])  # nothing changed, nothing refit
        assert np.array_equal(est.coef_, coef)
        assert len(est.stream_.revisions) == 1

    def test_empty_first_batch_rejected(self):
        A, b, B, y = self._lasso_data()
        with pytest.raises(SolverError, match="at least one row"):
            SALasso(max_iter=64, tol=None).partial_fit(B[:0], y[:0])

    def test_forget_requires_streaming_state(self):
        A, b, B, y = self._lasso_data()
        with pytest.raises(SolverError, match="forget"):
            SALasso(max_iter=64, tol=None).partial_fit(A, b, forget=[0])

    def test_bad_batch_with_forget_mutates_nothing(self):
        """A doomed append must be rejected *before* the forget= eviction
        fires — a failed call leaves the streaming state untouched."""
        from repro.errors import PartitionError

        A, b, B, y = self._lasso_data()
        est = SALasso(lam=0.5, mu=2, s=8, max_iter=64, tol=None)
        est.partial_fit(A, b)
        with pytest.raises(PartitionError, match="columns"):
            est.partial_fit(B[:, :-1], y, forget=np.arange(20))
        with pytest.raises(SolverError, match="labels must match"):
            est.partial_fit(B, y[:-1], forget=np.arange(20))
        assert est.stream_.n_rows == A.shape[0]  # nothing was evicted
        assert len(est.stream_.revisions) == 1

    def test_forget_with_empty_batch_still_refits(self):
        A, b, B, y = self._lasso_data()
        est = SALasso(lam=0.5, mu=2, s=8, max_iter=64, tol=None)
        est.partial_fit(A, b)
        est.partial_fit(B[:0], y[:0], forget=np.arange(30))
        assert est.stream_.n_rows == A.shape[0] - 30
        # the eviction-only revision got its own warm refit
        assert len(est.stream_.revisions) == 2
        assert len(est.stream_.revisions[-1].solve_costs) == 1

    def test_svm_forget_shrinks_dual(self):
        from repro.datasets import make_classification

        A, ysign = make_classification(200, 50, density=0.3, seed=7,
                                       margin=0.3)
        B, bsign = make_classification(24, 50, density=0.3, seed=8,
                                       margin=0.3)
        clf = SASVMClassifier(loss="l2", lam=0.1, s=16, max_iter=2000,
                              tol=None, seed=1, max_rows=A.shape[0])
        clf.partial_fit(A, ysign)
        clf.partial_fit(B, bsign, forget=np.arange(10))
        # -10 forgotten, +24 appended, window trims 14 more
        assert clf.stream_.n_rows == A.shape[0]
        assert clf.dual_coef_.shape[0] == A.shape[0]
        assert clf.stream_.revisions[-1].rows_removed == 14
