"""Tests for the high-level fit_lasso / fit_svm API."""

import numpy as np
import pytest

from repro import ElasticNetPenalty, fit_lasso, fit_svm
from repro.errors import SolverError
from repro.machine.spec import CRAY_XC30


class TestFitLasso:
    def test_default_solver(self, small_regression):
        A, b, _ = small_regression
        res = fit_lasso(A, b, lam=0.9, max_iter=100)
        assert res.solver.startswith("sa-accbcd")
        assert res.x.shape == (A.shape[1],)

    @pytest.mark.parametrize("solver", ["bcd", "sa-bcd", "accbcd", "sa-accbcd"])
    def test_all_solvers(self, small_regression, solver):
        A, b, _ = small_regression
        res = fit_lasso(A, b, lam=0.9, solver=solver, max_iter=60, mu=2, s=8)
        assert res.history.metric[-1] < res.history.metric[0]

    def test_penalty_object(self, small_regression):
        A, b, _ = small_regression
        res = fit_lasso(A, b, lam=ElasticNetPenalty(0.5, scale=0.5),
                        max_iter=60)
        assert np.all(np.isfinite(res.x))

    def test_unknown_solver(self, small_regression):
        A, b, _ = small_regression
        with pytest.raises(SolverError):
            fit_lasso(A, b, lam=1.0, solver="adam")

    def test_virtual_p_and_machine(self, small_regression):
        A, b, _ = small_regression
        res = fit_lasso(A, b, lam=0.9, virtual_p=1024, machine=CRAY_XC30,
                        max_iter=30, record_every=0)
        assert res.cost.comm_seconds > 0

    def test_equivalence_through_api(self, small_regression):
        A, b, _ = small_regression
        r1 = fit_lasso(A, b, lam=0.9, solver="accbcd", mu=2, max_iter=50, seed=3)
        r2 = fit_lasso(A, b, lam=0.9, solver="sa-accbcd", mu=2, s=10,
                       max_iter=50, seed=3)
        assert np.allclose(r1.x, r2.x, atol=1e-10)

    def test_sparsity_induced(self, small_regression):
        A, b, _ = small_regression
        lam_big = float(np.max(np.abs(A.T @ b))) * 2
        res = fit_lasso(A, b, lam=lam_big, solver="bcd", mu=4, max_iter=400)
        assert np.count_nonzero(res.x) < A.shape[1] // 2


class TestWarmStarts:
    """Satellite: x0 round-trips through every lasso solver (fast and
    reference) and the SVM dual init through fit_svm."""

    @pytest.mark.parametrize("solver", ["bcd", "sa-bcd", "accbcd", "sa-accbcd"])
    @pytest.mark.parametrize("fast", [True, False])
    def test_x0_roundtrip_all_lasso_solvers(self, small_regression, solver,
                                            fast):
        A, b, _ = small_regression
        ref = fit_lasso(A, b, lam=0.9, solver=solver, mu=2, s=8,
                        max_iter=120, fast=fast)
        # restarting from the solution stays at the solution
        again = fit_lasso(A, b, lam=0.9, solver=solver, mu=2, s=8,
                          max_iter=40, x0=ref.x, fast=fast)
        assert again.history.metric[0] == pytest.approx(ref.final_metric)
        assert again.final_metric <= ref.final_metric * (1 + 1e-9)

    @pytest.mark.parametrize("solver", ["bcd", "sa-bcd", "accbcd", "sa-accbcd"])
    def test_x0_wrong_length_rejected(self, small_regression, solver):
        A, b, _ = small_regression
        with pytest.raises(SolverError):
            fit_lasso(A, b, lam=0.9, solver=solver, max_iter=10,
                      x0=np.ones(A.shape[1] + 1))

    @pytest.mark.parametrize("solver", ["svm", "sa-svm"])
    def test_alpha0_roundtrip_svm(self, small_classification, solver):
        A, b = small_classification
        ref = fit_svm(A, b, loss="l1", solver=solver, max_iter=400)
        warm = fit_svm(A, b, loss="l1", solver=solver, max_iter=100,
                       alpha0=ref.extras["alpha"])
        # the warm solve starts from the reference's gap, not from zero
        assert warm.history.metric[0] == pytest.approx(ref.final_metric)
        assert warm.final_metric <= ref.history.metric[0]

    @pytest.mark.parametrize("solver", ["svm", "sa-svm"])
    def test_infeasible_alpha0_rejected(self, small_classification, solver):
        A, b = small_classification
        m = A.shape[0]
        with pytest.raises(SolverError):
            fit_svm(A, b, loss="l1", lam=1.0, solver=solver, max_iter=10,
                    alpha0=np.full(m, 5.0))  # above nu = lam
        with pytest.raises(SolverError):
            fit_svm(A, b, loss="l2", solver=solver, max_iter=10,
                    alpha0=np.full(m, -0.1))  # negative

    def test_fit_lasso_parity_knob(self, small_regression):
        A, b, _ = small_regression
        exact = fit_lasso(A, b, lam=0.9, mu=4, s=8, max_iter=80,
                          parity="exact")
        fp = fit_lasso(A, b, lam=0.9, mu=4, s=8, max_iter=80,
                       parity="fp-tolerant")
        drift = np.linalg.norm(fp.x - exact.x)
        assert drift / max(np.linalg.norm(exact.x), 1e-300) <= 1e-9
        with pytest.raises(SolverError):
            fit_lasso(A, b, lam=0.9, parity="bogus")

    def test_parity_validated_for_non_sa_solvers(self, small_regression,
                                                 small_classification):
        """A parity typo fails uniformly, even where the knob is a no-op."""
        A, b, _ = small_regression
        with pytest.raises(SolverError):
            fit_lasso(A, b, lam=0.9, solver="bcd", parity="fp-tolernt")
        Ac, bc = small_classification
        with pytest.raises(SolverError):
            fit_svm(Ac, bc, solver="svm", parity="fp-tolernt")


class TestFitSvm:
    def test_default_sa(self, small_classification):
        A, b = small_classification
        res = fit_svm(A, b, loss="l2", max_iter=500)
        assert res.solver.startswith("sa-svm")
        assert res.final_metric < res.history.metric[0]

    def test_classical(self, small_classification):
        A, b = small_classification
        res = fit_svm(A, b, solver="svm", loss="l1", max_iter=300)
        assert "alpha" in res.extras

    def test_tol(self, small_classification):
        A, b = small_classification
        res = fit_svm(A, b, loss="l2", max_iter=10**5, tol=1.0,
                      record_every=200)
        assert res.converged

    def test_unknown_solver(self, small_classification):
        A, b = small_classification
        with pytest.raises(SolverError):
            fit_svm(A, b, solver="smo")

    def test_equivalence_through_api(self, small_classification):
        A, b = small_classification
        r1 = fit_svm(A, b, solver="svm", loss="l1", max_iter=200, seed=9)
        r2 = fit_svm(A, b, solver="sa-svm", s=25, loss="l1", max_iter=200, seed=9)
        assert np.allclose(r1.x, r2.x, atol=1e-11)


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
