"""Tests for non-accelerated (SA-)BCD — paper's BCD/CD curves.

The central invariant (paper §III): with equal seeds, SA-BCD(s) produces
the same iterate sequence as BCD for any s, up to roundoff.
"""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.machine.spec import CRAY_XC30
from repro.mpi.virtual_backend import VirtualComm
from repro.prox.penalties import ElasticNetPenalty, GroupLassoPenalty, ZeroPenalty
from repro.solvers.lasso import bcd, cd, sa_bcd, sa_cd
from repro.solvers.lasso.reference import coordinate_descent_reference, fista
from repro.solvers.objectives import lasso_objective


LAM = 0.9


class TestBcdBasics:
    def test_objective_decreases(self, small_regression):
        A, b, _ = small_regression
        res = bcd(A, b, LAM, mu=4, max_iter=200, seed=0)
        h = res.history.metric
        assert h[-1] < h[0]
        # proximal BCD with exact block Lipschitz is monotone
        assert all(b <= a + 1e-9 for a, b in zip(h, h[1:], strict=False))

    def test_reaches_fista_optimum(self, small_regression):
        A, b, _ = small_regression
        res = bcd(A, b, LAM, mu=4, max_iter=2000, seed=0, record_every=0)
        _, trace = fista(A, b, LAM, max_iter=4000)
        assert res.final_metric == pytest.approx(trace[-1], rel=1e-6)

    def test_final_metric_consistent_with_x(self, small_regression):
        A, b, _ = small_regression
        res = bcd(A, b, LAM, mu=2, max_iter=50, seed=1)
        assert lasso_objective(A, b, res.x, LAM) == pytest.approx(res.final_metric)

    def test_matches_sequential_reference(self, small_regression):
        A, b, _ = small_regression
        res = bcd(A, b, LAM, mu=4, max_iter=150, seed=7)
        x_ref, _ = coordinate_descent_reference(A, b, LAM, mu=4, max_iter=150, seed=7)
        assert np.allclose(res.x, x_ref, atol=1e-12)

    def test_dense_input(self, dense_regression):
        A, b, _ = dense_regression
        res = bcd(A, b, LAM, mu=3, max_iter=100, seed=0)
        assert res.history.metric[-1] < res.history.metric[0]

    def test_warm_start(self, small_regression):
        A, b, _ = small_regression
        r1 = bcd(A, b, LAM, mu=4, max_iter=300, seed=0, record_every=0)
        r2 = bcd(A, b, LAM, mu=4, max_iter=50, seed=1, x0=r1.x, record_every=0)
        assert r2.final_metric <= r1.final_metric * (1 + 1e-9)

    def test_x0_wrong_length(self, small_regression):
        A, b, _ = small_regression
        with pytest.raises(SolverError):
            bcd(A, b, LAM, x0=np.zeros(3), max_iter=5)

    def test_record_every_zero(self, small_regression):
        A, b, _ = small_regression
        res = bcd(A, b, LAM, mu=2, max_iter=40, seed=0, record_every=0)
        assert len(res.history) == 2  # initial + final
        assert res.history.iterations == [0, 40]

    def test_tol_stops_early(self, small_regression):
        A, b, _ = small_regression
        res = bcd(A, b, LAM, mu=8, max_iter=5000, seed=0, tol=1e-10)
        assert res.converged and res.iterations < 5000

    def test_zero_penalty(self, small_regression):
        A, b, _ = small_regression
        res = bcd(A, b, ZeroPenalty(), mu=4, max_iter=300, seed=0)
        assert res.history.metric[-1] < res.history.metric[0]


class TestSaEquivalence:
    @pytest.mark.parametrize("s", [1, 2, 5, 16, 100])
    def test_sa_matches_bcd(self, small_regression, s):
        A, b, _ = small_regression
        r = bcd(A, b, LAM, mu=4, max_iter=100, seed=3)
        rs = sa_bcd(A, b, LAM, mu=4, s=s, max_iter=100, seed=3)
        assert np.allclose(r.x, rs.x, atol=1e-10)
        rel = abs(r.final_metric - rs.final_metric) / abs(r.final_metric)
        assert rel < 1e-12  # paper Table III: machine-precision agreement

    def test_sa_matches_cd_mu1(self, small_regression):
        A, b, _ = small_regression
        r = cd(A, b, LAM, max_iter=200, seed=9)
        rs = sa_cd(A, b, LAM, s=50, max_iter=200, seed=9)
        assert np.allclose(r.x, rs.x, atol=1e-10)

    def test_s_not_dividing_h(self, small_regression):
        # H=97 with s=16: last outer step has a short tail
        A, b, _ = small_regression
        r = bcd(A, b, LAM, mu=2, max_iter=97, seed=5)
        rs = sa_bcd(A, b, LAM, mu=2, s=16, max_iter=97, seed=5)
        assert rs.iterations == 97
        assert np.allclose(r.x, rs.x, atol=1e-10)

    def test_s_larger_than_h(self, small_regression):
        A, b, _ = small_regression
        r = bcd(A, b, LAM, mu=2, max_iter=10, seed=5)
        rs = sa_bcd(A, b, LAM, mu=2, s=64, max_iter=10, seed=5)
        assert np.allclose(r.x, rs.x, atol=1e-12)

    def test_history_iterations_align(self, small_regression):
        A, b, _ = small_regression
        r = bcd(A, b, LAM, mu=2, max_iter=60, seed=2)
        rs = sa_bcd(A, b, LAM, mu=2, s=10, max_iter=60, seed=2)
        assert r.history.iterations == rs.history.iterations
        assert np.allclose(r.history.metric, rs.history.metric, rtol=1e-10)

    def test_elastic_net_penalty(self, small_regression):
        A, b, _ = small_regression
        pen = ElasticNetPenalty(lam=0.4, scale=0.8)
        r = bcd(A, b, pen, mu=4, max_iter=80, seed=1)
        rs = sa_bcd(A, b, pen, mu=4, s=8, max_iter=80, seed=1)
        assert np.allclose(r.x, rs.x, atol=1e-10)
        assert r.history.metric[-1] < r.history.metric[0]

    def test_group_lasso_penalty(self, small_regression):
        A, b, _ = small_regression
        n = A.shape[1]
        gid = np.arange(n) // 4  # groups of 4
        pen = GroupLassoPenalty(0.6, group_ids=gid)
        r = bcd(A, b, pen, mu=2, max_iter=80, seed=1)
        rs = sa_bcd(A, b, pen, mu=2, s=8, max_iter=80, seed=1)
        assert np.allclose(r.x, rs.x, atol=1e-10)
        assert r.history.metric[-1] < r.history.metric[0]

    def test_invalid_s(self, small_regression):
        A, b, _ = small_regression
        with pytest.raises(SolverError):
            sa_bcd(A, b, LAM, s=0, max_iter=10)


class TestCommunicationCounts:
    def test_sa_reduces_messages_by_s(self, small_regression):
        A, b, _ = small_regression
        H, s, P = 64, 16, 256

        def run(fn, **kw):
            comm = VirtualComm(P, machine=CRAY_XC30)
            return fn(A, b, LAM, mu=2, max_iter=H, seed=0, comm=comm,
                      record_every=0, **kw)

        r = run(bcd)
        rs = run(sa_bcd, s=s)
        assert r.cost.messages == s * rs.cost.messages

    def test_sa_increases_words(self, small_regression):
        A, b, _ = small_regression

        def run(fn, **kw):
            comm = VirtualComm(64, machine=CRAY_XC30)
            return fn(A, b, LAM, mu=2, max_iter=32, seed=0, comm=comm,
                      record_every=0, **kw)

        r = run(bcd)
        rs = run(sa_bcd, s=8)
        assert rs.cost.words > r.cost.words
