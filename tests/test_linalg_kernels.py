"""Tests for the fast-path kernel layer (:mod:`repro.linalg.kernels`)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg.eig import largest_eigenvalue
from repro.linalg.kernels import (
    EigMemo,
    GatherWorkspace,
    acc_coef_tables,
    csc_range_matvec,
    default_eig_memo,
    eig_cache_clear,
    eig_cache_info,
    gather_columns,
    gather_rows,
    largest_eigenvalue_cached,
    sparse_columns,
    tri_plan,
)
from repro.solvers.lasso.common import theta_schedule


def _csr(m, n, density=0.3, seed=0):
    rng = np.random.default_rng(seed)
    return sp.random(m, n, density=density, format="csr", random_state=rng)


class TestGather:
    @pytest.mark.parametrize("idx", [[0], [3, 1, 4], [2, 2, 0], []])
    def test_gather_columns_matches_fancy_indexing(self, idx):
        A = _csr(30, 8, seed=1)
        csc = A.tocsc()
        idx = np.asarray(idx, dtype=np.intp)
        got = gather_columns(csc, idx)
        want = A[:, idx] if idx.size else sp.csr_matrix((30, 0))
        assert got.shape == (30, idx.size)
        assert np.array_equal(got.toarray(), want.toarray())

    def test_gather_rows_matches_fancy_indexing(self):
        A = _csr(12, 40, seed=2)
        idx = np.array([7, 0, 7, 11], dtype=np.intp)
        got = gather_rows(A, idx)
        assert got.shape == (4, 40)
        assert np.array_equal(got.toarray(), A[idx, :].toarray())

    def test_gather_preserves_values_bitwise(self):
        A = _csr(25, 10, seed=3)
        csc = A.tocsc()
        idx = np.array([4, 9, 0], dtype=np.intp)
        got = gather_columns(csc, idx)
        for out_j, src_j in enumerate(idx):
            lo, hi = csc.indptr[src_j], csc.indptr[src_j + 1]
            glo, ghi = got.indptr[out_j], got.indptr[out_j + 1]
            assert np.array_equal(got.data[glo:ghi], csc.data[lo:hi])
            assert np.array_equal(got.indices[glo:ghi], csc.indices[lo:hi])

    def test_empty_columns(self):
        A = sp.csc_matrix((8, 5))
        got = gather_columns(A, np.array([1, 3], dtype=np.intp))
        assert got.nnz == 0
        assert got.shape == (8, 2)

    def test_workspace_reuse_no_regrow(self):
        ws = GatherWorkspace()
        A = _csr(50, 20, density=0.4, seed=4).tocsc()
        idx = np.arange(10, dtype=np.intp)
        gather_columns(A, idx, ws)
        data_buf = ws._data
        indices_buf = ws._indices
        got = gather_columns(A, idx, ws)
        # steady state: same backing buffers, correct values
        assert ws._data is data_buf
        assert ws._indices is indices_buf
        assert np.array_equal(got.toarray(), A[:, idx].toarray())

    def test_workspace_output_invalidated_by_next_gather(self):
        # the documented lifetime contract: a gather's output aliases the
        # workspace, so the *next* gather may overwrite it
        ws = GatherWorkspace()
        A = sp.csc_matrix(np.arange(1.0, 10.0).reshape(3, 3))
        first = gather_columns(A, np.array([0], dtype=np.intp), ws)
        before = first.toarray().copy()
        gather_columns(A, np.array([2], dtype=np.intp), ws)
        assert not np.array_equal(first.toarray(), before)

    def test_matvec_and_gram_consistency(self):
        A = _csr(40, 15, seed=5)
        csc = A.tocsc()
        idx = np.array([3, 8, 14, 0], dtype=np.intp)
        S = gather_columns(csc, idx)
        ref = A[:, idx]
        x = np.random.default_rng(0).standard_normal(4)
        assert np.allclose(S @ x, ref @ x)
        assert np.allclose((S.T @ S).toarray(), (ref.T @ ref).toarray())


class TestTriPlan:
    @pytest.mark.parametrize("k", [1, 2, 5, 17])
    def test_matches_tril_indices(self, k):
        il, jl, flat = tri_plan(k)
        ref_il, ref_jl = np.tril_indices(k)
        assert np.array_equal(il, ref_il)
        assert np.array_equal(jl, ref_jl)
        assert np.array_equal(flat, ref_il * k + ref_jl)

    def test_cached_identity(self):
        assert tri_plan(7)[2] is tri_plan(7)[2]


class TestEigCache:
    def test_matches_uncached(self):
        rng = np.random.default_rng(8)
        M = rng.standard_normal((10, 6))
        G = M.T @ M
        assert largest_eigenvalue_cached(G) == largest_eigenvalue(G)

    def test_scalar_block(self):
        assert largest_eigenvalue_cached(np.array([[3.5]])) == 3.5
        assert largest_eigenvalue_cached(np.array([[-1.0]])) == 0.0

    def test_repeat_hits_cache(self):
        rng = np.random.default_rng(9)
        M = rng.standard_normal((12, 5))
        G = M.T @ M
        v1 = largest_eigenvalue_cached(G)
        hits_before = eig_cache_info().hits
        v2 = largest_eigenvalue_cached(G.copy())  # same bytes, new array
        assert v1 == v2
        assert eig_cache_info().hits == hits_before + 1

    def test_noncontiguous_input(self):
        rng = np.random.default_rng(10)
        M = rng.standard_normal((16, 16))
        big = M @ M.T
        view = big[2:6, 2:6]  # non-contiguous slice, like G[sl_j, sl_j]
        assert largest_eigenvalue_cached(view) == largest_eigenvalue(view)

    def test_explicit_memo_is_isolated(self):
        rng = np.random.default_rng(11)
        M = rng.standard_normal((8, 4))
        G = M.T @ M
        memo = EigMemo(maxsize=8)
        assert largest_eigenvalue_cached(G, memo=memo) == largest_eigenvalue(G)
        assert memo.cache_info().misses == 1
        largest_eigenvalue_cached(G, memo=memo)
        assert memo.cache_info().hits == 1

    def test_default_memo_clear(self):
        rng = np.random.default_rng(12)
        M = rng.standard_normal((9, 4))
        G = M.T @ M
        largest_eigenvalue_cached(G)
        eig_cache_clear()
        info = eig_cache_info()
        assert info.currsize == 0 and info.hits == 0 and info.misses == 0
        assert default_eig_memo().hit_rate == 0.0


class TestEigMemoBound:
    """Satellite: the memo cannot grow unbounded during long sweeps."""

    def _gram(self, seed, k=4):
        M = np.random.default_rng(seed).standard_normal((k + 3, k))
        return M.T @ M

    def test_size_bounded_with_lru_eviction(self):
        memo = EigMemo(maxsize=5)
        for i in range(20):
            memo.eig(self._gram(i))
        info = memo.cache_info()
        assert info.currsize == 5
        assert info.misses == 20
        # the 5 most recent entries survive, older ones were evicted
        hits0 = memo.cache_info().hits
        for i in range(15, 20):
            memo.eig(self._gram(i))
        assert memo.cache_info().hits == hits0 + 5
        memo.eig(self._gram(0))  # evicted: recomputed, not served
        assert memo.cache_info().misses == 21

    def test_lru_refresh_on_hit(self):
        memo = EigMemo(maxsize=2)
        a, b, c = self._gram(1), self._gram(2), self._gram(3)
        memo.eig(a)
        memo.eig(b)
        memo.eig(a)  # refresh a: b becomes LRU
        memo.eig(c)  # evicts b
        misses = memo.cache_info().misses
        memo.eig(a)
        assert memo.cache_info().misses == misses  # a still cached
        memo.eig(b)
        assert memo.cache_info().misses == misses + 1  # b was evicted

    def test_clear_resets_counters(self):
        memo = EigMemo(maxsize=3)
        memo.eig(self._gram(0))
        memo.eig(self._gram(0))
        memo.clear()
        info = memo.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)


class TestCscRangeMatvec:
    def test_matches_sliced_matvec(self):
        A = _csr(25, 12, density=0.4, seed=3).tocsc()
        x = np.random.default_rng(4).standard_normal(5)
        y, nnz = csc_range_matvec(A.indptr, A.indices, A.data, 3, 8, x, 25)
        want = A[:, 3:8] @ x
        assert np.allclose(y, want)
        assert nnz == A[:, 3:8].nnz

    def test_empty_range(self):
        A = sp.csc_matrix((10, 6))
        y, nnz = csc_range_matvec(A.indptr, A.indices, A.data, 1, 4,
                                  np.ones(3), 10)
        assert y is None and nnz == 0

    def test_duplicate_rows_accumulate(self):
        # two columns sharing a row must sum, not overwrite
        A = sp.csc_matrix(np.array([[1.0, 2.0], [0.0, 3.0]]))
        y, nnz = csc_range_matvec(A.indptr, A.indices, A.data, 0, 2,
                                  np.array([1.0, 1.0]), 2)
        assert np.allclose(y, [3.0, 3.0]) and nnz == 3


class TestCoefTables:
    def test_matches_scalar_recurrences(self):
        q = 11.0
        thetas = theta_schedule(0.17, 6)[:6]
        t2, qth, coefs, C = acc_coef_tables(thetas, q)
        for j, th in enumerate(thetas):
            assert t2[j] == th * th
            assert qth[j] == q * th
            assert coefs[j] == (1.0 - q * th) / (th * th)
            for t in range(j):
                tt = thetas[t]
                c_jt = (th * th) * (1.0 - q * tt) / (tt * tt) - 1.0
                assert C[j, t] == c_jt

    def test_single_step(self):
        t2, qth, coefs, C = acc_coef_tables([0.5], 2.0)
        assert t2.shape == (1,) and C.shape == (1, 1)


class TestSparseColumns:
    def test_dense_passthrough(self):
        assert sparse_columns(np.ones((3, 2))) is None

    def test_csc_is_free(self):
        A = _csr(5, 5).tocsc()
        assert sparse_columns(A) is A
