"""Tests for repro.mpi.ops — deterministic rank-order reductions."""

import numpy as np
import pytest

from repro.mpi.ops import LAND, LOR, MAX, MIN, PROD, SUM


class TestScalarFolds:
    def test_sum(self):
        assert SUM.fold([1, 2, 3]) == 6

    def test_prod(self):
        assert PROD.fold([2, 3, 4]) == 24

    def test_max_min(self):
        assert MAX.fold([3, 1, 2]) == 3
        assert MIN.fold([3, 1, 2]) == 1

    def test_logical(self):
        assert LAND.fold([True, True, False]) is False
        assert LOR.fold([False, False, True]) is True

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SUM.fold([])

    def test_single(self):
        assert SUM.fold([5]) == 5


class TestArrayFolds:
    def test_sum_arrays(self):
        out = SUM.fold([np.ones(3), 2 * np.ones(3)])
        assert np.array_equal(out, 3 * np.ones(3))

    def test_input_not_mutated(self):
        a = np.ones(3)
        SUM.fold([a, np.ones(3)])
        assert np.array_equal(a, np.ones(3))

    def test_max_elementwise(self):
        out = MAX.fold([np.array([1.0, 5.0]), np.array([4.0, 2.0])])
        assert np.array_equal(out, [4.0, 5.0])

    def test_fold_is_left_to_right(self):
        # Floating-point check: fold order must be rank order, always.
        xs = [np.array([1e16]), np.array([1.0]), np.array([-1e16])]
        expected = (xs[0] + xs[1]) + xs[2]
        assert SUM.fold(xs)[0] == expected[0]

    def test_single_array_copies(self):
        a = np.ones(2)
        out = SUM.fold([a])
        out += 1
        assert np.array_equal(a, np.ones(2))
