"""Randomized SPMD collective fuzz harness, backend-agnostic.

The hand-written contract suite (``spmd_collective_suite``) pins each
collective's semantics in isolation; this harness pins their
*composition*: seeded random sequences of collectives — blocking and
nonblocking, object and buffer, mixed dtypes/shapes/roots, interleaved
``wait``/``test``/deferred completion, random local compute between ops
— executed on any backend and checked two ways:

* **oracle folds** — every op's expected result is computed by a
  sequential oracle from the same synthesized per-rank payloads, using
  the same rank-ordered :class:`~repro.mpi.ops.Op` folds. A backend is
  correct iff every rank's observed result is *bit-identical* to the
  oracle's, which also makes results bit-identical across backends.
* **ledger reconstruction** — the same sequence re-run with every
  ``Iallreduce`` replaced by its blocking twin must charge identical
  traffic (messages, words) and flops, with the nonblocking run's
  ``comm_seconds + comm_seconds_hidden`` exactly reconstructing the
  blocking run's ``comm_seconds``.

``tests/test_spmd_fuzz.py`` drives this over the virtual, thread, and
process backends; a small-P slice runs in the ``process-backend-smoke``
CI job and the full seed set in the nightly profile.
"""

from __future__ import annotations

import numpy as np

from repro.machine.ledger import CostLedger
from repro.mpi.ops import MAX, MIN, SUM
from repro.mpi.thread_backend import SpmdResult
from repro.mpi.virtual_backend import VirtualComm

__all__ = [
    "make_sequence",
    "make_fault_plan",
    "make_die_plan",
    "make_async_sequence",
    "run_sequence",
    "run_async_sequence",
    "expected_results",
    "expected_async",
    "assert_results_equal",
    "assert_async_equal",
    "assert_ledger_reconstruction",
    "assert_async_ledger_reconstruction",
    "virtual_spmd_run",
]

_REDUCTIONS = {"sum": SUM, "max": MAX, "min": MIN}

#: ring depth of the nonblocking backends — the fuzzer never keeps more
#: requests in flight (mirrors the pipelined solvers' double buffer)
_MAX_IN_FLIGHT = 2


def virtual_spmd_run(fn, size, machine=None, cost_size=None, **_ignored):
    """``spmd_run``-shaped adapter for the single-participant backend."""
    if size != 1:
        raise ValueError("the virtual backend has exactly one actual rank")
    comm = VirtualComm(virtual_size=cost_size or 1, machine=machine)
    value = fn(comm, 0)
    return SpmdResult(values=[value], ledgers=[comm.ledger])


# ---------------------------------------------------------------------------
# sequence generation
# ---------------------------------------------------------------------------


def make_fault_plan(seed: int, size: int, n_ops: int):
    """A deterministic transient-fault plan matched to a fuzz sequence.

    Only ``transient`` faults are drawn (recoverable by the bounded
    retry loop with every peer parked at the barrier), with ``count``
    capped below the default :class:`~repro.faults.RetryPolicy` budget —
    so a faulty run must complete *bit-identical* to the fault-free
    oracle. The ordinal space is padded past ``n_ops`` because a rank
    enters more collectives than there are ops (nonblocking posts and
    their drains count separately).
    """
    from repro.faults import FaultPlan

    return FaultPlan.random(
        seed, size=size, n_collectives=n_ops * 2, rate=0.15,
        kinds=("transient",), max_count=2,
    )


def make_die_plan(seed: int, size: int, n_ops: int):
    """One hard rank death at a seeded (rank, ordinal) cell.

    Paired with the process backend's ``recover="checkpoint"``: the
    supervisor must respawn the dead rank and the replayed attempt —
    inject only while ``comm.recovery.recoveries == 0`` so the retry
    runs clean — must still complete bit-identical to the fault-free
    oracle. The ordinal stays within the first half of the op program
    so the death always lands mid-sequence, never after the last
    collective.
    """
    from repro.faults import FaultEvent, FaultPlan

    rng = np.random.default_rng([0xD1E, seed])
    rank = int(rng.integers(0, size))
    ordinal = int(rng.integers(1, max(2, n_ops // 2)))
    return FaultPlan([FaultEvent(rank, ordinal, "die")])


def _rand_shape(rng) -> tuple:
    if rng.random() < 0.3:
        return (int(rng.integers(1, 4)), int(rng.integers(1, 5)))
    return (int(rng.integers(1, 9)),)


def make_sequence(seed: int, n_ops: int = 20, size: int = 2) -> list[dict]:
    """A deterministic random program of ``n_ops`` collectives.

    Each op is a plain dict consumed by both :func:`run_sequence` and the
    :func:`expected_results` oracle. The sequence always contains at
    least one nonblocking reduction with real interleaved compute, so
    the overlap-accounting checks never trivially pass.
    """
    rng = np.random.default_rng([0xF0, seed])
    kinds = ["allreduce", "Allreduce", "Iallreduce", "bcast", "Bcast",
             "allgather", "Allgather", "reduce", "Reduce", "scatter"]
    weights = np.array([0.10, 0.18, 0.25, 0.08, 0.08,
                        0.07, 0.07, 0.06, 0.06, 0.05])
    ops: list[dict] = []
    for _ in range(n_ops):
        kind = str(rng.choice(kinds, p=weights / weights.sum()))
        op = {"kind": kind, "flops": float(rng.uniform(0.0, 1e6))}
        if kind in ("allreduce", "reduce"):
            op["op"] = str(rng.choice(["sum", "max", "min"]))
            op["payload"] = str(rng.choice(["int", "float"]))
        if kind in ("Allreduce", "Reduce"):
            op["op"] = str(rng.choice(["sum", "max", "min"]))
            op["dtype"] = str(rng.choice(["f64", "f32", "i64"]))
            op["shape"] = _rand_shape(rng)
        if kind == "Iallreduce":
            op["op"] = str(rng.choice(["sum", "max", "min"]))
            op["dtype"] = "f64"  # the process backend's raw-slot contract
            op["shape"] = _rand_shape(rng)
            op["complete"] = str(rng.choice(["wait", "test", "defer"],
                                            p=[0.5, 0.25, 0.25]))
        if kind in ("bcast", "Bcast", "reduce", "Reduce", "scatter"):
            op["root"] = int(rng.integers(0, size))
        if kind == "allgather":
            op["payload"] = str(rng.choice(["int", "float"]))
        if kind == "Allgather":
            op["dtype"] = str(rng.choice(["f64", "f32"]))
            op["shape"] = (int(rng.integers(1, 6)),)
        if kind == "Bcast":
            op["dtype"] = str(rng.choice(["f64", "i64"]))
            op["shape"] = _rand_shape(rng)
        ops.append(op)
    # guarantee real overlap material for the ledger checks
    if not any(o["kind"] == "Iallreduce" for o in ops):
        ops[0] = {"kind": "Iallreduce", "op": "sum", "dtype": "f64",
                  "shape": (8,), "complete": "wait", "flops": 5e5}
    for o in ops:
        if o["kind"] == "Iallreduce" and o["flops"] < 1e5:
            o["flops"] = 5e5
    return ops


def make_async_sequence(seed: int, n_posts: int = 12, size: int = 2,
                        tau: int = 2) -> list[tuple]:
    """A deterministic async-ring program: posts and out-of-order harvests.

    Models exactly the discipline of the bounded-staleness solvers, but
    fuzzed: up to ``tau + 1`` ``Iallreduce`` requests in flight at once,
    each harvest picking a seeded *arbitrary* in-flight request (not
    necessarily the oldest — out-of-order within the ring window), with
    seeded compute between events and seeded ``bump_staleness`` calls on
    the survivors of some harvests. Run it on a world built with
    ``nb_depth = tau + 2``.

    Events are plain tuples consumed by both :func:`run_async_sequence`
    and the :func:`expected_async` oracle:

    * ``("post", op_dict)`` — post one ``Iallreduce``;
    * ``("harvest", pick, how, bump)`` — complete the ``pick``-th oldest
      in-flight request via ``how`` (``"wait"``/``"test"``), then, if
      ``bump``, bump the staleness of every request still in flight.
    """
    rng = np.random.default_rng([0xA5, seed])
    depth = tau + 2
    events: list[tuple] = []
    inflight: list[int] = []
    posted = 0
    while posted < n_posts or inflight:
        # a post is legal when the ring has room AND the request that
        # would share the next post's slot (seq `posted - depth`) has
        # been harvested — the backends raise NbRingDepthError otherwise
        can_post = (posted < n_posts and len(inflight) <= tau
                    and posted - depth not in inflight)
        must_post = not inflight and posted < n_posts
        if must_post or (can_post and rng.random() < 0.55):
            op = {
                "op": str(rng.choice(["sum", "max", "min"])),
                "dtype": "f64",  # the process backend's raw-slot contract
                "shape": _rand_shape(rng),
                "flops": float(rng.uniform(1e5, 1e6)),
            }
            events.append(("post", op))
            inflight.append(posted)
            posted += 1
        else:
            pick = int(rng.integers(0, len(inflight)))
            how = str(rng.choice(["wait", "test"], p=[0.7, 0.3]))
            bump = bool(rng.random() < 0.7)
            events.append(("harvest", pick, how, bump))
            inflight.pop(pick)
    return events


def _array_payload(seed: int, i: int, rank: int, op: dict) -> np.ndarray:
    rng = np.random.default_rng([0xDA, seed, i, rank])
    shape = tuple(op["shape"])
    if op.get("dtype") == "i64":
        return rng.integers(-50, 50, size=shape).astype(np.int64)
    arr = rng.standard_normal(shape)
    if op.get("dtype") == "f32":
        return arr.astype(np.float32)
    return arr


def _object_payload(seed: int, i: int, rank: int, op: dict) -> object:
    rng = np.random.default_rng([0x0B, seed, i, rank])
    if op.get("payload") == "int":
        return int(rng.integers(-100, 100))
    return float(rng.standard_normal())


def _scatter_items(seed: int, i: int, root: int, size: int) -> list:
    rng = np.random.default_rng([0x5C, seed, i, root])
    return [float(v) for v in rng.standard_normal(size)]


# ---------------------------------------------------------------------------
# SPMD executor
# ---------------------------------------------------------------------------


def run_sequence(comm, rank: int, seed: int, ops: list[dict],
                 force_blocking: bool = False) -> list:
    """Execute the op program on one rank; returns per-op results.

    ``force_blocking=True`` replaces every ``Iallreduce`` with its
    blocking twin (same payloads, same folds) — the reference run for
    the ledger-reconstruction check.

    Deferred completions honour the backends' documented nonblocking
    ring contract: at most ``NB_RING_DEPTH`` requests in flight, and a
    request must be completed before its slot's sequence number comes
    around again (posting request ``q`` first drains anything older
    than ``q - ring + 1`` — exactly the discipline the pipelined
    solvers' double buffer enforces by construction).
    """
    size = comm.size
    results: list = [None] * len(ops)
    #: (op index, CommRequest, nb sequence), FIFO
    pending: list[tuple[int, object, int]] = []
    nb_seq = 0

    def complete(idx, req, how):
        if how == "test":
            while not req.test():
                pass
            results[idx] = req.wait()  # idempotent after test()
        else:
            results[idx] = req.wait()

    for i, op in enumerate(ops):
        kind = op["kind"]
        if kind == "allreduce":
            results[i] = comm.allreduce(
                _object_payload(seed, i, rank, op), op=_REDUCTIONS[op["op"]]
            )
        elif kind == "Allreduce":
            results[i] = comm.Allreduce(
                _array_payload(seed, i, rank, op), op=_REDUCTIONS[op["op"]]
            )
        elif kind == "Iallreduce":
            arr = _array_payload(seed, i, rank, op)
            red = _REDUCTIONS[op["op"]]
            if force_blocking:
                results[i] = comm.Allreduce(arr, op=red)
                comm.account_flops(op["flops"], "blas3")
                continue
            # ring discipline: drain anything that would go two
            # sequences stale, and never exceed the ring depth
            while pending and (
                pending[0][2] <= nb_seq - _MAX_IN_FLIGHT
                or len(pending) >= _MAX_IN_FLIGHT
            ):
                idx, req, _ = pending.pop(0)
                complete(idx, req, "wait")
            req = comm.Iallreduce(arr, op=red)
            seq, nb_seq = nb_seq, nb_seq + 1
            comm.account_flops(op["flops"], "blas3")  # overlap material
            if op["complete"] == "defer":
                pending.append((i, req, seq))
            else:
                complete(i, req, op["complete"])
            continue
        elif kind == "bcast":
            root = op["root"]
            obj = _object_payload(seed, i, root, op) if rank == root else None
            results[i] = comm.bcast(obj, root=root)
        elif kind == "Bcast":
            root = op["root"]
            buf = (_array_payload(seed, i, root, op) if rank == root
                   else np.zeros(tuple(op["shape"]),
                                 dtype=np.int64 if op["dtype"] == "i64"
                                 else np.float64))
            results[i] = comm.Bcast(buf, root=root)
        elif kind == "allgather":
            results[i] = comm.allgather(_object_payload(seed, i, rank, op))
        elif kind == "Allgather":
            results[i] = comm.Allgather(_array_payload(seed, i, rank, op))
        elif kind == "reduce":
            results[i] = comm.reduce(
                _object_payload(seed, i, rank, op),
                op=_REDUCTIONS[op["op"]], root=op["root"],
            )
        elif kind == "Reduce":
            results[i] = comm.Reduce(
                _array_payload(seed, i, rank, op),
                op=_REDUCTIONS[op["op"]], root=op["root"],
            )
        elif kind == "scatter":
            root = op["root"]
            objs = _scatter_items(seed, i, root, size) if rank == root else None
            results[i] = comm.scatter(objs, root=root)
        else:  # pragma: no cover - generator never emits unknown kinds
            raise ValueError(f"unknown op kind {kind!r}")
        comm.account_flops(op["flops"], "blas1")
    while pending:
        idx, req, _ = pending.pop(0)
        complete(idx, req, "wait")
    return results


def run_async_sequence(comm, rank: int, seed: int,
                       events: list[tuple],
                       force_blocking: bool = False) -> tuple[list, list]:
    """Execute an async-ring program on one rank.

    Returns ``(results, stale)``: the reduced array and the observed
    ``stale_steps`` for each post, indexed by post order.
    ``force_blocking=True`` replaces each post with its blocking twin
    (harvest events then only charge their compute) — the reference run
    for the three-way ledger reconstruction check.
    """
    n_posts = sum(1 for ev in events if ev[0] == "post")
    results: list = [None] * n_posts
    stale: list = [0] * n_posts
    inflight: list[tuple[int, object]] = []  # (post index, CommRequest)
    pi = 0
    for ev in events:
        if ev[0] == "post":
            op = ev[1]
            arr = _array_payload(seed, pi, rank, op)
            red = _REDUCTIONS[op["op"]]
            if force_blocking:
                results[pi] = comm.Allreduce(arr, op=red)
            else:
                inflight.append((pi, comm.Iallreduce(arr, op=red)))
            pi += 1
            comm.account_flops(op["flops"], "blas3")
        else:
            _, pick, how, bump = ev
            if not force_blocking:
                idx, req = inflight.pop(pick)
                if how == "test":
                    while not req.test():
                        pass
                results[idx] = req.wait()
                stale[idx] = req.stale_steps
                if bump:
                    for _, other in inflight:
                        other.bump_staleness()
            # the harvest point's local compute happens either way
            comm.account_flops(2e5, "blas1")
    assert not inflight, "generator bug: program left requests in flight"
    return results, stale


# ---------------------------------------------------------------------------
# sequential oracle
# ---------------------------------------------------------------------------


def expected_results(seed: int, ops: list[dict], size: int) -> list[list]:
    """Per-rank expected results, folded rank-ordered by the oracle."""
    out: list[list] = [[None] * len(ops) for _ in range(size)]
    for i, op in enumerate(ops):
        kind = op["kind"]
        if kind in ("allreduce", "reduce"):
            payloads = [_object_payload(seed, i, r, op) for r in range(size)]
            folded = _REDUCTIONS[op["op"]].fold(payloads)
            for r in range(size):
                if kind == "allreduce":
                    out[r][i] = folded
                else:
                    out[r][i] = folded if r == op["root"] else None
        elif kind in ("Allreduce", "Iallreduce", "Reduce"):
            payloads = [_array_payload(seed, i, r, op) for r in range(size)]
            folded = _REDUCTIONS[op["op"]].fold(payloads)
            for r in range(size):
                if kind == "Reduce":
                    out[r][i] = folded if r == op["root"] else None
                else:
                    out[r][i] = folded
        elif kind in ("bcast", "Bcast"):
            root = op["root"]
            value = (_object_payload(seed, i, root, op) if kind == "bcast"
                     else _array_payload(seed, i, root, op))
            for r in range(size):
                out[r][i] = value
        elif kind == "allgather":
            gathered = [_object_payload(seed, i, r, op) for r in range(size)]
            for r in range(size):
                out[r][i] = gathered
        elif kind == "Allgather":
            gathered = np.concatenate([
                np.atleast_1d(_array_payload(seed, i, r, op))
                for r in range(size)
            ])
            for r in range(size):
                out[r][i] = gathered
        elif kind == "scatter":
            items = _scatter_items(seed, i, op["root"], size)
            for r in range(size):
                out[r][i] = items[r]
    return out


def expected_async(seed: int, events: list[tuple],
                   size: int) -> tuple[list[list], list]:
    """Oracle for an async-ring program.

    Returns ``(per_rank_results, stale_schedule)``: the rank-ordered
    folds every rank must observe for each post, and the staleness each
    request must report at its harvest — the number of bumping harvests
    it survived while in flight. The schedule is a pure function of the
    event list, so every rank (and every backend) must match it exactly.
    """
    n_posts = sum(1 for ev in events if ev[0] == "post")
    out: list[list] = [[None] * n_posts for _ in range(size)]
    stale: list = [0] * n_posts
    counts: dict[int, int] = {}
    inflight: list[int] = []
    pi = 0
    for ev in events:
        if ev[0] == "post":
            op = ev[1]
            payloads = [_array_payload(seed, pi, r, op) for r in range(size)]
            folded = _REDUCTIONS[op["op"]].fold(payloads)
            for r in range(size):
                out[r][pi] = folded
            inflight.append(pi)
            counts[pi] = 0
            pi += 1
        else:
            _, pick, how, bump = ev
            idx = inflight.pop(pick)
            stale[idx] = counts.pop(idx)
            if bump:
                for other in inflight:
                    counts[other] += 1
    return out, stale


def assert_async_equal(observed: tuple, expected_vals: list,
                       expected_stale: list) -> None:
    """One rank's async results and staleness schedule, both exact."""
    results, stale = observed
    assert_results_equal(results, expected_vals)
    assert stale == expected_stale, (stale, expected_stale)


def assert_results_equal(observed: list, expected: list) -> None:
    """Bitwise comparison of one rank's observed vs expected op results."""
    assert len(observed) == len(expected)
    for i, (got, want) in enumerate(zip(observed, expected, strict=True)):
        if isinstance(want, np.ndarray):
            assert isinstance(got, np.ndarray), f"op {i}: expected an array"
            assert got.dtype == want.dtype, (
                f"op {i}: dtype {got.dtype} != {want.dtype}"
            )
            assert got.shape == want.shape, (
                f"op {i}: shape {got.shape} != {want.shape}"
            )
            assert np.array_equal(got, want), f"op {i}: values differ"
        else:
            assert got == want, f"op {i}: {got!r} != {want!r}"


# ---------------------------------------------------------------------------
# ledger reconstruction
# ---------------------------------------------------------------------------


def assert_ledger_reconstruction(nb: CostLedger, blocking: CostLedger) -> None:
    """Charged + hidden of the NB run reconstructs the blocking bill."""
    assert nb.messages == blocking.messages
    assert nb.words == blocking.words
    assert nb.flops == blocking.flops
    assert nb.comm_seconds_hidden >= 0.0
    assert blocking.comm_seconds_hidden == 0.0
    recon = nb.comm_seconds + nb.comm_seconds_hidden
    assert abs(recon - blocking.comm_seconds) <= (
        1e-12 * max(1.0, blocking.comm_seconds)
    ), (recon, blocking.comm_seconds)


def assert_async_ledger_reconstruction(
    nb: CostLedger, blocking: CostLedger, max_stale: int
) -> None:
    """The three-way async split reconstructs the blocking bill.

    ``charged + hidden + stale`` must equal the blocking run's
    ``comm_seconds`` exactly, with identical traffic and flops —
    staleness hides time, it never discounts messages, words, or work —
    and the ``max_staleness`` watermark must equal the schedule's true
    maximum.
    """
    assert nb.messages == blocking.messages
    assert nb.words == blocking.words
    assert nb.flops == blocking.flops
    assert nb.comm_seconds_hidden >= 0.0
    assert nb.stale_seconds >= 0.0
    assert blocking.comm_seconds_hidden == 0.0
    assert blocking.stale_seconds == 0.0
    assert nb.max_staleness == max_stale, (nb.max_staleness, max_stale)
    recon = nb.comm_seconds + nb.comm_seconds_hidden + nb.stale_seconds
    assert abs(recon - blocking.comm_seconds) <= (
        1e-12 * max(1.0, blocking.comm_seconds)
    ), (recon, blocking.comm_seconds)
