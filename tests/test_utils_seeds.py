"""Tests for repro.utils.seeds — the shared-seed SPMD convention."""

import numpy as np
import pytest

from repro.utils.seeds import SeedBundle, shared_generator, spawn_rank_seed


class TestSharedGenerator:
    def test_same_seed_same_stream(self):
        g1 = shared_generator(42)
        g2 = shared_generator(42)
        assert np.array_equal(g1.integers(0, 1000, 50), g2.integers(0, 1000, 50))

    def test_different_seeds_differ(self):
        a = shared_generator(1).integers(0, 10**9, 20)
        b = shared_generator(2).integers(0, 10**9, 20)
        assert not np.array_equal(a, b)

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        g1 = shared_generator(seq)
        g2 = shared_generator(np.random.SeedSequence(7))
        assert np.array_equal(g1.integers(0, 100, 10), g2.integers(0, 100, 10))

    def test_choice_without_replacement_stream_is_stable(self):
        # This is the exact call pattern the samplers rely on.
        g1 = shared_generator(0)
        g2 = shared_generator(0)
        for _ in range(10):
            assert np.array_equal(g1.choice(100, 8, replace=False),
                                  g2.choice(100, 8, replace=False))


class TestSpawnRankSeed:
    def test_ranks_get_distinct_streams(self):
        g0 = np.random.Generator(np.random.PCG64(spawn_rank_seed(5, 0)))
        g1 = np.random.Generator(np.random.PCG64(spawn_rank_seed(5, 1)))
        assert not np.array_equal(g0.integers(0, 10**9, 20), g1.integers(0, 10**9, 20))

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            spawn_rank_seed(0, -1)

    def test_rank_stream_independent_of_shared(self):
        shared = shared_generator(5).integers(0, 10**9, 20)
        ranked = np.random.Generator(np.random.PCG64(spawn_rank_seed(5, 0))).integers(
            0, 10**9, 20
        )
        assert not np.array_equal(shared, ranked)


class TestSeedBundle:
    def test_shared_is_reproducible(self):
        b = SeedBundle(3)
        assert np.array_equal(b.shared().integers(0, 100, 5),
                              b.shared().integers(0, 100, 5))

    def test_per_rank_distinct(self):
        b = SeedBundle(3)
        assert not np.array_equal(b.per_rank(0).integers(0, 10**9, 10),
                                  b.per_rank(1).integers(0, 10**9, 10))

    def test_child_bundles_differ_by_tag(self):
        b = SeedBundle(3)
        c1, c2 = b.child(1), b.child(2)
        assert c1.root != c2.root

    def test_child_deterministic(self):
        assert SeedBundle(3).child(7).root == SeedBundle(3).child(7).root

    def test_none_seed_allowed(self):
        b = SeedBundle(None)
        b.shared().integers(0, 10, 3)
        b.per_rank(2).integers(0, 10, 3)
        assert b.child(1).root is None
