"""Tests for repro.machine.spec."""

import pytest

from repro.errors import CostModelError
from repro.machine.spec import (
    COMMODITY_CLUSTER,
    CRAY_XC30,
    FLOP_KINDS,
    NULL_MACHINE,
    SPARK_LIKE,
    MachineSpec,
    get_machine,
)


class TestPresets:
    def test_registry_lookup(self):
        assert get_machine("cray-xc30") is CRAY_XC30
        assert get_machine("commodity") is COMMODITY_CLUSTER
        assert get_machine("spark-like") is SPARK_LIKE

    def test_unknown_machine(self):
        with pytest.raises(CostModelError):
            get_machine("bluegene")

    def test_spark_has_much_higher_latency(self):
        # paper SVII: Spark-like frameworks have large latency costs
        assert SPARK_LIKE.alpha > 100 * CRAY_XC30.alpha

    def test_null_machine_free(self):
        assert NULL_MACHINE.alpha == 0.0 and NULL_MACHINE.beta == 0.0

    def test_all_kinds_have_rates(self):
        for kind in FLOP_KINDS:
            assert CRAY_XC30.flop_rate(kind) > 0


class TestFlopRate:
    def test_blas3_faster_than_blas1(self):
        # the driver of the paper's Fig. 4 computation speedups
        assert CRAY_XC30.flop_rate("blas3") > CRAY_XC30.flop_rate("blas1")

    def test_cache_penalty_applied(self):
        small = CRAY_XC30.flop_rate("blas3", working_set_bytes=1024)
        big = CRAY_XC30.flop_rate("blas3", working_set_bytes=1e9)
        assert big == pytest.approx(small * CRAY_XC30.cache_penalty)

    def test_no_working_set_no_penalty(self):
        assert CRAY_XC30.flop_rate("blas1") == CRAY_XC30.flop_rate(
            "blas1", working_set_bytes=None
        )

    def test_unknown_kind(self):
        with pytest.raises(CostModelError):
            CRAY_XC30.flop_rate("quantum")


class TestValidation:
    def test_negative_alpha_rejected(self):
        with pytest.raises(CostModelError):
            MachineSpec(name="bad", alpha=-1.0, beta=0.0)

    def test_missing_gamma_kind_rejected(self):
        with pytest.raises(CostModelError):
            MachineSpec(name="bad", alpha=0.0, beta=0.0, gamma={"blas1": 1e9})

    def test_nonpositive_rate_rejected(self):
        gam = dict(CRAY_XC30.gamma)
        gam["blas1"] = 0.0
        with pytest.raises(CostModelError):
            MachineSpec(name="bad", alpha=0.0, beta=0.0, gamma=gam)

    def test_cache_penalty_range(self):
        with pytest.raises(CostModelError):
            MachineSpec(name="bad", alpha=0.0, beta=0.0, cache_penalty=0.0)

    def test_with_overrides(self):
        m = CRAY_XC30.with_overrides(alpha=1e-3)
        assert m.alpha == 1e-3 and m.beta == CRAY_XC30.beta
        assert CRAY_XC30.alpha != 1e-3  # original untouched
