"""Tests for accelerated (SA-)BCD — paper Algorithms 1 and 2."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.prox.penalties import ElasticNetPenalty
from repro.solvers.lasso import acc_bcd, acc_cd, sa_acc_bcd, sa_acc_cd
from repro.solvers.lasso.common import theta_next
from repro.solvers.lasso.reference import fista
from repro.solvers.objectives import lasso_objective


LAM = 0.9


class TestThetaRecurrence:
    def test_decreasing(self):
        th = 0.25
        for _ in range(50):
            nxt = theta_next(th)
            assert 0 < nxt < th
            th = nxt

    def test_known_fixed_point_behaviour(self):
        # theta_h ~ 2/(h + 2/theta_0) asymptotically; just sanity-check decay
        th = 1.0
        for _ in range(1000):
            th = theta_next(th)
        assert th < 2e-3

    def test_invalid(self):
        with pytest.raises(SolverError):
            theta_next(0.0)


class TestAccBcdBasics:
    def test_objective_decreases_overall(self, small_regression):
        A, b, _ = small_regression
        res = acc_bcd(A, b, LAM, mu=4, max_iter=400, seed=0)
        h = res.history.metric
        assert h[-1] < 0.1 * h[0]

    def test_approaches_fista_optimum(self, small_regression):
        A, b, _ = small_regression
        res = acc_bcd(A, b, LAM, mu=8, max_iter=4000, seed=0, record_every=0)
        _, trace = fista(A, b, LAM, max_iter=4000)
        assert res.final_metric <= trace[-1] * 1.01

    def test_final_metric_consistent_with_x(self, small_regression):
        A, b, _ = small_regression
        res = acc_bcd(A, b, LAM, mu=2, max_iter=77, seed=1)
        assert lasso_objective(A, b, res.x, LAM) == pytest.approx(res.final_metric)

    def test_initial_objective_is_at_x0(self, small_regression):
        A, b, _ = small_regression
        x0 = np.linspace(-0.5, 0.5, A.shape[1])
        res = acc_bcd(A, b, LAM, mu=2, max_iter=5, seed=0, x0=x0)
        assert res.history.metric[0] == pytest.approx(
            lasso_objective(A, b, x0, LAM)
        )

    def test_acc_faster_than_plain_on_iterations(self, small_regression):
        # the paper's Fig. 2/3 observation: accelerated converges faster
        from repro.solvers.lasso import bcd

        A, b, _ = small_regression
        H = 1500
        r_plain = bcd(A, b, LAM, mu=2, max_iter=H, seed=0, record_every=0)
        r_acc = acc_bcd(A, b, LAM, mu=2, max_iter=H, seed=0, record_every=0)
        assert r_acc.final_metric <= r_plain.final_metric * 1.05

    def test_dense_input(self, dense_regression):
        A, b, _ = dense_regression
        res = acc_bcd(A, b, LAM, mu=2, max_iter=200, seed=0)
        assert res.history.metric[-1] < res.history.metric[0]


class TestSaAccEquivalence:
    @pytest.mark.parametrize("s", [1, 2, 7, 16, 128])
    def test_sa_matches_acc(self, small_regression, s):
        A, b, _ = small_regression
        r = acc_bcd(A, b, LAM, mu=4, max_iter=128, seed=3)
        rs = sa_acc_bcd(A, b, LAM, mu=4, s=s, max_iter=128, seed=3)
        assert np.allclose(r.x, rs.x, atol=1e-9)
        rel = abs(r.final_metric - rs.final_metric) / abs(r.final_metric)
        assert rel < 1e-12  # paper Table III

    def test_sa_acc_cd(self, small_regression):
        A, b, _ = small_regression
        r = acc_cd(A, b, LAM, max_iter=150, seed=2)
        rs = sa_acc_cd(A, b, LAM, s=30, max_iter=150, seed=2)
        assert np.allclose(r.x, rs.x, atol=1e-9)

    def test_large_s_1000_stable(self, small_regression):
        # paper Fig. 2 uses s = 1000 without numerical trouble
        A, b, _ = small_regression
        r = acc_bcd(A, b, LAM, mu=1, max_iter=1000, seed=0, record_every=0)
        rs = sa_acc_bcd(A, b, LAM, mu=1, s=1000, max_iter=1000, seed=0,
                        record_every=0)
        rel = abs(r.final_metric - rs.final_metric) / abs(r.final_metric)
        assert rel < 1e-10
        assert np.all(np.isfinite(rs.x))

    def test_history_alignment(self, small_regression):
        A, b, _ = small_regression
        r = acc_bcd(A, b, LAM, mu=2, max_iter=48, seed=4)
        rs = sa_acc_bcd(A, b, LAM, mu=2, s=12, max_iter=48, seed=4)
        assert r.history.iterations == rs.history.iterations
        assert np.allclose(r.history.metric, rs.history.metric, rtol=1e-9)

    def test_tail_outer_step(self, small_regression):
        A, b, _ = small_regression
        r = acc_bcd(A, b, LAM, mu=2, max_iter=50, seed=4, record_every=0)
        rs = sa_acc_bcd(A, b, LAM, mu=2, s=16, max_iter=50, seed=4, record_every=0)
        assert rs.iterations == 50
        assert np.allclose(r.x, rs.x, atol=1e-9)

    def test_elastic_net(self, small_regression):
        A, b, _ = small_regression
        pen = ElasticNetPenalty(lam=0.3, scale=0.5)
        r = acc_bcd(A, b, pen, mu=4, max_iter=96, seed=6)
        rs = sa_acc_bcd(A, b, pen, mu=4, s=16, max_iter=96, seed=6)
        assert np.allclose(r.x, rs.x, atol=1e-9)

    def test_theta_extras_match(self, small_regression):
        A, b, _ = small_regression
        r = acc_bcd(A, b, LAM, mu=2, max_iter=64, seed=0, record_every=0)
        rs = sa_acc_bcd(A, b, LAM, mu=2, s=8, max_iter=64, seed=0, record_every=0)
        assert r.extras["theta"] == pytest.approx(rs.extras["theta"], rel=1e-12)

    def test_invalid_s(self, small_regression):
        A, b, _ = small_regression
        with pytest.raises(SolverError):
            sa_acc_bcd(A, b, LAM, s=-1, max_iter=10)

    def test_x0_propagates(self, small_regression):
        A, b, _ = small_regression
        x0 = np.full(A.shape[1], 0.1)
        r = acc_bcd(A, b, LAM, mu=2, max_iter=32, seed=1, x0=x0)
        rs = sa_acc_bcd(A, b, LAM, mu=2, s=8, max_iter=32, seed=1, x0=x0)
        assert np.allclose(r.x, rs.x, atol=1e-10)
