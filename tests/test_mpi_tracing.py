"""Tests for repro.mpi.tracing."""

import numpy as np
import pytest

from repro.machine.spec import CRAY_XC30
from repro.mpi.tracing import comm_stats
from repro.mpi.virtual_backend import VirtualComm


class TestCommStats:
    def _comm_with_traffic(self):
        c = VirtualComm(virtual_size=16, machine=CRAY_XC30)
        for _ in range(5):
            c.Allreduce(np.ones(8))
        return c

    def test_counts(self):
        c = self._comm_with_traffic()
        stats = comm_stats(c.ledger)
        assert stats.calls == 5
        assert stats.messages == 5 * 4  # log2(16) rounds each
        assert stats.words == pytest.approx(5 * 4 * 8)

    def test_per_iteration(self):
        stats = comm_stats(self._comm_with_traffic().ledger).per_iteration(5)
        assert stats.calls == 1 and stats.messages == 4

    def test_per_iteration_invalid(self):
        with pytest.raises(ValueError):
            comm_stats(self._comm_with_traffic().ledger).per_iteration(0)

    def test_accepts_iterable(self):
        c1, c2 = self._comm_with_traffic(), self._comm_with_traffic()
        c2.Allreduce(np.ones(1))
        stats = comm_stats([c1.ledger, c2.ledger])
        assert stats.calls == 6  # slowest rank

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            comm_stats([])
