"""Tests for the shared-seed samplers."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solvers.sampling import BlockSampler, GroupBlockSampler, RowSampler


class TestBlockSampler:
    def test_block_properties(self):
        s = BlockSampler(50, 8, seed=0)
        for _ in range(20):
            blk = s.next_block()
            assert blk.shape == (8,)
            assert len(set(blk.tolist())) == 8  # no replacement
            assert blk.min() >= 0 and blk.max() < 50

    def test_same_seed_same_stream(self):
        s1, s2 = BlockSampler(100, 4, 7), BlockSampler(100, 4, 7)
        for _ in range(10):
            assert np.array_equal(s1.next_block(), s2.next_block())

    def test_sa_consumes_same_stream(self):
        # SA pulls s blocks per outer iteration from the same stream —
        # concatenating them must equal the non-SA per-iteration stream.
        s1, s2 = BlockSampler(100, 4, 7), BlockSampler(100, 4, 7)
        flat = [s1.next_block() for _ in range(12)]
        chunked = []
        for _ in range(4):
            chunked.extend(s2.next_block() for _ in range(3))
        assert all(np.array_equal(a, b) for a, b in zip(flat, chunked, strict=True))

    def test_mu_full(self):
        s = BlockSampler(10, 10, 0)
        assert sorted(s.next_block().tolist()) == list(range(10))

    def test_validation(self):
        with pytest.raises(SolverError):
            BlockSampler(0, 1)
        with pytest.raises(SolverError):
            BlockSampler(5, 6)
        with pytest.raises(SolverError):
            BlockSampler(5, 0)

    def test_accepts_generator(self):
        rng = np.random.default_rng(3)
        s = BlockSampler(10, 2, rng)
        s.next_block()


class TestGroupBlockSampler:
    def test_whole_groups(self):
        gid = np.array([0, 0, 1, 1, 1, 2])
        s = GroupBlockSampler(gid, groups_per_block=1, seed=0)
        for _ in range(10):
            blk = s.next_block()
            labels = set(gid[blk].tolist())
            assert len(labels) == 1
            g = labels.pop()
            assert blk.shape[0] == int(np.sum(gid == g))

    def test_multiple_groups(self):
        gid = np.array([0, 0, 1, 1, 2, 2])
        s = GroupBlockSampler(gid, groups_per_block=2, seed=1)
        blk = s.next_block()
        assert blk.shape[0] == 4

    def test_validation(self):
        with pytest.raises(SolverError):
            GroupBlockSampler(np.array([]), 1)
        with pytest.raises(SolverError):
            GroupBlockSampler(np.array([0, 1]), 3)


class TestRowSampler:
    def test_range(self):
        s = RowSampler(10, 0)
        idx = [s.next_index() for _ in range(100)]
        assert min(idx) >= 0 and max(idx) < 10

    def test_next_indices_matches_stream(self):
        s1, s2 = RowSampler(50, 3), RowSampler(50, 3)
        batch = s1.next_indices(20)
        singles = np.array([s2.next_index() for _ in range(20)])
        assert np.array_equal(batch, singles)

    def test_with_replacement(self):
        # duplicates must be possible (the SA-SVM beta correction path)
        s = RowSampler(2, 0)
        idx = s.next_indices(50)
        assert len(set(idx.tolist())) <= 2

    def test_validation(self):
        with pytest.raises(SolverError):
            RowSampler(0)
        with pytest.raises(SolverError):
            RowSampler(5).next_indices(0)
