"""Tests for SVM objectives and the duality gap."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.solvers.svm.duality import (
    duality_gap,
    hinge_losses,
    loss_params,
    prediction_accuracy,
    svm_dual_objective,
    svm_primal_objective,
)


class TestLossParams:
    def test_l1(self):
        gamma, nu = loss_params("l1", 2.0)
        assert gamma == 0.0 and nu == 2.0

    def test_l2(self):
        gamma, nu = loss_params("l2", 2.0)
        assert gamma == pytest.approx(0.25)  # 1/(2 lam), the Hsieh et al. D_ii
        assert nu == np.inf

    def test_aliases(self):
        assert loss_params("hinge", 1.0) == loss_params("SVM-L1", 1.0)
        assert loss_params("squared-hinge", 1.0) == loss_params("L2", 1.0)

    def test_invalid(self):
        with pytest.raises(SolverError):
            loss_params("l3", 1.0)
        with pytest.raises(SolverError):
            loss_params("l1", 0.0)


class TestObjectives:
    def test_hinge_values(self):
        margins = np.array([-1.0, 0.0, 2.0])
        assert np.allclose(hinge_losses(margins, "l1"), [0.0, 0.0, 2.0])
        assert np.allclose(hinge_losses(margins, "l2"), [0.0, 0.0, 4.0])

    def test_primal_at_zero(self):
        b = np.array([1.0, -1.0])
        # x = 0: P = lam * sum loss(1)
        p = svm_primal_objective(np.zeros(2), b, 0.0, 3.0, "l1")
        assert p == pytest.approx(6.0)

    def test_dual_at_zero(self):
        assert svm_dual_objective(np.zeros(4), 0.0, 0.5) == 0.0

    def test_gap_at_zero_start(self):
        b = np.array([1.0, -1.0, 1.0])
        gap = duality_gap(np.zeros(3), b, np.zeros(3), 0.0, 1.0, "l1")
        assert gap == pytest.approx(3.0)  # P(0) - D(0) = m * lam

    def test_gap_nonnegative_after_solve(self, small_classification):
        from repro.solvers.svm import dcd

        A, b = small_classification
        res = dcd(A, b, loss="l2", max_iter=800, seed=0)
        assert res.final_metric >= -1e-9


class TestAccuracy:
    def test_perfect(self):
        b = np.array([1.0, -1.0])
        assert prediction_accuracy(np.array([2.0, -0.5]), b) == 1.0

    def test_zero_score_counts_positive(self):
        assert prediction_accuracy(np.zeros(1), np.array([1.0])) == 1.0
        assert prediction_accuracy(np.zeros(1), np.array([-1.0])) == 0.0
