"""Tests for the benchmark regression guard (benchmarks/check_regression.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).parent.parent / "benchmarks" / "check_regression.py",
)
guard = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(guard)


BASE = {
    "meta": {"python": "3.11"},
    "kernels": {
        "sampling": {"speedup": 10.0, "note": "x"},
        "inner": {"speedup": 4.0},
    },
    "end_to_end": {"fig3": {"speedup": 2.0}},
}


def _with_speedups(sampling, inner, fig3):
    cur = json.loads(json.dumps(BASE))
    cur["kernels"]["sampling"]["speedup"] = sampling
    cur["kernels"]["inner"]["speedup"] = inner
    cur["end_to_end"]["fig3"]["speedup"] = fig3
    return cur


class TestIterSpeedups:
    def test_dotted_paths(self):
        got = {k: v for k, v, _ in guard.iter_speedups(BASE)}
        assert got == {
            "kernels.sampling": 10.0,
            "kernels.inner": 4.0,
            "end_to_end.fig3": 2.0,
        }

    def test_ignores_non_numeric_and_meta(self):
        assert list(guard.iter_speedups({"a": {"speedup": "fast"}})) == []

    def test_timed_scale_extracted(self):
        node = {"k": {"speedup": 3.0, "before_seconds": 1e-3,
                      "after_seconds": 2e-4}}
        (_, _, scale), = guard.iter_speedups(node)
        assert scale == 1e-3


class TestCompare:
    def test_pass_when_within_ratio(self):
        cur = _with_speedups(8.5, 3.3, 1.7)
        assert guard.compare(BASE, cur, min_ratio=0.8) == []

    def test_fail_on_regression(self):
        cur = _with_speedups(7.9, 4.0, 2.0)  # 7.9 < 0.8 * 10.0
        failures = guard.compare(BASE, cur, min_ratio=0.8)
        assert len(failures) == 1 and "kernels.sampling" in failures[0]

    def test_fail_on_missing_entry(self):
        cur = json.loads(json.dumps(BASE))
        del cur["end_to_end"]
        failures = guard.compare(BASE, cur, min_ratio=0.8)
        assert len(failures) == 1 and "missing" in failures[0]

    def test_improvements_and_new_entries_pass(self):
        cur = _with_speedups(20.0, 8.0, 4.0)
        cur["new_bench"] = {"speedup": 1.0}  # untracked by baseline: fine
        assert guard.compare(BASE, cur, min_ratio=0.8) == []

    def test_noise_floor_exempts_submicrosecond_entries(self, capsys):
        cur = _with_speedups(2.0, 4.0, 2.0)  # sampling regressed hard...
        cur["kernels"]["sampling"].update(
            before_seconds=8e-7, after_seconds=4e-7  # ...but sub-noise-floor
        )
        assert guard.compare(BASE, cur, min_ratio=0.8) == []
        assert "noise floor" in capsys.readouterr().out
        # same regression with real timings is still gated
        cur["kernels"]["sampling"].update(before_seconds=1e-2,
                                          after_seconds=5e-3)
        assert len(guard.compare(BASE, cur, min_ratio=0.8)) == 1


class TestMain:
    def _write(self, tmp_path, name, payload):
        p = tmp_path / name
        p.write_text(json.dumps(payload))
        return str(p)

    def test_exit_zero_on_pass(self, tmp_path, capsys):
        b = self._write(tmp_path, "base.json", BASE)
        c = self._write(tmp_path, "cur.json", _with_speedups(10.0, 4.0, 2.0))
        assert guard.main(["--baseline", b, "--current", c]) == 0
        assert "3 tracked speedups" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        b = self._write(tmp_path, "base.json", BASE)
        c = self._write(tmp_path, "cur.json", _with_speedups(1.0, 4.0, 2.0))
        assert guard.main(["--baseline", b, "--current", c]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_min_ratio_flag(self, tmp_path):
        b = self._write(tmp_path, "base.json", BASE)
        c = self._write(tmp_path, "cur.json", _with_speedups(5.5, 4.0, 2.0))
        assert guard.main(["--baseline", b, "--current", c,
                           "--min-ratio", "0.5"]) == 0
        assert guard.main(["--baseline", b, "--current", c,
                           "--min-ratio", "0.8"]) == 1

    def test_real_artifacts_self_compare(self):
        """The committed artifacts pass against themselves."""
        root = Path(__file__).parent.parent
        for name in ("BENCH_hot_paths.json", "BENCH_path_sweep.json",
                     "BENCH_streaming.json"):
            artifact = root / name
            if not artifact.exists():
                pytest.skip(f"{name} not present")
            rc = guard.main(["--baseline", str(artifact),
                             "--current", str(artifact)])
            assert rc == 0

    def test_missing_baseline_file_is_not_a_failure(self, tmp_path, capsys):
        """First run of a brand-new benchmark must not fail CI."""
        c = self._write(tmp_path, "cur.json", BASE)
        missing = str(tmp_path / "nope.json")
        assert guard.main(["--baseline", missing, "--current", c]) == 0
        assert "no committed baseline" in capsys.readouterr().out

    def test_missing_current_file_fails(self, tmp_path, capsys):
        b = self._write(tmp_path, "base.json", BASE)
        missing = str(tmp_path / "cur.json")
        assert guard.main(["--baseline", b, "--current", missing]) == 1
        assert "missing" in capsys.readouterr().out

    def test_new_entry_noted_not_gated(self, tmp_path, capsys):
        b = self._write(tmp_path, "base.json", BASE)
        cur = _with_speedups(10.0, 4.0, 2.0)
        cur["brand_new"] = {"speedup": 0.1}
        c = self._write(tmp_path, "cur.json", cur)
        assert guard.main(["--baseline", b, "--current", c]) == 0
        assert "new entry" in capsys.readouterr().out

    def test_multi_pair_reports_all_regressions(self, tmp_path, capsys):
        """A regressed first file no longer hides the second's report."""
        b1 = self._write(tmp_path, "b1.json", BASE)
        c1 = self._write(tmp_path, "c1.json", _with_speedups(1.0, 4.0, 2.0))
        b2 = self._write(tmp_path, "b2.json", BASE)
        c2 = self._write(tmp_path, "c2.json", _with_speedups(10.0, 0.5, 2.0))
        rc = guard.main(["--pair", b1, c1, "0.8", "--pair", b2, c2, "0.8"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "kernels.sampling" in out and "kernels.inner" in out
        assert "2 regression(s) across 2 benchmark file(s)" in out

    def test_multi_pair_per_pair_ratio(self, tmp_path):
        b = self._write(tmp_path, "b.json", BASE)
        c = self._write(tmp_path, "c.json", _with_speedups(5.5, 4.0, 2.0))
        assert guard.main(["--pair", b, c, "0.5"]) == 0
        assert guard.main(["--pair", b, c, "0.8"]) == 1

    def test_no_input_is_an_error(self):
        with pytest.raises(SystemExit):
            guard.main([])
