"""Edge cases of the per-solve cost-accounting lifecycle:
``Comm.reset()``, ``CostLedger.child()``, ``VirtualComm.child()``.

Sweep engines rely on these to report honest per-point costs; the edge
cases here (reset mid-solve, nested children, additivity across
children) are the ways that accounting silently goes wrong.
"""

import numpy as np
import pytest

from repro.datasets import make_sparse_regression
from repro.machine.ledger import CostLedger
from repro.machine.spec import CRAY_XC30
from repro.mpi.virtual_backend import VirtualComm
from repro.solvers.lasso import sa_acc_bcd


@pytest.fixture(scope="module")
def problem():
    return make_sparse_regression(300, 100, density=0.1, seed=4)


class TestCommReset:
    def test_reset_zeroes_every_counter(self):
        vc = VirtualComm(64, machine=CRAY_XC30)
        vc.Allreduce(np.ones(16))
        req = vc.Iallreduce(np.ones(16))
        vc.account_flops(100.0, "blas3")
        req.wait()
        assert vc.ledger.messages > 0
        vc.reset()
        led = vc.ledger
        assert (led.comm_seconds, led.compute_seconds, led.messages,
                led.words, led.flops, led.comm_seconds_hidden) == (0, 0, 0, 0, 0, 0)
        assert not led.by_collective and not led.by_kind

    def test_reset_mid_solve_keeps_later_charges(self, problem):
        """A reset between two solves must not poison the second solve.

        This is exactly what SweepContext.begin_point does: the same
        communicator (and its buffers) is reused, only the counters drop.
        """
        A, b, _ = problem
        vc = VirtualComm(64, machine=CRAY_XC30)
        sa_acc_bcd(A, b, 0.5, mu=2, s=8, max_iter=32, seed=0, comm=vc,
                   record_every=0)
        first = vc.ledger.snapshot()
        vc.reset()
        res = sa_acc_bcd(A, b, 0.5, mu=2, s=8, max_iter=32, seed=0, comm=vc,
                         record_every=0)
        # identical work after the reset => identical per-solve bill
        assert res.cost.messages == first.messages
        assert res.cost.words == pytest.approx(first.words)
        assert res.cost.flops == pytest.approx(first.flops)

    def test_reset_does_not_affect_in_flight_request_accounting(self):
        """A request posted before a reset still charges the new epoch
        consistently: overlap is measured against compute *since post*,
        which the reset rewinds — the charge must never go negative."""
        vc = VirtualComm(16, machine=CRAY_XC30)
        req = vc.Iallreduce(np.ones(8))
        vc.reset()
        req.wait()
        assert vc.ledger.comm_seconds >= 0.0
        assert vc.ledger.messages > 0


class TestLedgerChild:
    def test_child_inherits_config_not_counters(self):
        parent = CostLedger(machine=CRAY_XC30, flop_divisor=8.0,
                            imbalance=1.5, default_scale=2.0,
                            kind_scales={"gather": 3.0})
        parent.add_flops(80.0, "blas1")
        child = parent.child()
        assert child.flops == 0.0 and child.compute_seconds == 0.0
        assert child.flop_divisor == 8.0 and child.imbalance == 1.5
        assert child.default_scale == 2.0 and child.kind_scales == {"gather": 3.0}
        # configs are copies, not aliases
        child.kind_scales["gather"] = 99.0
        assert parent.kind_scales["gather"] == 3.0

    def test_nested_children_keep_config(self):
        parent = CostLedger(flop_divisor=4.0, default_scale=2.0)
        grandchild = parent.child().child()
        grandchild.add_flops(100.0)
        # 100 * scale 2 / divisor 4
        assert grandchild.flops == pytest.approx(50.0)
        assert parent.flops == 0.0

    def test_totals_additive_across_children(self):
        parent = CostLedger(machine=CRAY_XC30)
        kids = [parent.child() for _ in range(3)]
        for i, led in enumerate(kids):
            led.add_flops(100.0 * (i + 1), "blas1")
        total = sum(k.flops for k in kids)
        assert total == pytest.approx(600.0)
        # the parent saw none of it
        assert parent.flops == 0.0


class TestVirtualCommChild:
    def test_child_preserves_model_fresh_ledger(self):
        vc = VirtualComm(128, machine=CRAY_XC30, imbalance=1.25,
                         flop_scale=2.0, kind_scales={"spmv": 4.0})
        vc.Allreduce(np.ones(8))
        child = vc.child()
        assert child.cost_size == 128 and child.size == 1
        assert child.machine is vc.machine
        assert child.ledger.messages == 0 and child.ledger.flops == 0.0
        assert child.ledger.imbalance == 1.25
        assert child.ledger.default_scale == 2.0
        assert child.ledger.kind_scales == {"spmv": 4.0}
        # parent's accumulated costs survive untouched
        assert vc.ledger.messages > 0

    def test_nested_children(self):
        vc = VirtualComm(64, machine=CRAY_XC30)
        grandchild = vc.child().child()
        grandchild.Allreduce(np.ones(8))
        assert grandchild.ledger.messages == vc._cost_model.allreduce(8.0).messages
        assert vc.ledger.messages == 0

    def test_children_totals_additive(self, problem):
        """Per-point ledgers from children must sum to the one-comm bill."""
        A, b, _ = problem
        kw = dict(mu=2, s=8, max_iter=24, record_every=0)
        shared = VirtualComm(64, machine=CRAY_XC30)
        totals = []
        for seed in range(3):
            child = shared.child()
            res = sa_acc_bcd(A, b, 0.5, seed=seed, comm=child, **kw)
            totals.append(res.cost)
        lump = VirtualComm(64, machine=CRAY_XC30)
        for seed in range(3):
            sa_acc_bcd(A, b, 0.5, seed=seed, comm=lump, **kw)
        assert sum(t.messages for t in totals) == lump.ledger.messages
        assert sum(t.words for t in totals) == pytest.approx(lump.ledger.words)
        assert sum(t.flops for t in totals) == pytest.approx(lump.ledger.flops)
        # children never fed back into the parent
        assert shared.ledger.messages == 0
