"""Tests for dual CD SVM (Alg. 3) and SA-SVM (Alg. 4)."""

import numpy as np
import pytest

from conftest import dense_of
from repro.errors import SolverError
from repro.machine.spec import CRAY_XC30
from repro.mpi.virtual_backend import VirtualComm
from repro.solvers.svm import dcd, dcd_reference, prediction_accuracy, sa_dcd


class TestDcdBasics:
    @pytest.mark.parametrize("loss", ["l1", "l2"])
    def test_gap_shrinks(self, small_classification, loss):
        A, b = small_classification
        res = dcd(A, b, loss=loss, max_iter=2500, seed=0, record_every=500)
        gaps = res.history.metric
        assert gaps[-1] < 0.05 * gaps[0]
        # and it keeps improving over the trace, not just at the start
        assert gaps[-1] <= min(gaps[:-1])

    def test_matches_reference(self, small_classification):
        A, b = small_classification
        res = dcd(A, b, loss="l1", max_iter=400, seed=11)
        x_ref, a_ref, _ = dcd_reference(A, b, loss="l1", max_iter=400, seed=11)
        assert np.allclose(res.x, x_ref, atol=1e-12)
        assert np.allclose(res.extras["alpha"], a_ref, atol=1e-12)

    def test_dual_feasibility_l1(self, small_classification):
        A, b = small_classification
        lam = 1.0
        res = dcd(A, b, loss="l1", lam=lam, max_iter=1000, seed=0)
        alpha = res.extras["alpha"]
        assert np.all(alpha >= -1e-12) and np.all(alpha <= lam + 1e-12)

    def test_x_is_weighted_combination(self, small_classification):
        A, b = small_classification
        Ad = dense_of(A)
        res = dcd(A, b, loss="l2", max_iter=600, seed=1)
        alpha = res.extras["alpha"]
        assert np.allclose(res.x, Ad.T @ (b * alpha), atol=1e-10)

    def test_classifies_training_data(self, small_classification):
        A, b = small_classification
        res = dcd(A, b, loss="l2", max_iter=3000, seed=0)
        Ax = np.asarray(dense_of(A) @ res.x).ravel()
        assert prediction_accuracy(Ax, b) > 0.9

    def test_gap_tolerance_stops(self, small_classification):
        A, b = small_classification
        res = dcd(A, b, loss="l2", max_iter=10**5, seed=0, tol=1.0,
                  record_every=100)
        assert res.converged and res.iterations < 10**5
        assert res.final_metric <= 1.0

    def test_labels_validated(self, small_classification):
        A, b = small_classification
        with pytest.raises(SolverError):
            dcd(A, b * 2, max_iter=5)

    def test_dense_input(self, dense_classification):
        A, b = dense_classification
        res = dcd(A, b, loss="l1", max_iter=500, seed=0)
        assert res.final_metric < res.history.metric[0]

    def test_alpha0_warm_start(self, small_classification):
        A, b = small_classification
        r1 = dcd(A, b, loss="l2", max_iter=800, seed=0)
        r2 = dcd(A, b, loss="l2", max_iter=100, seed=1,
                 alpha0=r1.extras["alpha"])
        assert r2.history.metric[0] == pytest.approx(r1.final_metric, rel=1e-9)


class TestSaEquivalence:
    @pytest.mark.parametrize("loss", ["l1", "l2"])
    @pytest.mark.parametrize("s", [1, 3, 16, 64])
    def test_sa_matches_dcd(self, small_classification, loss, s):
        A, b = small_classification
        r = dcd(A, b, loss=loss, max_iter=300, seed=7)
        rs = sa_dcd(A, b, loss=loss, s=s, max_iter=300, seed=7)
        assert np.allclose(r.x, rs.x, atol=1e-11)
        assert np.allclose(r.extras["alpha"], rs.extras["alpha"], atol=1e-11)

    def test_duplicate_coordinate_replay(self, dense_classification):
        # tiny m forces repeated sampling of the same dual coordinate
        # within one outer step — exercises eq. (14)'s beta correction
        A, b = dense_classification
        A, b = A[:5], b[:5]
        r = dcd(A, b, loss="l1", max_iter=200, seed=3)
        rs = sa_dcd(A, b, loss="l1", s=50, max_iter=200, seed=3)
        assert np.allclose(r.extras["alpha"], rs.extras["alpha"], atol=1e-11)

    def test_s_500_like_paper_fig5(self, small_classification):
        A, b = small_classification
        r = dcd(A, b, loss="l2", max_iter=1000, seed=0, record_every=0)
        rs = sa_dcd(A, b, loss="l2", s=500, max_iter=1000, seed=0, record_every=0)
        rel = abs(r.final_metric - rs.final_metric) / max(abs(r.final_metric), 1e-300)
        assert rel < 1e-8
        assert np.all(np.isfinite(rs.x))

    def test_history_alignment(self, small_classification):
        A, b = small_classification
        r = dcd(A, b, loss="l1", max_iter=120, seed=2, record_every=30)
        rs = sa_dcd(A, b, loss="l1", s=30, max_iter=120, seed=2, record_every=30)
        assert r.history.iterations == rs.history.iterations
        assert np.allclose(r.history.metric, rs.history.metric, rtol=1e-9)

    def test_tail_outer(self, small_classification):
        A, b = small_classification
        r = dcd(A, b, loss="l2", max_iter=70, seed=2)
        rs = sa_dcd(A, b, loss="l2", s=32, max_iter=70, seed=2)
        assert rs.iterations == 70
        assert np.allclose(r.x, rs.x, atol=1e-11)

    def test_invalid_s(self, small_classification):
        A, b = small_classification
        with pytest.raises(SolverError):
            sa_dcd(A, b, s=0, max_iter=10)


class TestCommunication:
    def test_sa_reduces_messages(self, small_classification):
        A, b = small_classification
        H, s, P = 128, 32, 512

        def run(fn, **kw):
            comm = VirtualComm(P, machine=CRAY_XC30)
            return fn(A, b, loss="l1", max_iter=H, seed=0, comm=comm,
                      record_every=0, **kw)

        r = run(dcd)
        rs = run(sa_dcd, s=s)
        assert r.cost.messages == s * rs.cost.messages
        assert rs.cost.words > r.cost.words
        assert rs.cost.seconds < r.cost.seconds  # latency-dominated regime
