"""Tests for the warm-started regularization-path engine."""

import numpy as np
import pytest

from repro import fit_lasso, lasso_path, svm_path
from repro.datasets import make_classification, make_sparse_regression
from repro.errors import SolverError
from repro.experiments.runner import load_scaled
from repro.linalg.distmatrix import RowPartitionedMatrix
from repro.linalg.kernels import eig_cache_clear, eig_cache_info
from repro.machine.spec import CRAY_XC30
from repro.mpi.virtual_backend import VirtualComm
from repro.path import PathResult, SweepContext, lambda_grid
from repro.solvers.objectives import lambda_max, lasso_objective


@pytest.fixture(scope="module")
def path_problem():
    """A problem where the path's small-lambda tail needs real work."""
    return make_sparse_regression(400, 150, density=0.1, k_nonzero=10,
                                  noise=0.02, seed=11)


class TestLambdaGrid:
    def test_descending_geometric(self):
        g = lambda_grid(10.0, n_lambdas=5, eps=1e-2)
        assert g.shape == (5,)
        assert g[0] == pytest.approx(10.0)
        assert g[-1] == pytest.approx(0.1)
        assert np.all(np.diff(g) < 0)

    def test_single_point(self):
        assert np.array_equal(lambda_grid(3.0, n_lambdas=1), [3.0])

    @pytest.mark.parametrize("bad", [dict(n_lambdas=0), dict(eps=0.0),
                                     dict(eps=1.5)])
    def test_invalid(self, bad):
        with pytest.raises(SolverError):
            lambda_grid(1.0, **bad)

    def test_nonpositive_lam_max(self):
        with pytest.raises(SolverError):
            lambda_grid(0.0)


class TestLassoPath:
    def test_default_grid_from_lambda_max(self, path_problem):
        A, b, _ = path_problem
        path = lasso_path(A, b, n_lambdas=4, mu=2, s=8, max_iter=100)
        assert len(path) == 4
        assert path.lambdas[0] == pytest.approx(lambda_max(A, b))
        # at lambda_max, x = 0 is optimal
        assert np.count_nonzero(path.results[0].x) == 0

    def test_matches_independent_cold_solves(self, path_problem):
        """Warm-started points reach (at least) the cold solves' quality."""
        A, b, _ = path_problem
        grid = lambda_grid(lambda_max(A, b), n_lambdas=5, eps=1e-2)
        kw = dict(mu=4, s=8, max_iter=400, tol=1e-7, record_every=10, seed=0)
        path = lasso_path(A, b, grid, **kw)
        for lam, res in zip(path.lambdas, path.results):
            cold = fit_lasso(A, b, float(lam), **kw)
            warm_obj = lasso_objective(A, b, res.x, float(lam))
            cold_obj = lasso_objective(A, b, cold.x, float(lam))
            assert warm_obj <= cold_obj * (1.0 + 1e-4) + 1e-12

    def test_warm_start_fewer_iterations_fig3(self):
        """Satellite: warm start from the previous lambda beats cold
        start in recorded iterations on the fig3 configuration."""
        ds = load_scaled("news20", target_cells=20_000.0, seed=0)
        grid = lambda_grid(lambda_max(ds.A, ds.b), n_lambdas=6, eps=1e-3)
        kw = dict(solver="sa-accbcd", mu=8, s=16, max_iter=2000, tol=1e-5,
                  record_every=20, seed=3)
        warm = lasso_path(ds.A, ds.b, grid, warm_start=True, **kw)
        cold = lasso_path(ds.A, ds.b, grid, warm_start=False, **kw)
        assert sum(warm.iterations) < sum(cold.iterations)
        # and the hardest (smallest-lambda) point individually benefits
        assert warm.iterations[-1] < cold.iterations[-1]

    def test_per_point_costs_do_not_accumulate(self, path_problem):
        """Satellite: the shared ledger is reset per point, so each
        SolverResult carries per-point cost, not the running total."""
        A, b, _ = path_problem
        path = lasso_path(A, b, n_lambdas=4, mu=2, s=8, max_iter=64,
                          tol=None, record_every=0, virtual_p=64,
                          machine=CRAY_XC30)
        msgs = [r.cost.messages for r in path.results]
        # every point ran the same iteration budget => same message count
        # (accumulation would make the sequence strictly increasing)
        assert len(set(msgs)) == 1 and msgs[0] > 0
        assert path.total_cost.messages == sum(msgs)
        assert path.context.total_cost.messages == sum(msgs)

    def test_explicit_grid_sorted_descending(self, path_problem):
        A, b, _ = path_problem
        path = lasso_path(A, b, [0.1, 5.0, 1.0], mu=1, s=4, max_iter=40)
        assert np.all(np.diff(path.lambdas) < 0)

    def test_empty_grid_rejected(self, path_problem):
        A, b, _ = path_problem
        with pytest.raises(SolverError):
            lasso_path(A, b, [])

    def test_support_grows_along_path(self, path_problem):
        A, b, _ = path_problem
        path = lasso_path(A, b, n_lambdas=6, eps=1e-3, mu=4, s=8,
                          max_iter=400, tol=1e-7)
        sizes = path.support_sizes(1e-10)
        assert sizes[0] == 0
        assert sizes[-1] >= max(sizes[:-1])

    def test_result_properties(self, path_problem):
        A, b, _ = path_problem
        path = lasso_path(A, b, n_lambdas=3, mu=2, s=4, max_iter=40)
        assert isinstance(path, PathResult)
        assert path.coefs.shape == (3, A.shape[1])
        assert len(path.iterations) == 3
        assert path.final_metrics.shape == (3,)

    def test_fp_tolerant_path_close_to_exact(self, path_problem):
        A, b, _ = path_problem
        kw = dict(n_lambdas=4, mu=4, s=8, max_iter=96, tol=None,
                  record_every=0)
        exact = lasso_path(A, b, parity="exact", **kw)
        fp = lasso_path(A, b, parity="fp-tolerant", **kw)
        for xe, xf in zip(exact.coefs, fp.coefs):
            drift = np.linalg.norm(xf - xe) / max(np.linalg.norm(xe), 1e-300)
            assert drift <= 1e-9


class TestSweepContext:
    def test_reuses_one_partitioned_matrix(self, path_problem):
        A, b, _ = path_problem
        ctx = SweepContext(A, b, task="lasso")
        dist = ctx.dist
        lasso_path(A, b, n_lambdas=3, mu=2, s=4, max_iter=24, context=ctx)
        lasso_path(A, b, n_lambdas=2, mu=2, s=4, max_iter=24, context=ctx)
        assert ctx.dist is dist
        assert len(ctx.point_costs) == 5

    def test_adopts_prebuilt_dist(self, path_problem):
        A, b, _ = path_problem
        comm = VirtualComm(1)
        dist = RowPartitionedMatrix.from_global(A, comm)
        ctx = SweepContext(dist, b, task="lasso")
        assert ctx.dist is dist and ctx.comm is comm

    def test_task_validation(self, path_problem):
        A, b, _ = path_problem
        with pytest.raises(SolverError):
            SweepContext(A, b, task="ridge")
        ctx = SweepContext(A, b, task="svm")
        with pytest.raises(SolverError):
            lasso_path(A, b, [1.0], context=ctx)

    def test_wrong_layout_rejected(self, path_problem):
        A, b, _ = path_problem
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        with pytest.raises(SolverError):
            SweepContext(dist, b, task="svm")

    def test_mismatched_problem_rejected(self, path_problem):
        """context= sweeps solve the context's dataset; a different
        (A, b) pair is an error, not a silently-wrong result."""
        A, b, _ = path_problem
        ctx = SweepContext(A, b, task="lasso")
        A2, b2, _ = make_sparse_regression(30, 12, density=0.5, seed=1)
        with pytest.raises(SolverError):
            lasso_path(A2, b2, [1.0], context=ctx)
        with pytest.raises(SolverError):
            lasso_path(A, b + 1.0, [1.0], context=ctx)
        # same shape, different values (e.g. rescaled features)
        with pytest.raises(SolverError):
            lasso_path(A * 3.0, b, [1.0], context=ctx)

    def test_adopted_comm_totals_survive_via_child(self, path_problem):
        """The documented escape hatch: sweeping on comm.child() leaves
        the parent communicator's accumulated ledger intact."""
        A, b, _ = path_problem
        parent = VirtualComm(virtual_size=64, machine=CRAY_XC30)
        parent.Allreduce(np.ones(8))
        before = parent.ledger.messages
        assert before > 0
        ctx = SweepContext(A, b, task="lasso", comm=parent.child())
        lasso_path(A, b, [1.0, 0.5], mu=2, s=4, max_iter=24, context=ctx)
        assert parent.ledger.messages == before
        assert ctx.total_cost.messages > 0

    def test_eig_hit_rate_monotone_over_10_point_path(self):
        """Satellite: the persistent memo's hit rate rises monotonically
        across a 10-point sweep (each point replays the same sampled
        block stream, whose Gram blocks depend only on A)."""
        A, b, _ = make_sparse_regression(200, 60, density=0.2, seed=7)
        grid = lambda_grid(lambda_max(A, b), n_lambdas=10, eps=1e-3)
        ctx = SweepContext(A, b, task="lasso")
        eig_cache_clear()
        rates = []
        for lam in grid:
            lasso_path(A, b, [float(lam)], mu=4, s=8, max_iter=64,
                       tol=None, record_every=0, context=ctx)
            info = eig_cache_info()
            rates.append(info.hits / max(info.hits + info.misses, 1))
        assert all(b2 >= a2 for a2, b2 in zip(rates, rates[1:]))
        assert rates[-1] > rates[0] > 0.0 or rates[0] == 0.0
        # after the first point every block is a hit
        assert rates[-1] > 0.5


class TestSvmPath:
    def test_warm_dual_path(self, small_classification):
        A, b = small_classification
        path = svm_path(A, b, [0.5, 1.0, 2.0], loss="l1", s=8,
                        max_iter=240, record_every=60)
        assert len(path) == 3
        # ascending C order (dual feasibility of the warm start)
        assert np.all(np.diff(path.lambdas) > 0)
        for res in path.results:
            assert "alpha" in res.extras
            assert np.all(res.extras["alpha"] >= 0.0)

    def test_warm_start_helps_gap(self, small_classification):
        """A warm-started point reaches a gap at least as good as the
        cold solve within the same budget."""
        A, b = small_classification
        kw = dict(loss="l1", s=8, max_iter=400, record_every=100)
        warm = svm_path(A, b, [0.5, 1.0], **kw)
        cold = svm_path(A, b, [0.5, 1.0], warm_start=False, **kw)
        assert warm.final_metrics[-1] <= cold.final_metrics[-1] * (1 + 1e-6)

    def test_l1_warm_start_clipped_feasible(self, small_classification):
        A, b = small_classification
        path = svm_path(A, b, [0.2, 0.6], loss="l1", s=4, max_iter=120)
        for lam, res in zip(path.lambdas, path.results):
            assert np.all(res.extras["alpha"] <= lam + 1e-12)

    def test_default_grid(self, small_classification):
        A, b = small_classification
        path = svm_path(A, b, n_lambdas=3, s=4, max_iter=60)
        assert len(path) == 3

    def test_empty_grid_rejected(self, small_classification):
        A, b = small_classification
        with pytest.raises(SolverError):
            svm_path(A, b, [])
