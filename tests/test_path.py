"""Tests for the warm-started regularization-path engine."""

import numpy as np
import pytest

from repro import fit_lasso, lasso_path, svm_path
from repro.datasets import make_sparse_regression
from repro.errors import SolverError
from repro.experiments.runner import load_scaled
from repro.linalg.distmatrix import RowPartitionedMatrix
from repro.linalg.kernels import EigMemo, eig_cache_clear, eig_cache_info
from repro.machine.spec import CRAY_XC30
from repro.mpi.virtual_backend import VirtualComm
from repro.path import PathResult, SweepContext, adaptive_schedule, lambda_grid
from repro.solvers.objectives import lambda_max, lasso_objective


@pytest.fixture(scope="module")
def path_problem():
    """A problem where the path's small-lambda tail needs real work."""
    return make_sparse_regression(400, 150, density=0.1, k_nonzero=10,
                                  noise=0.02, seed=11)


class TestLambdaGrid:
    def test_descending_geometric(self):
        g = lambda_grid(10.0, n_lambdas=5, eps=1e-2)
        assert g.shape == (5,)
        assert g[0] == pytest.approx(10.0)
        assert g[-1] == pytest.approx(0.1)
        assert np.all(np.diff(g) < 0)

    def test_single_point(self):
        assert np.array_equal(lambda_grid(3.0, n_lambdas=1), [3.0])

    @pytest.mark.parametrize("bad", [dict(n_lambdas=0), dict(eps=0.0),
                                     dict(eps=1.5)])
    def test_invalid(self, bad):
        with pytest.raises(SolverError):
            lambda_grid(1.0, **bad)

    def test_nonpositive_lam_max(self):
        with pytest.raises(SolverError):
            lambda_grid(0.0)


class TestLassoPath:
    def test_default_grid_from_lambda_max(self, path_problem):
        A, b, _ = path_problem
        path = lasso_path(A, b, n_lambdas=4, mu=2, s=8, max_iter=100)
        assert len(path) == 4
        assert path.lambdas[0] == pytest.approx(lambda_max(A, b))
        # at lambda_max, x = 0 is optimal
        assert np.count_nonzero(path.results[0].x) == 0

    def test_matches_independent_cold_solves(self, path_problem):
        """Warm-started points reach (at least) the cold solves' quality."""
        A, b, _ = path_problem
        grid = lambda_grid(lambda_max(A, b), n_lambdas=5, eps=1e-2)
        kw = dict(mu=4, s=8, max_iter=400, tol=1e-7, record_every=10, seed=0)
        path = lasso_path(A, b, grid, **kw)
        for lam, res in zip(path.lambdas, path.results, strict=True):
            cold = fit_lasso(A, b, float(lam), **kw)
            warm_obj = lasso_objective(A, b, res.x, float(lam))
            cold_obj = lasso_objective(A, b, cold.x, float(lam))
            assert warm_obj <= cold_obj * (1.0 + 1e-4) + 1e-12

    def test_warm_start_fewer_iterations_fig3(self):
        """Satellite: warm start from the previous lambda beats cold
        start in recorded iterations on the fig3 configuration."""
        ds = load_scaled("news20", target_cells=20_000.0, seed=0)
        grid = lambda_grid(lambda_max(ds.A, ds.b), n_lambdas=6, eps=1e-3)
        kw = dict(solver="sa-accbcd", mu=8, s=16, max_iter=2000, tol=1e-5,
                  record_every=20, seed=3)
        warm = lasso_path(ds.A, ds.b, grid, warm_start=True, **kw)
        cold = lasso_path(ds.A, ds.b, grid, warm_start=False, **kw)
        assert sum(warm.iterations) < sum(cold.iterations)
        # and the hardest (smallest-lambda) point individually benefits
        assert warm.iterations[-1] < cold.iterations[-1]

    def test_per_point_costs_do_not_accumulate(self, path_problem):
        """Satellite: the shared ledger is reset per point, so each
        SolverResult carries per-point cost, not the running total."""
        A, b, _ = path_problem
        path = lasso_path(A, b, n_lambdas=4, mu=2, s=8, max_iter=64,
                          tol=None, record_every=0, virtual_p=64,
                          machine=CRAY_XC30)
        msgs = [r.cost.messages for r in path.results]
        # every point ran the same iteration budget => same message count
        # (accumulation would make the sequence strictly increasing)
        assert len(set(msgs)) == 1 and msgs[0] > 0
        assert path.total_cost.messages == sum(msgs)
        assert path.context.total_cost.messages == sum(msgs)

    def test_explicit_grid_sorted_descending(self, path_problem):
        A, b, _ = path_problem
        path = lasso_path(A, b, [0.1, 5.0, 1.0], mu=1, s=4, max_iter=40)
        assert np.all(np.diff(path.lambdas) < 0)

    def test_empty_grid_rejected(self, path_problem):
        A, b, _ = path_problem
        with pytest.raises(SolverError):
            lasso_path(A, b, [])

    def test_support_grows_along_path(self, path_problem):
        A, b, _ = path_problem
        path = lasso_path(A, b, n_lambdas=6, eps=1e-3, mu=4, s=8,
                          max_iter=400, tol=1e-7)
        sizes = path.support_sizes(1e-10)
        assert sizes[0] == 0
        assert sizes[-1] >= max(sizes[:-1])

    def test_result_properties(self, path_problem):
        A, b, _ = path_problem
        path = lasso_path(A, b, n_lambdas=3, mu=2, s=4, max_iter=40)
        assert isinstance(path, PathResult)
        assert path.coefs.shape == (3, A.shape[1])
        assert len(path.iterations) == 3
        assert path.final_metrics.shape == (3,)

    def test_fp_tolerant_path_close_to_exact(self, path_problem):
        A, b, _ = path_problem
        kw = dict(n_lambdas=4, mu=4, s=8, max_iter=96, tol=None,
                  record_every=0)
        exact = lasso_path(A, b, parity="exact", **kw)
        fp = lasso_path(A, b, parity="fp-tolerant", **kw)
        for xe, xf in zip(exact.coefs, fp.coefs, strict=True):
            drift = np.linalg.norm(xf - xe) / max(np.linalg.norm(xe), 1e-300)
            assert drift <= 1e-9


class TestSweepContext:
    def test_reuses_one_partitioned_matrix(self, path_problem):
        A, b, _ = path_problem
        ctx = SweepContext(A, b, task="lasso")
        dist = ctx.dist
        lasso_path(A, b, n_lambdas=3, mu=2, s=4, max_iter=24, context=ctx)
        lasso_path(A, b, n_lambdas=2, mu=2, s=4, max_iter=24, context=ctx)
        assert ctx.dist is dist
        assert len(ctx.point_costs) == 5

    def test_adopts_prebuilt_dist(self, path_problem):
        A, b, _ = path_problem
        comm = VirtualComm(1)
        dist = RowPartitionedMatrix.from_global(A, comm)
        ctx = SweepContext(dist, b, task="lasso")
        assert ctx.dist is dist and ctx.comm is comm

    def test_task_validation(self, path_problem):
        A, b, _ = path_problem
        with pytest.raises(SolverError):
            SweepContext(A, b, task="ridge")
        ctx = SweepContext(A, b, task="svm")
        with pytest.raises(SolverError):
            lasso_path(A, b, [1.0], context=ctx)

    def test_wrong_layout_rejected(self, path_problem):
        A, b, _ = path_problem
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        with pytest.raises(SolverError):
            SweepContext(dist, b, task="svm")

    def test_mismatched_problem_rejected(self, path_problem):
        """context= sweeps solve the context's dataset; a different
        (A, b) pair is an error, not a silently-wrong result."""
        A, b, _ = path_problem
        ctx = SweepContext(A, b, task="lasso")
        A2, b2, _ = make_sparse_regression(30, 12, density=0.5, seed=1)
        with pytest.raises(SolverError):
            lasso_path(A2, b2, [1.0], context=ctx)
        with pytest.raises(SolverError):
            lasso_path(A, b + 1.0, [1.0], context=ctx)
        # same shape, different values (e.g. rescaled features)
        with pytest.raises(SolverError):
            lasso_path(A * 3.0, b, [1.0], context=ctx)

    def test_adopted_comm_totals_survive_via_child(self, path_problem):
        """The documented escape hatch: sweeping on comm.child() leaves
        the parent communicator's accumulated ledger intact."""
        A, b, _ = path_problem
        parent = VirtualComm(virtual_size=64, machine=CRAY_XC30)
        parent.Allreduce(np.ones(8))
        before = parent.ledger.messages
        assert before > 0
        ctx = SweepContext(A, b, task="lasso", comm=parent.child())
        lasso_path(A, b, [1.0, 0.5], mu=2, s=4, max_iter=24, context=ctx)
        assert parent.ledger.messages == before
        assert ctx.total_cost.messages > 0

    def test_eig_hit_rate_monotone_over_10_point_path(self):
        """Satellite: the persistent memo's hit rate rises monotonically
        across a 10-point sweep (each point replays the same sampled
        block stream, whose Gram blocks depend only on A)."""
        A, b, _ = make_sparse_regression(200, 60, density=0.2, seed=7)
        grid = lambda_grid(lambda_max(A, b), n_lambdas=10, eps=1e-3)
        ctx = SweepContext(A, b, task="lasso")
        eig_cache_clear()
        rates = []
        for lam in grid:
            lasso_path(A, b, [float(lam)], mu=4, s=8, max_iter=64,
                       tol=None, record_every=0, context=ctx)
            info = eig_cache_info()
            rates.append(info.hits / max(info.hits + info.misses, 1))
        assert all(b2 >= a2 for a2, b2 in zip(rates, rates[1:], strict=False))
        assert rates[-1] > rates[0] > 0.0 or rates[0] == 0.0
        # after the first point every block is a hit
        assert rates[-1] > 0.5


class TestSvmPath:
    def test_warm_dual_path(self, small_classification):
        A, b = small_classification
        path = svm_path(A, b, [0.5, 1.0, 2.0], loss="l1", s=8,
                        max_iter=240, record_every=60)
        assert len(path) == 3
        # ascending C order (dual feasibility of the warm start)
        assert np.all(np.diff(path.lambdas) > 0)
        for res in path.results:
            assert "alpha" in res.extras
            assert np.all(res.extras["alpha"] >= 0.0)

    def test_warm_start_helps_gap(self, small_classification):
        """A warm-started point reaches a gap at least as good as the
        cold solve within the same budget."""
        A, b = small_classification
        kw = dict(loss="l1", s=8, max_iter=400, record_every=100)
        warm = svm_path(A, b, [0.5, 1.0], **kw)
        cold = svm_path(A, b, [0.5, 1.0], warm_start=False, **kw)
        assert warm.final_metrics[-1] <= cold.final_metrics[-1] * (1 + 1e-6)

    def test_l1_warm_start_clipped_feasible(self, small_classification):
        A, b = small_classification
        path = svm_path(A, b, [0.2, 0.6], loss="l1", s=4, max_iter=120)
        for lam, res in zip(path.lambdas, path.results, strict=True):
            assert np.all(res.extras["alpha"] <= lam + 1e-12)

    def test_default_grid(self, small_classification):
        A, b = small_classification
        path = svm_path(A, b, n_lambdas=3, s=4, max_iter=60)
        assert len(path) == 3

    def test_empty_grid_rejected(self, small_classification):
        A, b = small_classification
        with pytest.raises(SolverError):
            svm_path(A, b, [])


class TestAdaptiveSchedule:
    def test_shape_and_endpoints(self):
        sched = adaptive_schedule(5, 1000, 1e-8, tol_factor=100.0,
                                  iter_factor=0.25)
        assert len(sched) == 5
        assert sched[0] == (250, pytest.approx(1e-6))
        assert sched[-1] == (1000, pytest.approx(1e-8))
        iters = [it for it, _ in sched]
        tols = [t for _, t in sched]
        assert iters == sorted(iters)
        assert tols == sorted(tols, reverse=True)

    def test_none_tol_stays_none(self):
        sched = adaptive_schedule(3, 100, None)
        assert all(t is None for _, t in sched)

    def test_single_point_gets_full_budget(self):
        assert adaptive_schedule(1, 500, 1e-6) == [(500, pytest.approx(1e-6))]

    @pytest.mark.parametrize("bad", [dict(tol_factor=0.5),
                                     dict(iter_factor=0.0),
                                     dict(iter_factor=1.5)])
    def test_invalid_factors(self, bad):
        with pytest.raises(SolverError):
            adaptive_schedule(4, 100, 1e-6, **bad)

    def test_final_point_matches_cold_solve(self):
        """The adaptive sweep's last point must not be degraded by the
        loosened intermediate budgets: it matches an independent cold
        solve at the same (max_iter, tol) to solution accuracy."""
        A, b, _ = make_sparse_regression(300, 100, density=0.1, seed=1)
        grid = lambda_grid(lambda_max(A, b), n_lambdas=8, eps=1e-2)
        kw = dict(mu=8, s=16, max_iter=2000, tol=1e-8, record_every=5, seed=0)
        adaptive = lasso_path(A, b, grid, adaptive=True, **kw)
        cold = fit_lasso(A, b, float(grid[-1]), solver="sa-accbcd",
                         mu=8, s=16, max_iter=2000, tol=1e-8, record_every=5)
        assert adaptive.results[-1].converged
        scale = max(np.max(np.abs(cold.x)), 1e-12)
        assert np.max(np.abs(adaptive.results[-1].x - cold.x)) / scale < 1e-3
        obj_a = lasso_objective(A, b, adaptive.results[-1].x, float(grid[-1]))
        obj_c = lasso_objective(A, b, cold.x, float(grid[-1]))
        assert obj_a == pytest.approx(obj_c, rel=1e-3)

    def test_adaptive_spends_fewer_iterations(self):
        A, b, _ = make_sparse_regression(300, 100, density=0.1, seed=1)
        grid = lambda_grid(lambda_max(A, b), n_lambdas=8, eps=1e-2)
        kw = dict(mu=8, s=16, max_iter=2000, tol=1e-8, record_every=5, seed=0)
        plain = lasso_path(A, b, grid, **kw)
        adaptive = lasso_path(A, b, grid, adaptive=True, **kw)
        assert sum(adaptive.iterations) < sum(plain.iterations)

    def test_svm_adaptive_final_matches_plain(self, small_classification):
        A, b = small_classification
        lams = [0.5, 1.0, 2.0]
        kw = dict(loss="l2", s=16, max_iter=400, tol=1e-3, record_every=20,
                  seed=0)
        plain = svm_path(A, b, lams, **kw)
        adaptive = svm_path(A, b, lams, adaptive=True, **kw)
        assert adaptive.results[-1].final_metric <= 1e-3 or \
            adaptive.results[-1].iterations == 400
        assert adaptive.lambdas[-1] == plain.lambdas[-1]


class TestEigMemoThreading:
    def test_context_default_is_shared_memo(self, path_problem):
        A, b, _ = path_problem
        ctx = SweepContext(A, b)
        from repro.linalg.kernels import default_eig_memo
        assert ctx.eig_memo is default_eig_memo()

    def test_private_memo_isolated_from_global(self, path_problem):
        A, b, _ = path_problem
        memo = EigMemo(maxsize=256)
        ctx = SweepContext(A, b, eig_memo=memo)
        assert ctx.eig_memo is memo
        eig_cache_clear()
        before = eig_cache_info()
        lasso_path(A, b, [0.5, 0.1], mu=4, s=8, max_iter=64,
                   record_every=0, tol=None, context=ctx)
        # the sweep's eigensolves hit the private memo, not the global one
        info = memo.cache_info()
        assert info.hits + info.misses > 0
        after = eig_cache_info()
        assert (after.hits, after.misses) == (before.hits, before.misses)

    def test_private_memos_do_not_share_entries(self, path_problem):
        """Two sweeps with private memos never serve each other's blocks."""
        A, b, _ = path_problem
        m1, m2 = EigMemo(), EigMemo()
        kw = dict(mu=4, s=8, max_iter=64, record_every=0, tol=None, seed=0)
        lasso_path(A, b, [0.5], context=SweepContext(A, b, eig_memo=m1), **kw)
        first = m1.cache_info()
        assert first.misses > 0
        # the second memo starts cold: same misses as the first sweep
        lasso_path(A, b, [0.5], context=SweepContext(A, b, eig_memo=m2), **kw)
        second = m2.cache_info()
        assert second.misses == first.misses

    def test_solver_accepts_explicit_memo(self, path_problem):
        A, b, _ = path_problem
        memo = EigMemo()
        res1 = fit_lasso(A, b, 0.5, solver="sa-accbcd", mu=4, s=8,
                         max_iter=48, record_every=0, eig_memo=memo)
        assert memo.cache_info().misses > 0
        # identical run through the same memo now hits
        res2 = fit_lasso(A, b, 0.5, solver="sa-accbcd", mu=4, s=8,
                         max_iter=48, record_every=0, eig_memo=memo)
        assert memo.cache_info().hits > 0
        assert np.array_equal(res1.x, res2.x)

    def test_pipeline_through_path(self, path_problem):
        A, b, _ = path_problem
        grid = [0.8, 0.3]
        kw = dict(mu=2, s=8, max_iter=64, record_every=0, tol=None, seed=0)
        base = lasso_path(A, b, grid, **kw)
        pip = lasso_path(A, b, grid, pipeline=True, **kw)
        for rb, rp in zip(base.results, pip.results, strict=True):
            assert np.array_equal(rb.x, rp.x)
