"""Rule-level tests for the SPMD static analyzer (`repro lint`).

Each rule gets a paired good/bad fixture under ``tests/analyze_fixtures``:
the bad file must trip the rule, the good twin must be silent. On top of
that: suppression semantics (justification required, unused flagged),
baseline round-trip, JSON report shape, the CLI entry point, and the
self-check that the repo's own ``src/`` tree lints clean.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analyze import (
    AnalyzerConfig,
    findings_to_json,
    lint_paths,
    lint_source,
    rule_ids,
    write_baseline,
)
from repro.analyze.engine import iter_python_files

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "analyze_fixtures"

#: fixture stem -> (rule id, fake path template). Rules scoped to runtime
#: or determinism paths get a fake path inside ``repro/solvers/`` so the
#: scope check passes; the rest use a neutral path.
_CASES = {
    "rank_branch": ("collective-in-rank-branch", "repro/fixtures/{}.py"),
    "unharvested": ("unharvested-request", "repro/fixtures/{}.py"),
    "nb_ring": ("nb-ring-depth", "repro/fixtures/{}.py"),
    "timeout": ("collective-without-timeout", "repro/solvers/{}.py"),
    "abort_swallow": ("abort-swallow", "repro/fixtures/{}.py"),
    "nondeterminism": ("nondeterminism", "repro/solvers/{}.py"),
}


def lint_fixture(stem: str) -> list:
    key = stem.rsplit("_", 1)[0]
    _, template = _CASES[key]
    source = (FIXTURES / f"{stem}.py").read_text(encoding="utf-8")
    return lint_source(template.format(stem), source)


# -- paired fixtures --------------------------------------------------------


@pytest.mark.parametrize("key", sorted(_CASES))
def test_bad_fixture_trips_rule(key):
    rule, _ = _CASES[key]
    findings = lint_fixture(f"{key}_bad")
    hits = [f for f in findings if f.rule == rule]
    assert hits, f"{key}_bad.py produced no {rule} finding"
    assert all(f.actionable for f in hits)
    # nothing else fires: the fixture isolates its rule
    assert {f.rule for f in findings} == {rule}


@pytest.mark.parametrize("key", sorted(_CASES))
def test_good_fixture_is_clean(key):
    findings = lint_fixture(f"{key}_good")
    assert findings == [], [f.format() for f in findings]


def test_rank_branch_details():
    findings = lint_fixture("rank_branch_bad")
    by_sev = {f.severity for f in findings}
    # collectives under the rank test are errors; the unvetted local call
    # in the else-branch is only an info
    assert "error" in by_sev and "info" in by_sev
    assert any("bcast" in f.message for f in findings)


def test_unharvested_both_shapes():
    findings = lint_fixture("unharvested_bad")
    # one dropped-on-the-spot post, one bound-but-never-used request
    assert len(findings) == 2
    assert any("dropped" in f.message for f in findings)
    assert any("`req`" in f.message for f in findings)


def test_nb_ring_depth_vs_loop():
    findings = lint_fixture("nb_ring_bad")
    sevs = sorted(f.severity for f in findings)
    # the literal-depth overflow is an error, the unbounded loop a warning
    assert sevs == ["error", "warning"]


def test_timeout_rule_scoped_to_runtime_paths():
    source = (FIXTURES / "timeout_bad.py").read_text(encoding="utf-8")
    # outside the runtime paths the rule stays quiet
    findings = lint_source("repro/fixtures/timeout_bad.py", source)
    assert [f for f in findings if f.rule == "collective-without-timeout"] == []


def test_nondeterminism_rule_scoped_to_replay_paths():
    source = (FIXTURES / "nondeterminism_bad.py").read_text(encoding="utf-8")
    findings = lint_source("repro/fixtures/nondeterminism_bad.py", source)
    assert [f for f in findings if f.rule == "nondeterminism"] == []


def test_nondeterminism_catalogue():
    findings = lint_fixture("nondeterminism_bad")
    msgs = " | ".join(f.message for f in findings)
    assert "time.time" in msgs
    assert "np.random.rand" in msgs
    assert "default_rng()` without a seed" in msgs
    assert "random.random()` uses the global stdlib RNG" in msgs
    assert "directory order" in msgs
    assert "PYTHONHASHSEED" in msgs


# -- suppressions -----------------------------------------------------------

_BAD_CALL = "def f(comm, x):\n    return comm.allreduce(x)\n"


def test_trailing_suppression_with_justification():
    src = (
        "def f(comm, x):\n"
        "    return comm.allreduce(x)  "
        "# repro: lint-ignore[collective-without-timeout] -- comm has a default deadline\n"
    )
    findings = lint_source("repro/solvers/x.py", src)
    (f,) = findings
    assert f.rule == "collective-without-timeout"
    assert f.suppressed and not f.actionable
    assert f.justification == "comm has a default deadline"


def test_standalone_suppression_targets_next_code_line():
    src = (
        "def f(comm, x):\n"
        "    # repro: lint-ignore[collective-without-timeout] -- default deadline\n"
        "    # (continuation comment between suppression and code is fine)\n"
        "    return comm.allreduce(x)\n"
    )
    findings = lint_source("repro/solvers/x.py", src)
    (f,) = findings
    assert f.suppressed


def test_suppression_without_justification_is_invalid_and_inert():
    src = (
        "def f(comm, x):\n"
        "    return comm.allreduce(x)  "
        "# repro: lint-ignore[collective-without-timeout]\n"
    )
    findings = lint_source("repro/solvers/x.py", src)
    rules = sorted(f.rule for f in findings)
    assert rules == ["collective-without-timeout", "invalid-suppression"]
    # the original finding stays actionable: no free pass without a why
    assert all(f.actionable for f in findings)


def test_suppression_with_unknown_rule_is_invalid():
    src = (
        "def f(comm, x):\n"
        "    return comm.allreduce(x)  "
        "# repro: lint-ignore[no-such-rule] -- because\n"
    )
    findings = lint_source("repro/solvers/x.py", src)
    inv = [f for f in findings if f.rule == "invalid-suppression"]
    assert inv and "no-such-rule" in inv[0].message


def test_unused_suppression_is_flagged():
    src = (
        "def f(x):\n"
        "    return x  # repro: lint-ignore[nondeterminism] -- stale\n"
    )
    findings = lint_source("repro/solvers/x.py", src)
    assert [f.rule for f in findings] == ["unused-suppression"]
    assert findings[0].severity == "warning"


def test_wildcard_suppression():
    src = (
        "def f(comm, x):\n"
        "    return comm.allreduce(x)  # repro: lint-ignore[*] -- trusted\n"
    )
    findings = lint_source("repro/solvers/x.py", src)
    (f,) = findings
    assert f.suppressed


def test_parse_error_is_a_finding():
    findings = lint_source("repro/solvers/x.py", "def f(:\n")
    assert [f.rule for f in findings] == ["parse-error"]
    assert findings[0].severity == "error"


# -- baseline round-trip ----------------------------------------------------


def _write_pkg(tmp_path: Path) -> Path:
    pkg = tmp_path / "repro" / "solvers"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(_BAD_CALL, encoding="utf-8")
    return pkg


def test_baseline_round_trip(tmp_path):
    pkg = _write_pkg(tmp_path)
    baseline = tmp_path / "lint-baseline.json"

    before = lint_paths([str(pkg)])
    assert before.exit_code == 1
    assert len(before.actionable) == 1

    write_baseline(baseline, before.findings)
    after = lint_paths([str(pkg)], baseline_path=str(baseline))
    assert after.exit_code == 0
    assert all(f.baselined for f in after.findings)

    # a *new* finding is not absorbed by the old baseline
    (pkg / "mod.py").write_text(
        _BAD_CALL + "\n\ndef g(comm, y):\n    return comm.Allreduce(y)\n",
        encoding="utf-8",
    )
    drifted = lint_paths([str(pkg)], baseline_path=str(baseline))
    assert drifted.exit_code == 1
    assert len(drifted.actionable) == 1
    assert sum(1 for f in drifted.findings if f.baselined) == 1


def test_baseline_counts_duplicate_lines(tmp_path):
    pkg = _write_pkg(tmp_path)
    # two byte-identical offending lines share a fingerprint; the count
    # budget must absorb both
    (pkg / "mod.py").write_text(
        "def f(comm, x):\n"
        "    a = comm.allreduce(x)\n"
        "    b = comm.allreduce(x)\n"
        "    return a + b\n",
        encoding="utf-8",
    )
    baseline = tmp_path / "lint-baseline.json"
    before = lint_paths([str(pkg)])
    assert len(before.actionable) == 2
    payload = write_baseline(baseline, before.findings)
    assert sum(e["count"] for e in payload["findings"].values()) == 2
    after = lint_paths([str(pkg)], baseline_path=str(baseline))
    assert after.exit_code == 0


def test_baseline_rejects_wrong_version(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "findings": {}}))
    from repro.analyze import load_baseline

    with pytest.raises(ValueError):
        load_baseline(str(bad))


# -- report / engine plumbing -----------------------------------------------


def test_findings_to_json_shape():
    findings = lint_fixture("timeout_bad")
    payload = findings_to_json(findings, paths=["repro/solvers/timeout_bad.py"])
    assert payload["version"] == 1
    assert payload["kind"] == "lint-report"
    assert payload["counts"]["actionable"] == len(findings)
    assert payload["counts"]["by_rule"] == {"collective-without-timeout": 2}
    assert all("fingerprint" in f for f in payload["findings"])
    json.dumps(payload)  # serializable end to end


def test_iter_python_files_dedup_and_sort(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("x = 1\n")
    sub = tmp_path / "__pycache__"
    sub.mkdir()
    (sub / "skip.py").write_text("x = 1\n")
    files = iter_python_files([str(tmp_path), str(tmp_path / "a.py")])
    names = [Path(p).name for p in files]
    assert names == ["a.py", "b.py"]


def test_rule_ids_unique_and_stable():
    ids = rule_ids()
    assert len(ids) == len(set(ids))
    assert set(_CASES[k][0] for k in _CASES) <= set(ids)


def test_config_scope_matching():
    cfg = AnalyzerConfig()
    assert cfg.in_scope("src/repro/solvers/lasso/plain.py", cfg.runtime_paths)
    assert not cfg.in_scope("src/repro/mpi/comm.py", cfg.determinism_paths)


# -- CLI --------------------------------------------------------------------


def test_cli_lint_json(tmp_path, capsys):
    from repro.cli import main

    pkg = _write_pkg(tmp_path)
    rc = main(["lint", str(pkg), "--format", "json", "--no-baseline"])
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert rc == 1
    assert payload["kind"] == "lint-report"
    assert payload["counts"]["actionable"] == 1


def test_cli_lint_write_baseline_then_clean(tmp_path, capsys):
    from repro.cli import main

    pkg = _write_pkg(tmp_path)
    baseline = tmp_path / "base.json"
    rc = main(
        ["lint", str(pkg), "--baseline", str(baseline), "--write-baseline"]
    )
    assert rc == 0 and baseline.exists()
    capsys.readouterr()
    rc = main(["lint", str(pkg), "--baseline", str(baseline)])
    assert rc == 0


def test_cli_lint_output_file(tmp_path, capsys):
    from repro.cli import main

    pkg = _write_pkg(tmp_path)
    out_file = tmp_path / "report.json"
    rc = main(
        [
            "lint",
            str(pkg),
            "--format",
            "json",
            "--no-baseline",
            "--output",
            str(out_file),
        ]
    )
    capsys.readouterr()
    assert rc == 1
    payload = json.loads(out_file.read_text())
    assert payload["counts"]["actionable"] == 1


# -- self-check: the repo's own sources lint clean --------------------------


def test_repo_src_lints_clean(monkeypatch):
    # baseline fingerprints embed repo-relative paths, so lint from the
    # repo root exactly as CI does
    monkeypatch.chdir(REPO_ROOT)
    result = lint_paths(["src"], baseline_path="lint-baseline.json")
    assert result.exit_code == 0, "\n".join(
        f.format() for f in result.actionable
    )
