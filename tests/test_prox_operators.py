"""Tests for proximal operators, incl. hypothesis property checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import SolverError
from repro.prox.operators import (
    box_project,
    elastic_net_prox,
    group_soft_threshold,
    soft_threshold,
)

finite_vec = hnp.arrays(
    np.float64,
    st.integers(1, 24),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


class TestSoftThreshold:
    def test_known_values(self):
        out = soft_threshold(np.array([-2.0, -0.5, 0.0, 0.5, 2.0]), 1.0)
        assert np.allclose(out, [-1.0, 0.0, 0.0, 0.0, 1.0])

    def test_zero_threshold_identity(self):
        v = np.array([1.5, -2.5])
        assert np.array_equal(soft_threshold(v, 0.0), v)

    def test_creates_exact_zeros(self):
        out = soft_threshold(np.array([0.3, -0.2]), 0.5)
        assert np.count_nonzero(out) == 0

    def test_negative_threshold_rejected(self):
        with pytest.raises(SolverError):
            soft_threshold(np.ones(2), -0.1)

    @settings(max_examples=80, deadline=None)
    @given(v=finite_vec, t=st.floats(0, 1e6, allow_nan=False))
    def test_shrinks_magnitude(self, v, t):
        out = soft_threshold(v, t)
        assert np.all(np.abs(out) <= np.abs(v) + 1e-12)
        assert np.all(out * v >= 0)  # never flips sign

    @settings(max_examples=80, deadline=None)
    @given(v=finite_vec, w=finite_vec, t=st.floats(0, 100, allow_nan=False))
    def test_nonexpansive(self, v, w, t):
        # prox operators are 1-Lipschitz
        k = min(len(v), len(w))
        v, w = v[:k], w[:k]
        d_out = np.linalg.norm(soft_threshold(v, t) - soft_threshold(w, t))
        d_in = np.linalg.norm(v - w)
        assert d_out <= d_in + 1e-9 * max(1, d_in)

    @settings(max_examples=50, deadline=None)
    @given(v=finite_vec, t=st.floats(0.01, 100, allow_nan=False))
    def test_optimality_condition(self, v, t):
        # x = prox(v) minimises 0.5||x-v||^2 + t||x||_1:
        # subgradient: v - x in t*sign(x) elementwise
        x = soft_threshold(v, t)
        r = v - x
        on = x != 0
        assert np.allclose(r[on], t * np.sign(x[on]))
        assert np.all(np.abs(r[~on]) <= t + 1e-12)


class TestElasticNetProx:
    def test_reduces_to_soft_threshold_at_lam0(self):
        v = np.array([2.0, -3.0, 0.1])
        assert np.allclose(elastic_net_prox(v, 0.5, 0.0), soft_threshold(v, 0.5))

    def test_pure_ridge_at_lam1(self):
        v = np.array([2.0, -4.0])
        out = elastic_net_prox(v, 0.5, 1.0)
        assert np.allclose(out, v / 2.0)  # 1/(1+2*0.5*1)

    def test_bad_mixing(self):
        with pytest.raises(SolverError):
            elastic_net_prox(np.ones(2), 0.1, 1.5)

    @settings(max_examples=60, deadline=None)
    @given(v=finite_vec, eta=st.floats(0, 10, allow_nan=False),
           lam=st.floats(0, 1, allow_nan=False))
    def test_shrinks(self, v, eta, lam):
        out = elastic_net_prox(v, eta, lam)
        assert np.all(np.abs(out) <= np.abs(v) + 1e-12)


class TestGroupSoftThreshold:
    def test_kills_small_group(self):
        v = np.array([0.3, 0.4, 10.0])
        gid = np.array([0, 0, 1])
        out = group_soft_threshold(v, 1.0, gid)
        assert np.allclose(out[:2], 0.0)
        assert out[2] == pytest.approx(9.0)

    def test_group_direction_preserved(self):
        v = np.array([3.0, 4.0])
        out = group_soft_threshold(v, 1.0, np.zeros(2, dtype=int))
        # norm 5 -> scaled by (1 - 1/5)
        assert np.allclose(out, v * 0.8)

    def test_shape_mismatch(self):
        with pytest.raises(SolverError):
            group_soft_threshold(np.ones(3), 1.0, np.zeros(2, dtype=int))

    @settings(max_examples=60, deadline=None)
    @given(v=finite_vec, t=st.floats(0, 1e3, allow_nan=False),
           seed=st.integers(0, 99))
    def test_group_norms_shrink_by_t(self, v, t, seed):
        rng = np.random.default_rng(seed)
        gid = rng.integers(0, 3, size=v.shape[0])
        out = group_soft_threshold(v, t, gid)
        for g in np.unique(gid):
            n_in = np.linalg.norm(v[gid == g])
            n_out = np.linalg.norm(out[gid == g])
            expected = max(n_in - t, 0.0)
            assert n_out == pytest.approx(expected, rel=1e-9, abs=1e-9)


class TestBoxProject:
    def test_clip(self):
        out = box_project(np.array([-1.0, 0.5, 9.0]), 0.0, 1.0)
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_infinite_upper(self):
        out = box_project(np.array([1e30]), 0.0, np.inf)
        assert out[0] == 1e30

    def test_empty_box_rejected(self):
        with pytest.raises(SolverError):
            box_project(np.ones(1), 2.0, 1.0)

    @settings(max_examples=50, deadline=None)
    @given(v=finite_vec, lo=st.floats(-100, 0), hi=st.floats(0, 100))
    def test_idempotent(self, v, lo, hi):
        once = box_project(v, lo, hi)
        twice = box_project(once, lo, hi)
        assert np.array_equal(once, twice)
