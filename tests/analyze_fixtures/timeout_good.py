"""GOOD (runtime path): every blocking collective carries a deadline;
nonblocking posts are exempt (their wait() enforces the deadline)."""


def objective(comm, part):
    return comm.allreduce(part, timeout=30.0)


def reduce_gram(comm, send, recv):
    return comm.Allreduce(send, out=recv, timeout=30.0)


def post_gram(comm, send, recv):
    return comm.Iallreduce(send, out=recv)
