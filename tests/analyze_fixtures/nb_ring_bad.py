"""BAD: more in-flight nonblocking posts than the declared ring depth,
and an unbounded post loop with no harvest."""


def overfill_ring(comm, bufs, outs):
    comm.configure(nb_depth=2)
    r1 = comm.Iallreduce(bufs[0], out=outs[0])
    r2 = comm.Iallreduce(bufs[1], out=outs[1])
    r3 = comm.Iallreduce(bufs[2], out=outs[2])  # 3 in flight on a depth-2 ring
    return r1.wait(), r2.wait(), r3.wait()


def unbounded_post_loop(comm, chunks, out):
    reqs = []
    for chunk in chunks:
        reqs.append(comm.Iallreduce(chunk, out=out))  # no wait, no bound
    return reqs
