"""BAD: nonblocking collectives whose requests are dropped/never waited."""


def drop_request(comm, buf, out):
    comm.Iallreduce(buf, out=out)  # request discarded on the spot
    return out


def never_waited(comm, buf, out):
    req = comm.Iallreduce(buf, out=out)  # bound but never used again
    del buf
    return out
