"""GOOD: every posted request is harvested (or escapes to a harvester)."""


def post_and_wait(comm, buf, out):
    req = comm.Iallreduce(buf, out=out)
    return req.wait()


def post_and_poll(comm, buf, out):
    req = comm.Iallreduce(buf, out=out)
    while not req.test():
        pass
    return out


def post_into_slot(comm, slot, buf, out):
    # stored on an object: the pipeline's wait() harvests it later
    slot.req = comm.Iallreduce(buf, out=out)
