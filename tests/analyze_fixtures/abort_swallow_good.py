"""GOOD: aborts re-raised ahead of (or inside) generic handling."""


def reraise_first(comm, x, CommAborted, RankDiedError):
    try:
        return comm.allreduce(x, timeout=5.0)
    except (CommAborted, RankDiedError, KeyboardInterrupt):
        raise
    except Exception:
        return None


def reraise_inside(comm, x):
    try:
        return comm.allreduce(x, timeout=5.0)
    except Exception:
        cleanup(comm)
        raise


def cleanup(comm):
    return comm
