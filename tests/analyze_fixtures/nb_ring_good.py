"""GOOD: in-flight posts stay within the declared depth; post loops are
depth-bounded or harvest inside the body."""


def double_buffer(comm, bufs, outs):
    comm.configure(nb_depth=2)
    r1 = comm.Iallreduce(bufs[0], out=outs[0])
    r2 = comm.Iallreduce(bufs[1], out=outs[1])
    a = r1.wait()
    r3 = comm.Iallreduce(bufs[2], out=outs[2])  # never more than 2 in flight
    return a, r2.wait(), r3.wait()


def bounded_warmup(comm, batches, out, tau):
    inflight = []
    while len(inflight) <= tau and batches:
        inflight.append(comm.Iallreduce(next(batches), out=out))
    return inflight


def harvest_in_loop(comm, chunks, out):
    results = []
    for chunk in chunks:
        req = comm.Iallreduce(chunk, out=out)
        results.append(req.wait())
    return results
