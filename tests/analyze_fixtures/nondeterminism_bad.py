"""BAD (replay path): ambient clock/RNG/order state."""
import os
import random
import time

import numpy as np


def stamp():
    return time.time()


def sample(n):
    return np.random.rand(n)


def fresh_rng():
    return np.random.default_rng()


def jitter():
    return random.random()


def visit(items):
    total = 0
    for item in set(items):
        total += item
    return total


def scan(d):
    return os.listdir(d)
