"""BAD: broad handlers that can eat the abort taxonomy, and a narrow
abort handler that drops instead of re-raising."""


def swallow_broad(comm, x):
    try:
        return comm.allreduce(x, timeout=5.0)
    except Exception:
        return None  # a CommAborted mid-collective dies here


def swallow_bare(comm, x):
    try:
        return comm.allreduce(x, timeout=5.0)
    except:  # noqa: E722
        return None


def swallow_named(comm, x, CommAborted):
    try:
        return comm.allreduce(x, timeout=5.0)
    except CommAborted:
        return None  # caught the abort and dropped it
