"""GOOD: every rank reaches every collective; rank branches only gate
local, non-communicating work."""


def broadcast_model(comm, x):
    # all ranks enter the collective unconditionally
    return comm.bcast(x)


def rank_local_print(comm, msg):
    if comm.rank == 0:
        print(msg)  # whitelisted local call
    comm.barrier()
