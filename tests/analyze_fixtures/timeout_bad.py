"""BAD (runtime path): blocking collectives with no per-call deadline."""


def objective(comm, part):
    return comm.allreduce(part)


def reduce_gram(comm, send, recv):
    return comm.Allreduce(send, out=recv)
