"""BAD: collectives reachable only under rank conditionals."""


def broadcast_from_root(comm, x):
    # the canonical SPMD deadlock: ranks != 0 never enter the bcast
    if comm.rank == 0:
        comm.bcast(x)


def guarded_barrier(comm, flag):
    if comm.rank == 0 and flag:
        comm.barrier()
    else:
        log_skip(comm.rank)


def log_skip(rank):
    return rank
