"""GOOD (replay path): explicit seeds, sorted orders, no wall clock."""
import os

import numpy as np


def sample(n, seed):
    rng = np.random.default_rng(seed)
    return rng.random(n)


def visit(items):
    total = 0
    for item in sorted(set(items)):
        total += item
    return total


def scan(d):
    return sorted(os.listdir(d))
