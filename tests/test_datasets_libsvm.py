"""Tests for the LIBSVM format reader/writer."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import dense_of
from repro.datasets.libsvm import dumps_libsvm, load_libsvm, loads_libsvm, save_libsvm
from repro.errors import DatasetError


SAMPLE = """\
+1 1:0.5 3:-2.0
-1 2:1.25
# a comment line
+1 1:1 2:2 3:3  # trailing comment
"""


class TestParse:
    def test_basic(self):
        A, y = loads_libsvm(SAMPLE)
        assert A.shape == (3, 3)
        assert np.array_equal(y, [1.0, -1.0, 1.0])
        assert A[0, 0] == 0.5 and A[0, 2] == -2.0
        assert A[1, 1] == 1.25

    def test_zero_based(self):
        A, y = loads_libsvm("1 0:5.0\n", zero_based=True)
        assert A[0, 0] == 5.0

    def test_n_features_padding(self):
        A, _ = loads_libsvm("1 1:1\n", n_features=10)
        assert A.shape == (1, 10)

    def test_n_features_too_small(self):
        with pytest.raises(DatasetError):
            loads_libsvm("1 5:1\n", n_features=2)

    def test_empty_rows_allowed(self):
        A, y = loads_libsvm("1\n-1 1:2\n")
        assert A.shape == (2, 1) and A[0].nnz == 0

    def test_bad_label(self):
        with pytest.raises(DatasetError, match="invalid label"):
            loads_libsvm("abc 1:1\n")

    def test_bad_token(self):
        with pytest.raises(DatasetError, match="invalid feature token"):
            loads_libsvm("1 1:xyz\n")

    def test_non_increasing_indices(self):
        with pytest.raises(DatasetError, match="strictly increasing"):
            loads_libsvm("1 2:1 1:1\n")

    def test_index_out_of_range(self):
        with pytest.raises(DatasetError):
            loads_libsvm("1 0:1\n")  # 1-based input may not use index 0

    def test_empty_input(self):
        A, y = loads_libsvm("")
        assert A.shape == (0, 0) and y.shape == (0,)


class TestRoundTrip:
    def test_roundtrip_sparse(self, small_regression):
        A, b, _ = small_regression
        text = dumps_libsvm(A, b)
        A2, b2 = loads_libsvm(text, n_features=A.shape[1])
        assert np.allclose(dense_of(A), dense_of(A2))
        assert np.allclose(b, b2)

    def test_roundtrip_file(self, tmp_path, small_classification):
        A, b = small_classification
        path = tmp_path / "data.svm"
        save_libsvm(path, A, b)
        A2, b2 = load_libsvm(path, n_features=A.shape[1])
        assert np.allclose(dense_of(A), dense_of(A2))
        assert np.array_equal(b, b2)

    def test_label_length_mismatch(self):
        with pytest.raises(DatasetError):
            dumps_libsvm(sp.eye(3, format="csr"), np.ones(2))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000), m=st.integers(1, 20), n=st.integers(1, 15))
    def test_roundtrip_random(self, seed, m, n):
        rng = np.random.default_rng(seed)
        A = sp.random(m, n, density=0.4, random_state=seed, format="csr")
        y = rng.standard_normal(m)
        A2, y2 = loads_libsvm(dumps_libsvm(A, y), n_features=n)
        assert np.allclose(dense_of(A), dense_of(A2))
        assert np.allclose(y, y2)
