"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bbb"], [[1, 2.5], [10, 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        header, sep, r1, r2 = lines
        assert header.index("|") == sep.index("+")

    def test_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456789]], floatfmt=".2f")
        assert "0.12" in out


class TestFormatSeries:
    def test_short_series_full(self):
        out = format_series("s", [1, 2, 3], [4.0, 5.0, 6.0])
        assert out.count("\n") == 3

    def test_decimation(self):
        xs = list(range(100))
        out = format_series("s", xs, xs, max_points=8)
        assert out.count("\n") <= 8

    def test_empty(self):
        assert "empty" in format_series("s", [], [])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])

    def test_endpoints_kept(self):
        xs = list(range(50))
        out = format_series("s", xs, xs, max_points=5)
        assert "49" in out and "0" in out
