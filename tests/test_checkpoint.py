"""Checkpoint/resume across solvers, paths, streaming, CLI, and I/O.

The acceptance contract: a run killed at iteration ``k`` and resumed
from its last checkpoint finishes within ``1e-9`` of the uninterrupted
run — for every solver family, blocking and pipelined, on any backend
(the replay-based sampler resume makes checkpoints backend-portable).
In practice resume is bit-exact; the tests pin ``<= 1e-9`` as the
contract and ``array_equal`` where exactness is load-bearing.
"""

import json
import os

import numpy as np
import pytest

from repro._api import fit_lasso, fit_svm
from repro.checkpoint import (
    SOLVER_CHECKPOINT_VERSION,
    load_solver_checkpoint,
)
from repro.errors import CheckpointError
from repro.faults import InjectedFailure
from repro.mpi.process_backend import process_spmd_run
from repro.mpi.thread_backend import spmd_run
from repro.path import lasso_path
from repro.streaming import StreamingSweep, replay_schedule
from repro.utils.io import atomic_write_json, atomic_write_text

SEED = 5
TOL9 = 1e-9

LASSO_SOLVERS = ["bcd", "sa-bcd", "accbcd", "sa-accbcd"]
SVM_SOLVERS = ["svm", "sa-svm"]


def _lasso_kwargs(solver, pipeline=False):
    kw = dict(solver=solver, mu=2, max_iter=24, tol=None, seed=SEED,
              record_every=4)
    if solver.startswith("sa-"):
        kw.update(s=4, pipeline=pipeline)
    return kw


def _svm_kwargs(solver, pipeline=False):
    kw = dict(solver=solver, loss="l2", lam=0.7, max_iter=40, tol=None,
              seed=SEED, record_every=8)
    if solver.startswith("sa-"):
        kw.update(s=4, pipeline=pipeline)
    return kw


class _CrashingSink:
    """Callable sink that captures checkpoints, then kills the run."""

    def __init__(self, crash_at: int):
        self.crash_at = crash_at
        self.payloads = []

    def __call__(self, payload):
        self.payloads.append(payload)
        if payload["iteration"] >= self.crash_at:
            raise InjectedFailure(
                f"simulated crash at iteration {payload['iteration']}"
            )


class TestSolverCrashResume:
    """Crash at iteration k, resume from the last checkpoint, finish
    within 1e-9 of the uninterrupted run — every solver, both modes."""

    @pytest.mark.parametrize("solver", LASSO_SOLVERS)
    @pytest.mark.parametrize("pipeline", [False, True])
    def test_lasso(self, dense_regression, solver, pipeline):
        if pipeline and not solver.startswith("sa-"):
            pytest.skip("pipeline needs an SA solver")
        A, b, _ = dense_regression
        kw = _lasso_kwargs(solver, pipeline)
        full = fit_lasso(A, b, 0.3, **kw)
        sink = _CrashingSink(crash_at=8)
        with pytest.raises(InjectedFailure):
            fit_lasso(A, b, 0.3, checkpoint_every=4, checkpoint_sink=sink,
                      **kw)
        assert sink.payloads, "no checkpoint was emitted before the crash"
        resumed = fit_lasso(A, b, 0.3, resume_from=sink.payloads[-1], **kw)
        assert np.max(np.abs(full.x - resumed.x)) <= TOL9
        assert resumed.iterations == full.iterations
        assert resumed.history.iterations == full.history.iterations

    @pytest.mark.parametrize("solver", SVM_SOLVERS)
    @pytest.mark.parametrize("pipeline", [False, True])
    def test_svm(self, small_classification, solver, pipeline):
        if pipeline and not solver.startswith("sa-"):
            pytest.skip("pipeline needs an SA solver")
        A, b = small_classification
        kw = _svm_kwargs(solver, pipeline)
        full = fit_svm(A, b, **kw)
        sink = _CrashingSink(crash_at=16)
        with pytest.raises(InjectedFailure):
            fit_svm(A, b, checkpoint_every=8, checkpoint_sink=sink, **kw)
        assert sink.payloads
        resumed = fit_svm(A, b, resume_from=sink.payloads[-1], **kw)
        assert np.max(np.abs(full.x - resumed.x)) <= TOL9
        assert np.max(np.abs(full.extras["alpha"]
                             - resumed.extras["alpha"])) <= TOL9


class TestBackendPortability:
    """One checkpoint file resumes under any backend and either mode."""

    def _emit(self, A, b, tmp_path, **kw):
        path = tmp_path / "ck.json"
        fit_lasso(A, b, 0.3, max_iter=8, checkpoint_every=8,
                  checkpoint_sink=str(path), **kw)
        return str(path)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_virtual_checkpoint_resumes_on_real_backend(
            self, dense_regression, tmp_path, backend):
        A, b, _ = dense_regression
        kw = dict(solver="sa-accbcd", mu=2, s=4, tol=None, seed=SEED)
        full = fit_lasso(A, b, 0.3, max_iter=20, **kw)
        path = self._emit(A, b, tmp_path, **kw)

        def work(comm, rank):
            res = fit_lasso(A, b, 0.3, max_iter=20, comm=comm,
                            resume_from=path, **kw)
            return res.x

        runner = spmd_run if backend == "thread" else process_spmd_run
        out = runner(work, 2)
        for x in out.values:
            assert np.max(np.abs(full.x - x)) <= TOL9

    def test_blocking_checkpoint_resumes_pipelined_and_cross_solver(
            self, dense_regression, tmp_path):
        A, b, _ = dense_regression
        kw = dict(mu=2, s=4, tol=None, seed=SEED)
        path = self._emit(A, b, tmp_path, solver="sa-bcd", **kw)
        full = fit_lasso(A, b, 0.3, solver="sa-bcd", max_iter=20, **kw)
        # blocking -> pipelined
        piped = fit_lasso(A, b, 0.3, solver="sa-bcd", max_iter=20,
                          pipeline=True, resume_from=path, **kw)
        assert np.max(np.abs(full.x - piped.x)) <= TOL9
        # sa-bcd checkpoint resumes the classical solver of the family
        classical = fit_lasso(A, b, 0.3, solver="bcd", mu=2, tol=None,
                              seed=SEED, max_iter=20, resume_from=path)
        assert np.max(np.abs(full.x - classical.x)) <= TOL9


class TestValidation:
    def test_non_integer_seed_rejected(self, dense_regression):
        A, b, _ = dense_regression
        rng = np.random.default_rng(0)
        with pytest.raises(CheckpointError):
            fit_lasso(A, b, 0.3, solver="bcd", max_iter=4, seed=rng,
                      checkpoint_every=2, checkpoint_sink=lambda p: None)

    def test_family_seed_param_mismatches(self, dense_regression,
                                          small_classification):
        A, b, _ = dense_regression
        sink = []
        fit_lasso(A, b, 0.3, solver="bcd", mu=2, max_iter=4, tol=None,
                  seed=SEED, checkpoint_every=4,
                  checkpoint_sink=sink.append)
        ck = sink[-1]
        As, bs = small_classification
        with pytest.raises(CheckpointError):  # wrong family
            fit_svm(As, bs, solver="svm", max_iter=4, seed=SEED,
                    resume_from=ck)
        with pytest.raises(CheckpointError):  # wrong seed
            fit_lasso(A, b, 0.3, solver="bcd", mu=2, max_iter=8,
                      seed=SEED + 1, resume_from=ck)
        with pytest.raises(CheckpointError):  # wrong params (mu)
            fit_lasso(A, b, 0.3, solver="bcd", mu=4, max_iter=8,
                      seed=SEED, resume_from=ck)

    def test_version_and_kind_guards(self, dense_regression):
        A, b, _ = dense_regression
        sink = []
        fit_lasso(A, b, 0.3, solver="bcd", mu=2, max_iter=4, tol=None,
                  seed=SEED, checkpoint_every=4,
                  checkpoint_sink=sink.append)
        bad = dict(sink[-1], format_version=SOLVER_CHECKPOINT_VERSION + 1)
        with pytest.raises(CheckpointError):
            load_solver_checkpoint(bad, family="lasso-plain", seed=SEED,
                                   params=bad["params"])
        with pytest.raises(CheckpointError):
            load_solver_checkpoint({"kind": "nope"}, family="lasso-plain",
                                   seed=SEED, params={})

    def test_unreadable_path_is_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_solver_checkpoint(str(tmp_path / "missing.json"),
                                   family="lasso-plain", seed=0, params={})


class TestCorruptedFiles:
    """Every on-disk corruption mode surfaces as a CheckpointError that
    names the offending path and the reason — never a raw
    JSONDecodeError/KeyError/TypeError escape."""

    def _good_payload(self, dense_regression):
        A, b, _ = dense_regression
        sink = []
        fit_lasso(A, b, 0.3, solver="bcd", mu=2, max_iter=4, tol=None,
                  seed=SEED, checkpoint_every=4,
                  checkpoint_sink=sink.append)
        return sink[-1]

    def _resume(self, dense_regression, path):
        A, b, _ = dense_regression
        return fit_lasso(A, b, 0.3, solver="bcd", mu=2, max_iter=8,
                         seed=SEED, resume_from=str(path))

    def test_missing_file_names_path(self, dense_regression, tmp_path):
        path = tmp_path / "never_written.json"
        with pytest.raises(CheckpointError, match="never_written"):
            self._resume(dense_regression, path)

    def test_truncated_file(self, dense_regression, tmp_path):
        payload = self._good_payload(dense_regression)
        path = tmp_path / "ck.json"
        atomic_write_json(str(path), payload)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError, match="ck.json"):
            self._resume(dense_regression, path)

    def test_garbage_bytes(self, dense_regression, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_bytes(b"\x00\xffnot json at all\x7f")
        with pytest.raises(CheckpointError, match="garbage.json"):
            self._resume(dense_regression, path)

    def test_non_dict_json(self, dense_regression, tmp_path):
        path = tmp_path / "list.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(CheckpointError, match="expected"):
            self._resume(dense_regression, path)

    def test_wrong_version_on_disk(self, dense_regression, tmp_path):
        payload = dict(self._good_payload(dense_regression),
                       format_version=SOLVER_CHECKPOINT_VERSION + 7)
        path = tmp_path / "vers.json"
        atomic_write_json(str(path), payload)
        with pytest.raises(CheckpointError, match="format_version"):
            self._resume(dense_regression, path)

    def test_garbage_seed_in_checkpoint(self, dense_regression, tmp_path):
        payload = dict(self._good_payload(dense_regression),
                       seed="not-a-seed")
        path = tmp_path / "seed.json"
        atomic_write_json(str(path), payload)
        with pytest.raises(CheckpointError, match="seed"):
            self._resume(dense_regression, path)

    def test_garbage_state_vector(self, dense_regression, tmp_path):
        payload = self._good_payload(dense_regression)
        payload = dict(payload, state=dict(payload["state"], x="corrupt"))
        path = tmp_path / "state.json"
        atomic_write_json(str(path), payload)
        with pytest.raises(CheckpointError):
            self._resume(dense_regression, path)

    def test_wrong_length_state_vector(self, dense_regression, tmp_path):
        payload = self._good_payload(dense_regression)
        payload = dict(payload, state=dict(payload["state"], x=[1.0, 2.0]))
        path = tmp_path / "short.json"
        atomic_write_json(str(path), payload)
        with pytest.raises(CheckpointError):
            self._resume(dense_regression, path)

    def test_garbage_iteration(self, dense_regression, tmp_path):
        payload = dict(self._good_payload(dense_regression),
                       iteration="soon")
        path = tmp_path / "iter.json"
        atomic_write_json(str(path), payload)
        with pytest.raises(CheckpointError, match="iteration"):
            self._resume(dense_regression, path)


class TestPathResume:
    def test_path_checkpoint_resume_matches_full_sweep(self,
                                                       dense_regression,
                                                       tmp_path):
        A, b, _ = dense_regression
        kw = dict(n_lambdas=6, solver="sa-accbcd", mu=2, s=4, max_iter=20,
                  tol=None, seed=SEED, record_every=5)
        full = lasso_path(A, b, **kw)
        captured = []
        lasso_path(A, b, checkpoint_every=2,
                   checkpoint_sink=captured.append, **kw)
        assert captured and captured[-1]["kind"] == "lasso-path"
        mid = captured[0]  # 2 of 6 grid points completed
        assert mid["completed"] == 2
        resumed = lasso_path(A, b, resume_from=mid, **kw)
        assert np.array_equal(full.lambdas, resumed.lambdas)
        for rf, rr in zip(full.results, resumed.results, strict=True):
            assert np.max(np.abs(rf.x - rr.x)) <= TOL9

    def test_path_file_round_trip(self, dense_regression, tmp_path):
        A, b, _ = dense_regression
        path = tmp_path / "path_ck.json"
        kw = dict(n_lambdas=4, solver="bcd", mu=2, max_iter=12, tol=None,
                  seed=SEED)
        full = lasso_path(A, b, **kw)
        lasso_path(A, b, checkpoint_every=1, checkpoint_sink=str(path), **kw)
        resumed = lasso_path(A, b, resume_from=str(path), **kw)
        for rf, rr in zip(full.results, resumed.results, strict=True):
            assert np.array_equal(rf.x, rr.x)


class TestStreamingResume:
    def _batches(self, n, rng):
        return [(rng.standard_normal((8, n)), rng.standard_normal(8)),
                ("evict_oldest", 5),
                (rng.standard_normal((6, n)), rng.standard_normal(6)),
                ("relabel_oldest", 4)]

    def test_engine_round_trip_and_materialize_equivalence(self):
        rng = np.random.default_rng(0)
        m, n = 60, 12
        A = rng.standard_normal((m, n))
        b = rng.standard_normal(m)
        batches = self._batches(n, rng)
        eng = StreamingSweep(A, b, task="lasso", virtual_p=4, max_iter=40,
                             tol=None, seed=3)
        eng.append(*batches[0])
        eng.solve()
        ck = eng.checkpoint()
        eng.append(*batches[2])
        r_live = eng.solve()
        resumed = StreamingSweep.from_checkpoint(ck, virtual_p=4)
        resumed.append(*batches[2])
        r_resumed = resumed.solve()
        assert np.max(np.abs(r_live.x - r_resumed.x)) <= TOL9
        A1, b1 = eng.materialize()
        A2, b2 = resumed.materialize()
        assert np.array_equal(A1, A2) and np.array_equal(b1, b2)
        assert [r.rev for r in resumed.revisions] == [0, 1, 2]

    def test_engine_rank_count_guard(self):
        rng = np.random.default_rng(1)
        A = rng.standard_normal((20, 6))
        b = rng.standard_normal(20)

        def work(comm, rank):
            eng = StreamingSweep(A, b, comm=comm, mu=2, max_iter=10,
                                 tol=None)
            return eng.checkpoint()

        ck = spmd_run(work, 2).values[0]  # taken at 2 real ranks
        with pytest.raises(CheckpointError):
            StreamingSweep.from_checkpoint(ck)  # virtual: 1 actual rank

    def test_replay_resume_report_identical(self, tmp_path):
        rng = np.random.default_rng(2)
        m, n = 50, 10
        A = rng.standard_normal((m, n))
        b = rng.standard_normal(m)
        batches = self._batches(n, rng)
        kw = dict(task="lasso", max_iter=30, seed=2, virtual_p=2,
                  compare_cold=True)
        full = replay_schedule(A, b, batches, **kw)
        ck_path = tmp_path / "replay_ck.json"
        # crash after two events: replay only the prefix, checkpointing
        replay_schedule(A, b, batches[:2], checkpoint_path=str(ck_path),
                        **kw)
        resumed = replay_schedule(A, b, batches, resume_from=str(ck_path),
                                  **kw)
        assert (json.dumps(full, sort_keys=True)
                == json.dumps(resumed, sort_keys=True))

    def test_replay_resume_svm_with_window(self, tmp_path):
        rng = np.random.default_rng(3)
        m, n = 40, 8
        A = rng.standard_normal((m, n))
        b = np.where(rng.standard_normal(m) >= 0, 1.0, -1.0)
        y1 = np.where(rng.standard_normal(10) >= 0, 1.0, -1.0)
        y2 = np.where(rng.standard_normal(10) >= 0, 1.0, -1.0)
        batches = [(rng.standard_normal((10, n)), y1),
                   (rng.standard_normal((10, n)), y2)]
        kw = dict(task="svm", loss="l2", max_rows=45, max_iter=60, seed=1,
                  virtual_p=2)
        full = replay_schedule(A, b, batches, **kw)
        ck_path = tmp_path / "replay_svm.json"
        replay_schedule(A, b, batches[:1], checkpoint_path=str(ck_path),
                        **kw)
        resumed = replay_schedule(A, b, batches, resume_from=str(ck_path),
                                  **kw)
        assert (json.dumps(full, sort_keys=True)
                == json.dumps(resumed, sort_keys=True))

    def test_replay_resume_task_and_progress_guards(self, tmp_path):
        rng = np.random.default_rng(4)
        A = rng.standard_normal((20, 6))
        b = rng.standard_normal(20)
        batches = [(rng.standard_normal((4, 6)), rng.standard_normal(4))]
        ck_path = tmp_path / "g.json"
        replay_schedule(A, b, batches, task="lasso", mu=2, max_iter=10,
                        seed=0, checkpoint_path=str(ck_path))
        with pytest.raises(CheckpointError):  # wrong task
            replay_schedule(A, np.where(b >= 0, 1.0, -1.0), batches,
                            task="svm", max_iter=10, seed=0,
                            resume_from=str(ck_path))
        with pytest.raises(CheckpointError):  # shorter schedule than applied
            replay_schedule(A, b, [], task="lasso", mu=2, max_iter=10,
                            seed=0, resume_from=str(ck_path))


class TestCliStream:
    ARGS = ["stream", "--dataset", "covtype", "--cells", "3000",
            "--schedule", "6,-3,6", "--max-iter", "30"]

    def test_checkpoint_then_resume_identical_report(self, tmp_path, capsys):
        from repro.cli import main

        full_out = tmp_path / "full.json"
        ck = tmp_path / "ck.json"
        rc = main(self.ARGS + ["--save", str(full_out),
                               "--checkpoint", str(ck)])
        assert rc == 0
        res_out = tmp_path / "resumed.json"
        rc = main(self.ARGS + ["--save", str(res_out),
                               "--resume", str(ck)])
        assert rc == 0
        capsys.readouterr()
        full = json.loads(full_out.read_text())
        resumed = json.loads(res_out.read_text())
        assert (json.dumps(full, sort_keys=True)
                == json.dumps(resumed, sort_keys=True))

    def test_bad_resume_file_is_cli_error(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        rc = main(self.ARGS + ["--resume", str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestAtomicWrites:
    def test_atomic_write_json_round_trip_and_no_temp_residue(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"a": [1.5, 2.5], "b": "x"})
        assert json.loads(target.read_text()) == {"a": [1.5, 2.5], "b": "x"}
        assert os.listdir(tmp_path) == ["out.json"]

    def test_failed_write_preserves_previous_file(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"v": 1})
        with pytest.raises(TypeError):  # not JSON-serialisable
            atomic_write_json(target, {"v": object()})
        assert json.loads(target.read_text()) == {"v": 1}
        assert os.listdir(tmp_path) == ["out.json"]

    def test_interrupted_replace_leaves_no_partial_target(self, tmp_path,
                                                          monkeypatch):
        target = tmp_path / "out.json"
        atomic_write_text(target, "complete-v1")

        def boom(src, dst):
            raise OSError("simulated crash during replace")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(target, "partial-v2")
        monkeypatch.undo()
        assert target.read_text() == "complete-v1"
        assert os.listdir(tmp_path) == ["out.json"]

    def test_solver_checkpoint_file_is_valid_json_after_every_emit(
            self, dense_regression, tmp_path):
        A, b, _ = dense_regression
        path = tmp_path / "ck.json"
        seen = []

        def sink(payload):
            # mirror the file write, then verify the file parses — the
            # path emission happened just before for earlier iterations
            if path.exists():
                json.loads(path.read_text())
            seen.append(payload["iteration"])

        fit_lasso(A, b, 0.3, solver="bcd", mu=2, max_iter=12, tol=None,
                  seed=SEED, checkpoint_every=3, checkpoint_sink=sink)
        assert seen == [3, 6, 9, 12]


class TestPayloadShape:
    def test_make_solver_checkpoint_is_json_ready(self, dense_regression):
        A, b, _ = dense_regression
        sink = []
        fit_lasso(A, b, 0.3, solver="sa-accbcd", mu=2, s=4, max_iter=8,
                  tol=None, seed=SEED, checkpoint_every=4,
                  checkpoint_sink=sink.append)
        ck = sink[-1]
        round_tripped = json.loads(json.dumps(ck))
        assert round_tripped == ck
        assert ck["kind"] == "solver"
        assert ck["family"] == "lasso-acc"
        assert ck["format_version"] == SOLVER_CHECKPOINT_VERSION
        assert set(ck["ledger"]) >= {"retries", "timeouts", "flops"}

    def test_helper_requires_int_iteration(self):
        with pytest.raises(CheckpointError):
            load_solver_checkpoint(
                {"kind": "solver",
                 "format_version": SOLVER_CHECKPOINT_VERSION,
                 "family": "lasso-plain", "seed": 0, "params": {},
                 "iteration": -1},
                family="lasso-plain", seed=0, params={},
            )
