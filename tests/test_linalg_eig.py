"""Tests for the block-Lipschitz eigenvalue computation."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.linalg.eig import largest_eigenvalue, power_iteration


def _gram(k, seed=0):
    rng = np.random.default_rng(seed)
    M = rng.standard_normal((k + 2, k))
    return M.T @ M


class TestLargestEigenvalue:
    def test_scalar_case(self):
        assert largest_eigenvalue(np.array([[4.0]])) == 4.0

    def test_small_exact(self):
        G = _gram(6)
        assert largest_eigenvalue(G) == pytest.approx(np.linalg.eigvalsh(G)[-1])

    def test_large_power_iteration(self):
        G = _gram(100, seed=2)
        assert largest_eigenvalue(G) == pytest.approx(
            np.linalg.eigvalsh(G)[-1], rel=1e-6
        )

    def test_zero_matrix(self):
        assert largest_eigenvalue(np.zeros((3, 3))) == 0.0

    def test_tiny_negative_clamped(self):
        # roundoff can give -1e-18 eigenvalues on PSD inputs
        G = np.array([[1e-30, 0.0], [0.0, -1e-30]])
        assert largest_eigenvalue(G) >= 0.0

    def test_non_square_rejected(self):
        with pytest.raises(SolverError):
            largest_eigenvalue(np.ones((2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(SolverError):
            largest_eigenvalue(np.zeros((0, 0)))

    def test_deterministic(self):
        G = _gram(80, seed=3)
        assert largest_eigenvalue(G) == largest_eigenvalue(G)


class TestPowerIteration:
    def test_matches_lapack(self):
        G = _gram(20, seed=5)
        assert power_iteration(G) == pytest.approx(
            np.linalg.eigvalsh(G)[-1], rel=1e-6
        )

    def test_zero(self):
        assert power_iteration(np.zeros((4, 4))) == 0.0

    def test_identity(self):
        assert power_iteration(np.eye(8)) == pytest.approx(1.0)

    def test_start_vector_orthogonal_pathology(self):
        # dominant eigenvector nearly orthogonal to all-ones start:
        # power iteration still converges via roundoff mixing or returns
        # a valid Rayleigh quotient <= lambda_max
        G = np.diag([1.0, 5.0])
        v = power_iteration(G, max_iter=2000)
        assert v <= 5.0 + 1e-9
