"""Tests for the block-Lipschitz eigenvalue computation."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.linalg.eig import largest_eigenvalue, power_iteration


def _gram(k, seed=0):
    rng = np.random.default_rng(seed)
    M = rng.standard_normal((k + 2, k))
    return M.T @ M


class TestLargestEigenvalue:
    def test_scalar_case(self):
        assert largest_eigenvalue(np.array([[4.0]])) == 4.0

    def test_small_exact(self):
        G = _gram(6)
        assert largest_eigenvalue(G) == pytest.approx(np.linalg.eigvalsh(G)[-1])

    def test_large_power_iteration(self):
        G = _gram(100, seed=2)
        assert largest_eigenvalue(G) == pytest.approx(
            np.linalg.eigvalsh(G)[-1], rel=1e-6
        )

    def test_zero_matrix(self):
        assert largest_eigenvalue(np.zeros((3, 3))) == 0.0

    def test_tiny_negative_clamped(self):
        # roundoff can give -1e-18 eigenvalues on PSD inputs
        G = np.array([[1e-30, 0.0], [0.0, -1e-30]])
        assert largest_eigenvalue(G) >= 0.0

    def test_non_square_rejected(self):
        with pytest.raises(SolverError):
            largest_eigenvalue(np.ones((2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(SolverError):
            largest_eigenvalue(np.zeros((0, 0)))

    def test_deterministic(self):
        G = _gram(80, seed=3)
        assert largest_eigenvalue(G) == largest_eigenvalue(G)


class TestPowerIteration:
    def test_matches_lapack(self):
        G = _gram(20, seed=5)
        assert power_iteration(G) == pytest.approx(
            np.linalg.eigvalsh(G)[-1], rel=1e-6
        )

    def test_zero(self):
        assert power_iteration(np.zeros((4, 4))) == 0.0

    def test_identity(self):
        assert power_iteration(np.eye(8)) == pytest.approx(1.0)

    def test_start_vector_orthogonal_pathology(self):
        # dominant eigenvector nearly orthogonal to all-ones start:
        # power iteration still converges via roundoff mixing or returns
        # a valid Rayleigh quotient <= lambda_max
        G = np.diag([1.0, 5.0])
        v = power_iteration(G, max_iter=2000)
        assert v <= 5.0 + 1e-9

    def test_rank_one_gram(self):
        # rank-deficient Gram of a repeated sampled column
        u = np.array([1.0, -2.0, 0.5, 3.0])
        G = np.outer(u, u)
        assert power_iteration(G) == pytest.approx(float(u @ u), rel=1e-8)

    def test_rank_deficient_with_null_rows(self):
        # zero rows/columns (a sampled column with no local non-zeros)
        G = np.zeros((5, 5))
        G[1, 1] = 4.0
        assert power_iteration(G) == pytest.approx(4.0, rel=1e-8)

    def test_start_vector_in_nullspace_returns_zero(self):
        # norm == 0.0 early-return: the deterministic all-ones start lies
        # exactly in the nullspace of the centering projector, so the
        # very first matvec vanishes and the guard must fire (returning 0
        # rather than dividing by zero)
        k = 4
        G = np.eye(k) - np.full((k, k), 1.0 / k)
        assert power_iteration(G) == 0.0

    def test_zero_gram_via_largest_eigenvalue_large(self):
        # the > _DIRECT_MAX route hits power_iteration's zero guard too
        assert largest_eigenvalue(np.zeros((80, 80))) == 0.0
