"""Tests for the process-SPMD backend (forked ranks over shared memory).

Runs the identical backend-agnostic collective contract suite as the
thread backend (``spmd_collective_suite``), plus process-specific
behaviour: slab capacity limits, GIL-free parallelism plumbing, ledger
round-trips, and solver parity against sequential runs.
"""

import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro.errors import CommAborted, CommError
from repro.machine.spec import CRAY_XC30
from repro.mpi.process_backend import ProcessComm, ProcessWorld, process_spmd_run
from repro.solvers.lasso import sa_acc_bcd
from repro.solvers.svm import sa_dcd
from spmd_collective_suite import (
    BufferCollectivesSuite,
    CostPlumbingSuite,
    FailureModesSuite,
    NonblockingSuite,
    ObjectCollectivesSuite,
)


class TestObjectCollectives(ObjectCollectivesSuite):
    run = staticmethod(process_spmd_run)


class TestBufferCollectives(BufferCollectivesSuite):
    run = staticmethod(process_spmd_run)


class TestNonblocking(NonblockingSuite):
    run = staticmethod(process_spmd_run)


class TestFailureModes(FailureModesSuite):
    run = staticmethod(process_spmd_run)


class TestCostPlumbing(CostPlumbingSuite):
    run = staticmethod(process_spmd_run)


class TestProcessSpecific:
    def test_world_rejects_bad_size(self):
        with pytest.raises(CommError):
            ProcessWorld(0)

    def test_oversized_blocking_payload_rejected(self):
        def fn(comm, r):
            return comm.allreduce(np.zeros(1000))

        # the error must name both the payload size and the knob
        with pytest.raises(CommError, match=r"slab_bytes=1024"):
            process_spmd_run(fn, 2, slab_bytes=1024)

    def test_oversized_payload_wakes_parked_peers(self):
        """Only one rank overflowing must not leave the others parked on
        the barrier until the timeout/terminate path fires."""

        def fn(comm, r):
            payload = np.zeros(1000) if r == 0 else 1.0
            return comm.allreduce(payload)

        t0 = time.monotonic()
        with pytest.raises(CommError, match="slab capacity"):
            process_spmd_run(fn, 2, slab_bytes=1024, timeout=60.0)
        assert time.monotonic() - t0 < 30.0  # deterministic, not the timeout

    def test_oversized_nonblocking_payload_rejected(self):
        def fn(comm, r):
            return comm.Iallreduce(np.zeros(64)).wait()

        with pytest.raises(CommError, match=r"nb_doubles=16"):
            process_spmd_run(fn, 2, nb_doubles=16)

    def test_nonfloat_nonblocking_payload_rejected(self):
        def fn(comm, r):
            return comm.Iallreduce(np.arange(4)).wait()  # int64

        with pytest.raises(CommError, match="float64"):
            process_spmd_run(fn, 2)

    def test_ledgers_pickle_back_with_by_collective(self):
        def fn(comm, r):
            comm.Allreduce(np.ones(8))
            comm.bcast(1)
            comm.account_flops(50.0, "blas3")

        res = process_spmd_run(fn, 2, machine=CRAY_XC30)
        led = res.ledgers[0]
        assert set(led.by_collective) == {"allreduce", "bcast"}
        assert led.by_kind["blas3"] == pytest.approx(50.0)
        # reconstructed defaultdicts still work in the parent
        led.by_collective["new"][0] += 1
        assert led.by_collective["new"][0] == 1

    def test_each_rank_holds_only_its_shard(self, small_regression):
        A, b, _ = small_regression

        def fn(comm, rank):
            from repro.linalg.distmatrix import RowPartitionedMatrix

            M = RowPartitionedMatrix.from_global(A, comm)
            return M.local.shape[0]

        res = process_spmd_run(fn, 3)
        assert sum(res.values) == A.shape[0]
        assert all(v < A.shape[0] for v in res.values)

    @pytest.mark.slow
    def test_sa_acc_bcd_matches_sequential(self, small_regression):
        A, b, _ = small_regression
        seq = sa_acc_bcd(A, b, 0.9, mu=2, s=8, max_iter=48, seed=1,
                         record_every=0).x

        def fn(comm, rank):
            return sa_acc_bcd(A, b, 0.9, mu=2, s=8, max_iter=48, seed=1,
                              comm=comm, record_every=0).x

        res = process_spmd_run(fn, 4)
        for xv in res.values:
            assert np.allclose(xv, seq, atol=1e-10)

    @pytest.mark.slow
    def test_sa_dcd_matches_sequential(self, small_classification):
        A, b = small_classification
        seq = sa_dcd(A, b, loss="l2", s=16, max_iter=96, seed=5,
                     record_every=0)

        def fn(comm, rank):
            res = sa_dcd(A, b, loss="l2", s=16, max_iter=96, seed=5,
                         comm=comm, record_every=0)
            return res.x, res.extras["alpha"]

        out = process_spmd_run(fn, 3)
        for xv, av in out.values:
            assert np.allclose(xv, seq.x, atol=1e-10)
            assert np.allclose(av, seq.extras["alpha"], atol=1e-10)

    @pytest.mark.slow
    def test_message_counts_match_virtual(self, small_regression):
        """Process-P and virtual-P modes must charge identical comm costs."""
        A, b, _ = small_regression
        P, H = 4, 32

        def fn(comm, rank):
            sa_acc_bcd(A, b, 0.9, mu=2, s=8, max_iter=H, seed=0, comm=comm,
                       record_every=0)

        proc = process_spmd_run(fn, P, machine=CRAY_XC30)

        from repro.mpi.virtual_backend import VirtualComm

        vc = VirtualComm(P, machine=CRAY_XC30)
        sa_acc_bcd(A, b, 0.9, mu=2, s=8, max_iter=H, seed=0, comm=vc,
                   record_every=0)
        assert proc.ledgers[0].messages == vc.ledger.messages
        assert proc.ledgers[0].words == pytest.approx(vc.ledger.words)


class TestShutdownTeardown:
    """Exception-safe teardown: a failing rank must wake blocked peers
    deterministically and leave no live children — never relying on the
    join-timeout/terminate path."""

    @staticmethod
    def _no_live_spmd_children(grace: float = 5.0) -> bool:
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            if not any(p.name.startswith("spmd-proc")
                       for p in mp.active_children()):
                return True
            time.sleep(0.05)
        return False

    def test_raising_rank_wakes_parked_peer(self):
        def fn(comm, r):
            if r == 0:
                raise ValueError("boom mid-collective")
            for _ in range(1000):
                comm.allreduce(1.0)  # parks on a barrier rank 0 never joins
            return True

        t0 = time.monotonic()
        with pytest.raises(ValueError, match="boom"):
            process_spmd_run(fn, 2, timeout=60.0)
        assert time.monotonic() - t0 < 30.0  # woken, not timed out
        assert self._no_live_spmd_children()

    def test_killed_rank_wakes_parked_peer(self):
        """A child dying without reporting (crash/kill) can never let the
        world complete; the parent must abort it promptly."""

        def fn(comm, r):
            if r == 0:
                os._exit(3)  # dies mid-flight, reports nothing
            comm.allreduce(1.0)
            return True

        t0 = time.monotonic()
        with pytest.raises(CommAborted):
            process_spmd_run(fn, 2, timeout=60.0)
        assert time.monotonic() - t0 < 30.0
        assert self._no_live_spmd_children()

    def test_world_context_manager_shutdown(self):
        with ProcessWorld(2) as world:
            assert not world.is_aborted()
        assert world.is_aborted()
        # post-shutdown collectives fail fast instead of blocking
        comm = ProcessComm(world, 0)
        with pytest.raises(CommAborted):
            comm.allreduce(1.0)

    def test_shutdown_is_idempotent(self):
        world = ProcessWorld(2)
        world.shutdown()
        world.shutdown()
        assert world.is_aborted()
