"""Property-based tests of the paper's central invariants.

The headline claim (paper §III, §V): the SA re-arrangement changes *no
mathematics* — for any problem shape, block size mu, unrolling s, seed,
and penalty, the SA solver reproduces the classical iterate sequence up
to floating-point roundoff. Hypothesis searches that space.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import make_classification, make_sparse_regression
from repro.solvers.lasso import acc_bcd, bcd, sa_acc_bcd, sa_bcd
from repro.solvers.svm import dcd, sa_dcd


lasso_shapes = st.tuples(
    st.integers(8, 40),  # m
    st.integers(4, 24),  # n
)


@settings(max_examples=25, deadline=None)
@given(
    shape=lasso_shapes,
    mu=st.integers(1, 4),
    s=st.integers(1, 20),
    seed=st.integers(0, 1000),
    lam=st.floats(0.01, 5.0),
    density=st.floats(0.2, 1.0),
)
def test_sa_bcd_equivalence_property(shape, mu, s, seed, lam, density):
    m, n = shape
    mu = min(mu, n)
    A, b, _ = make_sparse_regression(m, n, density=density, seed=seed % 7)
    H = 30
    r = bcd(A, b, lam, mu=mu, max_iter=H, seed=seed, record_every=0)
    rs = sa_bcd(A, b, lam, mu=mu, s=s, max_iter=H, seed=seed, record_every=0)
    assert np.allclose(r.x, rs.x, atol=1e-9, rtol=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    shape=lasso_shapes,
    mu=st.integers(1, 4),
    s=st.integers(2, 16),
    seed=st.integers(0, 1000),
    lam=st.floats(0.01, 5.0),
)
def test_sa_acc_bcd_equivalence_property(shape, mu, s, seed, lam):
    m, n = shape
    mu = min(mu, n)
    A, b, _ = make_sparse_regression(m, n, density=0.5, seed=seed % 5)
    H = 30
    r = acc_bcd(A, b, lam, mu=mu, max_iter=H, seed=seed, record_every=0)
    rs = sa_acc_bcd(A, b, lam, mu=mu, s=s, max_iter=H, seed=seed, record_every=0)
    assert np.allclose(r.x, rs.x, atol=1e-8, rtol=1e-8)


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(6, 40),
    n=st.integers(4, 20),
    s=st.integers(2, 25),
    seed=st.integers(0, 1000),
    loss=st.sampled_from(["l1", "l2"]),
    lam=st.floats(0.1, 4.0),
)
def test_sa_svm_equivalence_property(m, n, s, seed, loss, lam):
    A, b = make_classification(m, n, density=0.6, seed=seed % 5)
    H = 40
    r = dcd(A, b, loss=loss, lam=lam, max_iter=H, seed=seed, record_every=0)
    rs = sa_dcd(A, b, loss=loss, lam=lam, s=s, max_iter=H, seed=seed,
                record_every=0)
    assert np.allclose(r.x, rs.x, atol=1e-9, rtol=1e-9)
    assert np.allclose(r.extras["alpha"], rs.extras["alpha"], atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500), lam=st.floats(0.05, 2.0))
def test_bcd_objective_monotone_property(seed, lam):
    A, b, _ = make_sparse_regression(30, 20, density=0.5, seed=seed % 5)
    r = bcd(A, b, lam, mu=2, max_iter=40, seed=seed)
    h = r.history.metric
    assert all(b2 <= a2 + 1e-9 * max(1, abs(a2)) for a2, b2 in zip(h, h[1:], strict=False))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500), loss=st.sampled_from(["l1", "l2"]))
def test_svm_dual_feasible_property(seed, loss):
    from repro.solvers.svm.duality import loss_params

    A, b = make_classification(25, 12, density=0.7, seed=seed % 5)
    lam = 1.0
    r = dcd(A, b, loss=loss, lam=lam, max_iter=60, seed=seed, record_every=0)
    _, nu = loss_params(loss, lam)
    alpha = r.extras["alpha"]
    assert np.all(alpha >= -1e-12)
    assert np.all(alpha <= nu + 1e-12)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 500),
    s=st.integers(1, 10),
    mu=st.integers(1, 3),
)
def test_sa_message_count_property(seed, s, mu):
    """L(SA) = ceil(H/s) * rounds — exactly, for any (H, s, mu)."""
    import math

    from repro.machine.spec import CRAY_XC30
    from repro.mpi.virtual_backend import VirtualComm

    A, b, _ = make_sparse_regression(20, 12, density=0.5, seed=seed % 3)
    H, P = 24, 64
    comm = VirtualComm(P, machine=CRAY_XC30)
    sa_bcd(A, b, 0.5, mu=mu, s=s, max_iter=H, seed=seed, comm=comm,
           record_every=0)
    rounds = math.ceil(math.log2(P))
    assert comm.ledger.messages == math.ceil(H / s) * rounds
