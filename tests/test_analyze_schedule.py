"""Collective-schedule verification: static model vs recorded runtime.

The contract closed here, for every solver family x mode:

1. :func:`repro.analyze.expected_schedule` — the statically generated
   per-rank collective sequence — equals the runtime trace recorded by
   :class:`repro.mpi.tracing.CollectiveTracer`, event for event, on the
   virtual backend and on every rank of the thread backend.
2. The ops the runtime executes are contained in the AST-extracted
   :func:`repro.analyze.static_alphabet` (over-approximation direction),
   and the alphabet is *tight* where it matters: the blocking mode can
   never post a nonblocking collective.

A collective added, dropped, or reordered in a solver then fails these
tests as a sequence diff instead of hanging a world.
"""

from __future__ import annotations

import pytest

from repro.analyze import (
    FAMILIES,
    MODES,
    ScheduleParams,
    expected_schedule,
    static_alphabet,
)
from repro.datasets import make_classification, make_sparse_regression
from repro.machine.spec import CRAY_XC30
from repro.mpi.thread_backend import spmd_run
from repro.mpi.tracing import attach_tracer
from repro.mpi.virtual_backend import VirtualComm


@pytest.fixture(scope="module")
def lasso_problem():
    return make_sparse_regression(40, 24, density=0.3, seed=0)


@pytest.fixture(scope="module")
def svm_problem():
    return make_classification(30, 20, density=0.5, seed=1)


def _run_solver(family, comm, params: ScheduleParams, mode: str, problem):
    from repro.solvers.lasso import sa_acc_bcd, sa_bcd
    from repro.solvers.svm import sa_dcd

    mode_kw = {}
    if mode == "pipeline":
        mode_kw["pipeline"] = True
    elif mode == "async":
        mode_kw.update(async_=True, tau=params.tau)

    common = dict(
        s=params.s,
        max_iter=params.max_iter,
        record_every=params.record_every,
        seed=0,
        comm=comm,
        **mode_kw,
    )
    if family == "lasso-plain":
        A, b, _ = problem
        sa_bcd(A, b, 0.5, mu=1, **common)
    elif family == "lasso-acc":
        A, b, _ = problem
        sa_acc_bcd(A, b, 0.9, mu=1, **common)
    else:
        A, b = problem
        sa_dcd(A, b, loss="l1", **common)


def _problem_for(family, lasso_problem, svm_problem):
    return svm_problem if family == "svm" else lasso_problem


#: parameter grids covering truncated final chunks, record cadences that
#: skip iterations, record_every=0 (final-record-only), and tau=0 async
_PARAM_GRID = [
    ScheduleParams(max_iter=11, s=4, record_every=1, tau=1),
    ScheduleParams(max_iter=8, s=3, record_every=2, tau=2),
    ScheduleParams(max_iter=5, s=5, record_every=0, tau=0),
]


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("params", _PARAM_GRID, ids=lambda p: (
    f"H{p.max_iter}-s{p.s}-r{p.record_every}-t{p.tau}"
))
def test_virtual_trace_matches_model(
    family, mode, params, lasso_problem, svm_problem
):
    comm = VirtualComm(4, machine=CRAY_XC30)
    tracer = attach_tracer(comm)
    _run_solver(
        family, comm, params, mode, _problem_for(family, lasso_problem, svm_problem)
    )
    assert tracer.keys() == expected_schedule(family, mode, params)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("mode", MODES)
def test_thread_ranks_agree_and_match_model(
    family, mode, lasso_problem, svm_problem
):
    params = ScheduleParams(max_iter=9, s=4, record_every=2, tau=1)
    problem = _problem_for(family, lasso_problem, svm_problem)

    def run_rank(comm, rank):
        tracer = attach_tracer(comm)
        _run_solver(family, comm, params, mode, problem)
        return tracer.keys()

    # async keeps tau + 1 reductions in flight and needs ring slack
    result = spmd_run(run_rank, 2, nb_depth=params.tau + 2)
    schedules = list(result.values)
    assert len(schedules) == 2
    # the SPMD contract: every rank executes the identical sequence
    assert schedules[0] == schedules[1]
    assert schedules[0] == expected_schedule(family, mode, params)


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("mode", MODES)
def test_runtime_ops_within_static_alphabet(
    family, mode, lasso_problem, svm_problem
):
    comm = VirtualComm(2, machine=CRAY_XC30)
    tracer = attach_tracer(comm)
    params = ScheduleParams(max_iter=6, s=3, record_every=1, tau=1)
    _run_solver(
        family, comm, params, mode, _problem_for(family, lasso_problem, svm_problem)
    )
    alphabet = static_alphabet(family, mode)
    runtime_ops = tracer.ops()
    assert runtime_ops <= alphabet, (
        f"runtime executed {sorted(runtime_ops - alphabet)} "
        f"outside the static alphabet {sorted(alphabet)}"
    )


@pytest.mark.parametrize("family", FAMILIES)
def test_blocking_alphabet_has_no_nonblocking_post(family):
    # partial evaluation of async_/pipeline=False must kill the NB arms
    assert "Iallreduce" not in static_alphabet(family, "blocking")


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("mode", ["pipeline", "async"])
def test_overlapped_alphabets_include_nonblocking_post(family, mode):
    assert "Iallreduce" in static_alphabet(family, mode)


# -- model structure (no solver runs) ---------------------------------------


def test_expected_schedule_blocking_structure():
    params = ScheduleParams(max_iter=4, s=2, record_every=1)
    got = expected_schedule("lasso-plain", "blocking", params)
    assert got == [
        "allreduce:scalar",  # iteration-0 record
        "Allreduce:vec", "allreduce:scalar", "allreduce:scalar",
        "Allreduce:vec", "allreduce:scalar", "allreduce:scalar",
    ]


def test_expected_schedule_async_warmup_and_drain():
    # 3 chunks, tau=1 -> 2 warmup posts, 1 steady-state post, drain silent
    params = ScheduleParams(max_iter=6, s=2, record_every=0, tau=1)
    got = expected_schedule("lasso-plain", "async", params)
    assert got.count("Iallreduce:vec") == 3
    assert got[:3] == ["allreduce:scalar", "Iallreduce:vec", "Iallreduce:vec"]
    # record_every=0 -> exactly the final record, after the loop
    assert got[-1] == "allreduce:scalar"


def test_expected_schedule_svm_tail_gather():
    params = ScheduleParams(max_iter=3, s=3, record_every=0)
    got = expected_schedule("svm", "blocking", params)
    # the primal shard gather is the very last collective
    assert got[-1] == "Allgather:vec"
    # iteration-0 record = matvec Allreduce + objective allreduce
    assert got[:2] == ["Allreduce:vec", "allreduce:scalar"]


def test_expected_schedule_rejects_unknowns():
    params = ScheduleParams(max_iter=1)
    with pytest.raises(ValueError):
        expected_schedule("ridge", "blocking", params)
    with pytest.raises(ValueError):
        expected_schedule("svm", "bulk", params)


def test_schedule_params_validation():
    with pytest.raises(ValueError):
        ScheduleParams(max_iter=0)
    with pytest.raises(ValueError):
        ScheduleParams(max_iter=1, s=0)
    with pytest.raises(ValueError):
        ScheduleParams(max_iter=1, tau=-1)
