"""Streaming refit engine: append semantics, incremental state, and the
cold-solve equivalence contract on every solver x backend combination.

The central invariant (ISSUE 4 acceptance): a streaming ``partial_fit``
— appended rows, incrementally updated state, cached sampling views,
warm start — must match a *cold* solve on the concatenated data (fresh
partitioned matrix, fresh caches, same start) to <= 1e-9 relative
error, for every solver and every comm backend. The engine is in fact
bit-identical by construction (same shards, same rank-ordered folds);
the tests assert the 1e-9 contract and record exact equality where it
holds.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro._api import fit_lasso, fit_svm
from repro.datasets import make_classification, make_sparse_regression
from repro.errors import PartitionError, SolverError
from repro.linalg.distmatrix import ColPartitionedMatrix, RowPartitionedMatrix
from repro.machine.spec import CRAY_XC30
from repro.mpi.process_backend import process_spmd_run
from repro.mpi.thread_backend import spmd_run
from repro.mpi.virtual_backend import VirtualComm
from repro.path import lasso_path
from repro.solvers.objectives import lambda_max, lasso_objective
from repro.streaming import StreamingSweep, replay_schedule

LASSO_SOLVERS = ("bcd", "sa-bcd", "accbcd", "sa-accbcd")
SVM_SOLVERS = ("svm", "sa-svm")
BACKENDS = ("virtual", "thread", "process")


def _lasso_data():
    A, b, _ = make_sparse_regression(240, 60, density=0.2, seed=3)
    B1, y1, _ = make_sparse_regression(30, 60, density=0.2, seed=4)
    B2, y2, _ = make_sparse_regression(18, 60, density=0.2, seed=5)
    return A, b, [(B1, y1), (B2, y2)]


def _svm_data():
    A, b = make_classification(200, 50, density=0.3, seed=7, margin=0.2)
    B1, y1 = make_classification(24, 50, density=0.3, seed=8, margin=0.2)
    B2, y2 = make_classification(16, 50, density=0.3, seed=9, margin=0.2)
    return A, b, [(B1, y1), (B2, y2)]


def _dense(M):
    return np.asarray(M.todense()) if sp.issparse(M) else np.asarray(M)


def _run_backend(fn, backend, ranks):
    if backend == "virtual":
        comm = VirtualComm(1)
        return [fn(comm, 0)]
    runner = spmd_run if backend == "thread" else process_spmd_run
    return runner(fn, ranks).values


# ---------------------------------------------------------------------------
# append_rows: the mutable-matrix primitive
# ---------------------------------------------------------------------------


class TestAppendRowsRowPartitioned:
    def _dist(self, A, P=3):
        def fn(comm, rank):
            return RowPartitionedMatrix.from_global(A, comm)

        # build on thread ranks so shards are genuinely rank-local
        return spmd_run(fn, P)

    def test_single_rank_append_matches_vstack(self):
        A, b, batches = _lasso_data()
        B = batches[0][0]
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        part = dist.append_rows(B)
        assert dist.shape == (A.shape[0] + B.shape[0], A.shape[1])
        assert part.n == B.shape[0]
        assert np.allclose(_dense(dist.local),
                           np.vstack([_dense(A), _dense(B)]))
        assert dist.local_nnz == dist.local.nnz

    def test_sampling_view_invalidated_and_rebuilt(self):
        A, b, batches = _lasso_data()
        B = batches[0][0]
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        idx = np.array([0, 3, 5])
        before = _dense(dist.sample_columns(idx)).copy()
        assert dist._csc_cache is not None  # view built by the sample
        dist.append_rows(B)
        assert dist._csc_cache is None  # stale view dropped
        after = _dense(dist.sample_columns(idx))
        expect = np.vstack([_dense(A), _dense(B)])[:, idx]
        assert np.allclose(after, expect)
        assert after.shape[0] == before.shape[0] + B.shape[0]

    def test_collective_buffers_survive_append(self):
        """Packed send/recv and Gram outputs are row-count independent."""
        A, b, batches = _lasso_data()
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        idx = np.arange(4)
        S = dist.sample_columns(idx)
        dist.gram_and_project(S, [np.zeros(dist.local.shape[0])])
        send_before = dist._send_buf
        gram_before = dist._gram_out
        dist.append_rows(batches[0][0])
        S = dist.sample_columns(idx)
        G, _ = dist.gram_and_project(S, [np.zeros(dist.local.shape[0])])
        assert dist._send_buf is send_before
        assert dist._gram_out is gram_before
        expect = _dense(S).T @ _dense(S)
        assert np.allclose(G, expect)

    def test_spmd_balanced_append(self):
        """Per-rank appends keep the partition consistent on real ranks."""
        A, b, batches = _lasso_data()
        B = batches[0][0]

        def fn(comm, rank):
            dist = RowPartitionedMatrix.from_global(A, comm)
            old_counts = dist.partition.counts().copy()
            bpart = dist.append_rows(B)
            counts = dist.partition.counts()
            assert dist.shape[0] == A.shape[0] + B.shape[0]
            assert counts.sum() == dist.shape[0]
            assert np.array_equal(
                counts, old_counts + bpart.counts()
            )
            assert dist.local.shape[0] == counts[rank]
            return _dense(dist.local)

        res = spmd_run(fn, 3)
        stacked = np.vstack(res.values)
        assert stacked.shape == (A.shape[0] + B.shape[0], A.shape[1])

    def test_column_mismatch_rejected(self):
        A, b, _ = _lasso_data()
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        with pytest.raises(PartitionError, match="columns"):
            dist.append_rows(np.zeros((4, A.shape[1] + 1)))

    def test_wrong_batch_partition_rejected(self):
        A, b, batches = _lasso_data()
        B = batches[0][0]
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        from repro.linalg.partition import block_partition

        with pytest.raises(PartitionError, match="batch partition"):
            dist.append_rows(B, partition=block_partition(B.shape[0] + 1, 1))

    def test_dense_matrix_accepts_sparse_batch(self):
        A = np.arange(12.0).reshape(4, 3)
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        dist.append_rows(sp.csr_matrix(np.ones((2, 3))))
        assert not dist.is_sparse
        assert dist.local.shape == (6, 3)

    def test_sparse_matrix_accepts_dense_batch(self):
        A = sp.random(6, 4, density=0.5, random_state=0, format="csr")
        dist = RowPartitionedMatrix.from_global(A, VirtualComm(1))
        dist.append_rows(np.ones((2, 4)))
        assert dist.is_sparse and dist.local.shape == (8, 4)


class TestAppendRowsColPartitioned:
    def test_single_rank_append_matches_vstack(self):
        A, b, batches = _svm_data()
        B = batches[0][0]
        dist = ColPartitionedMatrix.from_global(A, VirtualComm(1))
        dist.append_rows(B)
        assert dist.shape == (A.shape[0] + B.shape[0], A.shape[1])
        assert np.allclose(_dense(dist.local),
                           np.vstack([_dense(A), _dense(B)]))

    def test_spmd_append_keeps_column_partition(self):
        A, b, batches = _svm_data()
        B = batches[0][0]

        def fn(comm, rank):
            dist = ColPartitionedMatrix.from_global(A, comm)
            offsets_before = dist.partition.offsets
            dist.append_rows(B)
            assert dist.partition.offsets == offsets_before
            assert dist.shape[0] == A.shape[0] + B.shape[0]
            lo, hi = dist.partition.range_of(rank)
            expect = np.vstack([_dense(A), _dense(B)])[:, lo:hi]
            assert np.allclose(_dense(dist.local), expect)
            # row sampling (the SVM hot path) sees the new rows
            Y = dist.sample_rows(np.array([A.shape[0] + 1]))
            assert np.allclose(_dense(Y), expect[A.shape[0] + 1])
            return True

        assert all(spmd_run(fn, 3).values)

    def test_column_mismatch_rejected(self):
        A, b, _ = _svm_data()
        dist = ColPartitionedMatrix.from_global(A, VirtualComm(1))
        with pytest.raises(PartitionError, match="columns"):
            dist.append_rows(np.zeros((4, A.shape[1] + 2)))


# ---------------------------------------------------------------------------
# engine bookkeeping: incremental state, revisions, errors
# ---------------------------------------------------------------------------


class TestStreamingSweepState:
    def test_incremental_lambda_max_matches_recompute(self):
        A, b, batches = _lasso_data()
        eng = StreamingSweep(A, b, task="lasso")
        assert eng.lambda_max == pytest.approx(lambda_max(A, b), rel=1e-12)
        for B, y in batches:
            eng.append(B, y)
            A_eff, b_eff = eng.materialize()
            assert eng.lambda_max == pytest.approx(
                lambda_max(A_eff, b_eff), rel=1e-9
            )

    def test_incremental_lambda_max_on_ranks(self):
        A, b, batches = _lasso_data()

        def fn(comm, rank):
            eng = StreamingSweep(A, b, task="lasso", comm=comm)
            for B, y in batches:
                eng.append(B, y)
            A_eff, b_eff = eng.materialize()
            return eng.lambda_max, lambda_max(A_eff, b_eff)

        for got, want in spmd_run(fn, 2).values:
            assert got == pytest.approx(want, rel=1e-9)

    def test_materialize_is_permuted_concatenation(self):
        A, b, batches = _lasso_data()

        def fn(comm, rank):
            eng = StreamingSweep(A, b, task="lasso", comm=comm)
            for B, y in batches:
                eng.append(B, y)
            A_eff, b_eff = eng.materialize()
            return _dense(A_eff), b_eff, eng.arrival_order()

        A_cat = np.vstack([_dense(A)] + [_dense(B) for B, _ in batches])
        b_cat = np.concatenate([b] + [y for _, y in batches])
        for A_eff, b_eff, order in spmd_run(fn, 3).values:
            assert sorted(order) == list(range(A_cat.shape[0]))
            assert np.allclose(A_eff, A_cat[order])
            assert np.allclose(b_eff, b_cat[order])

    def test_svm_order_is_arrival_order(self):
        A, b, batches = _svm_data()
        eng = StreamingSweep(A, b, task="svm")
        for B, y in batches:
            eng.append(B, y)
        assert np.array_equal(eng.arrival_order(), np.arange(eng.n_rows))
        A_eff, b_eff = eng.materialize()
        assert np.allclose(_dense(A_eff),
                           np.vstack([_dense(A)] + [_dense(B) for B, _ in batches]))

    def test_revision_ledger_split(self):
        A, b, batches = _lasso_data()
        eng = StreamingSweep(A, b, task="lasso", virtual_p=64,
                             machine=CRAY_XC30, max_iter=64, s=8, mu=2,
                             tol=None)
        eng.solve(lam=0.5)
        eng.append(*batches[0])
        eng.solve(lam=0.5)
        eng.solve(lam=0.4)
        assert [r.rev for r in eng.revisions] == [0, 1]
        r0, r1 = eng.revisions
        assert r0.rows_added == A.shape[0]
        assert r1.rows_added == batches[0][0].shape[0]
        assert len(r0.solve_costs) == 1 and len(r1.solve_costs) == 2
        # the append's own incremental work is measured, and it is far
        # cheaper than the initial A^T b derivation
        assert 0 < r1.append_cost.flops < r0.append_cost.flops
        assert r1.refit_cost.messages == sum(
            c.messages for c in r1.solve_costs
        )

    def test_refresh_keeps_path_context_usable(self):
        """After appends the context still accepts path sweeps."""
        A, b, batches = _lasso_data()
        eng = StreamingSweep(A, b, task="lasso", max_iter=64, s=8, mu=2)
        eng.append(*batches[0])
        A_eff, b_eff = eng.materialize()
        path = lasso_path(A_eff, b_eff, n_lambdas=3, mu=2, s=8, max_iter=48,
                          context=eng.ctx)
        assert len(path) == 3

    def test_append_validation(self):
        A, b, batches = _lasso_data()
        eng = StreamingSweep(A, b, task="lasso")
        B, y = batches[0]
        with pytest.raises(SolverError, match="labels must match"):
            eng.append(B, y[:-1])
        # an empty batch is a defined no-op: no revision, no cost
        assert eng.append(B[:0], y[:0]) == 0
        assert len(eng.revisions) == 1

    def test_svm_label_validation(self):
        A, b, batches = _svm_data()
        eng = StreamingSweep(A, b, task="svm")
        B, y = batches[0]
        with pytest.raises(SolverError, match="labels"):
            eng.append(B, np.full(B.shape[0], 2.0))
        with pytest.raises(SolverError):
            StreamingSweep(A, np.arange(A.shape[0], dtype=float), task="svm")

    def test_lambda_max_rejected_for_svm(self):
        A, b, _ = _svm_data()
        eng = StreamingSweep(A, b, task="svm")
        with pytest.raises(SolverError, match="Lasso"):
            eng.lambda_max

    def test_unknown_override_rejected(self):
        A, b, _ = _lasso_data()
        eng = StreamingSweep(A, b, task="lasso")
        with pytest.raises(SolverError, match="override"):
            eng.solve(lam=0.5, bogus=1)

    def test_unknown_task_rejected(self):
        A, b, _ = _lasso_data()
        with pytest.raises(SolverError):
            StreamingSweep(A, b, task="ridge")


# ---------------------------------------------------------------------------
# the equivalence contract: every solver x every backend
# ---------------------------------------------------------------------------

_EQ_KW = dict(mu=2, s=8, max_iter=96, tol=None, seed=1, record_every=8)
_EQ_SVM_KW = dict(s=8, max_iter=160, tol=None, seed=1, record_every=40)


def _lasso_equiv(comm, rank, solver, pipeline):
    """Warm streaming refit vs cold solve on the concatenated data."""
    A, b, batches = _lasso_data()
    kw = dict(_EQ_KW)
    if not solver.startswith("sa-"):
        kw.pop("s")
        pipeline = False
    eng = StreamingSweep(A, b, task="lasso", comm=comm, solver=solver,
                         pipeline=pipeline, **kw)
    lam = 0.05 * eng.lambda_max
    prev = eng.solve(lam=lam, warm_start=False)
    for B, y in batches:
        eng.append(B, y)
        res = eng.solve(lam=lam)
        # cold reference: fresh matrix over the concatenated data, fresh
        # caches, the same warm start the streaming refit used
        A_eff, b_eff = eng.materialize()
        cold_dist = RowPartitionedMatrix.from_global(
            A_eff, comm, partition=eng.dist.partition
        )
        cold = fit_lasso(cold_dist, b_eff, lam, solver=solver, comm=comm,
                         x0=prev.x, pipeline=pipeline, **kw)
        scale = max(float(np.max(np.abs(cold.x))), 1e-30)
        drift = float(np.max(np.abs(res.x - cold.x))) / scale
        assert drift <= 1e-9, (solver, drift)
        prev = res
    return True


def _svm_equiv(comm, rank, solver, pipeline):
    A, b, batches = _svm_data()
    kw = dict(_EQ_SVM_KW)
    if solver != "sa-svm":
        kw.pop("s")
        pipeline = False
    eng = StreamingSweep(A, b, task="svm", comm=comm, solver=solver,
                         loss="l2", lam=0.5, pipeline=pipeline, **kw)
    prev = eng.solve(warm_start=False)
    for B, y in batches:
        eng.append(B, y)
        res = eng.solve()
        A_eff, b_eff = eng.materialize()
        cold_dist = ColPartitionedMatrix.from_global(
            A_eff, comm, partition=eng.dist.partition
        )
        alpha0 = np.concatenate([prev.extras["alpha"], np.zeros(B.shape[0])])
        cold = fit_svm(cold_dist, b_eff, loss="l2", lam=0.5, solver=solver,
                       comm=comm, alpha0=alpha0, pipeline=pipeline, **kw)
        scale = max(float(np.max(np.abs(cold.x))), 1e-30)
        drift = float(np.max(np.abs(res.x - cold.x))) / scale
        assert drift <= 1e-9, (solver, drift)
        prev = res
    return True


class TestColdSolveEquivalence:
    """ISSUE 4 acceptance: <= 1e-9 vs a cold solve on the concatenated
    data, for every solver x backend combination."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("solver", LASSO_SOLVERS)
    def test_lasso(self, solver, backend):
        ranks = 1 if backend == "virtual" else 2
        fn = lambda comm, rank: _lasso_equiv(comm, rank, solver, False)  # noqa: E731
        assert all(_run_backend(fn, backend, ranks))

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("solver", SVM_SOLVERS)
    def test_svm(self, solver, backend):
        ranks = 1 if backend == "virtual" else 2
        fn = lambda comm, rank: _svm_equiv(comm, rank, solver, False)  # noqa: E731
        assert all(_run_backend(fn, backend, ranks))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_lasso_pipelined(self, backend):
        """The nonblocking pipelined path obeys the same contract."""
        ranks = 1 if backend == "virtual" else 2
        fn = lambda comm, rank: _lasso_equiv(comm, rank, "sa-accbcd", True)  # noqa: E731
        assert all(_run_backend(fn, backend, ranks))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_svm_pipelined(self, backend):
        ranks = 1 if backend == "virtual" else 2
        fn = lambda comm, rank: _svm_equiv(comm, rank, "sa-svm", True)  # noqa: E731
        assert all(_run_backend(fn, backend, ranks))

    def test_warm_and_zero_start_reach_the_same_optimum(self):
        """Convergence-level check: a warm refit run to tolerance lands
        on the same objective as a cold zero-start solve."""
        A, b, batches = _lasso_data()
        eng = StreamingSweep(A, b, task="lasso", mu=2, s=8, max_iter=4000,
                             tol=1e-10, record_every=4)
        lam = 0.05 * eng.lambda_max
        eng.solve(lam=lam, warm_start=False)
        eng.append(*batches[0])
        warm = eng.solve(lam=lam)
        A_eff, b_eff = eng.materialize()
        cold = fit_lasso(A_eff, b_eff, lam, solver="sa-accbcd", mu=2, s=8,
                         max_iter=4000, tol=1e-10, record_every=4)
        obj_w = lasso_objective(A_eff, b_eff, warm.x, lam)
        obj_c = lasso_objective(A_eff, b_eff, cold.x, lam)
        assert obj_w <= obj_c * (1 + 1e-6) + 1e-12
        assert np.max(np.abs(warm.x - cold.x)) <= 1e-4 * max(
            1.0, float(np.max(np.abs(cold.x)))
        )


# ---------------------------------------------------------------------------
# replay harness
# ---------------------------------------------------------------------------


class TestReplaySchedule:
    def test_report_schema_and_totals(self):
        A, b, batches = _lasso_data()
        rep = replay_schedule(A, b, batches, task="lasso", lam=0.5,
                              mu=2, s=8, max_iter=64, tol=None,
                              virtual_p=64, machine=CRAY_XC30,
                              compare_cold=True)
        assert rep["format_version"] == 3
        assert rep["task"] == "lasso" and rep["solver"] == "sa-accbcd"
        assert rep["schedule"] == [
            {"op": "append", "rows": B.shape[0]} for B, _ in batches
        ]
        assert len(rep["revisions"]) == len(batches) + 1
        for e in rep["revisions"]:
            assert {"rev", "rows_total", "rows_added", "rows_removed",
                    "labels_changed", "append_cost", "evict_cost",
                    "warm", "cold", "solution_rel_diff"} <= set(e)
            assert e["warm"]["cost"]["seconds"] > 0
        assert rep["revisions"][0]["cold"] is None
        for e in rep["revisions"][1:]:
            assert e["cold"] is not None
            assert e["solution_rel_diff"] is not None
        totals = rep["totals"]
        # the refit total is append + evict + solve, matching the
        # per-revision table rows (evict is zero for append-only replays)
        assert totals["warm_refit_cost"]["seconds"] == pytest.approx(
            sum(e["warm"]["cost"]["seconds"] + e["append_cost"]["seconds"]
                + e["evict_cost"]["seconds"]
                for e in rep["revisions"][1:])
        )

    def test_replay_runs_on_real_ranks(self):
        A, b, batches = _lasso_data()
        for backend in ("thread", "process"):
            rep = replay_schedule(A, b, batches[:1], task="lasso", lam=0.5,
                                  mu=2, s=8, max_iter=48, tol=None,
                                  backend=backend, ranks=2)
            assert rep["backend"] == backend and rep["ranks"] == 2
            assert len(rep["revisions"]) == 2

    def test_svm_replay(self):
        A, b, batches = _svm_data()
        rep = replay_schedule(A, b, batches[:1], task="svm", loss="l2",
                              lam=0.5, s=8, max_iter=96, tol=None,
                              record_every=48, compare_cold=True)
        assert rep["task"] == "svm" and rep["solver"] == "sa-svm"
        assert rep["revisions"][1]["solution_rel_diff"] is not None

    def test_unknown_backend_and_task(self):
        A, b, batches = _lasso_data()
        with pytest.raises(SolverError):
            replay_schedule(A, b, batches, task="lasso", backend="mpi")
        with pytest.raises(SolverError):
            replay_schedule(A, b, batches, task="ridge")
