"""End-to-end CLI smoke tests over the real SPMD backends.

The unit suite covers the CLI's parsing and virtual-backend paths; these
tests drive whole commands through ``--backend thread/process --ranks 2
--pipeline`` — the full stack from argv to forked ranks — asserting exit
codes, the saved JSON's schema, and parity with the Python API called
with the same knobs (both sides are deterministic, so results must
match exactly).
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import make_classification, make_sparse_regression, save_libsvm
from repro.solvers.serialization import load_result
from repro.streaming import replay_schedule

RANKS = 2


@pytest.fixture(scope="module")
def lasso_file(tmp_path_factory):
    A, b, _ = make_sparse_regression(220, 40, density=0.3, seed=11)
    path = tmp_path_factory.mktemp("e2e") / "lasso.svm"
    save_libsvm(path, A, b)
    return str(path), A, b


@pytest.fixture(scope="module")
def svm_file(tmp_path_factory):
    A, b = make_classification(180, 30, density=0.4, seed=12, margin=0.25)
    path = tmp_path_factory.mktemp("e2e") / "svm.svm"
    save_libsvm(path, A, b)
    return str(path), A, b


class TestLassoE2E:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_pipeline_save_and_parity(self, backend, lasso_file,
                                              tmp_path, capsys):
        from repro.experiments.runner import run_lasso

        path, A, b = lasso_file
        out = tmp_path / f"lasso-{backend}.json"
        rc = main(["lasso", "--file", path, "--solver", "sa-accbcd",
                   "--mu", "2", "--s", "8", "--max-iter", "64",
                   "--lam", "0.5", "--record-every", "16",
                   "--backend", backend, "--ranks", str(RANKS),
                   "--pipeline", "--save", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "final objective" in stdout
        saved = load_result(out)
        assert saved.solver.startswith("sa-accbcd")
        # parity: the Python API with identical knobs is deterministic
        from repro.experiments.runner import ScaledDataset
        from repro.utils.validation import nnz_of

        ds = ScaledDataset(name=path, A=A, b=b, x_true=None,
                           paper_nnz=float(nnz_of(A)),
                           actual_nnz=float(nnz_of(A)),
                           m_full=A.shape[0], n_full=A.shape[1],
                           task="lasso")
        api = run_lasso(ds, "sa-accbcd", mu=2, s=8, max_iter=64, lam=0.5,
                        record_every=16, backend=backend, ranks=RANKS,
                        pipeline=True, P=1, machine=None, seed=0)
        assert np.allclose(saved.x, api.x, rtol=0, atol=0)
        assert saved.iterations == api.iterations


class TestLassoPathE2E:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_pipeline(self, backend, lasso_file, capsys):
        path, A, b = lasso_file
        rc = main(["lasso-path", "--file", path, "--n-lambdas", "3",
                   "--mu", "2", "--s", "8", "--max-iter", "48",
                   "--backend", backend, "--ranks", str(RANKS),
                   "--pipeline"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "regularization path" in out and "total iterations" in out

    def test_backend_parity_with_api(self, lasso_file, capsys):
        """The thread-backend sweep reports the same totals the Python
        API produces on identical thread ranks."""
        from repro.mpi.thread_backend import spmd_run
        from repro.path import lasso_path

        path, A, b = lasso_file
        rc = main(["lasso-path", "--file", path, "--n-lambdas", "3",
                   "--mu", "2", "--s", "8", "--max-iter", "48",
                   "--backend", "thread", "--ranks", str(RANKS)])
        assert rc == 0
        out = capsys.readouterr().out

        def work(comm, rank):
            p = lasso_path(A, b, n_lambdas=3, mu=2, s=8, max_iter=48,
                           tol=1e-6, record_every=10, comm=comm)
            return sum(p.iterations)

        expected = spmd_run(work, RANKS).values[0]
        assert f"total iterations: {expected}" in out


class TestSvmE2E:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_pipeline_save_and_parity(self, backend, svm_file,
                                              tmp_path, capsys):
        from repro.experiments.runner import ScaledDataset, run_svm
        from repro.utils.validation import nnz_of

        path, A, b = svm_file
        out = tmp_path / f"svm-{backend}.json"
        rc = main(["svm", "--file", path, "--solver", "sa-svm-l2",
                   "--s", "16", "--lam", "0.5", "--max-iter", "160",
                   "--record-every", "40",
                   "--backend", backend, "--ranks", str(RANKS),
                   "--pipeline", "--save", str(out)])
        assert rc == 0
        assert "final duality gap" in capsys.readouterr().out
        saved = load_result(out)
        assert saved.solver.startswith("sa-svm")
        ds = ScaledDataset(name=path, A=A, b=b, x_true=None,
                           paper_nnz=float(nnz_of(A)),
                           actual_nnz=float(nnz_of(A)),
                           m_full=A.shape[0], n_full=A.shape[1],
                           task="svm")
        api = run_svm(ds, "sa-svm-l2", s=16, lam=0.5, max_iter=160,
                      record_every=40, backend=backend, ranks=RANKS,
                      pipeline=True, P=1, machine=None, seed=0)
        assert np.allclose(saved.x, api.x, rtol=0, atol=0)
        assert saved.final_metric == pytest.approx(api.final_metric)


class TestStreamE2E:
    _SCHEMA_KEYS = {"format_version", "task", "solver", "backend", "ranks",
                    "virtual_p", "warm_start", "max_rows", "lam", "m0", "n",
                    "schedule", "revisions", "totals"}

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_pipeline_save_schema_and_parity(self, backend,
                                                     lasso_file, tmp_path,
                                                     capsys):
        path, A, b = lasso_file
        out = tmp_path / f"stream-{backend}.json"
        rc = main(["stream", "--file", path, "--schedule", "20,12",
                   "--mu", "2", "--s", "8", "--max-iter", "64",
                   "--lam", "0.5", "--tol", "1e-9",
                   "--backend", backend, "--ranks", str(RANKS),
                   "--pipeline", "--save", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "streaming lasso" in stdout
        assert "total warm refit modelled time" in stdout
        report = json.loads(out.read_text())
        assert self._SCHEMA_KEYS <= set(report)
        assert report["backend"] == backend and report["ranks"] == RANKS
        assert report["schedule"] == [{"op": "append", "rows": 20},
                                      {"op": "append", "rows": 12}]
        assert len(report["revisions"]) == 3
        # parity: the Python API replay with identical knobs
        m = A.shape[0]
        m0 = m - 32
        api = replay_schedule(
            A[:m0], b[:m0],
            [(A[m0:m0 + 20], b[m0:m0 + 20]), (A[m0 + 20:], b[m0 + 20:])],
            task="lasso", lam=0.5, mu=2, s=8, max_iter=64, tol=1e-9,
            record_every=10, pipeline=True, backend=backend, ranks=RANKS,
        )
        for got, want in zip(report["revisions"], api["revisions"], strict=True):
            assert got["warm"]["iterations"] == want["warm"]["iterations"]
            assert got["warm"]["final_metric"] == pytest.approx(
                want["warm"]["final_metric"], rel=1e-12
            )

    def test_compare_cold_flag(self, lasso_file, capsys):
        path, _, _ = lasso_file
        rc = main(["stream", "--file", path, "--schedule", "16",
                   "--mu", "2", "--s", "8", "--max-iter", "48",
                   "--lam", "0.5", "--compare-cold"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "warm/cold" in out and "cold re-solve" in out

    def test_svm_stream_via_task_flag(self, svm_file, capsys):
        path, _, _ = svm_file
        rc = main(["stream", "--file", path, "--task", "svm",
                   "--schedule", "12", "--s", "8", "--max-iter", "96",
                   "--lam", "0.5", "--record-every", "48"])
        assert rc == 0
        assert "streaming svm" in capsys.readouterr().out

    def test_window_and_event_tokens(self, lasso_file, tmp_path, capsys):
        """-N / ~N schedule tokens plus --window replay evictions and
        label edits end to end, and the report carries them."""
        path, A, _ = lasso_file
        out = tmp_path / "stream-window.json"
        window = A.shape[0] - 20
        rc = main(["stream", "--file", path, "--schedule", "12,-6,~4,8",
                   "--window", str(window),
                   "--mu", "2", "--s", "8", "--max-iter", "48",
                   "--lam", "0.5", "--compare-cold", "--save", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "-rows" in stdout and "~rows" in stdout
        report = json.loads(out.read_text())
        assert report["max_rows"] == window
        assert report["schedule"] == [
            {"op": "append", "rows": 12}, {"op": "evict", "rows": 6},
            {"op": "labels", "rows": 4}, {"op": "append", "rows": 8},
        ]
        revs = report["revisions"]
        # rev 1: +12 appended on m0 = window - 20 + 12... the window only
        # trims once the row count exceeds it; the explicit -6 then fires
        assert revs[2]["rows_removed"] == 6
        assert revs[3]["labels_changed"] == 4
        assert all("evict_cost" in e for e in revs)

    def test_window_smaller_than_initial_data_rejected(self, lasso_file,
                                                       capsys):
        path, _, _ = lasso_file
        rc = main(["stream", "--file", path, "--schedule", "10",
                   "--window", "5"])
        assert rc == 2
        assert "max_rows" in capsys.readouterr().err

    def test_oversized_schedule_rejected(self, lasso_file, capsys):
        path, A, _ = lasso_file
        rc = main(["stream", "--file", path,
                   "--schedule", str(A.shape[0] + 5)])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_bad_schedule_rejected(self, lasso_file, capsys):
        path, _, _ = lasso_file
        rc = main(["stream", "--file", path, "--schedule", "0,5"])
        assert rc == 2

    @pytest.mark.parametrize("schedule", ["12,-,8", "12,~x", "abc"])
    def test_malformed_schedule_token_rejected(self, schedule, lasso_file,
                                               capsys):
        """Typos in the event tokens exit 2 with a clean error, not a
        traceback."""
        path, _, _ = lasso_file
        rc = main(["stream", "--file", path, "--schedule", schedule])
        assert rc == 2
        assert "bad schedule token" in capsys.readouterr().err
