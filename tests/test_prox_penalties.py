"""Tests for penalty objects."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.prox.operators import soft_threshold
from repro.prox.penalties import (
    ElasticNetPenalty,
    GroupLassoPenalty,
    L1Penalty,
    ZeroPenalty,
)


class TestL1:
    def test_value(self):
        assert L1Penalty(2.0).value(np.array([1.0, -3.0])) == 8.0

    def test_prox_block_matches_operator(self):
        pen = L1Penalty(0.5)
        v = np.array([1.0, -0.2])
        out = pen.prox_block(v, 0.3, np.array([0, 1]))
        assert np.allclose(out, soft_threshold(v, 0.15))

    def test_negative_lam_rejected(self):
        with pytest.raises(SolverError):
            L1Penalty(-1.0)

    def test_zero_lam_identity_prox(self):
        v = np.array([1.0, 2.0])
        assert np.allclose(L1Penalty(0.0).prox_block(v, 1.0, np.arange(2)), v)


class TestElasticNet:
    def test_value_combines_terms(self):
        pen = ElasticNetPenalty(lam=0.25, scale=2.0)
        x = np.array([1.0, -1.0])
        # 2 * (0.25*2 + 0.75*2) = 4
        assert pen.value(x) == pytest.approx(4.0)

    def test_prox_shrinks(self):
        pen = ElasticNetPenalty(lam=0.5, scale=1.0)
        v = np.array([4.0])
        out = pen.prox_block(v, 1.0, np.array([0]))
        assert 0 < out[0] < 4.0

    def test_bad_mixing_rejected(self):
        with pytest.raises(SolverError):
            ElasticNetPenalty(lam=2.0)


class TestGroupLasso:
    def test_requires_group_ids(self):
        with pytest.raises(SolverError):
            GroupLassoPenalty(1.0, group_ids=None)

    def test_value_sums_group_norms(self):
        pen = GroupLassoPenalty(2.0, group_ids=np.array([0, 0, 1]))
        x = np.array([3.0, 4.0, 12.0])
        assert pen.value(x) == pytest.approx(2.0 * (5.0 + 12.0))

    def test_value_shape_mismatch(self):
        pen = GroupLassoPenalty(1.0, group_ids=np.array([0, 1]))
        with pytest.raises(SolverError):
            pen.value(np.ones(3))

    def test_prox_block_whole_groups(self):
        gid = np.array([0, 0, 1, 1])
        pen = GroupLassoPenalty(1.0, group_ids=gid)
        v = np.array([3.0, 4.0])
        out = pen.prox_block(v, 1.0, np.array([0, 1]))
        assert np.allclose(out, v * (1 - 1.0 / 5.0))

    def test_partial_group_rejected(self):
        gid = np.array([0, 0, 1])
        pen = GroupLassoPenalty(1.0, group_ids=gid)
        with pytest.raises(SolverError, match="sampled partially"):
            pen.prox_block(np.ones(2), 1.0, np.array([0, 2]))


class TestZero:
    def test_value(self):
        assert ZeroPenalty().value(np.ones(5)) == 0.0

    def test_prox_identity(self):
        v = np.array([1.0, -2.0])
        assert np.array_equal(ZeroPenalty().prox_block(v, 10.0, np.arange(2)), v)
