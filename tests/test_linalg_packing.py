"""Tests for Gram packing (footnote-3 symmetric compression)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommError
from repro.linalg.packing import pack_gram, packed_length, tri_length, unpack_gram


class TestLengths:
    def test_tri_length(self):
        assert tri_length(1) == 1
        assert tri_length(4) == 10

    def test_packed_length(self):
        assert packed_length(3, 2, symmetric=False) == 9 + 6
        assert packed_length(3, 2, symmetric=True) == 6 + 6

    def test_symmetric_halves_large_k(self):
        full = packed_length(100, 0, symmetric=False)
        tri = packed_length(100, 0, symmetric=True)
        assert tri < 0.51 * full + 51


class TestRoundTrip:
    def _sym(self, k, seed=0):
        rng = np.random.default_rng(seed)
        M = rng.standard_normal((k, k))
        return M + M.T

    @pytest.mark.parametrize("symmetric", [True, False])
    @pytest.mark.parametrize("k,c", [(1, 0), (1, 1), (3, 2), (8, 1)])
    def test_roundtrip(self, k, c, symmetric):
        G = self._sym(k)
        extras = np.random.default_rng(1).standard_normal((k, c)) if c else None
        buf = pack_gram(G, extras, symmetric)
        assert buf.shape == (packed_length(k, c, symmetric),)
        G2, E2 = unpack_gram(buf, k, c, symmetric)
        assert np.allclose(G, G2)
        if c:
            assert np.allclose(extras, E2)
        else:
            assert E2 is None

    def test_1d_extras_promoted(self):
        G = self._sym(2)
        buf = pack_gram(G, np.array([1.0, 2.0]), True)
        _, E = unpack_gram(buf, 2, 1, True)
        assert E.shape == (2, 1)

    def test_unpacked_symmetric_is_symmetric(self):
        G = self._sym(5)
        G2, _ = unpack_gram(pack_gram(G, None, True), 5, 0, True)
        assert np.array_equal(G2, G2.T)


class TestEdgeCases:
    """k=1 / extra_cols=0 / symmetric-vs-dense exactness (fast-path plans)."""

    def test_k1_symmetric_exact(self):
        G = np.array([[2.5]])
        buf = pack_gram(G, None, True)
        assert np.array_equal(buf, np.array([2.5]))
        G2, E2 = unpack_gram(buf, 1, 0, True)
        assert np.array_equal(G2, G) and E2 is None

    def test_k1_with_extras_exact(self):
        buf = pack_gram(np.array([[4.0]]), np.array([[1.0, -2.0]]), True)
        G2, E2 = unpack_gram(buf, 1, 2, True)
        assert np.array_equal(G2, np.array([[4.0]]))
        assert np.array_equal(E2, np.array([[1.0, -2.0]]))

    def test_extra_cols_zero_lengths(self):
        for k in (1, 3, 9):
            assert pack_gram(np.eye(k), None, True).shape == (tri_length(k),)
            assert pack_gram(np.eye(k), None, False).shape == (k * k,)

    @pytest.mark.parametrize("k", [1, 2, 6, 13])
    def test_symmetric_vs_dense_roundtrip_exact(self, k):
        # for a symmetric G the two packings must reconstruct the *same*
        # matrix bit for bit — the tri plan mirrors, never recomputes
        rng = np.random.default_rng(k)
        M = rng.standard_normal((k, k))
        G = M + M.T
        G_sym, _ = unpack_gram(pack_gram(G, None, True), k, 0, True)
        G_dense, _ = unpack_gram(pack_gram(G, None, False), k, 0, False)
        assert np.array_equal(G_sym, G_dense)
        assert np.array_equal(G_sym, G)

    def test_out_buffer_reuse(self):
        G = np.arange(9.0).reshape(3, 3)
        G = G + G.T
        extras = np.ones((3, 2))
        length = packed_length(3, 2, True)
        out = np.empty(length)
        got = pack_gram(G, extras, True, out=out)
        assert got is out
        assert np.array_equal(out, pack_gram(G, extras, True))

    def test_out_buffer_wrong_shape_rejected(self):
        with pytest.raises(CommError):
            pack_gram(np.eye(2), None, True, out=np.empty(7))

    def test_unpack_never_aliases_buffer(self):
        G = np.eye(2)
        buf = pack_gram(G, np.ones(2), True)
        G2, E2 = unpack_gram(buf, 2, 1, True)
        buf[:] = -99.0
        assert np.array_equal(G2, np.eye(2))
        assert np.array_equal(E2, np.ones((2, 1)))


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(CommError):
            pack_gram(np.ones((2, 3)), None, True)

    def test_extras_wrong_rows(self):
        with pytest.raises(CommError):
            pack_gram(np.eye(3), np.ones((2, 1)), True)

    def test_wrong_buffer_length(self):
        with pytest.raises(CommError):
            unpack_gram(np.ones(5), 3, 0, True)


@settings(max_examples=60, deadline=None)
@given(k=st.integers(1, 12), c=st.integers(0, 4), symmetric=st.booleans(),
       seed=st.integers(0, 100))
def test_pack_unpack_identity(k, c, symmetric, seed):
    rng = np.random.default_rng(seed)
    M = rng.standard_normal((k, k))
    G = M @ M.T  # symmetric PSD like a real Gram matrix
    extras = rng.standard_normal((k, c)) if c else None
    G2, E2 = unpack_gram(pack_gram(G, extras, symmetric), k, c, symmetric)
    assert np.allclose(G, G2, atol=1e-12)
    if c:
        assert np.allclose(extras, E2, atol=1e-12)
