"""Regression tests: the abort taxonomy must outrank every fallback.

Each test pins one of the handler sites where a broad ``except`` used to
swallow ``CommAborted`` / ``RankDiedError`` / ``KeyboardInterrupt`` (the
``abort-swallow`` lint rule's fix sites): the ``sigma_min`` dense
fallback, and the worker pool's encode-failure retirement path. The
worker-side guards (report/decode) live in forked children and are
exercised end-to-end by the fault-injection suite.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import CommAborted, RankDiedError
from repro.mpi import process_backend
from repro.mpi.process_backend import WorkerPool
from repro.solvers.objectives import sigma_min


@pytest.fixture()
def big_sparse():
    # large enough (m * n > 512^2) that sigma_min takes the iterative
    # eigsh path instead of the dense SVD
    return sp.random(600, 600, density=0.01, format="csr", random_state=0)


class TestSigmaMinAbortPropagation:
    @pytest.mark.parametrize(
        "exc", [CommAborted("abort"), RankDiedError("rank died"), KeyboardInterrupt()]
    )
    def test_abort_reraised_not_swallowed_by_dense_fallback(
        self, monkeypatch, big_sparse, exc
    ):
        def dying_eigsh(*args, **kwargs):
            raise exc

        monkeypatch.setattr(spla, "eigsh", dying_eigsh)
        with pytest.raises(type(exc)):
            sigma_min(big_sparse)

    def test_generic_failure_still_falls_back_to_dense(
        self, monkeypatch, big_sparse
    ):
        def singular_gram(*args, **kwargs):
            raise RuntimeError("factorization failed: singular")

        monkeypatch.setattr(spla, "eigsh", singular_gram)
        val = sigma_min(big_sparse)
        assert np.isfinite(val) and val >= 0.0


class _FakeProc:
    def __init__(self):
        self.terminated = False

    def is_alive(self):
        return not self.terminated

    def join(self, timeout=None):
        return None

    def terminate(self):
        self.terminated = True


class _FakePipe:
    def __init__(self):
        self.sent = []

    def send(self, msg):
        self.sent.append(msg)

    def close(self):
        return None


def _bare_pool(size: int = 1) -> WorkerPool:
    pool = WorkerPool.__new__(WorkerPool)
    pool.size = size
    pool._procs = [_FakeProc() for _ in range(size)]
    pool._job_w = [_FakePipe() for _ in range(size)]

    class _World:
        _dead = [False] * size

    pool._world = _World()
    pool._spawned = []

    def record_spawn(rank, first_job):
        pool._spawned.append(rank)

    pool._spawn = record_spawn
    return pool


class TestDispatchEncodeFailure:
    @pytest.mark.parametrize(
        "exc", [CommAborted("abort"), RankDiedError("dead"), KeyboardInterrupt()]
    )
    def test_abort_during_encode_propagates(self, monkeypatch, exc):
        pool = _bare_pool()

        def dying_encode(obj):
            raise exc

        monkeypatch.setattr(process_backend, "_encode_obj", dying_encode)
        with pytest.raises(type(exc)):
            pool._dispatch(0, 0, {}, lambda: None, (), survivors_hold_job=False)
        # the abort aborted dispatch outright: no pipe sends, no respawns
        assert pool._job_w[0].sent == []
        assert pool._spawned == []

    def test_generic_encode_failure_retires_and_forks_fresh(self, monkeypatch):
        pool = _bare_pool()

        def unpicklable(obj):
            raise TypeError("cannot pickle local object")

        monkeypatch.setattr(process_backend, "_encode_obj", unpicklable)
        pool._dispatch(0, 0, {}, lambda: None, (), survivors_hold_job=False)
        # live workers were retired (orderly-stop None on the job pipe)
        # and the rank re-forked with the job inherited
        assert pool._job_w[0].sent == [None]
        assert pool._procs == [None]
        assert pool._spawned == [0]

    def test_survivors_holding_job_skip_encoding(self, monkeypatch):
        pool = _bare_pool()

        def exploding(obj):  # must never be called
            raise AssertionError("encode should not run on recovery redispatch")

        monkeypatch.setattr(process_backend, "_encode_obj", exploding)
        pool._dispatch(3, 1, {}, lambda: None, (), survivors_hold_job=True)
        # the parked worker got the recovery message over the pipe
        assert pool._job_w[0].sent == [("run", 3, 1, {}, None, None)]
        assert pool._spawned == []
