"""Tests for the analytic cost model — verifies Table I against measured
tracer counts from real solver runs."""

import math

import pytest

from repro.datasets import make_classification, make_sparse_regression
from repro.errors import CostModelError
from repro.experiments.theory import (
    accbcd_costs,
    best_s,
    predicted_speedup,
    svm_dcd_costs,
)
from repro.linalg.packing import packed_length
from repro.machine.spec import CRAY_XC30
from repro.mpi.virtual_backend import VirtualComm
from repro.solvers.lasso import acc_bcd, sa_acc_bcd
from repro.solvers.svm import dcd, sa_dcd


class TestTableIFormulas:
    """The O(.) entries of Table I, with our constants."""

    def test_latency_ratio_is_s(self):
        base = accbcd_costs(H=96, mu=4, f=0.1, m=1000, n=100, P=64, s=1)
        sa = accbcd_costs(H=96, mu=4, f=0.1, m=1000, n=100, P=64, s=8)
        assert base.latency == 8 * sa.latency

    def test_latency_scales_log_p(self):
        c1 = accbcd_costs(H=10, mu=1, f=0.1, m=100, n=50, P=1024)
        c2 = accbcd_costs(H=10, mu=1, f=0.1, m=100, n=50, P=1024**2)
        assert c2.latency == 2 * c1.latency

    def test_bandwidth_grows_with_s(self):
        # W = O(H s mu^2 log P): SA moves ~s/2 more words (symmetric pack)
        base = accbcd_costs(H=64, mu=2, f=0.1, m=1000, n=100, P=64, s=1)
        sa = accbcd_costs(H=64, mu=2, f=0.1, m=1000, n=100, P=64, s=16)
        assert sa.bandwidth > 4 * base.bandwidth

    def test_flops_scale_with_s(self):
        # F = O(H mu^2 s f m / P): SA's Gram flops grow by ~s*mu/(mu+1)
        # (symmetric packing computes the triangle only)
        s = 16
        base = accbcd_costs(H=64, mu=2, f=0.1, m=10_000, n=100, P=16, s=1)
        sa = accbcd_costs(H=64, mu=2, f=0.1, m=10_000, n=100, P=16, s=s)
        assert 0.25 * s * base.flops < sa.flops < 1.5 * s * base.flops

    def test_memory_grows_with_s_squared(self):
        base = accbcd_costs(H=1, mu=2, f=0.1, m=1000, n=100, P=4, s=1)
        sa = accbcd_costs(H=1, mu=2, f=0.1, m=1000, n=100, P=4, s=10)
        gram_base = base.memory - (0.1 * 1000 * 100 / 4 + 1000 / 4 + 200)
        gram_sa = sa.memory - (0.1 * 1000 * 100 / 4 + 1000 / 4 + 200)
        assert gram_sa == pytest.approx(100 * gram_base)

    def test_p1_has_zero_communication(self):
        c = accbcd_costs(H=10, mu=1, f=0.5, m=100, n=20, P=1)
        assert c.latency == 0 and c.bandwidth == 0

    def test_validation(self):
        with pytest.raises(CostModelError):
            accbcd_costs(H=0, mu=1, f=0.1, m=10, n=10, P=2)
        with pytest.raises(CostModelError):
            accbcd_costs(H=1, mu=1, f=1.5, m=10, n=10, P=2)
        with pytest.raises(CostModelError):
            svm_dcd_costs(H=1, f=0.0, m=10, n=10, P=2)


class TestAgainstMeasuredCounts:
    """The analytic L and W must match the tracer *exactly* for Lasso/SVM."""

    def test_lasso_latency_and_bandwidth_exact(self, small_regression=None):
        A, b, _ = make_sparse_regression(60, 40, density=0.4, seed=3)
        H, mu, s, P = 64, 2, 8, 256
        comm = VirtualComm(P, machine=CRAY_XC30)
        sa_acc_bcd(A, b, 0.9, mu=mu, s=s, max_iter=H, seed=0, comm=comm,
                   record_every=0)
        pred = accbcd_costs(H=H, mu=mu, f=0.4, m=60, n=40, P=P, s=s)
        assert comm.ledger.messages == pred.latency
        assert comm.ledger.words == pytest.approx(pred.bandwidth)

    def test_lasso_classical_counts(self):
        A, b, _ = make_sparse_regression(60, 40, density=0.4, seed=3)
        H, mu, P = 32, 3, 64
        comm = VirtualComm(P, machine=CRAY_XC30)
        acc_bcd(A, b, 0.9, mu=mu, max_iter=H, seed=0, comm=comm, record_every=0)
        pred = accbcd_costs(H=H, mu=mu, f=0.4, m=60, n=40, P=P, s=1)
        assert comm.ledger.messages == pred.latency
        assert comm.ledger.words == pytest.approx(pred.bandwidth)

    def test_svm_counts_exact(self):
        A, b = make_classification(50, 30, density=0.5, seed=1)
        H, s, P = 60, 12, 128
        comm = VirtualComm(P, machine=CRAY_XC30)
        sa_dcd(A, b, loss="l1", s=s, max_iter=H, seed=0, comm=comm,
               record_every=0)
        pred = svm_dcd_costs(H=H, f=0.5, m=50, n=30, P=P, s=s)
        assert comm.ledger.messages == pred.latency
        assert comm.ledger.words == pytest.approx(pred.bandwidth)

    def test_svm_classical_counts(self):
        A, b = make_classification(50, 30, density=0.5, seed=1)
        H, P = 40, 32
        comm = VirtualComm(P, machine=CRAY_XC30)
        dcd(A, b, loss="l1", max_iter=H, seed=0, comm=comm, record_every=0)
        pred = svm_dcd_costs(H=H, f=0.5, m=50, n=30, P=P, s=1)
        assert comm.ledger.messages == pred.latency
        assert comm.ledger.words == pytest.approx(pred.bandwidth)

    def test_words_per_outer_formula(self):
        # one packed Allreduce: tri(s*mu) + 2*s*mu words, log2(P) rounds
        A, b, _ = make_sparse_regression(30, 20, density=0.5, seed=0)
        s, mu, P = 4, 2, 16
        comm = VirtualComm(P, machine=CRAY_XC30)
        sa_acc_bcd(A, b, 0.5, mu=mu, s=s, max_iter=s, seed=0, comm=comm,
                   record_every=0)
        k = s * mu
        expected = packed_length(k, 2, True) * math.ceil(math.log2(P))
        assert comm.ledger.words == pytest.approx(expected)


class TestSpeedupModel:
    def test_speedup_unimodal_in_s(self):
        # paper Fig. 4e-4h: rises, peaks, falls
        sps = [
            predicted_speedup(CRAY_XC30, 1000, 1, 0.22, 581_012, 54, 3072, s)
            for s in (2, 8, 32, 512, 4096)
        ]
        assert sps[1] > sps[0]
        peak = max(sps)
        assert sps[-1] < peak and sps[-2] < peak

    def test_speedup_grows_with_p(self):
        s1 = predicted_speedup(CRAY_XC30, 1000, 1, 0.22, 581_012, 54, 768, 16)
        s2 = predicted_speedup(CRAY_XC30, 1000, 1, 0.22, 581_012, 54, 12288, 16)
        assert s2 > s1

    def test_best_s_in_paper_range(self):
        s_star, sp = best_s(CRAY_XC30, 1000, 1, 0.22, 581_012, 54, 3072)
        assert 4 <= s_star <= 128  # paper's best settings were 16-128
        assert 1.5 < sp < 15.0  # paper: 1.2x - 5.1x measured totals

    def test_spark_like_machine_benefits_more(self):
        # paper §VII: higher-latency frameworks should gain more
        from repro.machine.spec import SPARK_LIKE

        sp_cray = predicted_speedup(CRAY_XC30, 500, 1, 0.1, 10**6, 100, 1024, 32)
        sp_spark = predicted_speedup(SPARK_LIKE, 500, 1, 0.1, 10**6, 100, 1024, 32)
        assert sp_spark > sp_cray

    def test_svm_kind(self):
        sp = predicted_speedup(
            CRAY_XC30, 1000, 1, 0.99, 6000, 5000, 3072, 64, kind="svm"
        )
        assert sp > 1.0
