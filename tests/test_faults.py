"""Deterministic fault injection + collective deadlines, all backends.

Pins the fault-tolerance layer's contracts:

* :meth:`FaultPlan.random` is a pure function of its seed, and the same
  plan injects the same faults on the virtual, thread, and process
  backends (collective ordinals are backend-independent).
* ``transient`` faults are recovered by the bounded retry loop with the
  recovery visible in the ledger's ``retries`` counter — and a recovered
  run is *bit-identical* to the fault-free one.
* ``delay`` faults that exceed the active deadline raise
  :class:`CommTimeoutError` deterministically (tag + stalled ranks named,
  ``timeouts`` counter charged) with no wall-clock involved.
* ``crash`` raises :class:`InjectedFailure`; ``die`` on the process
  backend kills the rank for real and survivors (and the parent) get
  :class:`RankDiedError` naming the dead rank, with no orphan processes.
* Real (wall-clock) deadline misses on the thread and process backends
  name the ranks that failed to arrive.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro._api import fit_lasso
from repro.errors import (
    CommTimeoutError,
    RankDiedError,
    TransientCommError,
)
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultyComm,
    InjectedFailure,
    RetryPolicy,
)
from repro.mpi.process_backend import process_spmd_run
from repro.mpi.thread_backend import spmd_run
from repro.mpi.virtual_backend import VirtualComm


def _collective_mix(comm, rank):
    """A small deterministic program over the public collective API."""
    out = []
    out.append(comm.allreduce(float(rank + 1)))
    out.append(np.asarray(comm.Allreduce(np.arange(4.0) + rank)).tolist())
    out.append(comm.allgather(rank * 10))
    out.append(comm.bcast({"root": "payload"} if rank == 0 else None))
    req = comm.Iallreduce(np.full(3, float(rank)))
    out.append(np.asarray(req.wait()).tolist())
    return out


class TestFaultPlan:
    def test_random_is_deterministic(self):
        a = FaultPlan.random(7, size=3, n_collectives=40, rate=0.2,
                             kinds=FAULT_KINDS[:2], delay=0.5)
        b = FaultPlan.random(7, size=3, n_collectives=40, rate=0.2,
                             kinds=FAULT_KINDS[:2], delay=0.5)
        assert a.events == b.events
        assert len(a.events) > 0

    def test_random_differs_across_seeds(self):
        a = FaultPlan.random(1, size=3, n_collectives=60, rate=0.2)
        b = FaultPlan.random(2, size=3, n_collectives=60, rate=0.2)
        assert a.events != b.events

    def test_straggle_covers_a_window(self):
        plan = FaultPlan([FaultEvent(0, 5, "straggle", count=3, delay=0.1)])
        assert plan.lookup(0, 4) is None
        for k in (5, 6, 7):
            assert plan.lookup(0, k) is not None
        assert plan.lookup(0, 8) is None

    @pytest.mark.parametrize("bad", [
        dict(rank=0, ordinal=0, kind="nope"),
        dict(rank=-1, ordinal=0, kind="crash"),
        dict(rank=0, ordinal=-2, kind="crash"),
        dict(rank=0, ordinal=0, kind="transient", count=0),
        dict(rank=0, ordinal=0, kind="delay", delay=-1.0),
    ])
    def test_event_validation(self, bad):
        from repro.errors import CommError
        with pytest.raises(CommError):
            FaultEvent(**bad)


class TestVirtualInjection:
    def test_transient_recovered_and_counted(self):
        plan = FaultPlan([FaultEvent(0, 0, "transient", count=2)])
        comm = FaultyComm(VirtualComm(), plan)
        assert comm.allreduce(3.0) == 3.0
        assert comm.ledger.retries == 2
        assert comm.ledger.timeouts == 0

    def test_transient_exhausts_bounded_retry(self):
        plan = FaultPlan([FaultEvent(0, 0, "transient", count=5)])
        comm = FaultyComm(VirtualComm(), plan, retry=RetryPolicy(max_retries=2))
        with pytest.raises(TransientCommError):
            comm.allreduce(1.0)
        assert comm.ledger.retries == 2

    def test_crash_raises_injected_failure(self):
        plan = FaultPlan([FaultEvent(0, 1, "crash")])
        comm = FaultyComm(VirtualComm(), plan)
        comm.allreduce(1.0)  # ordinal 0: clean
        with pytest.raises(InjectedFailure):
            comm.allreduce(1.0)

    def test_delay_beyond_deadline_times_out_deterministically(self):
        plan = FaultPlan([FaultEvent(0, 0, "delay", delay=60.0)])
        comm = FaultyComm(VirtualComm(timeout=0.5), plan)
        start = time.monotonic()
        with pytest.raises(CommTimeoutError) as exc:
            comm.allgather("x")
        assert time.monotonic() - start < 5.0  # no wall-clock sleep
        assert exc.value.stalled == (0,)
        assert exc.value.tag
        assert comm.ledger.timeouts == 1

    def test_delay_within_deadline_proceeds(self):
        plan = FaultPlan([FaultEvent(0, 0, "delay", delay=0.01)])
        comm = FaultyComm(VirtualComm(timeout=10.0), plan)
        assert comm.allreduce(2.0) == 2.0
        assert comm.ledger.timeouts == 0

    def test_faulty_solver_run_matches_fault_free(self, dense_regression):
        A, b, _ = dense_regression
        planned = (1, 4, 9)
        plan = FaultPlan([FaultEvent(0, k, "transient", count=1)
                          for k in planned])
        clean = fit_lasso(A, b, 0.3, solver="sa-bcd", mu=2, s=4,
                          max_iter=24, tol=None, seed=1)
        comm = FaultyComm(VirtualComm(), plan)
        faulty = fit_lasso(A, b, 0.3, solver="sa-bcd", mu=2, s=4,
                           max_iter=24, tol=None, seed=1, comm=comm)
        assert np.array_equal(clean.x, faulty.x)
        assert all(k < comm.ordinal for k in planned)  # every fault fired
        # retries on ledger-paused diagnostic collectives are (by design)
        # not accounted, so only a lower bound is portable here
        assert faulty.cost.retries >= 1
        assert clean.cost.retries == 0


class TestRealBackends:
    @pytest.mark.parametrize("runner,size", [(spmd_run, 3)])
    def test_transient_plan_bitwise_recovery_thread(self, runner, size):
        plan = FaultPlan([FaultEvent(1, 0, "transient", count=2),
                          FaultEvent(2, 3, "transient", count=1)])
        clean = runner(lambda comm, rank: _collective_mix(comm, rank), size)
        faulty = runner(
            lambda comm, rank: _collective_mix(FaultyComm(comm, plan), rank),
            size,
        )
        assert faulty.values == clean.values
        assert faulty.ledgers[1].retries == 2
        assert faulty.ledgers[2].retries == 1
        assert faulty.ledgers[0].retries == 0

    @pytest.mark.slow
    def test_transient_plan_bitwise_recovery_process(self):
        plan = FaultPlan([FaultEvent(1, 0, "transient", count=2)])
        clean = process_spmd_run(
            lambda comm, rank: _collective_mix(comm, rank), 3)
        faulty = process_spmd_run(
            lambda comm, rank: _collective_mix(FaultyComm(comm, plan), rank),
            3,
        )
        assert faulty.values == clean.values
        assert faulty.ledgers[1].retries == 2

    def test_same_plan_same_results_across_backends(self):
        plan = FaultPlan([FaultEvent(0, 2, "transient", count=1),
                          FaultEvent(1, 1, "delay", delay=0.0)])

        def work(comm, rank):
            return _collective_mix(FaultyComm(comm, plan), rank)

        threaded = spmd_run(work, 2)
        forked = process_spmd_run(work, 2)
        assert threaded.values == forked.values

    def test_thread_deadline_names_stalled_ranks(self):
        def work(comm, rank):
            if rank == 1:
                time.sleep(1.0)
            comm.allreduce(1.0, timeout=0.2)

        with pytest.raises(CommTimeoutError) as exc:
            spmd_run(work, 2)
        assert 1 in exc.value.stalled

    def test_injected_die_kills_rank_survivors_get_rank_died(self):
        plan = FaultPlan([FaultEvent(1, 1, "die")])

        def work(comm, rank):
            fc = FaultyComm(comm, plan)
            fc.allreduce(1.0)  # ordinal 0: everyone arrives
            fc.allreduce(2.0)  # ordinal 1: rank 1 dies for real
            return rank

        with pytest.raises(RankDiedError) as exc:
            process_spmd_run(work, 3)
        assert 1 in exc.value.dead_ranks
        # no orphans: every forked rank is reaped by the time we return
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []

    @pytest.mark.slow
    def test_process_deadline_names_stalled_ranks(self):
        def work(comm, rank):
            if rank == 0:
                time.sleep(1.5)
            comm.allreduce(1.0, timeout=0.3)

        with pytest.raises(CommTimeoutError) as exc:
            process_spmd_run(work, 2)
        assert 0 in exc.value.stalled
