"""Randomized SPMD fuzz suite driven over all three comm backends.

Thin driver around ``spmd_fuzz_suite``: 25 seeded op sequences per
backend, each checked bitwise against the sequential oracle, plus
cross-backend equality and exact ledger reconstruction (charged +
hidden == blocking). The process backend's long tail is marked ``slow``
(nightly profile); a small-P slice stays in tier-1 and in the
``process-backend-smoke`` CI job.
"""

import pytest

from repro.faults import FaultyComm
from repro.machine.spec import CRAY_XC30
from repro.mpi.process_backend import process_spmd_run
from repro.mpi.thread_backend import spmd_run
from spmd_fuzz_suite import (
    assert_async_equal,
    assert_async_ledger_reconstruction,
    assert_ledger_reconstruction,
    assert_results_equal,
    expected_async,
    expected_results,
    make_async_sequence,
    make_die_plan,
    make_fault_plan,
    make_sequence,
    run_async_sequence,
    run_sequence,
    virtual_spmd_run,
)

#: the seeded sequences every backend must pass (acceptance: >= 25)
SEEDS = tuple(range(25))
#: the tier-1 / smoke-CI slice of the process backend's runs
PROCESS_SMOKE_SEEDS = SEEDS[:5]
N_OPS = 18


def _size_for(seed: int) -> int:
    return 2 + seed % 3  # P in {2, 3, 4}


def _check_oracle(runner, seed: int, size: int) -> None:
    ops = make_sequence(seed, n_ops=N_OPS, size=size)
    res = runner(
        lambda comm, rank: run_sequence(comm, rank, seed, ops), size
    )
    expected = expected_results(seed, ops, size)
    for r in range(size):
        assert_results_equal(res.values[r], expected[r])


def _check_ledger(runner, seed: int, size: int) -> None:
    ops = make_sequence(seed, n_ops=N_OPS, size=size)

    def nb(comm, rank):
        run_sequence(comm, rank, seed, ops)

    def blocking(comm, rank):
        run_sequence(comm, rank, seed, ops, force_blocking=True)

    # cost_size > 1 so collectives have nonzero modelled latency to hide
    # (at modelled P=1 a tree allreduce has zero rounds)
    res_nb = runner(nb, size, machine=CRAY_XC30, cost_size=64)
    res_blocking = runner(blocking, size, machine=CRAY_XC30, cost_size=64)
    for led_nb, led_blocking in zip(res_nb.ledgers, res_blocking.ledgers, strict=True):
        assert led_nb.comm_seconds_hidden > 0.0  # sequences always overlap
        assert_ledger_reconstruction(led_nb, led_blocking)


class TestOracleParity:
    """Every backend folds every sequence bit-identically to the oracle
    (and therefore bit-identically to every other backend)."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_virtual(self, seed):
        _check_oracle(virtual_spmd_run, seed, 1)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_thread(self, seed):
        _check_oracle(spmd_run, seed, _size_for(seed))

    @pytest.mark.parametrize("seed", PROCESS_SMOKE_SEEDS)
    def test_process_smoke(self, seed):
        _check_oracle(process_spmd_run, seed, _size_for(seed))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", SEEDS[len(PROCESS_SMOKE_SEEDS):])
    def test_process_full(self, seed):
        _check_oracle(process_spmd_run, seed, _size_for(seed))


class TestCrossBackend:
    """Thread and process ranks produce bit-identical per-rank results
    for the same sequence (both equal the oracle; checked directly here
    so a future backend divergence fails with the right message)."""

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_thread_vs_process(self, seed):
        size = _size_for(seed)
        ops = make_sequence(seed, n_ops=N_OPS, size=size)
        fn = lambda comm, rank: run_sequence(comm, rank, seed, ops)  # noqa: E731
        res_t = spmd_run(fn, size)
        res_p = process_spmd_run(fn, size)
        for r in range(size):
            assert_results_equal(res_p.values[r], res_t.values[r])


class TestLedgerReconstruction:
    """charged + hidden == blocking, exactly, with identical traffic."""

    @pytest.mark.parametrize("seed", SEEDS[:5])
    def test_virtual(self, seed):
        _check_ledger(virtual_spmd_run, seed, 1)

    @pytest.mark.parametrize("seed", SEEDS[:5])
    def test_thread(self, seed):
        _check_ledger(spmd_run, seed, _size_for(seed))

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_process_smoke(self, seed):
        _check_ledger(process_spmd_run, seed, _size_for(seed))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", SEEDS[2:5])
    def test_process_full(self, seed):
        _check_ledger(process_spmd_run, seed, _size_for(seed))


def _check_faulty_oracle(runner, seed: int, size: int) -> None:
    ops = make_sequence(seed, n_ops=N_OPS, size=size)
    plan = make_fault_plan(seed, size, N_OPS)

    def work(comm, rank):
        return run_sequence(FaultyComm(comm, plan), rank, seed, ops)

    res = runner(work, size)
    expected = expected_results(seed, ops, size)
    for r in range(size):
        assert_results_equal(res.values[r], expected[r])


class TestFaultInjectionFuzz:
    """Transient-fault-injected sequences recover to the *same bits* the
    fault-free oracle produces, on every backend — the retry loop is
    peer-safe (injection happens before the collective is entered)."""

    FAULT_SEEDS = SEEDS[:8]

    def test_plans_are_deterministic_and_nonempty(self):
        fired = 0
        for seed in self.FAULT_SEEDS:
            size = _size_for(seed)
            a = make_fault_plan(seed, size, N_OPS)
            b = make_fault_plan(seed, size, N_OPS)
            assert a.events == b.events
            fired += len(a.events)
        assert fired > 0, "the fault seeds never inject anything"

    @pytest.mark.parametrize("seed", FAULT_SEEDS)
    def test_virtual(self, seed):
        _check_faulty_oracle(virtual_spmd_run, seed, 1)

    @pytest.mark.parametrize("seed", FAULT_SEEDS)
    def test_thread(self, seed):
        _check_faulty_oracle(spmd_run, seed, _size_for(seed))

    @pytest.mark.parametrize("seed", FAULT_SEEDS[:2])
    def test_process_smoke(self, seed):
        _check_faulty_oracle(process_spmd_run, seed, _size_for(seed))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", FAULT_SEEDS[2:])
    def test_process_full(self, seed):
        _check_faulty_oracle(process_spmd_run, seed, _size_for(seed))

    def test_retries_are_charged_somewhere(self):
        """At least one fuzz seed's plan actually fires on the thread
        backend, and the recovery shows up in the ledger counters."""
        total = 0
        for seed in self.FAULT_SEEDS:
            size = _size_for(seed)
            ops = make_sequence(seed, n_ops=N_OPS, size=size)
            plan = make_fault_plan(seed, size, N_OPS)
            res = spmd_run(
                lambda comm, rank: run_sequence(
                    FaultyComm(comm, plan), rank, seed, ops),
                size,
            )
            total += sum(led.retries for led in res.ledgers)
        assert total > 0


class TestSupervisedRecoveryFuzz:
    """A hard rank death under ``recover="checkpoint"`` is survived: the
    supervisor respawns the dead rank, the replayed attempt runs clean
    (the plan injects only while ``recoveries == 0``), and the results
    still match the fault-free oracle bit-identically. No checkpoints
    are emitted here, so the replay restarts the whole sequence from
    scratch — correctness must not depend on a checkpoint existing."""

    DIE_SEEDS = SEEDS[:4]

    def test_die_plans_are_deterministic(self):
        for seed in self.DIE_SEEDS:
            size = _size_for(seed)
            a = make_die_plan(seed, size, N_OPS)
            b = make_die_plan(seed, size, N_OPS)
            assert a.events == b.events
            assert len(a.events) == 1 and a.events[0].kind == "die"

    @pytest.mark.parametrize("seed", DIE_SEEDS[:2])
    def test_process_die_recover_smoke(self, seed):
        self._check_die_recovery(seed)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", DIE_SEEDS[2:])
    def test_process_die_recover_full(self, seed):
        self._check_die_recovery(seed)

    def _check_die_recovery(self, seed):
        size = _size_for(seed)
        ops = make_sequence(seed, n_ops=N_OPS, size=size)
        plan = make_die_plan(seed, size, N_OPS)

        def work(comm, rank):
            ctx = comm.recovery
            wcomm = comm
            if ctx is not None and ctx.recoveries == 0:
                wcomm = FaultyComm(comm, plan)
            return run_sequence(wcomm, rank, seed, ops)

        res = process_spmd_run(work, size, recover="checkpoint",
                               max_recoveries=2)
        expected = expected_results(seed, ops, size)
        for r in range(size):
            assert_results_equal(res.values[r], expected[r])
        assert all(led.recoveries >= 1 for led in res.ledgers)
        assert all(led.respawns >= 1 for led in res.ledgers)


def _tau_for(seed: int) -> int:
    return 1 + seed % 3  # tau in {1, 2, 3}


def _check_async_oracle(runner, seed: int, size: int) -> None:
    tau = _tau_for(seed)
    events = make_async_sequence(seed, n_posts=10, size=size, tau=tau)
    res = runner(
        lambda comm, rank: run_async_sequence(comm, rank, seed, events),
        size, nb_depth=tau + 2,
    )
    exp_vals, exp_stale = expected_async(seed, events, size)
    for r in range(size):
        assert_async_equal(res.values[r], exp_vals[r], exp_stale)


def _check_async_ledger(runner, seed: int, size: int) -> None:
    tau = _tau_for(seed)
    events = make_async_sequence(seed, n_posts=10, size=size, tau=tau)

    def nb(comm, rank):
        run_async_sequence(comm, rank, seed, events)

    def blocking(comm, rank):
        run_async_sequence(comm, rank, seed, events, force_blocking=True)

    res_nb = runner(nb, size, machine=CRAY_XC30, cost_size=64,
                    nb_depth=tau + 2)
    res_blocking = runner(blocking, size, machine=CRAY_XC30, cost_size=64)
    _, exp_stale = expected_async(seed, events, size)
    for led_nb, led_blocking in zip(res_nb.ledgers, res_blocking.ledgers, strict=True):
        assert_async_ledger_reconstruction(led_nb, led_blocking,
                                           max(exp_stale))


class TestAsyncRingFuzz:
    """Seeded async-ring programs — up to tau+1 reductions in flight,
    harvested out of order — fold bit-identically to the oracle on every
    backend, with the staleness schedule matched exactly, and the
    three-way ledger split (charged + hidden + stale) reconstructing the
    blocking bill. The process backend's long tail is nightly
    (``slow``); a 5-seed slice stays in tier-1."""

    ASYNC_SEEDS = SEEDS
    ASYNC_SMOKE_SEEDS = SEEDS[:5]

    def test_programs_are_deterministic_and_out_of_order(self):
        picks = set()
        for seed in self.ASYNC_SEEDS:
            tau = _tau_for(seed)
            a = make_async_sequence(seed, 10, _size_for(seed), tau)
            assert a == make_async_sequence(seed, 10, _size_for(seed), tau)
            picks |= {ev[1] for ev in a if ev[0] == "harvest"}
            # respect the ring: never more than tau + 1 in flight, and a
            # post never reuses the slot of a still-open request
            inflight, posted = [], 0
            for ev in a:
                if ev[0] == "post":
                    assert posted - (tau + 2) not in inflight
                    inflight.append(posted)
                    posted += 1
                else:
                    inflight.pop(ev[1])
                assert 0 <= len(inflight) <= tau + 1
        assert picks - {0}, "harvests never picked out of order"

    @pytest.mark.parametrize("seed", ASYNC_SEEDS)
    def test_virtual(self, seed):
        _check_async_oracle(virtual_spmd_run, seed, 1)

    @pytest.mark.parametrize("seed", ASYNC_SMOKE_SEEDS)
    def test_thread_smoke(self, seed):
        _check_async_oracle(spmd_run, seed, _size_for(seed))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", ASYNC_SEEDS[len(ASYNC_SMOKE_SEEDS):])
    def test_thread_full(self, seed):
        _check_async_oracle(spmd_run, seed, _size_for(seed))

    @pytest.mark.parametrize("seed", ASYNC_SMOKE_SEEDS)
    def test_process_smoke(self, seed):
        _check_async_oracle(process_spmd_run, seed, _size_for(seed))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", ASYNC_SEEDS[len(ASYNC_SMOKE_SEEDS):])
    def test_process_full(self, seed):
        _check_async_oracle(process_spmd_run, seed, _size_for(seed))

    @pytest.mark.parametrize("seed", ASYNC_SEEDS[:3])
    def test_ledger_virtual(self, seed):
        _check_async_ledger(virtual_spmd_run, seed, 1)

    @pytest.mark.parametrize("seed", ASYNC_SEEDS[:3])
    def test_ledger_thread(self, seed):
        _check_async_ledger(spmd_run, seed, _size_for(seed))

    @pytest.mark.parametrize("seed", ASYNC_SEEDS[:2])
    def test_ledger_process_smoke(self, seed):
        _check_async_ledger(process_spmd_run, seed, _size_for(seed))

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", ASYNC_SEEDS[2:5])
    def test_ledger_process_full(self, seed):
        _check_async_ledger(process_spmd_run, seed, _size_for(seed))


class TestHarnessSelfChecks:
    """The fuzzer itself stays honest."""

    def test_sequences_are_deterministic(self):
        assert make_sequence(7, 30, 3) == make_sequence(7, 30, 3)

    def test_sequences_differ_across_seeds(self):
        assert make_sequence(1, 30, 3) != make_sequence(2, 30, 3)

    def test_every_sequence_has_overlap_material(self):
        for seed in SEEDS:
            ops = make_sequence(seed, N_OPS, 2)
            assert any(o["kind"] == "Iallreduce" and o["flops"] >= 1e5
                       for o in ops)

    def test_mixed_dtypes_and_completions_covered(self):
        """Across the seed set, the generator exercises the whole space."""
        dtypes, completions, kinds = set(), set(), set()
        for seed in SEEDS:
            for o in make_sequence(seed, N_OPS, 4):
                kinds.add(o["kind"])
                if "dtype" in o:
                    dtypes.add(o["dtype"])
                if o["kind"] == "Iallreduce":
                    completions.add(o["complete"])
        assert {"f64", "f32", "i64"} <= dtypes
        assert {"wait", "test", "defer"} <= completions
        assert {"allreduce", "Allreduce", "Iallreduce", "bcast",
                "allgather", "Allgather"} <= kinds

    def test_virtual_size_guard(self):
        with pytest.raises(ValueError):
            virtual_spmd_run(lambda comm, rank: None, 2)
