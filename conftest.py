"""Repo-root pytest bootstrap.

Makes ``src/`` importable so the suite (and the benches) run without the
``PYTHONPATH=src`` hack or an editable install. Harmless when the package
is properly installed — site-packages wins only if ``src/`` is removed.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
