#!/usr/bin/env python3
"""Fig.-4-style strong-scaling study on any registry dataset.

Sweeps virtual processor counts and the unrolling parameter s for one of
the paper's datasets (scaled stand-in), printing the strong-scaling
table and the speedup breakdown — the workflow behind Figures 4a-4h.

Run:  python examples/strong_scaling_study.py [dataset] [solver]
      e.g. python examples/strong_scaling_study.py covtype acccd
"""

import sys

from repro.experiments import load_scaled, speedup_vs_s, strong_scaling
from repro.utils.tables import format_table


def main(dataset: str = "covtype", solver: str = "acccd") -> None:
    sa_solver = "sa-" + solver
    ds = load_scaled(dataset, target_cells=30_000, seed=0)
    m, n = ds.shape
    print(f"dataset {dataset}: stand-in {m}x{n} "
          f"(flop scale {ds.flop_scale:.0f}x, gather scale {ds.gather_scale:.0f}x)")

    Ps = [192, 768, 3072, 12288]
    H = 384
    base = strong_scaling(ds, solver, Ps, max_iter=H, lam=1.0)
    sa = strong_scaling(ds, sa_solver, Ps, s=16, max_iter=H, lam=1.0)
    rows = [
        [p0.P, f"{p0.seconds * 1e3:.3f}", f"{p1.seconds * 1e3:.3f}",
         f"{p0.seconds / p1.seconds:.2f}x"]
        for p0, p1 in zip(base, sa)
    ]
    print()
    print(format_table(
        ["P", f"{solver} (ms)", f"{sa_solver} s=16 (ms)", "speedup"],
        rows,
        title=f"strong scaling, H={H} iterations (modelled Cray XC30 time)",
    ))

    P_star = Ps[-1]
    pts = speedup_vs_s(ds, solver, sa_solver,
                       [2, 4, 8, 16, 32, 64, 128, 256], P=P_star,
                       max_iter=H, lam=1.0)
    rows = [
        [p.s, f"{p.total:.2f}x", f"{p.communication:.2f}x",
         f"{p.computation:.2f}x"]
        for p in pts
    ]
    print()
    print(format_table(
        ["s", "total", "communication", "computation"],
        rows,
        title=f"speedup of {sa_solver} over {solver} at P={P_star}",
    ))
    best = max(pts, key=lambda p: p.total)
    print(f"\nbest setting: s={best.s} -> {best.total:.2f}x total speedup "
          f"(the paper reports 1.2x-5.1x across datasets)")


if __name__ == "__main__":
    main(*sys.argv[1:3])
