#!/usr/bin/env python3
"""Lasso regularization path with the warm-started path engine.

The workload the paper's introduction motivates: high-dimensional sparse
feature selection. One ``lasso_path`` call traces the solution path over
a descending geometric lambda grid through a single ``SweepContext`` —
the partitioned matrix, sampling views, collective buffers, Gram output
buffers, and the eigenvalue memo are built once and shared by every
point, and each solve warm-starts from the previous solution. Every
point still runs the synchronization-avoiding solver.

Run:  python examples/regularization_path.py
"""

import numpy as np

from repro import lasso_path
from repro.datasets import make_sparse_regression
from repro.solvers.objectives import lambda_max
from repro.utils.tables import format_table


def main() -> None:
    A, b, x_true = make_sparse_regression(
        1500, 400, density=0.08, k_nonzero=12, noise=0.02, seed=11
    )
    lam_hi = lambda_max(A, b)
    true_support = set(np.flatnonzero(x_true).tolist())
    print(f"problem: A {A.shape}, ||A^T b||_inf = {lam_hi:.4g}, "
          f"|true support| = {len(true_support)}")

    path = lasso_path(
        A, b, lam_hi * np.geomspace(0.5, 0.005, 10),
        solver="sa-accbcd", mu=8, s=16, max_iter=600, seed=0,
        tol=1e-8, record_every=25,
    )

    rows = []
    for lam, res in zip(path.lambdas, path.results):
        support = np.flatnonzero(np.abs(res.x) > 1e-8)
        hit = len(set(support.tolist()) & true_support)
        rows.append(
            [
                f"{lam:.4g}",
                f"{lam / lam_hi:.3f}",
                res.iterations,
                len(support),
                f"{hit}/{len(true_support)}",
                f"{res.final_metric:.6g}",
            ]
        )
    print()
    print(format_table(
        ["lambda", "lambda/lambda_max", "iters", "|support|",
         "true features", "objective"],
        rows,
        title="Lasso path (warm-started SA-accBCD, mu=8, s=16)",
    ))
    print(f"\ntotal iterations across the path: {sum(path.iterations)}")
    print("note how warm starts shrink the per-lambda iteration count "
          "as the path progresses.")


if __name__ == "__main__":
    main()
