#!/usr/bin/env python3
"""Sparse text classification with SA-SVM.

A news20.binary-shaped workload (the paper's Table IV/V): very sparse,
high-dimensional bag-of-words-like features, binary labels. Trains
SVM-L1 and SVM-L2 with dual coordinate descent and the SA variant,
tracks the duality gap (Fig. 5 style) and reports held-out accuracy.

Run:  python examples/text_classification_svm.py
"""

import numpy as np

from repro import fit_svm
from repro.datasets import make_classification
from repro.machine import CRAY_XC30
from repro.solvers.svm import prediction_accuracy


def main() -> None:
    # news20-like in structure (sparse bag-of-words features), scaled so
    # the 80% train split can actually generalise (m >> effective dim)
    m, n, density = 4000, 1000, 0.02
    A, b = make_classification(m, n, density=density, margin=0.3,
                               label_noise=0.01, seed=7)
    # train/test split (deterministic)
    rng = np.random.default_rng(0)
    perm = rng.permutation(m)
    train, test = perm[: int(0.8 * m)], perm[int(0.8 * m):]
    A_tr, b_tr = A[train], b[train]
    A_te, b_te = A[test], b[test]
    print(f"train: {A_tr.shape} nnz={A_tr.nnz}   test: {A_te.shape}")

    H = 30_000
    for loss in ("l1", "l2"):
        res = fit_svm(A_tr, b_tr, loss=loss, solver="sa-svm", s=64, lam=1.0,
                      max_iter=H, tol=1e-2, record_every=2000, seed=1)
        gaps = res.history
        Ax_te = np.asarray(A_te @ res.x).ravel()
        Ax_tr = np.asarray(A_tr @ res.x).ravel()
        print(f"\nSA-SVM-{loss.upper()} (s=64): "
              f"{res.iterations} iterations, "
              f"duality gap {res.final_metric:.4g} "
              f"({'converged' if res.converged else 'budget exhausted'})")
        print(f"  gap trace: "
              + " -> ".join(f"{g:.3g}" for g in gaps.metric[:: max(1, len(gaps) // 6)]))
        print(f"  accuracy: train {prediction_accuracy(Ax_tr, b_tr):.3f}, "
              f"test {prediction_accuracy(Ax_te, b_te):.3f}")
        sv = int(np.sum(res.extras["alpha"] > 1e-9))
        print(f"  support vectors: {sv}/{len(b_tr)}")

    # The Table-V story: same training, modelled on the paper's 576 ranks.
    print("\n--- modelled cost at P=576 (paper's news20.binary setting) ---")
    for solver, s in (("svm", None), ("sa-svm", 64)):
        res = fit_svm(A_tr, b_tr, loss="l1", solver=solver, s=s or 64,
                      max_iter=4000, seed=1, virtual_p=576, machine=CRAY_XC30)
        c = res.cost
        print(f"{res.solver:>18s}: {c.seconds * 1e3:8.2f} ms modelled "
              f"({c.messages} messages)")


if __name__ == "__main__":
    main()
