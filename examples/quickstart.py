#!/usr/bin/env python3
"""Quickstart: solve a sparse Lasso problem with SA-accBCD.

Demonstrates the one-call API, the SA/classical exact equivalence, and
the modelled communication savings on a virtual 1024-rank machine.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import fit_lasso
from repro.datasets import make_sparse_regression
from repro.machine import CRAY_XC30
from repro.solvers.objectives import lambda_max


def main() -> None:
    # A sparse regression problem: 2000 samples, 500 features, 5% dense,
    # planted 25-sparse ground truth.
    A, b, x_true = make_sparse_regression(
        2000, 500, density=0.05, k_nonzero=25, noise=0.01, seed=42
    )
    lam = 0.1 * lambda_max(A, b)
    print(f"problem: A {A.shape}, nnz={A.nnz}, lambda={lam:.4g}")

    common = dict(lam=lam, mu=8, max_iter=800, seed=0, record_every=100)

    # Classical accelerated BCD (paper Alg. 1) ...
    classical = fit_lasso(A, b, solver="accbcd", **common)
    # ... and the synchronization-avoiding variant (paper Alg. 2):
    # identical iterates, 1/16th the synchronization.
    sa = fit_lasso(A, b, solver="sa-accbcd", s=16, **common)

    print(f"\n{classical.solver}: objective {classical.final_metric:.6f}")
    print(f"{sa.solver}: objective {sa.final_metric:.6f}")
    rel = abs(classical.final_metric - sa.final_metric) / classical.final_metric
    print(f"relative difference: {rel:.2e}  (exact-arithmetic equivalence)")

    support = np.flatnonzero(np.abs(sa.x) > 1e-8)
    true_support = np.flatnonzero(x_true)
    recovered = len(set(support) & set(true_support))
    print(f"\nsupport: {len(support)} selected, "
          f"{recovered}/{len(true_support)} true features recovered")

    # What would this cost on 1024 ranks of a Cray XC30? With mu = 8 the
    # Gram payload grows like (s*mu)^2, so the sweet spot is a small s —
    # sweep a few values and let the model pick (cf. paper Fig. 4e-4h).
    print("\n--- modelled cost on 1024 virtual Cray-XC30 ranks ---")
    kwargs = dict(common)
    kwargs["record_every"] = 0
    base = fit_lasso(A, b, solver="accbcd", virtual_p=1024,
                     machine=CRAY_XC30, **kwargs)
    c = base.cost
    print(f"{base.solver:>24s}: {c.seconds * 1e3:8.3f} ms "
          f"(comm {c.comm_seconds * 1e3:.3f} ms, {c.messages} messages)")
    for s in (2, 4, 8, 16):
        res = fit_lasso(A, b, solver="sa-accbcd", s=s, virtual_p=1024,
                        machine=CRAY_XC30, **kwargs)
        c = res.cost
        print(f"{res.solver:>24s}: {c.seconds * 1e3:8.3f} ms "
              f"(comm {c.comm_seconds * 1e3:.3f} ms, {c.messages} messages)"
              f"  -> {base.cost.seconds / c.seconds:.2f}x")


if __name__ == "__main__":
    main()
