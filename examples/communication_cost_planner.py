#!/usr/bin/env python3
"""Pick the unrolling parameter s *before* running, from the Table-I model.

The paper leaves s as a tuning parameter ("the best choice of s depends
on the relative algorithmic flops, bandwidth, latency costs and their
respective hardware parameters", SV). This planner evaluates the
analytic cost model for a given dataset shape and machine and recommends
s — and shows how the recommendation shifts across machines.

Run:  python examples/communication_cost_planner.py
"""

from repro.datasets.registry import LASSO_DATASETS
from repro.experiments.theory import accbcd_costs, best_s, predicted_speedup
from repro.machine import COMMODITY_CLUSTER, CRAY_XC30, SPARK_LIKE
from repro.utils.tables import format_table


def main() -> None:
    H, mu = 1000, 1
    P_BY_NAME = {"url": 12288, "news20": 768, "covtype": 3072,
                 "epsilon": 12288, "leu": 64}

    print("recommended s per dataset and machine "
          f"(H={H}, mu={mu}, analytic Table-I model)\n")
    rows = []
    for spec in LASSO_DATASETS:
        m, n = spec.dims(as_reported=False)
        P = P_BY_NAME[spec.name]
        cells = []
        for machine in (CRAY_XC30, COMMODITY_CLUSTER, SPARK_LIKE):
            s_star, sp = best_s(machine, H, mu, spec.density, m, n, P)
            cells.append(f"s={s_star} ({sp:.1f}x)")
        rows.append([spec.name, P, *cells])
    print(format_table(
        ["dataset", "P", "cray-xc30", "commodity", "spark-like"], rows
    ))

    # a closer look at one configuration: the full cost breakdown
    spec = next(d for d in LASSO_DATASETS if d.name == "covtype")
    m, n = spec.dims(as_reported=False)
    P = P_BY_NAME["covtype"]
    print(f"\ncovtype at P={P} on cray-xc30 — modelled seconds by s:")
    rows = []
    for s in (1, 4, 16, 64, 256):
        c = accbcd_costs(H=H, mu=mu, f=spec.density, m=m, n=n, P=P, s=s)
        t = c.modelled_seconds(CRAY_XC30,
                               gram_kind="blas1" if s == 1 else "blas3")
        sp = predicted_speedup(CRAY_XC30, H, mu, spec.density, m, n, P, s)
        rows.append(
            [s, c.latency, f"{c.bandwidth:.3g}", f"{t * 1e3:.3f}",
             f"{sp:.2f}x" if s > 1 else "baseline"]
        )
    print(format_table(
        ["s", "messages L", "words W", "time (ms)", "speedup"], rows
    ))
    print("\nthe model reproduces the paper's story: moderate s wins, "
          "huge s loses to the s^2 bandwidth/flop growth.")


if __name__ == "__main__":
    main()
