"""Penalty objects: value + block prox, shared by all Lasso-family solvers.

The paper presents results for Lasso but notes they "hold more generally
for other regularization functions with well-defined proximal operators
(Elastic-Nets, Group Lasso, etc.)" — the SA derivation only touches the
linear recurrences, never the prox. Each penalty therefore just supplies

* ``value(x)`` — the regulariser's contribution to the objective, and
* ``prox_block(v, eta, idx)`` — the prox of ``eta * g`` restricted to the
  sampled coordinate block ``idx`` (valid because all penalties here are
  separable across the block boundary; Group Lasso requires blocks to be
  unions of groups, which the group-aware sampler guarantees).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SolverError
from repro.prox.operators import (
    elastic_net_prox,
    group_soft_threshold,
    soft_threshold,
)

__all__ = ["Penalty", "L1Penalty", "ElasticNetPenalty", "GroupLassoPenalty", "ZeroPenalty"]


class Penalty(ABC):
    """Separable (block-separable) regulariser ``g``."""

    @abstractmethod
    def value(self, x: np.ndarray) -> float:
        """``g(x)`` for a full solution vector."""

    @abstractmethod
    def prox_block(self, v: np.ndarray, eta: float, idx: np.ndarray) -> np.ndarray:
        """``prox_{eta g}`` applied to the coordinates ``idx`` of ``v``."""

    #: group labels per coordinate, or None for coordinatewise penalties
    group_ids: np.ndarray | None = None


@dataclass(frozen=True)
class L1Penalty(Penalty):
    """Lasso: ``g(x) = lam * ||x||_1`` (paper's primary penalty)."""

    lam: float
    group_ids: None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise SolverError(f"lam must be non-negative, got {self.lam}")

    def value(self, x: np.ndarray) -> float:
        return self.lam * float(np.sum(np.abs(x)))

    def prox_block(self, v: np.ndarray, eta: float, idx: np.ndarray) -> np.ndarray:
        return soft_threshold(v, self.lam * eta)


@dataclass(frozen=True)
class ElasticNetPenalty(Penalty):
    """Paper form: ``g(x) = lam*||x||_2^2 + (1-lam)*||x||_1``, lam in [0,1],
    optionally scaled by an overall ``scale`` (so ``scale*g`` is used)."""

    lam: float
    scale: float = 1.0
    group_ids: None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if not (0.0 <= self.lam <= 1.0):
            raise SolverError(f"mixing lam must be in [0,1], got {self.lam}")
        if self.scale < 0:
            raise SolverError(f"scale must be non-negative, got {self.scale}")

    def value(self, x: np.ndarray) -> float:
        x = np.asarray(x)
        return self.scale * (
            self.lam * float(x @ x) + (1.0 - self.lam) * float(np.sum(np.abs(x)))
        )

    def prox_block(self, v: np.ndarray, eta: float, idx: np.ndarray) -> np.ndarray:
        # prox of eta*scale*(lam||.||^2 + (1-lam)||.||_1)
        es = eta * self.scale
        return elastic_net_prox(v, es, self.lam) if self.scale else np.asarray(v)


@dataclass(frozen=True)
class GroupLassoPenalty(Penalty):
    """``g(x) = lam * sum_g ||x_g||_2`` over disjoint groups.

    ``group_ids[i]`` is the group label of coordinate ``i``. Solvers must
    sample whole groups when using this penalty (the sampler's
    ``group_ids`` mode); ``prox_block`` checks that.
    """

    lam: float
    group_ids: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise SolverError(f"lam must be non-negative, got {self.lam}")
        if self.group_ids is None:
            raise SolverError("GroupLassoPenalty requires group_ids")
        object.__setattr__(
            self, "group_ids", np.asarray(self.group_ids, dtype=np.intp).ravel()
        )

    def value(self, x: np.ndarray) -> float:
        x = np.asarray(x)
        if x.shape[0] != self.group_ids.shape[0]:
            raise SolverError(
                f"x has {x.shape[0]} coords but group_ids has {self.group_ids.shape[0]}"
            )
        total = 0.0
        for g in np.unique(self.group_ids):
            total += float(np.linalg.norm(x[self.group_ids == g]))
        return self.lam * total

    def prox_block(self, v: np.ndarray, eta: float, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.intp)
        local_gids = self.group_ids[idx]
        # validate that each sampled group is fully inside the block
        counts_in_block = {g: int(np.sum(local_gids == g)) for g in np.unique(local_gids)}
        for g, c in counts_in_block.items():
            full = int(np.sum(self.group_ids == g))
            if c != full:
                raise SolverError(
                    f"group {g} sampled partially ({c}/{full} coords); use the "
                    "group-aware sampler with GroupLassoPenalty"
                )
        return group_soft_threshold(v, self.lam * eta, local_gids)


@dataclass(frozen=True)
class ZeroPenalty(Penalty):
    """No regularisation (plain least squares); prox is the identity."""

    group_ids: None = field(default=None, init=False, repr=False)

    def value(self, x: np.ndarray) -> float:
        return 0.0

    def prox_block(self, v: np.ndarray, eta: float, idx: np.ndarray) -> np.ndarray:
        return np.asarray(v, dtype=np.float64)
