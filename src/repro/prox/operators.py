"""Proximal operators (paper eq. (2) and its generalisations).

All operators are vectorised and allocate a single output array; they are
the nonlinearities applied to the ``mu``-dimensional subproblem solution
in every (SA-)BCD iteration.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError

__all__ = [
    "soft_threshold",
    "elastic_net_prox",
    "group_soft_threshold",
    "box_project",
]


def soft_threshold(v: np.ndarray, t: float) -> np.ndarray:
    """Soft-thresholding ``S_t(v) = sign(v) max(|v| - t, 0)`` (paper eq. 2).

    The prox of ``t * ||.||_1``; creates exact zeros, which is how Lasso
    produces sparse solutions during the optimisation process.
    """
    if t < 0:
        raise SolverError(f"threshold must be non-negative, got {t}")
    v = np.asarray(v, dtype=np.float64)
    return np.sign(v) * np.maximum(np.abs(v) - t, 0.0)


def elastic_net_prox(v: np.ndarray, eta: float, lam: float) -> np.ndarray:
    """Prox of ``eta * g`` for the paper's elastic-net penalty
    ``g(x) = lam * ||x||_2^2 + (1 - lam) * ||x||_1`` with ``lam in [0, 1]``.

    Closed form: soft-threshold by ``eta*(1-lam)`` then shrink by
    ``1 / (1 + 2*eta*lam)``.
    """
    if not (0.0 <= lam <= 1.0):
        raise SolverError(f"elastic-net mixing lam must be in [0,1], got {lam}")
    if eta < 0:
        raise SolverError(f"eta must be non-negative, got {eta}")
    return soft_threshold(v, eta * (1.0 - lam)) / (1.0 + 2.0 * eta * lam)


def group_soft_threshold(
    v: np.ndarray, t: float, group_ids: np.ndarray
) -> np.ndarray:
    """Blockwise soft-thresholding: prox of ``t * sum_g ||v_g||_2``.

    ``group_ids[i]`` labels the (disjoint) group of coordinate ``i``;
    each group is scaled by ``max(0, 1 - t / ||v_g||)``.
    """
    if t < 0:
        raise SolverError(f"threshold must be non-negative, got {t}")
    v = np.asarray(v, dtype=np.float64)
    gid = np.asarray(group_ids)
    if gid.shape != v.shape:
        raise SolverError(
            f"group_ids shape {gid.shape} must match v shape {v.shape}"
        )
    out = np.zeros_like(v)
    for g in np.unique(gid):
        mask = gid == g
        norm = float(np.linalg.norm(v[mask]))
        if norm > t:
            out[mask] = v[mask] * (1.0 - t / norm)
    return out


def box_project(v: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Projection onto ``[lo, hi]`` (the SVM dual feasible box)."""
    if lo > hi:
        raise SolverError(f"empty box: lo={lo} > hi={hi}")
    return np.clip(np.asarray(v, dtype=np.float64), lo, hi)
