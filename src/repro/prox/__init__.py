"""Proximal operators and penalty objects."""

from repro.prox.operators import (
    soft_threshold,
    elastic_net_prox,
    group_soft_threshold,
    box_project,
)
from repro.prox.penalties import (
    Penalty,
    L1Penalty,
    ElasticNetPenalty,
    GroupLassoPenalty,
    ZeroPenalty,
)

__all__ = [
    "soft_threshold",
    "elastic_net_prox",
    "group_soft_threshold",
    "box_project",
    "Penalty",
    "L1Penalty",
    "ElasticNetPenalty",
    "GroupLassoPenalty",
    "ZeroPenalty",
]
