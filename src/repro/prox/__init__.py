"""Proximal operators and penalty objects."""

from repro.prox.operators import box_project, elastic_net_prox, group_soft_threshold, soft_threshold
from repro.prox.penalties import (
    ElasticNetPenalty,
    GroupLassoPenalty,
    L1Penalty,
    Penalty,
    ZeroPenalty,
)

__all__ = [
    "soft_threshold",
    "elastic_net_prox",
    "group_soft_threshold",
    "box_project",
    "Penalty",
    "L1Penalty",
    "ElasticNetPenalty",
    "GroupLassoPenalty",
    "ZeroPenalty",
]
