"""Machine descriptions for the performance model.

The paper measures on a Cray XC30 (NERSC "Edison": Aries dragonfly
interconnect, 2x12-core Ivy Bridge per node). We cannot run there, so the
performance experiments use an explicit alpha-beta-gamma model:

* ``alpha``   — per-message latency (seconds) for one tree round,
* ``beta``    — per-*word* (8-byte double) transfer time (seconds),
* ``gamma_*`` — effective local flop rates per core, split by BLAS level,
  because the paper's Fig. 4 computation speedups hinge on the BLAS-1
  (dot products) vs BLAS-3 (Gram matrix) efficiency gap,
* ``cache_bytes``/``cache_penalty`` — once a kernel's working set spills
  the last-level cache slice, its rate is multiplied by ``cache_penalty``;
  this reproduces the "slowdowns once s becomes too large" effect.

All presets are order-of-magnitude calibrations, documented in DESIGN.md:
the reproduction targets ratios (speedups, crossovers), not absolute
seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import CostModelError

__all__ = [
    "MachineSpec",
    "NULL_MACHINE",
    "CRAY_XC30",
    "COMMODITY_CLUSTER",
    "SPARK_LIKE",
    "get_machine",
]

#: Kernel classes whose effective rates the model distinguishes.
FLOP_KINDS = ("blas1", "blas2", "blas3", "spmv", "scalar", "gather", "fixed")


@dataclass(frozen=True)
class MachineSpec:
    """Alpha-beta-gamma description of a distributed-memory machine."""

    name: str
    #: latency per tree round, seconds
    alpha: float
    #: seconds per 8-byte word moved in one tree round
    beta: float
    #: effective flop/s per core for each kernel class. The blas3/blas1
    #: ratio (~2.6x) is calibrated so SA Gram formation shows the modest
    #: computation speedups of the paper's Fig. 4e-4h rather than the
    #: theoretical BLAS-3 peak.
    gamma: dict = field(
        default_factory=lambda: {
            "blas1": 2.5e9,
            "blas2": 3.5e9,
            "blas3": 6.5e9,
            "spmv": 2.0e9,
            "scalar": 0.5e9,
            # memory-bound index scans (column/row extraction)
            "gather": 0.5e9,
            # fixed per-iteration subproblem overhead (LAPACK/BLAS call
            # latency, prox, random access into replicated vectors);
            # dataset-size independent, paid by SA and non-SA alike
            "fixed": 0.5e9,
        }
    )
    #: per-core last-level cache slice, bytes
    cache_bytes: float = 2.5e6
    #: multiplicative rate penalty once working set exceeds cache_bytes
    cache_penalty: float = 0.35
    #: cores per node (informational; collectives count ranks, not nodes)
    cores_per_node: int = 24

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise CostModelError("alpha and beta must be non-negative")
        missing = [k for k in FLOP_KINDS if k not in self.gamma]
        if missing:
            raise CostModelError(f"gamma missing kernel classes: {missing}")
        for k, v in self.gamma.items():
            if v <= 0:
                raise CostModelError(f"gamma[{k!r}] must be > 0, got {v}")
        if not (0 < self.cache_penalty <= 1):
            raise CostModelError("cache_penalty must be in (0, 1]")

    def flop_rate(self, kind: str, working_set_bytes: float | None = None) -> float:
        """Effective flop/s for a kernel of class ``kind``.

        ``working_set_bytes`` triggers the cache penalty when it exceeds
        the per-core cache slice.
        """
        try:
            rate = self.gamma[kind]
        except KeyError as exc:
            raise CostModelError(
                f"unknown flop kind {kind!r}; known: {sorted(self.gamma)}"
            ) from exc
        if working_set_bytes is not None and working_set_bytes > self.cache_bytes:
            rate *= self.cache_penalty
        return rate

    def with_overrides(self, **kwargs) -> "MachineSpec":
        """Copy with selected fields replaced (for ablation sweeps)."""
        return replace(self, **kwargs)


#: zero-cost machine: collectives/flops are *counted* but take no time.
#: Used internally when no machine spec is attached to a communicator.
NULL_MACHINE = MachineSpec(name="null", alpha=0.0, beta=0.0)

#: NERSC Edison calibration: Aries ~1.4 us MPI latency per tree round;
#: beta reflects the *effective* per-word cost inside small/medium
#: allreduce rounds (~1 GB/s), not the link's streaming bandwidth — this
#: is what makes the speedup-vs-s curve peak near the paper's s=16..64
#: and caps communication speedups near the reported 4.2x-10.9x.
CRAY_XC30 = MachineSpec(name="cray-xc30", alpha=1.4e-6, beta=8.0e-9)

#: Ethernet commodity cluster: 25 us latency, ~1.2 GB/s.
COMMODITY_CLUSTER = MachineSpec(name="commodity", alpha=2.5e-5, beta=6.7e-9)

#: Spark-like data-analytics stack: scheduling/serialisation inflates the
#: per-round latency by orders of magnitude (paper SVII and [36] observe
#: large latency costs on Spark); bandwidth similar to commodity.
SPARK_LIKE = MachineSpec(name="spark-like", alpha=5.0e-3, beta=8.0e-9)

_REGISTRY = {m.name: m for m in (CRAY_XC30, COMMODITY_CLUSTER, SPARK_LIKE)}


def get_machine(name: str) -> MachineSpec:
    """Look up a preset by name (``cray-xc30``, ``commodity``, ``spark-like``)."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise CostModelError(
            f"unknown machine {name!r}; presets: {sorted(_REGISTRY)}"
        ) from exc
