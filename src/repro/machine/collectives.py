"""Cost formulas for MPI collectives under the tree model.

The paper's Table I counts latency ``O(H log P)`` and bandwidth
``O(H mu^2 log P)`` for classical accBCD — i.e. it prices an Allreduce of
``w`` words as ``ceil(log2 P)`` rounds, each costing ``alpha + beta * w``.
We adopt exactly that model so measured tracer counts can be checked
against Table I's formulas.

Costs are returned as :class:`CollectiveCost` (messages, words, seconds)
so the tracer can accumulate *counts* separately from *time*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CostModelError
from repro.machine.spec import MachineSpec

__all__ = ["CollectiveCost", "CollectiveModel"]


@dataclass(frozen=True)
class CollectiveCost:
    """Critical-path cost of one collective call."""

    #: number of messages on the critical path (latency units)
    messages: int
    #: number of words moved on the critical path
    words: float
    #: modelled wall-clock seconds
    seconds: float


class CollectiveModel:
    """Prices collectives on ``size`` ranks of a :class:`MachineSpec`."""

    def __init__(self, machine: MachineSpec, size: int) -> None:
        if size < 1:
            raise CostModelError(f"communicator size must be >= 1, got {size}")
        self.machine = machine
        self.size = int(size)

    # -- helpers ---------------------------------------------------------
    @property
    def rounds(self) -> int:
        """Tree depth: ceil(log2 P); 0 for a singleton communicator."""
        if self.size == 1:
            return 0
        return int(math.ceil(math.log2(self.size)))

    def _tree(self, words: float, rounds: int | None = None) -> CollectiveCost:
        r = self.rounds if rounds is None else rounds
        seconds = r * (self.machine.alpha + self.machine.beta * words)
        return CollectiveCost(messages=r, words=float(words) * r, seconds=seconds)

    # -- collectives ------------------------------------------------------
    def allreduce(self, words: float) -> CollectiveCost:
        """Tree allreduce: log P rounds of the full payload (paper model)."""
        return self._tree(words)

    def reduce(self, words: float) -> CollectiveCost:
        return self._tree(words)

    def bcast(self, words: float) -> CollectiveCost:
        return self._tree(words)

    def allgather(self, words_per_rank: float) -> CollectiveCost:
        """Recursive doubling: log P rounds, doubling payload each round."""
        if self.size == 1:
            return CollectiveCost(0, 0.0, 0.0)
        r = self.rounds
        total_words = words_per_rank * (self.size - 1)
        seconds = r * self.machine.alpha + self.machine.beta * total_words
        return CollectiveCost(messages=r, words=total_words, seconds=seconds)

    def barrier(self, words: float = 0.0) -> CollectiveCost:
        return self._tree(0.0)

    def point_to_point(self, words: float) -> CollectiveCost:
        """Single message between two ranks."""
        if self.size == 1:
            return CollectiveCost(0, 0.0, 0.0)
        seconds = self.machine.alpha + self.machine.beta * words
        return CollectiveCost(messages=1, words=float(words), seconds=seconds)
