"""Machine performance model (alpha-beta-gamma) and cost accounting.

See DESIGN.md §2: the Cray XC30 testbed is simulated by this model; the
solvers' numerics are unaffected by it.
"""

from repro.machine.collectives import CollectiveCost, CollectiveModel
from repro.machine.compute import ComputeModel
from repro.machine.ledger import CostLedger, CostSnapshot, critical_path
from repro.machine.spec import (
    COMMODITY_CLUSTER,
    CRAY_XC30,
    NULL_MACHINE,
    SPARK_LIKE,
    MachineSpec,
    get_machine,
)

__all__ = [
    "MachineSpec",
    "NULL_MACHINE",
    "CRAY_XC30",
    "COMMODITY_CLUSTER",
    "SPARK_LIKE",
    "get_machine",
    "CollectiveCost",
    "CollectiveModel",
    "ComputeModel",
    "CostLedger",
    "CostSnapshot",
    "critical_path",
]
