"""Per-rank cost accounting (flops F, words W, messages L, seconds T).

A :class:`CostLedger` is attached to a communicator. Collectives charge
communication costs automatically; solvers charge local computation via
:meth:`CostLedger.add_flops`. At the end of a run, the per-rank ledgers
are combined with :func:`critical_path` (bulk-synchronous max).

The ledger is also how the virtual-P mode works: with ``flop_divisor = P``
a single process executes the *full* computation, while the ledger charges
each rank ``1/P`` of the flops — valid because the paper's algorithms
partition work evenly (1D row / column partitions with balanced nnz).
An optional ``imbalance`` factor > 1 models stragglers (paper §VI notes
rcv1/news20 SVM runs suffered load imbalance).
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import CostModelError
from repro.machine.collectives import CollectiveCost
from repro.machine.compute import ComputeModel
from repro.machine.spec import MachineSpec

__all__ = ["CostLedger", "CostSnapshot", "critical_path"]


@dataclass(frozen=True)
class CostSnapshot:
    """Immutable view of a ledger at one instant."""

    comm_seconds: float
    compute_seconds: float
    messages: int
    words: float
    flops: float
    #: modelled communication seconds hidden behind overlapped computation
    #: (nonblocking collectives charge only the unoverlapped remainder)
    comm_seconds_hidden: float = 0.0
    #: modelled communication seconds hidden behind computation that ran
    #: *past* the point a synchronous consumer would have waited — the
    #: extra overlap bought by accepting bounded staleness (async
    #: solvers). ``comm_seconds + comm_seconds_hidden + stale_seconds``
    #: always equals what the blocking collectives would have cost.
    stale_seconds: float = 0.0
    #: largest observed staleness (in harvest steps) of any collective;
    #: a watermark, never a sum — 0 for blocking/pipelined runs
    max_staleness: int = 0
    #: transient-fault retries of collectives (fault-tolerance layer)
    retries: int = 0
    #: collectives that missed their deadline (fault-tolerance layer)
    timeouts: int = 0
    #: supervised recovery rounds this run survived (self-healing runtime)
    recoveries: int = 0
    #: worker processes respawned across those recovery rounds
    respawns: int = 0
    #: iterations restored from the latest checkpoint instead of re-run
    replayed_iterations: int = 0

    @property
    def seconds(self) -> float:
        return self.comm_seconds + self.compute_seconds

    @classmethod
    def zero(cls) -> "CostSnapshot":
        return cls(0.0, 0.0, 0, 0.0, 0.0)

    def __add__(self, other: "CostSnapshot") -> "CostSnapshot":
        if not isinstance(other, CostSnapshot):
            return NotImplemented
        return CostSnapshot(
            comm_seconds=self.comm_seconds + other.comm_seconds,
            compute_seconds=self.compute_seconds + other.compute_seconds,
            messages=self.messages + other.messages,
            words=self.words + other.words,
            flops=self.flops + other.flops,
            comm_seconds_hidden=self.comm_seconds_hidden + other.comm_seconds_hidden,
            stale_seconds=self.stale_seconds + other.stale_seconds,
            max_staleness=max(self.max_staleness, other.max_staleness),
            retries=self.retries + other.retries,
            timeouts=self.timeouts + other.timeouts,
            recoveries=self.recoveries + other.recoveries,
            respawns=self.respawns + other.respawns,
            replayed_iterations=self.replayed_iterations + other.replayed_iterations,
        )

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        """Delta between two snapshots of the *same* ledger (later - earlier);
        used to split one measured span into phases (e.g. the streaming
        engine's append vs. window-eviction work within one revision)."""
        if not isinstance(other, CostSnapshot):
            return NotImplemented
        return CostSnapshot(
            comm_seconds=self.comm_seconds - other.comm_seconds,
            compute_seconds=self.compute_seconds - other.compute_seconds,
            messages=self.messages - other.messages,
            words=self.words - other.words,
            flops=self.flops - other.flops,
            comm_seconds_hidden=self.comm_seconds_hidden - other.comm_seconds_hidden,
            stale_seconds=self.stale_seconds - other.stale_seconds,
            # a watermark has no meaningful delta; keep the later span's
            max_staleness=self.max_staleness,
            retries=self.retries - other.retries,
            timeouts=self.timeouts - other.timeouts,
            recoveries=self.recoveries - other.recoveries,
            respawns=self.respawns - other.respawns,
            replayed_iterations=self.replayed_iterations - other.replayed_iterations,
        )


def _collective_entry() -> list:
    """Fresh per-collective counter row (module-level so ledgers pickle:
    the process backend ships each rank's ledger back to the parent)."""
    return [0, 0, 0.0, 0.0]


@dataclass
class CostLedger:
    """Accumulates modelled costs for one rank."""

    machine: MachineSpec | None = None
    #: virtual-parallelism divisor applied to every add_flops call
    flop_divisor: float = 1.0
    #: multiplicative straggler factor on compute time (>= 1)
    imbalance: float = 1.0
    #: dataset-extrapolation multiplier applied before the divisor
    #: (virtual-P runs on a scaled-down stand-in charge full-size flops)
    default_scale: float = 1.0
    #: per-kind overrides of default_scale (e.g. "gather" work scales with
    #: the row count, not the nnz count)
    kind_scales: dict = field(default_factory=dict)

    comm_seconds: float = 0.0
    compute_seconds: float = 0.0
    messages: int = 0
    words: float = 0.0
    flops: float = 0.0
    #: modelled communication seconds hidden behind overlapped computation
    comm_seconds_hidden: float = 0.0
    #: modelled communication seconds hidden behind *stale* computation
    #: (overlap past the synchronous harvest point; async solvers only)
    stale_seconds: float = 0.0
    #: largest observed staleness (harvest steps) of any collective
    max_staleness: int = 0
    #: transient-fault retries of collectives (see :mod:`repro.faults`)
    retries: int = 0
    #: collectives that missed their deadline
    timeouts: int = 0
    #: supervised recovery rounds this run survived (set by the worker
    #: pool at (re)dispatch; see :mod:`repro.mpi.process_backend`)
    recoveries: int = 0
    #: worker processes respawned across those recovery rounds
    respawns: int = 0
    #: iterations restored from the latest checkpoint instead of re-run
    replayed_iterations: int = 0
    #: modelled seconds this rank sat idle (serving engine waiting for
    #: the next arrival, or an explicit ``("sleep", s)`` schedule token);
    #: virtual time only — no wall clock is ever spent
    idle_seconds: float = 0.0
    #: serving-layer request counters (multi-tenant engine; see
    #: :mod:`repro.serve`) — admission rejections, per-request deadline
    #: misses, requests refused because their tenant is quarantined, and
    #: requests replayed to completion after a supervised recovery
    requests_rejected: int = 0
    requests_timed_out: int = 0
    requests_quarantined: int = 0
    requests_recovered: int = 0
    #: when False, charges are dropped (used while evaluating diagnostics
    #: such as objective values that the measured algorithm never computes)
    enabled: bool = True
    #: per-collective-name (calls, messages, words, seconds)
    by_collective: dict = field(default_factory=lambda: defaultdict(_collective_entry))
    #: per-kind flop counts
    by_kind: dict = field(default_factory=lambda: defaultdict(float))

    def __post_init__(self) -> None:
        if self.flop_divisor <= 0:
            raise CostModelError("flop_divisor must be > 0")
        if self.imbalance < 1.0:
            raise CostModelError("imbalance must be >= 1")
        self._compute_model = ComputeModel(self.machine) if self.machine else None

    # -- charging ----------------------------------------------------------
    def add_collective(
        self, name: str, cost: CollectiveCost, overlap_seconds: float = 0.0,
        stale_overlap_seconds: float = 0.0,
    ) -> None:
        """Charge one collective call (called by the communicator).

        ``overlap_seconds`` is computation time the caller provably spent
        while the collective was in flight (nonblocking collectives): the
        modelled latency hidden behind it is *not* charged to
        ``comm_seconds`` but tracked in ``comm_seconds_hidden``.
        ``stale_overlap_seconds`` is the portion of that in-flight window
        past the point a synchronous consumer would have harvested (async
        bounded-staleness solvers); it lands in ``stale_seconds``. The
        fresh window takes precedence when the collective is shorter than
        the combined overlap, so
        ``comm_seconds + comm_seconds_hidden + stale_seconds`` always
        equals what the blocking collective would have cost. Messages and
        words are charged in full either way — overlap hides time, not
        traffic.
        """
        if not self.enabled:
            return
        hidden = min(max(overlap_seconds, 0.0), cost.seconds)
        stale = min(max(stale_overlap_seconds, 0.0), cost.seconds - hidden)
        charged = cost.seconds - hidden - stale
        self.comm_seconds += charged
        self.comm_seconds_hidden += hidden
        self.stale_seconds += stale
        self.messages += cost.messages
        self.words += cost.words
        entry = self.by_collective[name]
        entry[0] += 1
        entry[1] += cost.messages
        entry[2] += cost.words
        entry[3] += charged

    def add_flops(
        self,
        flops: float,
        kind: str = "blas1",
        working_set_bytes: float | None = None,
    ) -> None:
        """Charge local computation, scaled by the virtual-P divisor."""
        if flops < 0:
            raise CostModelError(f"flops must be non-negative, got {flops}")
        if not self.enabled:
            return
        scale = self.kind_scales.get(kind, self.default_scale)
        eff = float(flops) * scale / self.flop_divisor
        self.flops += eff
        self.by_kind[kind] += eff
        if self._compute_model is not None:
            self.compute_seconds += (
                self._compute_model.seconds(eff, kind, working_set_bytes)
                * self.imbalance
            )

    def add_idle(self, seconds: float) -> None:
        """Charge modelled idle time (virtual sleep; no wall clock).

        Used by the serving engine when the admission queue drains and
        the virtual clock jumps to the next trace arrival, and by the
        streaming replayer's ``("sleep", seconds)`` schedule token.
        Tracked separately from ``comm_seconds``/``compute_seconds``:
        idle time advances the serving clock but is not algorithmic
        cost, so it never contaminates warm-refit measurements.
        """
        if seconds < 0:
            raise CostModelError(
                f"idle seconds must be non-negative, got {seconds}"
            )
        if self.enabled:
            self.idle_seconds += float(seconds)

    def note_staleness(self, steps: int) -> None:
        """Record the staleness (harvest steps) one collective was consumed
        at; ``max_staleness`` is the watermark over the run."""
        if self.enabled and int(steps) > self.max_staleness:
            self.max_staleness = int(steps)

    def add_retry(self) -> None:
        """Record one transient-fault retry of a collective."""
        if self.enabled:
            self.retries += 1

    def add_timeout(self) -> None:
        """Record one collective deadline miss."""
        if self.enabled:
            self.timeouts += 1

    def add_recovery(
        self, respawns: int = 0, replayed_iterations: int = 0
    ) -> None:
        """Record one supervised recovery round (self-healing runtime).

        Recovery counters are *physical-attempt* bookkeeping: they count
        what actually happened to this run's processes, so unlike the
        modelled cost totals they are never rewound by
        :meth:`restore` on a checkpoint resume.
        """
        if self.enabled:
            self.recoveries += 1
            self.respawns += int(respawns)
            self.replayed_iterations += int(replayed_iterations)

    def add_request_event(self, kind: str, count: int = 1) -> None:
        """Record ``count`` serving-layer request outcomes.

        ``kind`` is one of ``"rejected"`` (admission queue full),
        ``"timed_out"`` (per-request deadline missed), ``"quarantined"``
        (request refused because its tenant is quarantined), or
        ``"recovered"`` (request replayed to completion after a
        supervised recovery). Like the recovery counters these are
        bookkeeping, not modelled cost.
        """
        if kind not in ("rejected", "timed_out", "quarantined", "recovered"):
            raise CostModelError(f"unknown request-event kind {kind!r}")
        if count < 0:
            raise CostModelError(f"count must be non-negative, got {count}")
        if self.enabled:
            attr = f"requests_{kind}"
            setattr(self, attr, getattr(self, attr) + int(count))

    @contextmanager
    def paused(self) -> Iterator["CostLedger"]:
        """Context manager suspending cost accounting (diagnostics)."""
        prev = self.enabled
        self.enabled = False
        try:
            yield self
        finally:
            self.enabled = prev

    # -- reading -----------------------------------------------------------
    @property
    def seconds(self) -> float:
        """Total modelled seconds so far (communication + computation)."""
        return self.comm_seconds + self.compute_seconds

    def snapshot(self) -> CostSnapshot:
        return CostSnapshot(
            comm_seconds=self.comm_seconds,
            compute_seconds=self.compute_seconds,
            messages=self.messages,
            words=self.words,
            flops=self.flops,
            comm_seconds_hidden=self.comm_seconds_hidden,
            stale_seconds=self.stale_seconds,
            max_staleness=self.max_staleness,
            retries=self.retries,
            timeouts=self.timeouts,
            recoveries=self.recoveries,
            respawns=self.respawns,
            replayed_iterations=self.replayed_iterations,
        )

    def restore(self, snapshot: CostSnapshot) -> None:
        """Set the running counters to ``snapshot`` (checkpoint resume).

        Per-collective / per-kind breakdowns are not checkpointed; only
        the totals continue across a resume. The recovery counters
        (``recoveries`` / ``respawns`` / ``replayed_iterations``) are
        deliberately *not* restored: they describe this physical run's
        supervision history, not the logical solve the checkpoint came
        from, and are owned by the worker pool.
        """
        self.comm_seconds = float(snapshot.comm_seconds)
        self.compute_seconds = float(snapshot.compute_seconds)
        self.messages = int(snapshot.messages)
        self.words = float(snapshot.words)
        self.flops = float(snapshot.flops)
        self.comm_seconds_hidden = float(snapshot.comm_seconds_hidden)
        self.stale_seconds = float(snapshot.stale_seconds)
        self.max_staleness = int(snapshot.max_staleness)
        self.retries = int(snapshot.retries)
        self.timeouts = int(snapshot.timeouts)

    def child(self) -> "CostLedger":
        """A fresh zero-counter ledger with this ledger's configuration.

        Used by sweep engines that want per-solve accounting without the
        parent's accumulated totals (e.g. one ledger per regularization-
        path point).
        """
        return CostLedger(
            machine=self.machine,
            flop_divisor=self.flop_divisor,
            imbalance=self.imbalance,
            default_scale=self.default_scale,
            kind_scales=dict(self.kind_scales),
        )

    def reset(self) -> None:
        """Zero all counters (ledger can be reused across solver runs)."""
        self.comm_seconds = 0.0
        self.compute_seconds = 0.0
        self.messages = 0
        self.words = 0.0
        self.flops = 0.0
        self.comm_seconds_hidden = 0.0
        self.stale_seconds = 0.0
        self.max_staleness = 0
        self.retries = 0
        self.timeouts = 0
        self.recoveries = 0
        self.respawns = 0
        self.replayed_iterations = 0
        self.idle_seconds = 0.0
        self.requests_rejected = 0
        self.requests_timed_out = 0
        self.requests_quarantined = 0
        self.requests_recovered = 0
        self.by_collective.clear()
        self.by_kind.clear()

    def summary(self) -> dict:
        """Plain-dict summary for reports."""
        return {
            "seconds": self.seconds,
            "comm_seconds": self.comm_seconds,
            "comm_seconds_hidden": self.comm_seconds_hidden,
            "stale_seconds": self.stale_seconds,
            "max_staleness": self.max_staleness,
            "compute_seconds": self.compute_seconds,
            "messages": self.messages,
            "words": self.words,
            "flops": self.flops,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "recoveries": self.recoveries,
            "respawns": self.respawns,
            "replayed_iterations": self.replayed_iterations,
            "idle_seconds": self.idle_seconds,
            "requests_rejected": self.requests_rejected,
            "requests_timed_out": self.requests_timed_out,
            "requests_quarantined": self.requests_quarantined,
            "requests_recovered": self.requests_recovered,
            "by_collective": {
                k: {
                    "calls": v[0],
                    "messages": v[1],
                    "words": v[2],
                    "seconds": v[3],
                }
                for k, v in self.by_collective.items()
            },
            "by_kind": dict(self.by_kind),
        }


def critical_path(ledgers: Iterable[CostLedger]) -> CostSnapshot:
    """Bulk-synchronous critical path: the slowest rank bounds each epoch.

    For the balanced partitions used here, taking the max of rank totals
    is an adequate critical-path estimate (collectives are charged
    identically on every rank).
    """
    snaps = [led.snapshot() for led in ledgers]
    if not snaps:
        raise CostModelError("critical_path needs at least one ledger")
    slowest = max(snaps, key=lambda s: s.seconds)
    return slowest
