"""Local computation pricing.

Solvers report the flops they execute (classified by BLAS level) through
the :class:`~repro.machine.ledger.CostLedger`; this module converts flop
counts into modelled seconds using the machine's effective rates,
including the cache-spill penalty that makes "s too large" slow down
(paper Fig. 4e-4h: computation speedup > 1 for moderate s thanks to
BLAS-3 Gram formation, then decays).
"""

from __future__ import annotations

from repro.machine.spec import MachineSpec

__all__ = ["ComputeModel"]


class ComputeModel:
    """Prices local flops on one core of a :class:`MachineSpec`."""

    def __init__(self, machine: MachineSpec) -> None:
        self.machine = machine

    def seconds(
        self,
        flops: float,
        kind: str = "blas1",
        working_set_bytes: float | None = None,
    ) -> float:
        """Modelled seconds for ``flops`` floating-point operations.

        Parameters
        ----------
        flops:
            Operation count (multiply-adds count as 2).
        kind:
            Kernel class: ``blas1`` (dots/axpy), ``blas2`` (mat-vec),
            ``blas3`` (mat-mat / Gram), ``spmv`` (sparse mat-vec),
            ``scalar`` (bookkeeping).
        working_set_bytes:
            If given and larger than the cache slice, the machine's
            ``cache_penalty`` is applied.
        """
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        if flops == 0:
            return 0.0
        rate = self.machine.flop_rate(kind, working_set_bytes)
        return float(flops) / rate
