"""Synthetic dataset generators.

These stand in for the LIBSVM datasets the paper evaluates on (not
redistributable / too large for this environment). Generators match the
*shape statistics that drive the experiments*: dimensions, density,
over/under-determination, and (for classification) separability — see
DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import DatasetError
from repro.utils.seeds import shared_generator

__all__ = [
    "make_sparse_regression",
    "make_classification",
    "sparse_random_matrix",
]


def sparse_random_matrix(
    m: int,
    n: int,
    density: float,
    rng: np.random.Generator,
    value_dist: str = "gaussian",
) -> sp.csr_matrix | np.ndarray:
    """Random m x n matrix with the given density.

    ``density >= 0.95`` returns a dense ndarray (the paper's epsilon /
    leu / gisette datasets are effectively dense and were benchmarked
    through dense BLAS).
    """
    if m <= 0 or n <= 0:
        raise DatasetError(f"matrix dims must be positive, got {m}x{n}")
    if not (0.0 < density <= 1.0):
        raise DatasetError(f"density must be in (0, 1], got {density}")
    if value_dist not in ("gaussian", "uniform", "binary"):
        raise DatasetError(f"unknown value_dist {value_dist!r}")

    def draw(k: int) -> np.ndarray:
        if value_dist == "gaussian":
            return rng.standard_normal(k)
        if value_dist == "uniform":
            return rng.uniform(0.0, 1.0, size=k)
        return np.ones(k)

    if density >= 0.95:
        return draw(m * n).reshape(m, n)

    nnz_target = max(m, int(round(density * m * n)))
    # Guarantee no empty rows (empty samples break row-partition balance
    # and never happen in the real datasets): one entry per row, then the
    # remainder uniformly.
    rows = [np.arange(m)]
    cols = [rng.integers(0, n, size=m)]
    remaining = nnz_target - m
    if remaining > 0:
        rows.append(rng.integers(0, m, size=remaining))
        cols.append(rng.integers(0, n, size=remaining))
    i = np.concatenate(rows)
    j = np.concatenate(cols)
    v = draw(i.shape[0])
    A = sp.coo_matrix((v, (i, j)), shape=(m, n)).tocsr()
    A.sum_duplicates()
    if value_dist == "binary":
        # duplicate (i, j) draws would otherwise sum to 2
        A.data[:] = 1.0
    return A


def make_sparse_regression(
    m: int,
    n: int,
    density: float = 0.1,
    k_nonzero: int | None = None,
    noise: float = 0.01,
    seed: int | None = 0,
    value_dist: str = "gaussian",
) -> tuple[sp.csr_matrix | np.ndarray, np.ndarray, np.ndarray]:
    """Lasso test problem: ``b = A x_true + noise`` with sparse ``x_true``.

    Returns ``(A, b, x_true)``. ``k_nonzero`` defaults to
    ``max(1, n // 20)`` active features.
    """
    rng = shared_generator(seed)
    A = sparse_random_matrix(m, n, density, rng, value_dist)
    k = k_nonzero if k_nonzero is not None else max(1, n // 20)
    if not (1 <= k <= n):
        raise DatasetError(f"k_nonzero must be in [1, {n}], got {k_nonzero}")
    support = rng.choice(n, size=k, replace=False)
    x_true = np.zeros(n)
    x_true[support] = rng.standard_normal(k) * 2.0
    b = np.asarray(A @ x_true).ravel()
    if noise > 0:
        b = b + noise * np.linalg.norm(b) / np.sqrt(m) * rng.standard_normal(m)
    return A, b, x_true


def make_classification(
    m: int,
    n: int,
    density: float = 0.1,
    margin: float = 0.1,
    label_noise: float = 0.0,
    seed: int | None = 0,
    value_dist: str = "gaussian",
) -> tuple[sp.csr_matrix | np.ndarray, np.ndarray]:
    """Binary classification problem with labels in {-1, +1}.

    Labels come from a random ground-truth hyperplane; samples inside the
    ``margin`` band are pushed out (so the problem is realisable), and
    ``label_noise`` flips a fraction of labels to keep the SVM's
    soft-margin path exercised.
    """
    if not (0.0 <= label_noise < 0.5):
        raise DatasetError(f"label_noise must be in [0, 0.5), got {label_noise}")
    rng = shared_generator(seed)
    A = sparse_random_matrix(m, n, density, rng, value_dist)
    w = rng.standard_normal(n)
    w /= np.linalg.norm(w)
    scores = np.asarray(A @ w).ravel()
    scale = float(np.median(np.abs(scores)))
    if scale == 0.0:
        scale = 1.0
    scores = scores / scale
    b = np.where(scores >= 0.0, 1.0, -1.0)
    # enforce margin: |score| >= margin for the kept labels
    weak = np.abs(scores) < margin
    b[weak] = np.where(rng.uniform(size=int(weak.sum())) < 0.5, 1.0, -1.0)
    if label_noise > 0:
        flips = rng.uniform(size=m) < label_noise
        b[flips] *= -1.0
    return A, b
