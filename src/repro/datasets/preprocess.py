"""Feature preprocessing matching LIBSVM conventions.

The paper's datasets come pre-scaled from the LIBSVM repository
(features in [0,1] or unit rows); these helpers apply the same
normalisations to user data without densifying sparse inputs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import DatasetError

__all__ = ["scale_rows_unit_norm", "scale_columns_max_abs", "add_bias_column"]


def scale_rows_unit_norm(A):
    """Scale each sample (row) to unit L2 norm; zero rows stay zero.

    Standard preprocessing for dual-CD SVM: makes every eta_i = 1 + gamma,
    which tightens the projected-Newton step.
    """
    if sp.issparse(A):
        A = A.tocsr().astype(np.float64)
        norms = np.sqrt(np.asarray(A.multiply(A).sum(axis=1)).ravel())
        inv = np.divide(1.0, norms, out=np.zeros_like(norms), where=norms > 0)
        return sp.diags(inv) @ A
    A = np.asarray(A, dtype=np.float64)
    norms = np.linalg.norm(A, axis=1)
    inv = np.divide(1.0, norms, out=np.zeros_like(norms), where=norms > 0)
    return A * inv[:, None]


def scale_columns_max_abs(A):
    """Scale each feature (column) by its max absolute value.

    The sparse-safe analogue of min-max scaling (preserves zeros), i.e.
    LIBSVM's common [-1, 1] feature scaling.
    """
    if sp.issparse(A):
        A = A.tocsc().astype(np.float64)
        maxabs = np.zeros(A.shape[1])
        for j in range(A.shape[1]):
            col = A.data[A.indptr[j]:A.indptr[j + 1]]
            if col.size:
                maxabs[j] = np.max(np.abs(col))
        inv = np.divide(1.0, maxabs, out=np.zeros_like(maxabs), where=maxabs > 0)
        return (A @ sp.diags(inv)).tocsr()
    A = np.asarray(A, dtype=np.float64)
    maxabs = np.max(np.abs(A), axis=0)
    inv = np.divide(1.0, maxabs, out=np.zeros_like(maxabs), where=maxabs > 0)
    return A * inv[None, :]


def add_bias_column(A, value: float = 1.0):
    """Append a constant column (intercept trick for linear SVM)."""
    if value == 0.0:
        raise DatasetError("bias value must be non-zero")
    m = A.shape[0]
    if sp.issparse(A):
        bias = sp.csr_matrix(np.full((m, 1), float(value)))
        return sp.hstack([A.tocsr(), bias], format="csr")
    return np.hstack([np.asarray(A, dtype=np.float64),
                      np.full((m, 1), float(value))])
