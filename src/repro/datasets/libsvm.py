"""LIBSVM sparse format reader/writer.

The paper's experiments use LIBSVM-repository datasets stored in this
format; we implement the full 3-array-CSR round trip so users can load
the real files when they have them (the benchmark harness falls back to
synthetic shape-matched generators when they are absent).

Format: one sample per line, ``<label> <index>:<value> ...`` with 1-based
indices by default; ``#`` starts a comment.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import IO

import numpy as np
import scipy.sparse as sp

from repro.errors import DatasetError

__all__ = ["load_libsvm", "save_libsvm", "loads_libsvm", "dumps_libsvm"]


def _open_maybe(path_or_file, mode: str):
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode, encoding="utf-8"), True
    return path_or_file, False


def load_libsvm(
    path_or_file: str | Path | IO[str],
    n_features: int | None = None,
    zero_based: bool = False,
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Parse a LIBSVM file into ``(csr_matrix, labels)``.

    Parameters
    ----------
    n_features:
        Force the column count (otherwise inferred from the max index).
    zero_based:
        Interpret feature indices as 0-based instead of the standard
        1-based convention.
    """
    fh, close = _open_maybe(path_or_file, "r")
    labels: list[float] = []
    data: list[float] = []
    indices: list[int] = []
    indptr: list[int] = [0]
    offset = 0 if zero_based else 1
    try:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            try:
                labels.append(float(parts[0]))
            except ValueError as exc:
                raise DatasetError(
                    f"line {lineno}: invalid label {parts[0]!r}"
                ) from exc
            prev_idx = -1
            for token in parts[1:]:
                try:
                    idx_s, val_s = token.split(":", 1)
                    idx = int(idx_s) - offset
                    val = float(val_s)
                except ValueError as exc:
                    raise DatasetError(
                        f"line {lineno}: invalid feature token {token!r}"
                    ) from exc
                if idx < 0:
                    raise DatasetError(
                        f"line {lineno}: feature index {idx_s} out of range "
                        f"({'0' if zero_based else '1'}-based expected)"
                    )
                if idx <= prev_idx:
                    raise DatasetError(
                        f"line {lineno}: feature indices must be strictly increasing"
                    )
                prev_idx = idx
                indices.append(idx)
                data.append(val)
            indptr.append(len(indices))
    finally:
        if close:
            fh.close()
    m = len(labels)
    inferred = (max(indices) + 1) if indices else 0
    n = n_features if n_features is not None else inferred
    if n < inferred:
        raise DatasetError(
            f"n_features={n} smaller than max feature index ({inferred})"
        )
    A = sp.csr_matrix(
        (np.asarray(data), np.asarray(indices, dtype=np.int64), np.asarray(indptr, dtype=np.int64)),
        shape=(m, n),
    )
    return A, np.asarray(labels)


def loads_libsvm(text: str, **kwargs) -> tuple[sp.csr_matrix, np.ndarray]:
    """Parse LIBSVM data from a string."""
    return load_libsvm(io.StringIO(text), **kwargs)


def save_libsvm(
    path_or_file: str | Path | IO[str],
    A,
    labels: np.ndarray,
    zero_based: bool = False,
    label_fmt: str = "%.17g",
    value_fmt: str = "%.17g",
) -> None:
    """Write ``(A, labels)`` in LIBSVM format (lossless with defaults)."""
    A = sp.csr_matrix(A)
    labels = np.asarray(labels).ravel()
    if A.shape[0] != labels.shape[0]:
        raise DatasetError(
            f"A has {A.shape[0]} rows but labels has {labels.shape[0]} entries"
        )
    offset = 0 if zero_based else 1
    fh, close = _open_maybe(path_or_file, "w")
    try:
        for i in range(A.shape[0]):
            row = A.getrow(i)
            toks = [label_fmt % labels[i]]
            for j, v in zip(row.indices, row.data, strict=True):
                toks.append(f"{j + offset}:{value_fmt % v}")
            fh.write(" ".join(toks) + "\n")
    finally:
        if close:
            fh.close()


def dumps_libsvm(A, labels: np.ndarray, **kwargs) -> str:
    """Serialise to a LIBSVM-format string."""
    buf = io.StringIO()
    save_libsvm(buf, A, labels, **kwargs)
    return buf.getvalue()
