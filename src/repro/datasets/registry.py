"""Registry of the paper's datasets (Tables II and IV) and scaled stand-ins.

Each entry records the dimensions the paper reports; ``generate`` builds a
synthetic dataset with the same density and aspect ratio, scaled down so
the full experiment suite runs on a laptop. ``scale=1.0`` reproduces the
paper's exact dimensions (only sensible when you have the memory).

Note on Table IV: the paper's column headers list e.g. news20.binary as
"Features 19,996 / Data Points 1,355,191"; the actual LIBSVM
news20.binary has 19,996 data points and 1,355,191 features. We record
the table exactly as published and expose ``as_reported=False`` to get
the conventional orientation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import make_classification, make_sparse_regression
from repro.errors import DatasetError

__all__ = ["PaperDataset", "PAPER_DATASETS", "LASSO_DATASETS", "SVM_DATASETS",
           "get_dataset", "generate"]


@dataclass(frozen=True)
class PaperDataset:
    """One row of the paper's Table II or Table IV."""

    name: str
    #: 'Features' column as printed in the paper
    features: int
    #: 'Data Points' column as printed in the paper
    points: int
    #: 'NNZ%' column as printed in the paper
    nnz_pct: float
    #: 'lasso' (Table II) or 'svm' (Table IV)
    task: str
    #: paper table the row comes from
    table: str
    #: headers swapped relative to LIBSVM reality (see module docstring)
    swapped: bool = False

    @property
    def density(self) -> float:
        return self.nnz_pct / 100.0

    def dims(self, as_reported: bool = True) -> tuple[int, int]:
        """(m data points, n features), optionally un-swapping Table IV."""
        m, n = self.points, self.features
        if self.swapped and not as_reported:
            m, n = n, m
        return m, n

    def scaled_dims(self, scale: float, max_side: int = 4000) -> tuple[int, int]:
        """Dimensions scaled by ``sqrt(scale)`` per side, clamped sensibly."""
        if not (0 < scale <= 1.0):
            raise DatasetError(f"scale must be in (0, 1], got {scale}")
        m, n = self.dims(as_reported=False)
        f = np.sqrt(scale)
        # never shrink a dimension below 64 (or its original size if smaller):
        # skinny datasets like covtype (54 features) keep their feature count.
        ms = int(np.clip(round(m * f), min(m, 64), max_side))
        ns = int(np.clip(round(n * f), min(n, 64), max_side))
        return ms, ns


_ROWS = [
    # Table II (Lasso experiments)
    PaperDataset("url", 3_231_961, 2_396_130, 0.0036, "lasso", "II"),
    PaperDataset("news20", 62_061, 15_935, 0.13, "lasso", "II"),
    PaperDataset("covtype", 54, 581_012, 22.0, "lasso", "II"),
    PaperDataset("epsilon", 2_000, 400_000, 100.0, "lasso", "II"),
    PaperDataset("leu", 7_129, 38, 100.0, "lasso", "II"),
    # Table IV (SVM experiments)
    PaperDataset("w1a", 2_477, 300, 4.0, "svm", "IV", swapped=True),
    PaperDataset("leu.svm", 7_129, 38, 100.0, "svm", "IV"),
    PaperDataset("duke", 7_129, 44, 100.0, "svm", "IV"),
    PaperDataset("news20.binary", 19_996, 1_355_191, 0.03, "svm", "IV", swapped=True),
    PaperDataset("rcv1.binary", 20_242, 47_236, 0.16, "svm", "IV", swapped=True),
    PaperDataset("gisette", 6_000, 5_000, 99.0, "svm", "IV"),
]

PAPER_DATASETS = {d.name: d for d in _ROWS}
LASSO_DATASETS = [d for d in _ROWS if d.task == "lasso"]
SVM_DATASETS = [d for d in _ROWS if d.task == "svm"]


def get_dataset(name: str) -> PaperDataset:
    """Look up a paper dataset row by name."""
    try:
        return PAPER_DATASETS[name]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {sorted(PAPER_DATASETS)}"
        ) from exc


def generate(
    name: str,
    scale: float = 0.001,
    seed: int | None = 0,
    max_side: int = 4000,
):
    """Generate the synthetic stand-in for a paper dataset.

    Returns ``(A, b)`` for SVM rows and ``(A, b, x_true)`` for Lasso rows.
    Density is preserved exactly; dimensions are scaled by
    ``sqrt(scale)`` per side (``scale=0.001`` keeps the suite fast).
    """
    spec = get_dataset(name)
    m, n = spec.scaled_dims(scale, max_side=max_side)
    density = max(min(spec.density, 1.0), 1.0 / max(n, 1))
    if spec.task == "lasso":
        return make_sparse_regression(m, n, density=density, seed=seed)
    A, b = make_classification(m, n, density=density, seed=seed)
    return A, b
