"""Dataset substrate: LIBSVM IO, synthetic generators, paper registry."""

from repro.datasets.libsvm import load_libsvm, save_libsvm, loads_libsvm, dumps_libsvm
from repro.datasets.synthetic import (
    make_sparse_regression,
    make_classification,
    sparse_random_matrix,
)
from repro.datasets.preprocess import (
    scale_rows_unit_norm,
    scale_columns_max_abs,
    add_bias_column,
)
from repro.datasets.registry import (
    PaperDataset,
    PAPER_DATASETS,
    LASSO_DATASETS,
    SVM_DATASETS,
    get_dataset,
    generate,
)

__all__ = [
    "load_libsvm",
    "save_libsvm",
    "loads_libsvm",
    "dumps_libsvm",
    "make_sparse_regression",
    "make_classification",
    "sparse_random_matrix",
    "scale_rows_unit_norm",
    "scale_columns_max_abs",
    "add_bias_column",
    "PaperDataset",
    "PAPER_DATASETS",
    "LASSO_DATASETS",
    "SVM_DATASETS",
    "get_dataset",
    "generate",
]
