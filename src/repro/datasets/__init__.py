"""Dataset substrate: LIBSVM IO, synthetic generators, paper registry."""

from repro.datasets.libsvm import dumps_libsvm, load_libsvm, loads_libsvm, save_libsvm
from repro.datasets.preprocess import add_bias_column, scale_columns_max_abs, scale_rows_unit_norm
from repro.datasets.registry import (
    LASSO_DATASETS,
    PAPER_DATASETS,
    SVM_DATASETS,
    PaperDataset,
    generate,
    get_dataset,
)
from repro.datasets.synthetic import (
    make_classification,
    make_sparse_regression,
    sparse_random_matrix,
)

__all__ = [
    "load_libsvm",
    "save_libsvm",
    "loads_libsvm",
    "dumps_libsvm",
    "make_sparse_regression",
    "make_classification",
    "sparse_random_matrix",
    "scale_rows_unit_norm",
    "scale_columns_max_abs",
    "add_bias_column",
    "PaperDataset",
    "PAPER_DATASETS",
    "LASSO_DATASETS",
    "SVM_DATASETS",
    "get_dataset",
    "generate",
]
