"""Finding model for the SPMD static analyzer.

A :class:`Finding` is one rule violation at one source location. The
engine (:mod:`repro.analyze.engine`) decides whether it is *actionable*
(fails the lint gate), *suppressed* (an inline
``# repro: lint-ignore[<rule>] -- justification`` comment), or
*baselined* (grandfathered in a committed baseline file keyed by a
line-content fingerprint, so findings survive unrelated line drift).
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.utils.io import atomic_write_json

__all__ = [
    "Severity",
    "SEVERITY_ORDER",
    "Finding",
    "Suppression",
    "parse_suppressions",
    "load_baseline",
    "baseline_counts",
    "write_baseline",
    "findings_to_json",
]

#: severity levels, most severe first
SEVERITY_ORDER = ("error", "warning", "info")


class Severity:
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    #: the stripped source line the finding anchors to (fingerprint input)
    snippet: str = ""
    #: set by the engine when an inline suppression matched
    suppressed: bool = False
    justification: str = ""
    #: set by the engine when a baseline entry absorbed this finding
    baselined: bool = False

    @property
    def actionable(self) -> bool:
        """True when this finding fails the gate."""
        return not (self.suppressed or self.baselined)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + path + line *content*.

        Line numbers are deliberately excluded so unrelated edits above a
        grandfathered finding do not invalidate the baseline; duplicate
        identical lines are handled by per-fingerprint counts.
        """
        basis = f"{self.rule}|{self.path}|{' '.join(self.snippet.split())}"
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "justification": self.justification,
            "baselined": self.baselined,
        }

    def format(self) -> str:
        flag = ""
        if self.suppressed:
            flag = " [suppressed]"
        elif self.baselined:
            flag = " [baseline]"
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} [{self.rule}]{flag} {self.message}"
        )


# -- inline suppressions ----------------------------------------------------

#: ``# repro: lint-ignore[<rule-a>, <rule-b>] -- justification``
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ignore\[([A-Za-z0-9_*,\- ]+)\]\s*(?:--\s*(\S.*))?\s*$"
)


@dataclass
class Suppression:
    """One inline lint-ignore comment."""

    line: int
    rules: tuple[str, ...]
    justification: str
    #: True when the comment stands on its own line (applies to the next
    #: source line); False when trailing code (applies to its own line)
    standalone: bool
    used: bool = field(default=False)

    def matches(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


def parse_suppressions(source: str) -> list[Suppression]:
    """Extract every lint-ignore comment from ``source``.

    A trailing comment suppresses findings on its own line; a standalone
    comment suppresses findings on the next non-blank line.
    """
    out: list[Suppression] = []
    for lineno, text in enumerate(source.splitlines(), 1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        rules = tuple(
            r.strip() for r in m.group(1).split(",") if r.strip()
        )
        justification = (m.group(2) or "").strip()
        standalone = text[: m.start()].strip() == ""
        out.append(Suppression(lineno, rules, justification, standalone))
    return out


def suppression_targets(sup: Suppression, source_lines: list[str]) -> int:
    """The source line a suppression applies to."""
    if not sup.standalone:
        return sup.line
    # standalone: next non-blank, non-comment line
    for off, text in enumerate(source_lines[sup.line:], sup.line + 1):
        stripped = text.strip()
        if stripped and not stripped.startswith("#"):
            return off
    return sup.line


# -- baseline ---------------------------------------------------------------

BASELINE_VERSION = 1


def load_baseline(path) -> dict[str, int]:
    """Read a baseline file into ``{fingerprint: count}``."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a v{BASELINE_VERSION} lint baseline")
    out: dict[str, int] = {}
    for fp, entry in data.get("findings", {}).items():
        out[fp] = int(entry["count"]) if isinstance(entry, dict) else int(entry)
    return out


def baseline_counts(findings: Iterable[Finding]) -> dict[str, dict]:
    """Group findings into baseline entries (fingerprint -> entry)."""
    entries: dict[str, dict] = {}
    for f in findings:
        e = entries.setdefault(
            f.fingerprint,
            {
                "rule": f.rule,
                "severity": f.severity,
                "path": f.path,
                "snippet": f.snippet,
                "message": f.message,
                "count": 0,
            },
        )
        e["count"] += 1
    return entries


def write_baseline(path, findings: Iterable[Finding]) -> dict:
    """Write the baseline file for ``findings`` (unsuppressed ones)."""
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Grandfathered `repro lint` findings. Entries are keyed by a "
            "content fingerprint (rule + path + normalized line text); "
            "fix the underlying code and regenerate with "
            "`repro lint --write-baseline` to shrink this file. Never "
            "add entries by hand to sneak new findings past CI."
        ),
        "findings": baseline_counts(
            f for f in findings if not f.suppressed
        ),
    }
    atomic_write_json(path, payload)
    return payload


def findings_to_json(findings: list[Finding], *, paths: list[str]) -> dict:
    """Machine-readable lint report (the ``--format json`` payload)."""
    sev = {s: 0 for s in SEVERITY_ORDER}
    by_rule: dict[str, int] = {}
    actionable = [f for f in findings if f.actionable]
    for f in actionable:
        sev[f.severity] += 1
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    return {
        "version": 1,
        "kind": "lint-report",
        "paths": list(paths),
        "counts": {
            "total": len(findings),
            "actionable": len(actionable),
            "suppressed": sum(1 for f in findings if f.suppressed),
            "baselined": sum(1 for f in findings if f.baselined),
            "by_severity": sev,
            "by_rule": dict(sorted(by_rule.items())),
        },
        "findings": [f.to_dict() for f in findings],
    }
