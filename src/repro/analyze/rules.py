"""AST lint rules for the SPMD contract.

Every rule is grounded in a hazard this repo has actually hit (or a
class the fuzz layers catch only dynamically):

* ``collective-in-rank-branch`` — a collective reachable only under a
  rank-conditional deadlocks the other ranks (the canonical SPMD bug).
  Rank-guarded *non*-collective calls are reported at ``info`` severity:
  they are legitimate exactly when they cannot communicate (rank-0
  checkpoint writes), which the author asserts with a justified inline
  suppression.
* ``unharvested-request`` — an ``Iallreduce`` whose request is dropped
  (or never waited/tested) leaves peers parked inside the reduction:
  the static face of PR 9's NB slot-ring deadlock.
* ``nb-ring-depth`` — posting more in-flight nonblocking collectives
  than the declared ring depth raises ``NbRingDepthError`` at runtime
  (or deadlocked, before PR 9); statically visible over-posting and
  unbounded post loops are flagged here.
* ``collective-without-timeout`` — a runtime-path collective with no
  per-call deadline relies on a comm-wide default being armed; when it
  is not, PR 6's deadline machinery is defeated and a lost peer hangs
  the world.
* ``abort-swallow`` — ``except:`` / ``except Exception:`` blocks that
  can eat ``CommAborted`` / ``RankDiedError`` / ``KeyboardInterrupt``
  turn fail-fast aborts into silent corruption or hangs.
* ``nondeterminism`` — wall-clock reads, unseeded RNG, and set-order
  iteration in solver/streaming/serve paths silently break the
  byte-identical checkpoint-replay contract.

Rules are intentionally conservative *within their documented scope*:
`collective-in-rank-branch`'s info tier and `nb-ring-depth`'s loop
heuristic over-approximate, and the suppression syntax (with a required
justification) is the designed escape hatch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.analyze.findings import Finding, Severity

__all__ = [
    "AnalyzerConfig",
    "Rule",
    "RULES",
    "rule_ids",
    "COLLECTIVE_METHODS",
    "BLOCKING_COLLECTIVES",
    "NONBLOCKING_COLLECTIVES",
]

#: lower-case (object) and Upper-case (buffer) collective method names
#: of :class:`repro.mpi.comm.Comm`
BLOCKING_COLLECTIVES = frozenset(
    {
        "allreduce", "bcast", "barrier", "allgather", "gather",
        "scatter", "reduce",
        "Allreduce", "Bcast", "Reduce", "Allgather",
    }
)
NONBLOCKING_COLLECTIVES = frozenset({"Iallreduce"})
COLLECTIVE_METHODS = BLOCKING_COLLECTIVES | NONBLOCKING_COLLECTIVES

#: lower-case collective names that collide with common non-comm APIs
#: (``functools.reduce``, ``list`` methods...): only attribute calls
#: count for these, never bare names
_AMBIGUOUS_BARE = frozenset(
    {"gather", "scatter", "reduce", "allgather", "allreduce", "bcast", "barrier"}
)

#: exception names whose swallowing turns aborts into hangs/corruption
ABORT_EXCEPTIONS = frozenset(
    {"CommAborted", "RankDiedError", "CommTimeoutError", "KeyboardInterrupt"}
)

#: broad handler type names the abort-swallow rule targets
_BROAD_HANDLERS = frozenset({"Exception", "BaseException"})


@dataclass(frozen=True)
class AnalyzerConfig:
    """Per-run rule scoping. Defaults match this repository's layout."""

    #: path substrings on which `collective-without-timeout` fires
    #: (modules whose collectives run on the serving/solving hot path)
    runtime_paths: tuple[str, ...] = (
        "repro/solvers/",
        "repro/linalg/distmatrix",
        "repro/streaming",
        "repro/serve/",
        "repro/path",
    )
    #: path substrings on which `nondeterminism` fires (the
    #: byte-identical replay surface)
    determinism_paths: tuple[str, ...] = (
        "repro/solvers/",
        "repro/streaming",
        "repro/serve/",
        "repro/path",
        "repro/estimators",
    )
    #: path substrings exempt from `collective-in-rank-branch`: the comm
    #: backends implement the collectives, so rank branching there is
    #: the mechanism, not a bug
    rank_branch_exempt: tuple[str, ...] = (
        "repro/mpi/",
        "repro/faults",
    )
    #: builtin-ish callables the rank-branch info tier never flags
    rank_branch_safe_calls: tuple[str, ...] = (
        "print", "len", "str", "repr", "int", "float", "bool", "format",
        "isinstance", "issubclass", "min", "max", "abs", "sorted", "list",
        "dict", "tuple", "range", "enumerate", "zip", "sum", "any", "all",
        "getattr", "setattr", "hasattr", "type", "id", "round", "divmod",
        "ValueError", "TypeError", "RuntimeError", "KeyError",
    )

    def in_scope(self, path: str, patterns: tuple[str, ...]) -> bool:
        norm = path.replace("\\", "/")
        return any(pat in norm for pat in patterns)


def _call_method_name(node: ast.Call) -> str | None:
    """Method name of an attribute call, or the bare function name."""
    fn = node.func
    if isinstance(fn, ast.Attribute):
        return fn.attr
    if isinstance(fn, ast.Name):
        return fn.id
    return None


def _is_collective_call(node: ast.Call) -> str | None:
    """Collective method name if ``node`` is a collective call."""
    name = _call_method_name(node)
    if name is None or name not in COLLECTIVE_METHODS:
        return None
    if isinstance(node.func, ast.Name) and name in _AMBIGUOUS_BARE:
        return None
    return name


def _has_kwarg(node: ast.Call, kw: str) -> bool:
    return any(k.arg == kw for k in node.keywords)


def _snippet(source_lines: list[str], lineno: int) -> str:
    if 1 <= lineno <= len(source_lines):
        return source_lines[lineno - 1].strip()
    return ""


def _mentions_rank(node: ast.AST) -> bool:
    """Does an expression reference a rank identity?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "rank":
            return True
        if isinstance(sub, ast.Name) and sub.id == "rank":
            return True
        if isinstance(sub, ast.Call):
            name = _call_method_name(sub)
            if name in ("Get_rank",):
                return True
    return False


@dataclass
class Rule:
    id: str
    severity: str
    summary: str
    check: Callable[["RuleContext"], list[Finding]] = field(repr=False)


@dataclass
class RuleContext:
    path: str
    tree: ast.AST
    source_lines: list[str]
    config: AnalyzerConfig

    def finding(
        self, rule: str, severity: str, node: ast.AST, message: str
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=rule,
            severity=severity,
            path=self.path,
            line=lineno,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            snippet=_snippet(self.source_lines, lineno),
        )


# -- rule: collective-in-rank-branch ---------------------------------------


def _check_rank_branch(ctx: RuleContext) -> list[Finding]:
    if ctx.config.in_scope(ctx.path, ctx.config.rank_branch_exempt):
        return []
    findings: list[Finding] = []
    safe = set(ctx.config.rank_branch_safe_calls)
    seen: set[tuple[int, int]] = set()

    def scan_branch(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                key = (sub.lineno, sub.col_offset)
                if key in seen:
                    continue
                coll = _is_collective_call(sub)
                if coll is not None:
                    seen.add(key)
                    findings.append(
                        ctx.finding(
                            "collective-in-rank-branch",
                            Severity.ERROR,
                            sub,
                            f"collective `{coll}` is reachable only under a "
                            f"rank conditional: the other ranks never enter "
                            f"it and the world deadlocks",
                        )
                    )
                    continue
                name = _call_method_name(sub)
                if name is None or name in safe or name.startswith("_check"):
                    continue
                seen.add(key)
                findings.append(
                    ctx.finding(
                        "collective-in-rank-branch",
                        Severity.INFO,
                        sub,
                        f"call `{name}` runs on a subset of ranks; verify it "
                        f"cannot communicate or diverge SPMD state, then "
                        f"suppress with a justification",
                    )
                )

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.If) and _mentions_rank(node.test):
            scan_branch(node.body)
            # the else-side of a rank test diverges just the same; but an
            # `elif` chain arrives here as a nested If and is scanned on
            # its own (with its own test) — only scan non-If else bodies
            scan_branch([s for s in node.orelse if not isinstance(s, ast.If)])
    return findings


# -- rule: unharvested-request ---------------------------------------------


def _function_scopes(tree: ast.AST) -> Iterator[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _scope_body(scope: ast.AST) -> list[ast.stmt]:
    return scope.body if hasattr(scope, "body") else []


def _walk_shallow(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function defs."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _check_unharvested(ctx: RuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for scope in _function_scopes(ctx.tree):
        posts: dict[str, ast.Call] = {}
        loads: set[str] = set()
        for node in _walk_shallow(scope):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                if _call_method_name(node.value) in NONBLOCKING_COLLECTIVES:
                    findings.append(
                        ctx.finding(
                            "unharvested-request",
                            Severity.ERROR,
                            node.value,
                            "nonblocking collective's request is dropped: "
                            "nobody can wait()/test() it, so its slot is "
                            "never harvested and peers stay parked",
                        )
                    )
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _call_method_name(node.value) in NONBLOCKING_COLLECTIVES:
                    if (
                        len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)
                    ):
                        posts.setdefault(node.targets[0].id, node.value)
                    # tuple/attribute/subscript targets escape the scope:
                    # harvest happens elsewhere (e.g. the pipeline slots)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                loads.add(node.id)
        for name, call in posts.items():
            if name not in loads:
                findings.append(
                    ctx.finding(
                        "unharvested-request",
                        Severity.ERROR,
                        call,
                        f"request `{name}` is never used after the post: no "
                        f"reachable wait()/test() harvests it",
                    )
                )
    return findings


# -- rule: nb-ring-depth ----------------------------------------------------


def _declared_depth(scope: ast.AST) -> int | None:
    """A literal NB ring depth declared in this scope, if any.

    Recognised: ``nb_depth=<int>`` / ``depth=<int>`` keyword arguments
    and ``nb_depth = <int>`` style local assignments.
    """
    depth: int | None = None
    for node in _walk_shallow(scope):
        if isinstance(node, ast.Call):
            for k in node.keywords:
                if k.arg in ("nb_depth", "depth") and isinstance(
                    k.value, ast.Constant
                ) and isinstance(k.value.value, int):
                    depth = k.value.value
        elif isinstance(node, ast.Assign):
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id in ("nb_depth", "depth")
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
            ):
                depth = node.value.value
    return depth


def _is_post_call(node: ast.Call) -> bool:
    name = _call_method_name(node)
    if name in NONBLOCKING_COLLECTIVES:
        return True
    # pipeline posts ride a GramPipeline; `prefetch` only packs
    return name == "post" and isinstance(node.func, ast.Attribute)


def _is_harvest_call(node: ast.Call) -> bool:
    return _call_method_name(node) in ("wait", "test", "pop", "popleft")


def _loop_bound_names(test: ast.AST | None) -> set[str]:
    names: set[str] = set()
    if test is None:
        return names
    for sub in ast.walk(test):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Call) and _call_method_name(sub) == "len":
            for arg in sub.args:
                if isinstance(arg, ast.Name):
                    names.add(arg.id)
    return names


def _check_nb_ring(ctx: RuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for scope in _function_scopes(ctx.tree):
        depth = _declared_depth(scope)
        # straight-line over-posting against a literal depth
        if depth is not None:
            live = 0
            for stmt in _scope_body(scope):
                posts = waits = 0
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call):
                        if _is_post_call(sub):
                            posts += 1
                        elif _is_harvest_call(sub):
                            waits += 1
                if isinstance(stmt, (ast.For, ast.While)):
                    # loops handled by the heuristic below
                    live = 0
                    continue
                live = max(0, live + posts - waits)
                if live > depth:
                    findings.append(
                        ctx.finding(
                            "nb-ring-depth",
                            Severity.ERROR,
                            stmt,
                            f"{live} nonblocking collectives in flight on a "
                            f"ring declared with depth {depth}: the post "
                            f"raises NbRingDepthError (or deadlocked, before "
                            f"the typed guard)",
                        )
                    )
                    live = depth  # report once per overflow point
        # loop heuristic: posts accumulated with no harvest and no bound
        for node in _walk_shallow(scope):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            body_posts = [
                sub
                for stmt in node.body
                for sub in ast.walk(stmt)
                if isinstance(sub, ast.Call) and _is_post_call(sub)
            ]
            if not body_posts:
                continue
            has_harvest = any(
                isinstance(sub, ast.Call) and _is_harvest_call(sub)
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            if has_harvest:
                continue
            bound_names = _loop_bound_names(
                node.test if isinstance(node, ast.While) else None
            )
            accum_names = {
                sub.func.value.id
                for stmt in node.body
                for sub in ast.walk(stmt)
                if isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("append", "add")
                and isinstance(sub.func.value, ast.Name)
            }
            depth_like = {"tau", "depth", "nb_depth"} & bound_names
            if accum_names & bound_names or depth_like:
                continue  # `while len(inflight) <= tau:` style warmup
            findings.append(
                ctx.finding(
                    "nb-ring-depth",
                    Severity.WARNING,
                    body_posts[0],
                    "nonblocking collectives posted in a loop with no "
                    "wait()/test() in the body and no depth-bounded loop "
                    "condition: in-flight requests grow past any ring depth",
                )
            )
    return findings


# -- rule: collective-without-timeout --------------------------------------


def _check_timeout(ctx: RuleContext) -> list[Finding]:
    if not ctx.config.in_scope(ctx.path, ctx.config.runtime_paths):
        return []
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _is_collective_call(node)
        if name is None or name in NONBLOCKING_COLLECTIVES:
            continue
        if _has_kwarg(node, "timeout"):
            continue
        findings.append(
            ctx.finding(
                "collective-without-timeout",
                Severity.WARNING,
                node,
                f"runtime-path collective `{name}` has no `timeout=`: if "
                f"the communicator was built without a comm-wide default "
                f"deadline, a lost peer hangs this rank forever",
            )
        )
    return findings


# -- rule: abort-swallow ----------------------------------------------------


def _handler_type_names(handler: ast.ExceptHandler) -> set[str]:
    names: set[str] = set()
    t = handler.type
    if t is None:
        return {"<bare>"}
    elts = t.elts if isinstance(t, ast.Tuple) else [t]
    for e in elts:
        if isinstance(e, ast.Name):
            names.add(e.id)
        elif isinstance(e, ast.Attribute):
            names.add(e.attr)
    return names


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler body contain a bare ``raise``?"""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return True
    return False


def _check_abort_swallow(ctx: RuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Try,)):
            continue
        aborts_handled = False
        for handler in node.handlers:
            names = _handler_type_names(handler)
            if names & ABORT_EXCEPTIONS:
                # a narrower abort handler shields later broad ones iff
                # it re-raises (catching-and-dropping is its own finding)
                if _handler_reraises(handler):
                    aborts_handled = True
                    continue
                findings.append(
                    ctx.finding(
                        "abort-swallow",
                        Severity.ERROR,
                        handler,
                        f"handler catches "
                        f"{', '.join(sorted(names & ABORT_EXCEPTIONS))} "
                        f"without re-raising: a mid-collective abort is "
                        f"swallowed and peers hang",
                    )
                )
                continue
            broad = names & _BROAD_HANDLERS or "<bare>" in names
            if not broad:
                continue
            if aborts_handled or _handler_reraises(handler):
                continue
            label = "bare `except:`" if "<bare>" in names else (
                f"`except {'/'.join(sorted(names & _BROAD_HANDLERS))}:`"
            )
            broad_enough_for_ki = "BaseException" in names or "<bare>" in names
            ki_note = "/KeyboardInterrupt" if broad_enough_for_ki else ""
            findings.append(
                ctx.finding(
                    "abort-swallow",
                    Severity.ERROR,
                    handler,
                    f"{label} can eat CommAborted/RankDiedError"
                    f"{ki_note}: "
                    f"re-raise the abort taxonomy first "
                    f"(`except (CommAborted, RankDiedError, "
                    f"KeyboardInterrupt): raise`)",
                )
            )
    return findings


# -- rule: nondeterminism ---------------------------------------------------

_TIME_CALLS = {
    ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
    ("time", "monotonic_ns"), ("time", "perf_counter"),
    ("time", "perf_counter_ns"), ("datetime", "now"), ("datetime", "utcnow"),
    ("datetime", "today"), ("os", "urandom"), ("uuid", "uuid4"),
    ("uuid", "uuid1"),
}

_NP_RANDOM_FNS = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "permutation", "shuffle", "standard_normal", "uniform", "normal",
}

_DIR_ORDER_FNS = {"listdir", "iterdir", "glob", "scandir"}


def _attr_chain(node: ast.AST) -> list[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def _check_nondeterminism(ctx: RuleContext) -> list[Finding]:
    if not ctx.config.in_scope(ctx.path, ctx.config.determinism_paths):
        return []
    findings: list[Finding] = []
    # directory-order calls passed straight into sorted() are stable
    sorted_args: set[int] = set()
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        ):
            sorted_args.update(id(a) for a in node.args)
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if len(chain) >= 2:
                head, tail = chain[-2], chain[-1]
                if (head, tail) in _TIME_CALLS:
                    findings.append(
                        ctx.finding(
                            "nondeterminism",
                            Severity.ERROR,
                            node,
                            f"`{'.'.join(chain)}()` reads ambient state: "
                            f"byte-identical checkpoint replay cannot "
                            f"reproduce it (thread virtual time through "
                            f"the ledger/trace instead)",
                        )
                    )
                    continue
                # global numpy RNG stream (np.random.*); explicit
                # Generator methods (rng.random()) are fine
                if (
                    chain[0] in ("np", "numpy")
                    and "random" in chain[:-1]
                    and tail in _NP_RANDOM_FNS
                ):
                    findings.append(
                        ctx.finding(
                            "nondeterminism",
                            Severity.ERROR,
                            node,
                            f"`{'.'.join(chain)}()` uses the global RNG "
                            f"stream: seed an explicit Generator "
                            f"(`repro.utils.seeds.shared_generator`)",
                        )
                    )
                    continue
                if tail == "default_rng" and not node.args and not node.keywords:
                    findings.append(
                        ctx.finding(
                            "nondeterminism",
                            Severity.ERROR,
                            node,
                            "`default_rng()` without a seed draws entropy "
                            "from the OS: replay diverges",
                        )
                    )
                    continue
                if chain[0] == "random" and len(chain) == 2:
                    findings.append(
                        ctx.finding(
                            "nondeterminism",
                            Severity.ERROR,
                            node,
                            f"`{'.'.join(chain)}()` uses the global stdlib "
                            f"RNG: seed an explicit Generator",
                        )
                    )
                    continue
                if (
                    tail in _DIR_ORDER_FNS
                    and chain[0] in ("os", "glob")
                    and id(node) not in sorted_args
                ):
                    findings.append(
                        ctx.finding(
                            "nondeterminism",
                            Severity.WARNING,
                            node,
                            f"`{'.'.join(chain)}()` yields directory order: "
                            f"wrap in sorted() for a stable schedule",
                        )
                    )
                    continue
        elif isinstance(node, (ast.For, ast.comprehension)):
            it = node.iter
            is_set = isinstance(it, (ast.Set, ast.SetComp)) or (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id in ("set", "frozenset")
            )
            if is_set:
                findings.append(
                    ctx.finding(
                        "nondeterminism",
                        Severity.WARNING,
                        it,
                        "iteration order over a set depends on "
                        "PYTHONHASHSEED: sort it before iterating on a "
                        "replayed path",
                    )
                )
    return findings


RULES: tuple[Rule, ...] = (
    Rule(
        "collective-in-rank-branch",
        Severity.ERROR,
        "collective (or unvetted call) reachable only under a rank "
        "conditional",
        _check_rank_branch,
    ),
    Rule(
        "unharvested-request",
        Severity.ERROR,
        "nonblocking collective whose request is dropped or never "
        "waited/tested",
        _check_unharvested,
    ),
    Rule(
        "nb-ring-depth",
        Severity.ERROR,
        "more in-flight nonblocking collectives than the declared ring "
        "depth",
        _check_nb_ring,
    ),
    Rule(
        "collective-without-timeout",
        Severity.WARNING,
        "runtime-path collective with no per-call deadline",
        _check_timeout,
    ),
    Rule(
        "abort-swallow",
        Severity.ERROR,
        "broad exception handler that can eat the abort taxonomy",
        _check_abort_swallow,
    ),
    Rule(
        "nondeterminism",
        Severity.ERROR,
        "ambient state (clock, global RNG, set/dir order) on a "
        "byte-identical replay path",
        _check_nondeterminism,
    ),
)


def rule_ids() -> list[str]:
    return [r.id for r in RULES]
