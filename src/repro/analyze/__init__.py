"""Static analysis for the SPMD contract (``repro lint``).

Submodules:

* :mod:`repro.analyze.findings` — the finding model: severities,
  fingerprints, inline suppressions, the committed baseline, JSON output.
* :mod:`repro.analyze.rules` — the six AST rules (rank-branch
  collectives, unharvested requests, NB-ring depth, missing timeouts,
  abort swallowing, nondeterminism).
* :mod:`repro.analyze.engine` — the lint driver (file walking,
  suppression/baseline application, meta-findings).
* :mod:`repro.analyze.schedule` — the collective-schedule model and the
  per-mode static extraction the trace cross-check tests consume.
"""

from repro.analyze.engine import LintResult, lint_paths, lint_source
from repro.analyze.findings import (
    Finding,
    Severity,
    findings_to_json,
    load_baseline,
    write_baseline,
)
from repro.analyze.rules import RULES, AnalyzerConfig, rule_ids
from repro.analyze.schedule import (
    FAMILIES,
    MODES,
    ScheduleParams,
    expected_schedule,
    static_alphabet,
)

__all__ = [
    "LintResult",
    "lint_paths",
    "lint_source",
    "Finding",
    "Severity",
    "findings_to_json",
    "load_baseline",
    "write_baseline",
    "RULES",
    "AnalyzerConfig",
    "rule_ids",
    "FAMILIES",
    "MODES",
    "ScheduleParams",
    "expected_schedule",
    "static_alphabet",
]
