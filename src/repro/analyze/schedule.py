"""Static collective-schedule model + extraction for the SA solvers.

Two halves, cross-validated against each other and against runtime:

1. **Schedule model** — :func:`expected_schedule` generates, from solver
   parameters alone, the exact per-rank collective sequence (op +
   payload shape class, as ``"op:shape"`` keys matching
   :class:`repro.mpi.tracing.TraceEvent.key`) each solver family
   executes in each mode ``{blocking, pipeline, async tau}``. This is
   the SPMD contract written down: every rank must produce exactly this
   sequence, or the world deadlocks.
2. **Static extraction** — :func:`static_alphabet` partial-evaluates the
   solver driver's AST against the mode flags (``async_``/``pipeline``)
   and closes over a name-based call graph of the solver/linalg layers,
   yielding the set of collective ops reachable in that mode. Branches
   whose tests cannot be decided statically contribute both sides, so
   extraction **over-approximates**: every op the runtime can execute is
   in the alphabet (``runtime ⊆ static``), and mode flags that are
   decidable (``async_=False`` kills the async arm) tighten it enough to
   prove e.g. that the blocking path can never post an ``Iallreduce``.

``tests/test_analyze_schedule.py`` closes the loop: the model sequence
must equal the recorded runtime trace event-for-event (virtual and
thread backends), and the runtime ops must be contained in the static
alphabet. A collective added, dropped, or reordered in the source shows
up as a test diff instead of a hang.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from functools import lru_cache

__all__ = [
    "MODES",
    "FAMILIES",
    "ScheduleParams",
    "outer_chunks",
    "expected_schedule",
    "static_alphabet",
]

MODES = ("blocking", "pipeline", "async")
FAMILIES = ("lasso-plain", "lasso-acc", "svm")

#: trace keys (``op:shape``) of the primitive schedule events
AR_SCALAR = "allreduce:scalar"  # distributed_objective / norm2_cols
AR_VEC = "Allreduce:vec"  # packed Gram+projection / matvec_full
NB_VEC = "Iallreduce:vec"  # GramPipeline.post
AG_VEC = "Allgather:vec"  # gather_cols

#: per-family schedule ingredients: the record-point event burst and the
#: trailing events after the driver loop (SVM gathers the primal shard)
_RECORD_EVENTS = {
    "lasso-plain": (AR_SCALAR,),
    "lasso-acc": (AR_SCALAR,),
    # _record_gap: matvec_full (buffer Allreduce) + norm2_cols (object
    # allreduce of a python float)
    "svm": (AR_VEC, AR_SCALAR),
}
_TAIL_EVENTS = {
    "lasso-plain": (),
    "lasso-acc": (),
    "svm": (AG_VEC,),
}

#: solver driver roots for static extraction
_ROOTS = {
    "lasso-plain": ("solvers/lasso/plain.py", "sa_bcd"),
    "lasso-acc": ("solvers/lasso/acc.py", "sa_acc_bcd"),
    "svm": ("solvers/svm/dcd.py", "sa_dcd"),
}

#: packages (relative to the ``repro`` package root) whose function defs
#: feed the call-graph index. The mpi backends are deliberately
#: excluded: generic method names there (``wait``, ``record``) would
#: collide with solver-layer names and pollute the alphabets — and the
#: public collectives are exactly the call boundary the schedule is
#: defined over.
_INDEX_ROOTS = ("solvers", "linalg", "prox", "utils", "checkpoint.py")


@dataclass(frozen=True)
class ScheduleParams:
    """Solver parameters that determine the collective schedule."""

    max_iter: int
    s: int = 8
    record_every: int = 1
    tau: int = 1

    def __post_init__(self) -> None:
        if self.max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if self.s < 1:
            raise ValueError("s must be >= 1")
        if self.tau < 0:
            raise ValueError("tau must be >= 0")


def outer_chunks(max_iter: int, s: int) -> list[int]:
    """Outer-step sizes: ``min(s, remaining)`` until ``max_iter``."""
    sizes: list[int] = []
    done = 0
    while done < max_iter:
        sizes.append(min(s, max_iter - done))
        done += sizes[-1]
    return sizes


def _record_burst(
    family: str, done: int, s_eff: int, record_every: int, max_iter: int
) -> list[str]:
    """Record events emitted by one outer step's inner loop."""
    out: list[str] = []
    for j in range(1, s_eff + 1):
        it = done + j
        if record_every and (it % record_every == 0 or it == max_iter):
            out.extend(_RECORD_EVENTS[family])
    return out


def expected_schedule(
    family: str, mode: str, params: ScheduleParams
) -> list[str]:
    """The exact per-rank collective sequence of one solver run.

    Assumes the run neither converges early (``tol=None``), checkpoints,
    nor resumes — the regime the cross-check tests pin down. Keys match
    :meth:`repro.mpi.tracing.CollectiveTracer.keys`.
    """
    if family not in FAMILIES:
        raise ValueError(f"unknown family {family!r}; known: {FAMILIES}")
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; known: {MODES}")
    rec = list(_RECORD_EVENTS[family])
    chunks = outer_chunks(params.max_iter, params.s)

    events: list[str] = []
    events.extend(rec)  # iteration-0 record before the driver loop

    if mode == "blocking":
        done = 0
        for s_eff in chunks:
            events.append(AR_VEC)  # packed gram_(rows_)and_project
            events.extend(
                _record_burst(
                    family, done, s_eff, params.record_every, params.max_iter
                )
            )
            done += s_eff
    elif mode == "pipeline":
        # post(k) ... [prefetch(k+1); wait(k); inner(k); post(k+1)] ...
        done = 0
        for i, s_eff in enumerate(chunks):
            events.append(NB_VEC)
            events.extend(
                _record_burst(
                    family, done, s_eff, params.record_every, params.max_iter
                )
            )
            done += s_eff
    else:  # async: warmup posts, then harvest-oldest / post-next
        w = min(params.tau + 1, len(chunks))
        events.extend([NB_VEC] * w)
        done = 0
        for i, s_eff in enumerate(chunks):
            events.extend(
                _record_burst(
                    family, done, s_eff, params.record_every, params.max_iter
                )
            )
            done += s_eff
            if w + i < len(chunks):
                events.append(NB_VEC)
        # the drain waits on already-posted reductions: no new events

    # final record: skipped when the cadence already recorded max_iter
    if not params.record_every:
        events.extend(rec)
    events.extend(_TAIL_EVENTS[family])
    return events


# -- static extraction -------------------------------------------------------

_COLLECTIVES = frozenset(
    {
        "allreduce", "bcast", "barrier", "allgather", "gather", "scatter",
        "reduce", "Allreduce", "Bcast", "Reduce", "Allgather", "Iallreduce",
    }
)
#: names too generic to treat as collectives when called bare
_AMBIGUOUS_BARE = frozenset(
    {"gather", "scatter", "reduce", "allgather", "allreduce", "bcast", "barrier"}
)


def _package_root() -> str:
    # .../src/repro/analyze/schedule.py -> .../src/repro
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _call_name(node: ast.Call) -> str | None:
    fn = node.func
    if isinstance(fn, ast.Attribute):
        return fn.attr
    if isinstance(fn, ast.Name):
        return fn.id
    return None


def _direct_ops(node: ast.Call) -> str | None:
    name = _call_name(node)
    if name is None or name not in _COLLECTIVES:
        return None
    if isinstance(node.func, ast.Name) and name in _AMBIGUOUS_BARE:
        return None
    return name


def _shallow_calls(root: ast.AST) -> tuple[set[str], set[str]]:
    """(direct collective ops, callee names) without entering nested defs."""
    ops: set[str] = set()
    callees: set[str] = set()
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            op = _direct_ops(node)
            if op is not None:
                ops.add(op)
            else:
                name = _call_name(node)
                if name is not None:
                    callees.add(name)
        stack.extend(ast.iter_child_nodes(node))
    return ops, callees


@lru_cache(maxsize=1)
def _call_index() -> dict[str, tuple[frozenset[str], frozenset[str]]]:
    """name -> (direct collective ops, callee names), merged over all
    same-named defs in the indexed packages."""
    index: dict[str, tuple[set[str], set[str]]] = {}
    base = _package_root()
    files: list[str] = []
    for rel in _INDEX_ROOTS:
        p = os.path.join(base, rel)
        if os.path.isfile(p):
            files.append(p)
            continue
        for root, dirs, names in os.walk(p):
            dirs[:] = [d for d in dirs if d != "__pycache__"]
            files.extend(
                os.path.join(root, n) for n in names if n.endswith(".py")
            )
    for path in sorted(files):
        with open(path, "r", encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=path)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                ops, callees = _shallow_calls(node)
                old_ops, old_callees = index.get(node.name, (set(), set()))
                index[node.name] = (old_ops | ops, old_callees | callees)
    return {
        name: (frozenset(ops), frozenset(callees))
        for name, (ops, callees) in index.items()
    }


def _tri_eval(test: ast.AST, env: dict[str, bool]):
    """Three-valued test evaluation: True / False / None (unknown)."""
    if isinstance(test, ast.Name):
        return env.get(test.id)
    if isinstance(test, ast.Constant):
        return bool(test.value)
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = _tri_eval(test.operand, env)
        return None if inner is None else not inner
    if isinstance(test, ast.BoolOp):
        vals = [_tri_eval(v, env) for v in test.values]
        if isinstance(test.op, ast.And):
            if any(v is False for v in vals):
                return False
            if all(v is True for v in vals):
                return True
            return None
        if any(v is True for v in vals):
            return True
        if all(v is False for v in vals):
            return False
        return None
    return None


def _visit_stmts(
    stmts: list[ast.stmt],
    env: dict[str, bool],
    ops: set[str],
    callees: set[str],
    aliases: dict[str, set[str]],
    local_defs: dict[str, tuple[set[str], set[str]]],
) -> None:
    for stmt in stmts:
        if isinstance(stmt, ast.If):
            val = _tri_eval(stmt.test, env)
            if val is not False:
                _visit_stmts(stmt.body, env, ops, callees, aliases, local_defs)
            if val is not True:
                _visit_stmts(
                    stmt.orelse, env, ops, callees, aliases, local_defs
                )
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # nested helper (e.g. _checkpoint): index it locally so calls
            # to it resolve ahead of any same-named global
            local_defs[stmt.name] = _shallow_calls(stmt)
            continue
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            tgt = stmt.targets[0]
            if isinstance(tgt, ast.Name):
                val = stmt.value
                if isinstance(val, ast.Name):
                    aliases.setdefault(tgt.id, set()).add(val.id)
                elif isinstance(val, ast.IfExp):
                    for side in (val.body, val.orelse):
                        if isinstance(side, ast.Name):
                            aliases.setdefault(tgt.id, set()).add(side.id)
        # _shallow_calls walks the whole statement except nested defs, so
        # only If needs special casing (partial eval); mode-undecidable
        # Ifs nested inside loops/with/try contribute both sides, which
        # is the safe over-approximation.
        s_ops, s_callees = _shallow_calls(stmt)
        ops |= s_ops
        callees |= s_callees


def static_alphabet(family: str, mode: str) -> set[str]:
    """Collective ops statically reachable in one solver mode.

    Partial-evaluates the driver's mode conditionals
    (``async_``/``pipeline``) and closes transitively over the
    solver/linalg call graph. Over-approximates (undecidable branches
    contribute both sides): the runtime trace's op set is always a
    subset of this alphabet.
    """
    if family not in _ROOTS:
        raise ValueError(f"unknown family {family!r}; known: {FAMILIES}")
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; known: {MODES}")
    rel, func = _ROOTS[family]
    env = {"async_": mode == "async", "pipeline": mode == "pipeline"}

    path = os.path.join(_package_root(), rel)
    with open(path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    root = None
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == func:
            root = node
            break
    if root is None:
        raise ValueError(f"{rel} has no top-level function {func!r}")

    ops: set[str] = set()
    callees: set[str] = set()
    aliases: dict[str, set[str]] = {}
    local_defs: dict[str, tuple[set[str], set[str]]] = {}
    _visit_stmts(root.body, env, ops, callees, aliases, local_defs)

    # expand aliases (`step = _sa_outer_fast`): a call to the alias
    # reaches every function ever assigned to it
    expanded = set(callees)
    for name in callees:
        expanded |= aliases.get(name, set())

    index = _call_index()
    seen: set[str] = set()
    work = list(expanded)
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        entry = local_defs.get(name) or index.get(name)
        if entry is None:
            continue
        e_ops, e_callees = entry
        ops |= set(e_ops)
        for callee in e_callees:
            work.append(callee)
            work.extend(aliases.get(callee, ()))
    return ops
