"""Lint driver: walk files, run rules, apply suppressions + baseline.

The pipeline per file is::

    parse -> run every rule -> attach inline suppressions -> meta-findings

then across the whole run::

    absorb baseline entries -> sort -> report

Meta-findings keep the escape hatches honest:

* ``invalid-suppression`` — a ``lint-ignore`` comment with an unknown
  rule id, or without the required ``-- justification`` string.
* ``unused-suppression`` — a ``lint-ignore`` that matched nothing, so
  it is stale and must be deleted (otherwise suppressions rot into
  blanket immunity).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from repro.analyze.findings import (
    SEVERITY_ORDER,
    Finding,
    Severity,
    load_baseline,
    parse_suppressions,
    suppression_targets,
)
from repro.analyze.rules import RULES, AnalyzerConfig, RuleContext, rule_ids

__all__ = ["LintResult", "lint_source", "lint_paths", "iter_python_files"]

#: meta-rules emitted by the engine itself (valid suppression targets
#: only so far as `invalid-suppression` goes — you cannot suppress it)
META_RULES = ("invalid-suppression", "unused-suppression", "parse-error")


@dataclass
class LintResult:
    findings: list[Finding] = field(default_factory=list)
    #: files analyzed (relative, as passed)
    paths: list[str] = field(default_factory=list)

    @property
    def actionable(self) -> list[Finding]:
        return [f for f in self.findings if f.actionable]

    @property
    def exit_code(self) -> int:
        return 1 if self.actionable else 0


def _known_rules() -> set[str]:
    return set(rule_ids()) | set(META_RULES)


def lint_source(
    path: str, source: str, config: AnalyzerConfig | None = None
) -> list[Finding]:
    """Lint one file's source text. Returns all findings (suppressed
    ones included, flagged)."""
    config = config or AnalyzerConfig()
    source_lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="parse-error",
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"cannot parse: {exc.msg}",
            )
        ]

    ctx = RuleContext(
        path=path, tree=tree, source_lines=source_lines, config=config
    )
    findings: list[Finding] = []
    for rule in RULES:
        findings.extend(rule.check(ctx))

    suppressions = parse_suppressions(source)
    known = _known_rules()
    # line -> suppressions covering it
    by_target: dict[int, list] = {}
    for sup in suppressions:
        by_target.setdefault(
            suppression_targets(sup, source_lines), []
        ).append(sup)

    for f in findings:
        for sup in by_target.get(f.line, []):
            if not sup.matches(f.rule):
                continue
            if not sup.justification:
                continue  # justification required; invalid-suppression below
            sup.used = True
            f.suppressed = True
            f.justification = sup.justification
            break

    for sup in suppressions:
        unknown = [r for r in sup.rules if r != "*" and r not in known]
        if unknown:
            findings.append(
                Finding(
                    rule="invalid-suppression",
                    severity=Severity.ERROR,
                    path=path,
                    line=sup.line,
                    col=1,
                    message=(
                        f"lint-ignore names unknown rule(s) "
                        f"{', '.join(sorted(unknown))}; known: "
                        f"{', '.join(sorted(rule_ids()))}"
                    ),
                    snippet=_line(source_lines, sup.line),
                )
            )
        if not sup.justification:
            findings.append(
                Finding(
                    rule="invalid-suppression",
                    severity=Severity.ERROR,
                    path=path,
                    line=sup.line,
                    col=1,
                    message=(
                        "lint-ignore requires a justification: "
                        "`# repro: lint-ignore[<rule>] -- why this is safe`"
                    ),
                    snippet=_line(source_lines, sup.line),
                )
            )
        elif not sup.used and not unknown:
            findings.append(
                Finding(
                    rule="unused-suppression",
                    severity=Severity.WARNING,
                    path=path,
                    line=sup.line,
                    col=1,
                    message=(
                        f"lint-ignore[{', '.join(sup.rules)}] matched no "
                        f"finding; delete the stale suppression"
                    ),
                    snippet=_line(source_lines, sup.line),
                )
            )
    return findings


def _line(source_lines: list[str], lineno: int) -> str:
    if 1 <= lineno <= len(source_lines):
        return source_lines[lineno - 1].strip()
    return ""


def iter_python_files(paths: list[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(
                    d
                    for d in dirs
                    if d not in ("__pycache__", ".git", ".ruff_cache")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        elif p.endswith(".py"):
            out.append(p)
    return sorted(dict.fromkeys(out))


def lint_paths(
    paths: list[str],
    config: AnalyzerConfig | None = None,
    baseline_path: str | None = None,
) -> LintResult:
    """Lint every python file under ``paths``; absorb the baseline."""
    config = config or AnalyzerConfig()
    files = iter_python_files(paths)
    result = LintResult(paths=files)
    for fp in files:
        with open(fp, "r", encoding="utf-8") as fh:
            source = fh.read()
        result.findings.extend(lint_source(fp, source, config))

    if baseline_path and os.path.exists(baseline_path):
        budget = dict(load_baseline(baseline_path))
        for f in result.findings:
            if f.suppressed:
                continue
            remaining = budget.get(f.fingerprint, 0)
            if remaining > 0:
                budget[f.fingerprint] = remaining - 1
                f.baselined = True

    sev_rank = {s: i for i, s in enumerate(SEVERITY_ORDER)}
    result.findings.sort(
        key=lambda f: (f.path, f.line, f.col, sev_rank.get(f.severity, 9), f.rule)
    )
    return result
