"""repro — Synchronization-Avoiding first-order methods for sparse convex
optimization.

A production-quality Python reproduction of

    A. Devarakonda, K. Fountoulakis, J. Demmel, M. W. Mahoney,
    "Avoiding Synchronization in First-Order Methods for Sparse Convex
    Optimization", IEEE IPDPS 2018 (arXiv:1712.06047).

Quick start
-----------
>>> import numpy as np
>>> from repro import fit_lasso, fit_svm
>>> from repro.datasets import make_sparse_regression
>>> A, b, _ = make_sparse_regression(200, 100, density=0.2, seed=0)
>>> res = fit_lasso(A, b, lam=0.1, solver="sa-accbcd", s=16, max_iter=500)
>>> res.x.shape
(100,)

Package layout (see DESIGN.md):

* :mod:`repro.solvers` — the paper's algorithms (Alg. 1-4) + baselines;
* :mod:`repro.mpi` — simulated MPI (thread SPMD + virtual-P backends);
* :mod:`repro.machine` — alpha-beta-gamma cost model (Cray XC30 preset);
* :mod:`repro.linalg` — partitions, distributed Gram kernels;
* :mod:`repro.prox` — proximal operators / penalties;
* :mod:`repro.datasets` — LIBSVM IO + shape-matched synthetic generators;
* :mod:`repro.experiments` — the figure/table reproduction harness.
"""

from repro._api import fit_lasso, fit_svm
from repro.errors import ReproError
from repro.estimators import SALasso, SALassoCV, SASVMClassifier, SASVMClassifierCV
from repro.path import PathResult, SweepContext, adaptive_schedule, lasso_path, svm_path
from repro.prox import ElasticNetPenalty, GroupLassoPenalty, L1Penalty
from repro.solvers.base import SolverResult
from repro.streaming import DataRevision, StreamingSweep, replay_schedule

__version__ = "1.1.0"

__all__ = [
    "fit_lasso",
    "fit_svm",
    "lasso_path",
    "svm_path",
    "adaptive_schedule",
    "SweepContext",
    "PathResult",
    "StreamingSweep",
    "DataRevision",
    "replay_schedule",
    "SALasso",
    "SALassoCV",
    "SASVMClassifier",
    "SASVMClassifierCV",
    "ReproError",
    "L1Penalty",
    "ElasticNetPenalty",
    "GroupLassoPenalty",
    "SolverResult",
    "__version__",
]
