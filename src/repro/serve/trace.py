"""Timestamped arrival traces for the multi-tenant serving engine.

A trace is an ordered list of :class:`TraceEvent`\\ s — "at virtual time
``t``, tenant ``X`` asked for ``op`` over ``rows`` rows". Time is
**virtual** (modelled seconds, the same clock the cost ledger charges);
replaying a trace never sleeps on the wall clock, which is what makes
serving runs deterministic and CI-friendly: the same trace over the
same machine model produces the same admissions, the same rejections,
and the same latency percentiles, bit for bit.

Traces come from three places:

* :func:`load_trace` — real recorded arrivals, as JSON lines (one
  object per line) or one JSON array: ``{"t": 0.004, "tenant": "a",
  "op": "append", "rows": 8}`` with an optional per-request
  ``"deadline"`` override;
* :func:`synthetic_trace` — a seeded generator (exponential-ish
  inter-arrival gaps, configurable predict/append mix) for benchmarks
  and smoke tests;
* literal lists of :class:`TraceEvent` built in tests.

The ``op`` vocabulary is shared with the streaming replayer's schedule
tokens (:func:`repro.streaming.replay_schedule`): ``append`` consumes
the next ``rows`` rows of the tenant's held-out tail, ``evict_oldest``
/ ``relabel_oldest`` act on the oldest surviving rows, and ``predict``
scores ``rows`` query rows against the tenant's last committed model.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass

import numpy as np

from repro.errors import ServeError

__all__ = ["TraceEvent", "TRACE_OPS", "load_trace", "synthetic_trace",
           "validate_trace"]

#: request kinds a trace may carry; ``predict`` is read-only (served
#: from the last committed model, never refits), the rest mutate the
#: tenant's data and trigger one warm refit per dispatched batch
TRACE_OPS = ("append", "predict", "evict_oldest", "relabel_oldest")


@dataclass(frozen=True)
class TraceEvent:
    """One request arrival.

    ``t`` is the arrival instant in virtual seconds; ``deadline`` (also
    virtual seconds, measured from ``t``) overrides the engine-wide
    default for this request only.
    """

    t: float
    tenant: str
    op: str = "append"
    rows: int = 1
    deadline: float | None = None


def _check_event(ev: TraceEvent, where: str) -> TraceEvent:
    if not isinstance(ev.tenant, str) or not ev.tenant:
        raise ServeError(f"{where}: tenant must be a non-empty string")
    if ev.op not in TRACE_OPS:
        raise ServeError(
            f"{where}: unknown op {ev.op!r}; expected one of {TRACE_OPS}"
        )
    t = float(ev.t)
    if not math.isfinite(t) or t < 0:
        raise ServeError(f"{where}: arrival time must be finite and >= 0, got {ev.t!r}")
    rows = int(ev.rows)
    if rows < 1:
        raise ServeError(f"{where}: rows must be >= 1, got {ev.rows!r}")
    dl = ev.deadline
    if dl is not None:
        dl = float(dl)
        if not math.isfinite(dl) or dl <= 0:
            raise ServeError(
                f"{where}: deadline must be finite and > 0, got {ev.deadline!r}"
            )
    return TraceEvent(t=t, tenant=ev.tenant, op=ev.op, rows=rows, deadline=dl)


def validate_trace(events, known_tenants=None) -> list:
    """Validate + normalise a trace; returns events sorted by arrival.

    The sort is stable, so same-instant events keep their input order
    (FIFO within a burst). ``known_tenants`` (optional) rejects events
    naming a tenant the engine does not host — a trace typo should fail
    loudly at validation, not dispatch a refit into the void.
    """
    out = []
    for i, ev in enumerate(events):
        if not isinstance(ev, TraceEvent):
            raise ServeError(
                f"trace[{i}]: expected a TraceEvent, got {type(ev).__name__}"
            )
        ev = _check_event(ev, f"trace[{i}]")
        if known_tenants is not None and ev.tenant not in known_tenants:
            raise ServeError(
                f"trace[{i}]: unknown tenant {ev.tenant!r}; engine hosts "
                f"{sorted(known_tenants)}"
            )
        out.append(ev)
    return sorted(out, key=lambda e: e.t)


def load_trace(path) -> list:
    """Read a trace file: JSON lines (one object per line) or one JSON
    array. Each record needs ``t`` and ``tenant``; ``op`` defaults to
    ``"append"``, ``rows`` to 1, ``deadline`` to the engine default.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise ServeError(f"could not read trace {os.fspath(path)!r}: {exc}") from exc
    records: list = []
    stripped = text.lstrip()
    try:
        if stripped.startswith("["):
            records = json.loads(text)
        else:
            for line in text.splitlines():
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    except ValueError as exc:
        raise ServeError(
            f"trace {os.fspath(path)!r} is not valid JSON/JSONL: {exc}"
        ) from exc
    events = []
    for i, rec in enumerate(records):
        if not isinstance(rec, dict) or "t" not in rec or "tenant" not in rec:
            raise ServeError(
                f"trace record {i} must be an object with 't' and 'tenant',"
                f" got {rec!r}"
            )
        events.append(TraceEvent(
            t=rec["t"], tenant=rec["tenant"], op=rec.get("op", "append"),
            rows=rec.get("rows", 1), deadline=rec.get("deadline"),
        ))
    return validate_trace(events)


def synthetic_trace(
    tenants,
    n_requests: int,
    *,
    seed: int = 0,
    mean_gap: float = 0.0,
    rows: int = 2,
    predict_frac: float = 0.25,
    deadline: float | None = None,
    append_budget: dict | None = None,
) -> list:
    """A deterministic synthetic arrival trace over ``tenants``.

    Inter-arrival gaps are exponential with mean ``mean_gap`` virtual
    seconds (0.0 = one burst at t=0, the maximal-backpressure case);
    each request picks a tenant uniformly and is a ``predict`` with
    probability ``predict_frac``, else an ``append`` of ``rows`` rows.
    ``append_budget`` (tenant -> max rows that may ever be appended)
    converts appends that would overdraw a tenant's held-out tail into
    predicts, so a generated trace is always servable.
    """
    names = sorted(tenants)
    if not names:
        raise ServeError("synthetic_trace needs at least one tenant")
    if n_requests < 1:
        raise ServeError(f"n_requests must be >= 1, got {n_requests}")
    if not 0.0 <= predict_frac <= 1.0:
        raise ServeError(f"predict_frac must be in [0, 1], got {predict_frac}")
    rng = np.random.default_rng(seed)
    t = 0.0
    used: dict = {name: 0 for name in names}
    events = []
    for _ in range(int(n_requests)):
        if mean_gap > 0:
            t += float(rng.exponential(mean_gap))
        name = names[int(rng.integers(len(names)))]
        op = "predict" if rng.random() < predict_frac else "append"
        if op == "append" and append_budget is not None:
            if used[name] + rows > int(append_budget.get(name, rows)):
                op = "predict"
        if op == "append":
            used[name] += rows
        events.append(TraceEvent(t=t, tenant=name, op=op, rows=rows,
                                 deadline=deadline))
    return validate_trace(events)
