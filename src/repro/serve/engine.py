"""Multi-tenant serving engine over the supervised SPMD worker pool.

One engine hosts N tenants — each an independent
:class:`~repro.streaming.StreamingSweep` with its own model, revision
history, eigenvalue memo, and fault budget — multiplexed over a single
shared communicator (virtual / thread / process backend). A
timestamped arrival trace (:mod:`repro.serve.trace`) drives the run in
**virtual time**: the clock advances by modelled service seconds (the
rank-MAX of per-rank ledger costs, so the SPMD ranks never diverge)
and by idle gaps between arrivals, never by wall-clock sleeping.

The robustness contract, per tenant:

* **admission control / backpressure** — a bounded
  :class:`~repro.serve.admission.AdmissionQueue`; a full queue rejects
  with :class:`~repro.errors.AdmissionError` (typed, names the depth,
  carries a modelled ``retry_after``) instead of queueing unboundedly;
* **deadlines** — requests expire while queued, and a refit that lands
  past *every* coalesced member's deadline is rolled back (the tenant
  keeps its last committed model — wasted work is not committed work);
  collective-level deadlines ride the existing ``timeout=`` plumbing
  via ``comm_deadline``;
* **coalescing** — consecutive ``append`` arrivals for one tenant are
  batched into a single warm refit (``max_coalesce``), amortising the
  solve;
* **fault isolation** — a rank death mid-refit is recovered through
  the PR-7 supervised pool (``recover="checkpoint"``): every dispatch
  ships a ``kind="serve-engine"`` checkpoint, the respawned world
  resumes it, and the in-flight batch is deterministically replayed —
  or, past the tenant's fault budget, the tenant is **quarantined**:
  its last-good model stays servable (predicts still admitted) while
  every other tenant is untouched. :class:`~repro.errors.SolverError`
  during one tenant's refit likewise rolls back only that tenant.

Determinism: everything the engine branches on (clock, queue state,
deadlines, fault counters) is replicated across ranks, and per-rank
cost asymmetry is folded with a ledger-paused MAX-allreduce before it
touches the clock — so a recovered run's surviving tenants end
byte-identical to an undisturbed run.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    AdmissionError,
    CheckpointError,
    CommTimeoutError,
    DeadlineError,
    ServeError,
    SolverError,
    TenantQuarantinedError,
)
from repro.faults import FaultyComm
from repro.linalg.kernels import EigMemo
from repro.machine.spec import MachineSpec
from repro.mpi.ops import MAX
from repro.mpi.process_backend import process_spmd_run
from repro.mpi.thread_backend import NB_RING_DEPTH, spmd_run
from repro.mpi.virtual_backend import VirtualComm
from repro.serve.admission import AdmissionQueue
from repro.serve.report import (
    SERVE_CHECKPOINT_VERSION,
    build_report,
    latency_stats,
)
from repro.serve.trace import load_trace, validate_trace
from repro.streaming import StreamingSweep, _cost_dict, _sum_cost_dicts
from repro.utils.io import atomic_write_json
from repro.utils.validation import nnz_of

__all__ = ["TenantSpec", "serve_trace"]


@dataclass
class TenantSpec:
    """Static description of one tenant.

    ``A`` / ``b`` hold the tenant's full arrival history: rows
    ``[0, m0)`` are the onboarding data (fit before the trace starts),
    and ``append`` requests consume the tail ``[m0, ...)`` in order.
    ``predict`` requests score the leading rows of ``A`` against the
    tenant's last committed model. ``knobs`` are
    :class:`~repro.streaming.StreamingSweep` solver defaults (solver,
    mu, s, max_iter, tol, seed, ...).
    """

    name: str
    A: object
    b: object
    m0: int
    task: str = "lasso"
    lam: object = None
    max_rows: int | None = None
    knobs: dict = field(default_factory=dict)


class _Tenant:
    """Runtime state for one hosted tenant."""

    __slots__ = (
        "spec", "rows_total", "eig_memo", "sweep", "state", "faults",
        "consumed", "model", "model_hash", "metric", "lam_used",
        "last_good", "setup_cost", "serve_cost", "counters", "latencies",
        "recovered_requests",
    )

    def __init__(self, spec: TenantSpec):
        self.spec = spec
        self.rows_total = int(spec.A.shape[0])
        self.eig_memo = EigMemo()
        self.sweep = None
        self.state = "active"
        self.faults = 0
        self.consumed = int(spec.m0)
        self.model = None
        self.model_hash = None
        self.metric = None
        self.lam_used = None
        self.last_good = None
        self.setup_cost = _sum_cost_dicts([])
        self.serve_cost = _sum_cost_dicts([])
        self.counters = {k: 0 for k in ("completed", "rejected", "timed_out",
                                        "failed", "quarantined")}
        self.latencies: list = []
        self.recovered_requests = 0


def _hash(arr) -> str:
    a = np.ascontiguousarray(np.asarray(arr, dtype=np.float64))
    return hashlib.sha256(a.tobytes()).hexdigest()[:16]


def _load_serve_checkpoint(source) -> dict:
    if isinstance(source, dict):
        ck = source
    else:
        try:
            with open(os.fspath(source), "r", encoding="utf-8") as fh:
                ck = json.load(fh)
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"could not read serve checkpoint {source!r}: {exc}"
            ) from exc
    if ck.get("kind") != "serve-engine":
        raise CheckpointError(
            f"expected a kind='serve-engine' checkpoint, got {ck.get('kind')!r}"
        )
    if int(ck.get("format_version", -1)) != SERVE_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"serve checkpoint format_version {ck.get('format_version')!r} is"
            f" not supported (expected {SERVE_CHECKPOINT_VERSION})"
        )
    return ck


class _Engine:
    """The per-rank serving loop (SPMD: every rank runs it in lockstep)."""

    def __init__(self, comm, specs, trace, *, default_deadline,
                 queue_depth, max_coalesce, max_faults, rctx,
                 checkpoint_path, fault_hook):
        self.comm = comm
        self.trace = trace
        self.names = [s.name for s in specs]
        self.tenants = {s.name: _Tenant(s) for s in specs}
        self.queue = AdmissionQueue(queue_depth, self.names,
                                    max_coalesce=max_coalesce)
        self.max_faults = int(max_faults)
        self.rctx = rctx
        self.checkpoint_path = checkpoint_path
        self.fault_hook = fault_hook
        self.clock = 0.0
        self.total_idle = 0.0
        self.next_arrival = 0
        self.dispatch_no = 0
        self._avg_service = 0.0
        self.counters = {k: 0 for k in ("completed", "rejected", "timed_out",
                                        "failed", "quarantined", "recovered")}
        self.requests = [
            {
                "eidx": i, "t": float(ev.t), "tenant": ev.tenant,
                "op": ev.op, "rows": int(ev.rows),
                "deadline": (float(ev.deadline) if ev.deadline is not None
                             else default_deadline),
                "outcome": None, "dispatched_at": None, "completed_at": None,
                "latency": None, "coalesced": 0, "recovered": False,
                "late": False, "error": None, "result_hash": None,
            }
            for i, ev in enumerate(trace)
        ]

    # -- bookkeeping ---------------------------------------------------------
    def _resolve(self, eidx: int, outcome: str, *, error=None) -> None:
        r = self.requests[eidx]
        r["outcome"] = outcome
        r["completed_at"] = float(self.clock)
        if outcome in ("completed", "timed_out"):
            r["latency"] = float(self.clock - r["t"])
        if error is not None:
            r["error"] = str(error)
        self.counters[outcome] += 1
        ten = self.tenants[r["tenant"]]
        ten.counters[outcome] += 1
        if outcome == "completed":
            ten.latencies.append(r["latency"])

    def _retry_after(self) -> float:
        return self._avg_service * float(len(self.queue) + 1)

    def _note_service(self, dt: float) -> None:
        if self._avg_service == 0.0:
            self._avg_service = float(dt)
        else:
            self._avg_service = 0.5 * self._avg_service + 0.5 * float(dt)

    def _set_model(self, ten: _Tenant, res) -> None:
        # model assembly is reporting/serving state, not modelled work;
        # the SVM primal lives sharded (column partition), so gather it
        with self.comm.ledger.paused():
            if ten.spec.task == "svm":
                shards = self.comm.allgather(
                    np.asarray(res.x, dtype=np.float64).ravel()
                )
                model = np.concatenate(
                    [np.asarray(s, dtype=np.float64).ravel() for s in shards]
                )
            else:
                model = np.asarray(res.x, dtype=np.float64).copy()
        ten.model = model
        ten.model_hash = _hash(model)

    def _rollback(self, ten: _Tenant) -> None:
        with self.comm.ledger.paused():
            ten.sweep = StreamingSweep.from_checkpoint(
                ten.last_good, comm=self.comm, eig_memo=ten.eig_memo
            )

    def _quarantine_if_exhausted(self, ten: _Tenant) -> None:
        if ten.faults > self.max_faults and ten.state == "active":
            ten.state = "quarantined"

    # -- checkpointing -------------------------------------------------------
    def _emit_ck(self, in_flight) -> None:
        if self.rctx is None and self.checkpoint_path is None:
            return
        payload = {
            "format_version": SERVE_CHECKPOINT_VERSION,
            "kind": "serve-engine",
            "clock": float(self.clock),
            "next_arrival": int(self.next_arrival),
            "dispatch_no": int(self.dispatch_no),
            "requests_done": sum(
                1 for r in self.requests if r["outcome"] is not None
            ),
            "idle_seconds": float(self.total_idle),
            "avg_service": float(self._avg_service),
            "counters": dict(self.counters),
            "requests": [dict(r) for r in self.requests],
            "queue": self.queue.to_state(),
            "in_flight": in_flight,
            "tenants": {
                name: {
                    "engine": ten.last_good,
                    "state": ten.state,
                    "faults": int(ten.faults),
                    "consumed": int(ten.consumed),
                    "model": (None if ten.model is None
                              else ten.model.tolist()),
                    "lam_used": ten.lam_used,
                    "metric": ten.metric,
                    "setup_cost": ten.setup_cost,
                    "serve_cost": ten.serve_cost,
                    "counters": dict(ten.counters),
                    "latencies": list(ten.latencies),
                    "recovered_requests": int(ten.recovered_requests),
                }
                for name, ten in self.tenants.items()
            },
        }
        if self.rctx is not None:
            self.rctx.save(payload)
        if self.checkpoint_path is not None and self.comm.rank == 0:
            # repro: lint-ignore[collective-in-rank-branch] -- rank-0
            # checkpoint IO: a local atomic file write, no communication
            atomic_write_json(os.fspath(self.checkpoint_path), payload)

    def restore(self, ck: dict, last_failure) -> None:
        """Resume from a ``kind="serve-engine"`` checkpoint; if a batch
        was in flight when the previous attempt died, resolve or replay
        it according to ``last_failure`` (``"timeout"`` fails the batch
        with deadline semantics; a rank death replays it unless the
        tenant's fault budget is exhausted)."""
        if set(ck["tenants"]) != set(self.names):
            raise CheckpointError(
                "serve checkpoint tenants do not match the engine: "
                f"{sorted(ck['tenants'])} vs {sorted(self.names)}"
            )
        if len(ck["requests"]) > len(self.requests):
            raise CheckpointError(
                f"serve checkpoint has {len(ck['requests'])} requests; the"
                f" resuming trace has only {len(self.requests)} — resume"
                f" with the same trace (or one it is a prefix of)"
            )
        self.clock = float(ck["clock"])
        self.next_arrival = int(ck["next_arrival"])
        self.dispatch_no = int(ck["dispatch_no"])
        self.total_idle = float(ck["idle_seconds"])
        self._avg_service = float(ck.get("avg_service", 0.0))
        self.counters.update({k: int(v) for k, v in ck["counters"].items()})
        # the checkpointed trace prefix overwrites the fresh records;
        # any additional trailing arrivals keep their fresh state
        for i, r in enumerate(ck["requests"]):
            self.requests[i] = dict(r)
        self.queue.from_state(ck["queue"])
        for name, tck in ck["tenants"].items():
            ten = self.tenants[name]
            with self.comm.ledger.paused():
                ten.sweep = StreamingSweep.from_checkpoint(
                    tck["engine"], comm=self.comm, eig_memo=ten.eig_memo
                )
            ten.last_good = tck["engine"]
            ten.state = tck["state"]
            ten.faults = int(tck["faults"])
            ten.consumed = int(tck["consumed"])
            if tck["model"] is not None:
                ten.model = np.asarray(tck["model"], dtype=np.float64)
                ten.model_hash = _hash(ten.model)
            ten.lam_used = tck["lam_used"]
            ten.metric = tck["metric"]
            ten.setup_cost = dict(tck["setup_cost"])
            ten.serve_cost = dict(tck["serve_cost"])
            ten.counters.update(
                {k: int(v) for k, v in tck["counters"].items()}
            )
            ten.latencies = [float(v) for v in tck["latencies"]]
            ten.recovered_requests = int(tck["recovered_requests"])
        inflight = ck.get("in_flight")
        if not inflight:
            return
        name = inflight["tenant"]
        eidxs = [int(e) for e in inflight["eidxs"]]
        ten = self.tenants[name]
        # the restored sweep is the pre-dispatch state, so the fault is
        # contained to this tenant's in-flight batch by construction
        ten.faults += 1
        self._quarantine_if_exhausted(ten)
        reason = last_failure or "rank-died"
        if reason == "timeout":
            for eidx in eidxs:
                self._resolve(
                    eidx, "timed_out",
                    error=f"collective deadline missed while refitting"
                          f" tenant {name!r}; batch failed, tenant rolled"
                          f" back to its last committed model",
                )
        elif ten.state == "quarantined":
            for eidx in eidxs:
                self._resolve(
                    eidx, "failed",
                    error=f"rank died while refitting tenant {name!r},"
                          f" which exhausted its fault budget"
                          f" ({ten.faults} > {self.max_faults}); tenant"
                          f" quarantined with last-good model servable",
                )
        else:
            # deterministic replay: re-enqueue at the head, same order
            for eidx in reversed(eidxs):
                r = self.requests[eidx]
                r["recovered"] = True
                r["dispatched_at"] = None
                r["coalesced"] = 0
                self.queue.push_front(eidx, name,
                                      is_append=(r["op"] == "append"))
            self.counters["recovered"] += len(eidxs)
            ten.recovered_requests += len(eidxs)

    # -- onboarding ----------------------------------------------------------
    def setup(self) -> None:
        """Cold-fit every tenant on its onboarding rows (before t=0)."""
        for name in self.names:
            ten = self.tenants[name]
            spec = ten.spec
            knobs = dict(spec.knobs)
            knobs.pop("lam", None)  # spec.lam is authoritative
            sweep = StreamingSweep(
                spec.A[: spec.m0], np.asarray(spec.b[: spec.m0],
                                              dtype=np.float64),
                task=spec.task, comm=self.comm, max_rows=spec.max_rows,
                eig_memo=ten.eig_memo, lam=spec.lam, **knobs,
            )
            lam = spec.lam
            if lam is None:
                lam = (0.1 * sweep.lambda_max if spec.task == "lasso"
                       else 1.0)
            res = sweep.solve(lam=lam, warm_start=False)
            ten.sweep = sweep
            ten.lam_used = float(lam)
            ten.metric = float(res.final_metric)
            ten.setup_cost = _sum_cost_dicts([
                _cost_dict(sweep.revisions[0].append_cost),
                _cost_dict(res.cost),
            ])
            self._set_model(ten, res)
            with self.comm.ledger.paused():
                ten.last_good = sweep.checkpoint()
        self._emit_ck(None)

    # -- the loop ------------------------------------------------------------
    def _admit_due(self) -> None:
        trace = self.trace
        while (self.next_arrival < len(trace)
               and trace[self.next_arrival].t <= self.clock):
            eidx = self.next_arrival
            self.next_arrival += 1
            r = self.requests[eidx]
            if r["outcome"] is not None:
                continue
            ten = self.tenants[r["tenant"]]
            if ten.state == "quarantined" and r["op"] != "predict":
                err = TenantQuarantinedError(
                    f"tenant {r['tenant']!r} is quarantined after"
                    f" {ten.faults} faults; mutating requests are refused"
                    f" (predicts still serve the last committed model)",
                    tenant=r["tenant"], faults=ten.faults,
                )
                self._resolve(eidx, "quarantined", error=err)
                continue
            try:
                self.queue.offer(eidx, r["tenant"],
                                 is_append=(r["op"] == "append"),
                                 retry_after=self._retry_after())
            except AdmissionError as exc:
                self._resolve(eidx, "rejected", error=exc)

    def _execute_batch(self, ten: _Tenant, eidxs: list):
        """Apply the batch's mutations and warm-refit. Returns
        ``(res, dt_local, consumed_after, rev_before)``; raises
        :class:`SolverError` on bad data (caller rolls back)."""
        sweep = ten.sweep
        rev_before = len(sweep.revisions)
        pos = ten.consumed
        for eidx in eidxs:
            r = self.requests[eidx]
            rows = r["rows"]
            if r["op"] == "append":
                if pos + rows > ten.rows_total:
                    raise SolverError(
                        f"tenant {ten.spec.name!r} has no arrival data left:"
                        f" append wants rows [{pos}, {pos + rows}) of"
                        f" {ten.rows_total}"
                    )
                sweep.append(
                    ten.spec.A[pos: pos + rows],
                    np.asarray(ten.spec.b[pos: pos + rows], dtype=np.float64),
                )
                pos += rows
            elif r["op"] == "evict_oldest":
                sweep.evict(sweep.surviving_rows()[:rows])
            else:  # relabel_oldest: negate the oldest rows' current labels
                ids = sweep.surviving_rows()[:rows]
                order = sweep.arrival_order()
                sel = np.nonzero(np.isin(order, ids))[0]
                sweep.update_labels(order[sel], -sweep.b[sel])
        if len(sweep.revisions) == rev_before:
            # defined no-op (e.g. evicting zero rows): nothing to refit
            return None, 0.0, pos, rev_before
        res = sweep.solve(lam=ten.lam_used, warm_start=True)
        dt = float(res.cost.seconds)
        for rev in sweep.revisions[rev_before:]:
            dt += float(rev.append_cost.seconds)
            dt += float(rev.evict_cost.seconds)
        return res, dt, pos, rev_before

    def _execute_predict(self, ten: _Tenant, eidx: int) -> float:
        r = self.requests[eidx]
        rows = min(int(r["rows"]), ten.rows_total)
        X = ten.spec.A[:rows]
        self.comm.reset()
        scores = np.asarray(X @ ten.model, dtype=np.float64).ravel()
        self.comm.account_flops(2.0 * float(nnz_of(X)), "spmv")
        r["result_hash"] = _hash(scores)
        ten.serve_cost = _sum_cost_dicts([
            ten.serve_cost, _cost_dict(self.comm.ledger.snapshot()),
        ])
        return float(self.comm.ledger.seconds)

    def _commit(self, ten: _Tenant, res, pos: int, rev_before: int) -> None:
        sweep = ten.sweep
        new = [_cost_dict(rev.append_cost + rev.evict_cost)
               for rev in sweep.revisions[rev_before:]]
        if res is not None:
            new.append(_cost_dict(res.cost))
            self._set_model(ten, res)
            ten.metric = float(res.final_metric)
        ten.serve_cost = _sum_cost_dicts([ten.serve_cost] + new)
        ten.consumed = pos
        with self.comm.ledger.paused():
            ten.last_good = sweep.checkpoint()

    def _fault(self, ten: _Tenant, eidxs: list, outcome: str, err) -> None:
        """Contain a deterministic failure to this tenant: roll its
        sweep back to the last committed state, charge one fault, and
        fail only the batch that triggered it."""
        self._rollback(ten)
        ten.faults += 1
        self._quarantine_if_exhausted(ten)
        for eidx in eidxs:
            self._resolve(eidx, outcome, error=err)

    def _dispatch_one(self) -> None:
        nb = self.queue.next_batch()
        if nb is None:
            return
        name, eidxs = nb
        ten = self.tenants[name]
        # drop members that expired while queued
        live = []
        for eidx in eidxs:
            r = self.requests[eidx]
            dl = r["deadline"]
            if dl is not None and (self.clock - r["t"]) > dl:
                waited = self.clock - r["t"]
                err = DeadlineError(
                    f"request {eidx} for tenant {name!r} expired in the"
                    f" admission queue: waited {waited:.6g}s of a"
                    f" {dl:.6g}s deadline",
                    deadline=dl, latency=waited,
                )
                self._resolve(eidx, "timed_out", error=err)
            else:
                live.append(eidx)
        if not live:
            return
        is_predict = self.requests[live[0]]["op"] == "predict"
        if ten.state == "quarantined" and not is_predict:
            # queued before the quarantine struck
            err = TenantQuarantinedError(
                f"tenant {name!r} was quarantined while this request was"
                f" queued", tenant=name, faults=ten.faults,
            )
            for eidx in live:
                self._resolve(eidx, "quarantined", error=err)
            return
        self.dispatch_no += 1
        for eidx in live:
            self.requests[eidx]["dispatched_at"] = float(self.clock)
            self.requests[eidx]["coalesced"] = len(live)
        # ship the pre-dispatch state so a rank death mid-refit resumes
        # from exactly here and replays this batch deterministically
        self._emit_ck({"tenant": name, "eidxs": list(live)})
        try:
            if self.fault_hook is not None:
                self.fault_hook(self.comm, name, self.dispatch_no,
                                "predict" if is_predict else "refit")
            if is_predict:
                dt_local = self._execute_predict(ten, live[0])
                res, pos, rev_before = None, ten.consumed, None
            else:
                res, dt_local, pos, rev_before = self._execute_batch(ten, live)
        except SolverError as exc:
            self._fault(ten, live, "failed", exc)
            self._emit_ck(None)
            return
        except CommTimeoutError as exc:
            if self.comm.size > 1:
                # a real multi-rank timeout aborts the world; the
                # supervised pool (recover="checkpoint") owns recovery
                raise
            self._fault(ten, live, "timed_out", exc)
            self._emit_ck(None)
            return
        # fold per-rank cost asymmetry before it can touch control flow
        with self.comm.ledger.paused():
            dt = float(self.comm.allreduce(float(dt_local), MAX))
        self.clock += dt
        self._note_service(dt)
        late, ontime = [], []
        for eidx in live:
            r = self.requests[eidx]
            dl = r["deadline"]
            (late if dl is not None and (self.clock - r["t"]) > dl
             else ontime).append(eidx)
        if not is_predict and not ontime:
            # every coalesced member missed its deadline: the refit is
            # wasted work — do not commit it
            self._rollback(ten)
            for eidx in late:
                r = self.requests[eidx]
                err = DeadlineError(
                    f"refit for tenant {name!r} finished at"
                    f" {self.clock:.6g}s, past every member's deadline;"
                    f" rolled back to the last committed model",
                    deadline=r["deadline"], latency=self.clock - r["t"],
                )
                self._resolve(eidx, "timed_out", error=err)
            self._emit_ck(None)
            return
        if not is_predict:
            self._commit(ten, res, pos, rev_before)
        for eidx in ontime:
            self._resolve(eidx, "completed")
        for eidx in late:
            r = self.requests[eidx]
            r["late"] = True
            err = DeadlineError(
                f"request {eidx} for tenant {name!r} completed past its"
                f" deadline (committed with the batch's on-time members)",
                deadline=r["deadline"] or 0.0, latency=self.clock - r["t"],
            )
            self._resolve(eidx, "timed_out", error=err)
        self._emit_ck(None)

    def run_loop(self) -> None:
        trace = self.trace
        while self.next_arrival < len(trace) or len(self.queue):
            self._admit_due()
            if not len(self.queue):
                if self.next_arrival < len(trace):
                    # idle until the next arrival (virtual time only)
                    gap = trace[self.next_arrival].t - self.clock
                    if gap > 0:
                        self.total_idle += gap
                        self.clock = trace[self.next_arrival].t
                    continue
                break
            self._dispatch_one()
        self._emit_ck(None)

    # -- report --------------------------------------------------------------
    def finish(self, config: dict) -> dict:
        # the run's request counters survive on the ledger (solves and
        # mutations reset it mid-run, so patch the final totals here)
        led = self.comm.ledger
        led.idle_seconds = float(self.total_idle)
        led.requests_rejected = int(self.counters["rejected"])
        led.requests_timed_out = int(self.counters["timed_out"])
        led.requests_quarantined = int(self.counters["quarantined"])
        led.requests_recovered = int(self.counters["recovered"])
        rctx = self.rctx
        tenants_block = []
        for name in self.names:
            ten = self.tenants[name]
            tenants_block.append({
                "name": name,
                "task": ten.spec.task,
                "state": ten.state,
                "faults": int(ten.faults),
                "lam": ten.lam_used,
                "rows": int(ten.sweep.n_rows),
                "rows_consumed": int(ten.consumed),
                "model_hash": ten.model_hash,
                "final_metric": ten.metric,
                "requests": dict(ten.counters),
                "latency": latency_stats(ten.latencies),
                "cost": {"setup": ten.setup_cost, "serve": ten.serve_cost},
                "recovery": {
                    "replayed_requests": int(ten.recovered_requests),
                    "faults": int(ten.faults),
                    "quarantined": ten.state == "quarantined",
                },
            })
        total_cost = _sum_cost_dicts(
            [t["cost"]["setup"] for t in tenants_block]
            + [t["cost"]["serve"] for t in tenants_block]
        )
        return build_report(
            config=config,
            tenants=tenants_block,
            requests=self.requests,
            clock=self.clock,
            idle_seconds=self.total_idle,
            counters=self.counters,
            total_cost=total_cost,
            recovery={
                "recoveries": 0 if rctx is None else int(rctx.recoveries),
                "respawns": 0 if rctx is None else int(rctx.respawns),
                "replayed_requests": int(self.counters["recovered"]),
            },
        )


def serve_trace(
    tenants,
    trace,
    *,
    queue_depth: int = 8,
    max_coalesce: int = 8,
    deadline: float | None = None,
    comm_deadline: float | None = None,
    tenant_max_faults: int = 1,
    backend: str = "virtual",
    ranks: int = 4,
    virtual_p: int = 1,
    machine: MachineSpec | None = None,
    recover: str = "raise",
    max_recoveries: int = 2,
    run_timeout: float = 120.0,
    nb_depth: int | None = None,
    checkpoint_path=None,
    resume_from=None,
    fault_plan=None,
    fault_hook=None,
) -> dict:
    """Serve a timestamped arrival ``trace`` over ``tenants`` and return
    the versioned report (:mod:`repro.serve.report`).

    ``tenants`` is a list of :class:`TenantSpec`; ``trace`` a list of
    :class:`~repro.serve.trace.TraceEvent` or a path to a JSON/JSONL
    trace file. ``deadline`` is the default per-request deadline
    (virtual seconds from arrival; ``None`` = none), ``comm_deadline``
    the per-collective wall-clock deadline ridden on the existing
    ``timeout=`` plumbing. ``backend``/``ranks``/``virtual_p``/
    ``machine`` select the world exactly as
    :func:`repro.streaming.replay_schedule` does, and
    ``recover="checkpoint"`` (process backend) turns a rank death
    mid-refit into a supervised recovery of only the faulted tenant's
    in-flight batch. ``fault_plan`` (a :class:`~repro.faults.FaultPlan`)
    is injected on the first physical attempt only; ``fault_hook``
    (``hook(comm, tenant, dispatch_no, op)`` with ``op`` one of
    ``"refit"``/``"predict"``) runs before every dispatch — both are
    test/chaos instrumentation. ``nb_depth`` sizes the thread/process
    backends' nonblocking-collective slot ring; the default is derived
    from the tenants' ``async_``/``tau`` knobs (``tau + 2`` when any
    tenant runs asynchronously).
    """
    specs = list(tenants)
    if nb_depth is None:
        nb_depth = NB_RING_DEPTH
        for spec in specs:
            if spec.knobs.get("async_"):
                nb_depth = max(nb_depth, int(spec.knobs.get("tau", 1)) + 2)
    if not specs:
        raise ServeError("serve_trace needs at least one tenant")
    seen = set()
    for spec in specs:
        if not isinstance(spec, TenantSpec):
            raise ServeError(
                f"tenants must be TenantSpec, got {type(spec).__name__}"
            )
        if not spec.name or spec.name in seen:
            raise ServeError(f"tenant names must be unique and non-empty;"
                             f" offending spec: {spec.name!r}")
        seen.add(spec.name)
        if spec.task not in ("lasso", "svm"):
            raise ServeError(
                f"tenant {spec.name!r}: unknown task {spec.task!r}"
            )
        m_total = int(spec.A.shape[0])
        if not 1 <= int(spec.m0) <= m_total:
            raise ServeError(
                f"tenant {spec.name!r}: m0={spec.m0} out of range for"
                f" {m_total} rows"
            )
        if int(np.asarray(spec.b).ravel().shape[0]) != m_total:
            raise ServeError(
                f"tenant {spec.name!r}: len(b) != rows of A"
            )
    if isinstance(trace, (str, os.PathLike)):
        events = load_trace(trace)
    else:
        events = trace
    events = validate_trace(events, known_tenants=seen)
    if deadline is not None:
        deadline = float(deadline)
        if deadline <= 0:
            raise ServeError(f"deadline must be > 0, got {deadline}")
    if recover not in ("raise", "checkpoint"):
        raise ServeError(
            f"recover must be 'raise' or 'checkpoint', got {recover!r}"
        )
    if recover == "checkpoint" and backend != "process":
        raise ServeError(
            "recover='checkpoint' needs backend='process' (the supervised"
            " worker pool)"
        )
    config = {
        "tenants": sorted(seen),
        "requests": len(events),
        "queue_depth": int(queue_depth),
        "max_coalesce": int(max_coalesce),
        "deadline": deadline,
        "comm_deadline": comm_deadline,
        "tenant_max_faults": int(tenant_max_faults),
        "backend": backend,
        "ranks": 1 if backend == "virtual" else int(ranks),
        "virtual_p": int(virtual_p),
    }

    def work(comm, rank):
        rctx = getattr(comm, "recovery", None)
        if rctx is not None and not rctx.active:
            rctx = None
        if fault_plan is not None and (rctx is None or rctx.recoveries == 0):
            comm = FaultyComm(comm, fault_plan)
        if comm_deadline is not None:
            comm.timeout = float(comm_deadline)
        eng = _Engine(
            comm, specs, events,
            default_deadline=deadline, queue_depth=queue_depth,
            max_coalesce=max_coalesce, max_faults=tenant_max_faults,
            rctx=rctx, checkpoint_path=checkpoint_path,
            fault_hook=fault_hook,
        )
        resume_src = resume_from
        if rctx is not None and rctx.resume is not None:
            # a redispatched attempt resumes from the supervisor's
            # latest collected checkpoint, not the caller's original one
            resume_src = rctx.resume
        if resume_src is not None:
            ck = _load_serve_checkpoint(resume_src)
            eng.restore(ck, None if rctx is None else rctx.last_failure)
        else:
            eng.setup()
        eng.run_loop()
        return eng.finish(config)

    if backend == "virtual":
        return work(VirtualComm(virtual_size=virtual_p, machine=machine), 0)
    if backend not in ("thread", "process"):
        raise ServeError(
            f"unknown backend {backend!r}; known: ['virtual', 'thread',"
            f" 'process']"
        )
    if ranks < 1:
        raise ServeError(f"ranks must be >= 1, got {ranks}")
    if backend == "thread":
        out = spmd_run(work, ranks, machine=machine,
                       cost_size=max(virtual_p, ranks), timeout=run_timeout,
                       nb_depth=nb_depth)
    else:
        out = process_spmd_run(
            work, ranks, machine=machine, cost_size=max(virtual_p, ranks),
            timeout=run_timeout, recover=recover,
            max_recoveries=max_recoveries, nb_depth=nb_depth,
        )
    return out.values[0]
