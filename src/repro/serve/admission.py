"""Bounded admission queue with per-tenant fairness and append coalescing.

The queue is the engine's backpressure boundary. Capacity is a single
global bound (``depth``) shared by all tenants — when it is full,
:meth:`AdmissionQueue.offer` raises :class:`~repro.errors.AdmissionError`
naming the depth it bounced off, and the engine records the rejection
instead of growing memory without limit.

Inside the bound, tenants are isolated from each other's load:

* each tenant has its own FIFO, so a burst from tenant A queues behind
  A's own work, not in front of B's;
* :meth:`next_batch` serves tenant FIFOs round-robin with a persistent
  cursor, so a tenant that saturates the queue cannot starve the
  others — every tenant with pending work is visited once per cycle;
* consecutive ``append`` requests at the head of a tenant's FIFO are
  coalesced (up to ``max_coalesce``) into one batch, amortising one
  warm refit over many arrivals. Evict/relabel/predict requests are
  never coalesced: they are barriers, so replay order stays exactly
  the arrival order within a tenant.

State is tiny (request indices + the round-robin cursor), so the queue
checkpoints alongside the engine via :meth:`to_state` /
:meth:`from_state` and survives rank-death recovery.
"""

from __future__ import annotations

from collections import deque

from repro.errors import AdmissionError, ServeError

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """Bounded multi-tenant FIFO with round-robin dispatch.

    Items are opaque integer request indices (the engine indexes into
    its request table); the queue only needs each item's tenant and,
    for coalescing, whether it is an ``append``.
    """

    def __init__(self, depth: int, tenants, *, max_coalesce: int = 8):
        depth = int(depth)
        if depth < 1:
            raise ServeError(f"queue depth must be >= 1, got {depth}")
        max_coalesce = int(max_coalesce)
        if max_coalesce < 1:
            raise ServeError(f"max_coalesce must be >= 1, got {max_coalesce}")
        names = list(tenants)
        if not names:
            raise ServeError("AdmissionQueue needs at least one tenant")
        if len(set(names)) != len(names):
            raise ServeError(f"duplicate tenant names: {names}")
        self.depth = depth
        self.max_coalesce = max_coalesce
        self._names = names
        self._fifos = {name: deque() for name in names}
        self._occupancy = 0
        self._cursor = 0

    def __len__(self) -> int:
        return self._occupancy

    @property
    def full(self) -> bool:
        return self._occupancy >= self.depth

    def pending(self, tenant: str) -> int:
        """Queued request count for one tenant."""
        return len(self._fifos[tenant])

    def offer(self, eidx: int, tenant: str, *, is_append: bool,
              retry_after: float = 0.0) -> None:
        """Enqueue request ``eidx`` for ``tenant`` or reject with
        :class:`AdmissionError` when the global bound is hit."""
        if tenant not in self._fifos:
            raise ServeError(f"unknown tenant {tenant!r}")
        if self._occupancy >= self.depth:
            raise AdmissionError(
                f"admission queue full (depth {self.depth}): rejecting "
                f"request for tenant {tenant!r}",
                queue_depth=self.depth,
                retry_after=retry_after,
            )
        self._fifos[tenant].append((int(eidx), bool(is_append)))
        self._occupancy += 1

    def push_front(self, eidx: int, tenant: str, *, is_append: bool) -> None:
        """Re-enqueue at the head of a tenant's FIFO (recovery replay).

        Bypasses the capacity bound: the request already held a slot
        when the fault struck, so replaying it must not be rejectable.
        """
        if tenant not in self._fifos:
            raise ServeError(f"unknown tenant {tenant!r}")
        self._fifos[tenant].appendleft((int(eidx), bool(is_append)))
        self._occupancy += 1

    def next_batch(self):
        """Pop the next dispatch batch: ``(tenant, [eidx, ...])``.

        Round-robin over tenant FIFOs from the persistent cursor; the
        head request is popped, and while it is an ``append``, further
        consecutive appends are coalesced up to ``max_coalesce``.
        Returns ``None`` when the queue is empty.
        """
        n = len(self._names)
        for step in range(n):
            name = self._names[(self._cursor + step) % n]
            fifo = self._fifos[name]
            if not fifo:
                continue
            # next cycle starts after the tenant we just served
            self._cursor = (self._cursor + step + 1) % n
            eidx, is_append = fifo.popleft()
            self._occupancy -= 1
            batch = [eidx]
            while (is_append and len(batch) < self.max_coalesce
                   and fifo and fifo[0][1]):
                batch.append(fifo.popleft()[0])
                self._occupancy -= 1
            return name, batch
        return None

    def to_state(self) -> dict:
        """JSON-serialisable snapshot (request indices + cursor)."""
        return {
            "cursor": self._cursor,
            "fifos": {
                name: [[e, bool(a)] for e, a in fifo]
                for name, fifo in self._fifos.items()
            },
        }

    def from_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot in place."""
        fifos = state.get("fifos", {})
        if set(fifos) != set(self._names):
            raise ServeError(
                "queue checkpoint tenants do not match engine tenants: "
                f"{sorted(fifos)} vs {sorted(self._names)}"
            )
        self._cursor = int(state.get("cursor", 0)) % len(self._names)
        occupancy = 0
        for name in self._names:
            self._fifos[name] = deque(
                (int(e), bool(a)) for e, a in fifos[name]
            )
            occupancy += len(self._fifos[name])
        self._occupancy = occupancy
