"""Multi-tenant serving engine: admission control, deadlines,
backpressure, and per-tenant fault isolation over the supervised
SPMD worker pool.

Public surface:

* :func:`~repro.serve.engine.serve_trace` — replay a timestamped
  arrival trace over N tenants, return the versioned report;
* :class:`~repro.serve.engine.TenantSpec` — one tenant's data + solver
  configuration;
* :class:`~repro.serve.trace.TraceEvent` / :func:`~repro.serve.trace.
  load_trace` / :func:`~repro.serve.trace.synthetic_trace` — traces;
* :class:`~repro.serve.admission.AdmissionQueue` — the bounded,
  tenant-fair admission queue (exposed for tests and tooling).

See ``docs/SERVING.md`` for the architecture and the admission /
deadline / quarantine state machine.
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.engine import TenantSpec, serve_trace
from repro.serve.report import (
    SERVE_CHECKPOINT_VERSION,
    SERVE_REPORT_VERSION,
    build_report,
    latency_stats,
)
from repro.serve.trace import (
    TRACE_OPS,
    TraceEvent,
    load_trace,
    synthetic_trace,
    validate_trace,
)

__all__ = [
    "serve_trace",
    "TenantSpec",
    "TraceEvent",
    "TRACE_OPS",
    "load_trace",
    "synthetic_trace",
    "validate_trace",
    "AdmissionQueue",
    "SERVE_REPORT_VERSION",
    "SERVE_CHECKPOINT_VERSION",
    "build_report",
    "latency_stats",
]
