"""Serving-run report: schema, latency percentiles, per-tenant rollups.

One :func:`build_report` call turns the engine's raw run state into the
versioned, JSON-ready report that ``repro serve --save`` writes (via
``atomic_write_json``) and that ``benchmarks/bench_serve.py`` /
``scripts/check_regression.py`` gate on. Everything in the report is
derived from modelled (virtual) time and deterministic counters, so two
runs of the same trace produce identical reports.

Schema (``format_version`` = :data:`SERVE_REPORT_VERSION`):

* ``config`` — the engine knobs that shaped the run (queue depth,
  coalescing, deadlines, fault budget, backend);
* ``tenants`` — per-tenant block: state (``active``/``quarantined``),
  fault count, final model hash + metric, request counters, latency
  percentiles over that tenant's completed requests, modelled
  ``setup_cost`` (onboarding fit) and ``serve_cost`` (everything
  after), and a ``recovery`` block (replayed request count);
* ``requests`` — the full per-request table (arrival, dispatch,
  completion, outcome, latency, coalescing, recovery markers);
* ``totals`` — run-level counts, makespan, throughput, latency
  percentiles, idle time, and summed modelled cost;
* ``recovery`` — physical-attempt counters from the supervised worker
  pool (zeros outside ``recover="checkpoint"``).
"""

from __future__ import annotations

import math

__all__ = ["SERVE_REPORT_VERSION", "SERVE_CHECKPOINT_VERSION",
           "latency_stats", "build_report"]

#: report schema version; bump on any structural change
SERVE_REPORT_VERSION = 1

#: ``kind="serve-engine"`` checkpoint schema version
SERVE_CHECKPOINT_VERSION = 1

#: request outcomes, in the order the totals block enumerates them
OUTCOMES = ("completed", "rejected", "timed_out", "failed", "quarantined")


def _percentile(sorted_vals, q: float) -> float:
    """Nearest-rank percentile over an already-sorted list (deterministic,
    no interpolation surprises across numpy versions)."""
    if not sorted_vals:
        return 0.0
    idx = max(0, min(len(sorted_vals) - 1,
                     math.ceil(q / 100.0 * len(sorted_vals)) - 1))
    return float(sorted_vals[idx])


def latency_stats(latencies) -> dict:
    """p50/p95/p99 + mean/max over a list of latencies (virtual seconds)."""
    vals = sorted(float(v) for v in latencies)
    n = len(vals)
    return {
        "count": n,
        "p50": _percentile(vals, 50.0),
        "p95": _percentile(vals, 95.0),
        "p99": _percentile(vals, 99.0),
        "mean": (sum(vals) / n) if n else 0.0,
        "max": vals[-1] if n else 0.0,
    }


def build_report(*, config: dict, tenants: list, requests: list,
                 clock: float, idle_seconds: float, counters: dict,
                 total_cost: dict, recovery: dict) -> dict:
    """Assemble the versioned serving report from engine run state.

    ``tenants`` entries arrive fully formed from the engine (they carry
    per-tenant cost dicts the engine accumulated); this function adds
    the run-level rollups so the schema lives in one place.
    """
    completed = [r for r in requests if r["outcome"] == "completed"]
    lat = latency_stats([r["latency"] for r in completed
                         if r["latency"] is not None])
    outcome_counts = {o: sum(1 for r in requests if r["outcome"] == o)
                      for o in OUTCOMES}
    makespan = float(clock)
    return {
        "format_version": SERVE_REPORT_VERSION,
        "kind": "serve-report",
        "config": dict(config),
        "tenants": list(tenants),
        "requests": list(requests),
        "totals": {
            "requests": len(requests),
            "outcomes": outcome_counts,
            "recovered_requests": int(counters.get("recovered", 0)),
            "late_commits": sum(1 for r in requests if r.get("late")),
            "makespan_seconds": makespan,
            "throughput_rps": (
                len(completed) / makespan if makespan > 0 else 0.0
            ),
            "latency": lat,
            "idle_seconds": float(idle_seconds),
            "cost": dict(total_cost),
        },
        "recovery": dict(recovery),
    }
