"""Experiment harness: paper figures/tables as reusable sweeps."""

from repro.experiments.runner import (
    LASSO_SOLVERS,
    SVM_SOLVERS,
    ScaledDataset,
    ScalingPoint,
    SpeedupPoint,
    load_scaled,
    run_lasso,
    run_svm,
    speedup_vs_s,
    strong_scaling,
)
from repro.experiments.theory import (
    TheoreticalCosts,
    accbcd_costs,
    best_s,
    predicted_speedup,
    svm_dcd_costs,
)

__all__ = [
    "TheoreticalCosts",
    "accbcd_costs",
    "svm_dcd_costs",
    "predicted_speedup",
    "best_s",
    "ScaledDataset",
    "load_scaled",
    "LASSO_SOLVERS",
    "SVM_SOLVERS",
    "run_lasso",
    "run_svm",
    "strong_scaling",
    "speedup_vs_s",
    "ScalingPoint",
    "SpeedupPoint",
]
