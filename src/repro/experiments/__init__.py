"""Experiment harness: paper figures/tables as reusable sweeps."""

from repro.experiments.theory import (
    TheoreticalCosts,
    accbcd_costs,
    svm_dcd_costs,
    predicted_speedup,
    best_s,
)
from repro.experiments.runner import (
    ScaledDataset,
    load_scaled,
    LASSO_SOLVERS,
    SVM_SOLVERS,
    run_lasso,
    run_svm,
    strong_scaling,
    speedup_vs_s,
    ScalingPoint,
    SpeedupPoint,
)

__all__ = [
    "TheoreticalCosts",
    "accbcd_costs",
    "svm_dcd_costs",
    "predicted_speedup",
    "best_s",
    "ScaledDataset",
    "load_scaled",
    "LASSO_SOLVERS",
    "SVM_SOLVERS",
    "run_lasso",
    "run_svm",
    "strong_scaling",
    "speedup_vs_s",
    "ScalingPoint",
    "SpeedupPoint",
]
