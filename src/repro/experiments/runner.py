"""Experiment runner: dataset x solver x (P, mu, s) sweeps.

This module is the engine behind the benchmark harness: every figure and
table of the paper's evaluation maps to one of these entry points
(see DESIGN.md §5 for the index).

Running-time semantics: all "seconds" are **modelled** seconds from the
alpha-beta-gamma machine model at the requested virtual P, with flops
extrapolated to the paper-scale dataset via ``flop_scale`` (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets import registry
from repro.datasets.registry import get_dataset
from repro.errors import SolverError
from repro.machine.spec import CRAY_XC30, MachineSpec
from repro.mpi.process_backend import process_spmd_run
from repro.mpi.thread_backend import NB_RING_DEPTH, spmd_run
from repro.mpi.virtual_backend import VirtualComm
from repro.solvers import lasso as lasso_solvers
from repro.solvers import svm as svm_solvers
from repro.solvers.base import SolverResult
from repro.solvers.objectives import lambda_from_sigma_min
from repro.utils.validation import nnz_of

__all__ = [
    "ScaledDataset",
    "load_scaled",
    "LASSO_SOLVERS",
    "SVM_SOLVERS",
    "BACKENDS",
    "run_lasso",
    "run_svm",
    "strong_scaling",
    "speedup_vs_s",
]


@dataclass
class ScaledDataset:
    """A synthetic stand-in for one paper dataset, plus scaling metadata."""

    name: str
    A: object
    b: np.ndarray
    x_true: np.ndarray | None
    #: full-size nnz implied by the paper's Table II/IV row
    paper_nnz: float
    #: nnz of the generated stand-in
    actual_nnz: float
    #: full-size dimensions from the paper (m data points, n features)
    m_full: int = 0
    n_full: int = 0
    task: str = "lasso"
    lam: float | None = None

    @property
    def flop_scale(self) -> float:
        """Extrapolation factor from stand-in flops to paper-scale flops.

        Per-iteration sampled-block work scales with the nnz of one
        *column* (Lasso: ``f*m``) or one *row* (SVM: ``f*n``), not the
        total nnz — the iteration count is the same on both scales. So
        the factor is the ratio of per-column (resp. per-row) nnz between
        the paper's dataset and the stand-in.
        """
        m_act, n_act = self.A.shape
        if self.task == "lasso":
            paper_col_nnz = self.paper_nnz / max(self.n_full, 1)
            actual_col_nnz = self.actual_nnz / max(n_act, 1)
            return max(paper_col_nnz / max(actual_col_nnz, 1e-12), 1.0)
        paper_row_nnz = self.paper_nnz / max(self.m_full, 1)
        actual_row_nnz = self.actual_nnz / max(m_act, 1)
        return max(paper_row_nnz / max(actual_row_nnz, 1e-12), 1.0)

    @property
    def gather_scale(self) -> float:
        """Extrapolation factor for row-scan (gather) work.

        Lasso column extraction scans the local *rows*, so it scales with
        the row-count ratio; the SVM layout's gather term depends only on
        s and needs no extrapolation.
        """
        if self.task != "lasso":
            return 1.0
        return max(float(self.m_full) / max(self.A.shape[0], 1), 1.0)

    @property
    def kind_scales(self) -> dict:
        # "fixed" subproblem overhead is dataset-size independent
        return {"gather": self.gather_scale, "fixed": 1.0}

    @property
    def shape(self) -> tuple:
        return self.A.shape


_DATASET_CACHE: dict = {}


def load_scaled(
    name: str,
    target_cells: float = 150_000.0,
    seed: int = 0,
    lam_factor: float | None = None,
) -> ScaledDataset:
    """Generate (and cache) the scaled stand-in for a paper dataset.

    ``target_cells`` bounds ``m*n`` of the stand-in. ``lam_factor`` (for
    Lasso rows) computes ``lam = lam_factor * sigma_min`` per §IV-A.
    """
    key = (name, float(target_cells), seed, lam_factor)
    if key in _DATASET_CACHE:
        return _DATASET_CACHE[key]
    spec = get_dataset(name)
    m_full, n_full = spec.dims(as_reported=False)
    scale = min(1.0, target_cells / (float(m_full) * float(n_full)))
    out = registry.generate(name, scale=scale, seed=seed, max_side=4000)
    if spec.task == "lasso":
        A, b, x_true = out
    else:
        A, b = out
        x_true = None
    paper_nnz = spec.density * float(m_full) * float(n_full)
    ds = ScaledDataset(
        name=name,
        A=A,
        b=b,
        x_true=x_true,
        paper_nnz=paper_nnz,
        actual_nnz=float(nnz_of(A)),
        m_full=m_full,
        n_full=n_full,
        task=spec.task,
    )
    if spec.task == "lasso" and lam_factor is not None:
        ds.lam = lambda_from_sigma_min(A, lam_factor)
    _DATASET_CACHE[key] = ds
    return ds


#: solver-name -> callable registries (paper's curve labels)
LASSO_SOLVERS: dict[str, Callable] = {
    "cd": lasso_solvers.cd,
    "sa-cd": lasso_solvers.sa_cd,
    "bcd": lasso_solvers.bcd,
    "sa-bcd": lasso_solvers.sa_bcd,
    "acccd": lasso_solvers.acc_cd,
    "sa-acccd": lasso_solvers.sa_acc_cd,
    "accbcd": lasso_solvers.acc_bcd,
    "sa-accbcd": lasso_solvers.sa_acc_bcd,
}

SVM_SOLVERS: dict[str, Callable] = {
    "svm-l1": lambda A, b, **kw: svm_solvers.dcd(A, b, loss="l1", **kw),
    "sa-svm-l1": lambda A, b, **kw: svm_solvers.sa_dcd(A, b, loss="l1", **kw),
    "svm-l2": lambda A, b, **kw: svm_solvers.dcd(A, b, loss="l2", **kw),
    "sa-svm-l2": lambda A, b, **kw: svm_solvers.sa_dcd(A, b, loss="l2", **kw),
}


#: real-parallelism backends for `run_lasso`/`run_svm` (``"virtual"`` is
#: the default single-process cost-model mode)
BACKENDS = ("virtual", "thread", "process")


def _make_comm(P: int, machine: MachineSpec | None, ds: ScaledDataset) -> VirtualComm:
    return VirtualComm(
        virtual_size=P,
        machine=machine,
        flop_scale=ds.flop_scale,
        kind_scales=ds.kind_scales,
    )


def _run_backend(
    fn: Callable,
    pargs: tuple,
    kwargs: dict,
    ds: ScaledDataset,
    backend: str,
    ranks: int,
    P: int,
    machine: MachineSpec | None,
    recover: str = "raise",
    max_recoveries: int = 2,
    recovery_every: int = 10,
    nb_depth: int = NB_RING_DEPTH,
) -> SolverResult:
    """Dispatch one solve to the requested comm backend.

    ``virtual`` runs in-process at virtual P (the default, modelled
    costs extrapolated by the dataset's flop scale); ``thread`` /
    ``process`` run ``ranks`` real SPMD participants with costs modelled
    at ``max(P, ranks)`` ranks, returning rank 0's result.
    ``recover="checkpoint"`` (process backend only) lets the supervised
    worker pool respawn dead ranks and replay from the latest checkpoint
    (emitted every ``recovery_every`` iterations).
    """
    if backend not in BACKENDS:
        raise SolverError(f"unknown backend {backend!r}; known: {list(BACKENDS)}")
    if recover not in ("raise", "checkpoint"):
        raise SolverError(
            f"recover must be 'raise' or 'checkpoint', got {recover!r}"
        )
    if recover == "checkpoint" and backend != "process":
        raise SolverError(
            "recover='checkpoint' needs backend='process' (the supervised"
            " worker pool)"
        )
    if backend == "virtual":
        return fn(*pargs, comm=_make_comm(P, machine, ds), **kwargs)
    if ranks < 1:
        raise SolverError(f"ranks must be >= 1, got {ranks}")

    def work(comm, rank):
        # apply the dataset's extrapolation factors before any charge, so
        # modelled costs stay comparable with the virtual backend's
        comm.ledger.default_scale = ds.flop_scale
        comm.ledger.kind_scales = dict(ds.kind_scales)
        from repro._api import _recovery_knobs

        ck_every, ck_sink, ck_resume = _recovery_knobs(
            comm, 0, None, None, default_every=recovery_every
        )
        kw = dict(kwargs)
        if ck_every:
            kw.update(
                checkpoint_every=ck_every, checkpoint_sink=ck_sink,
                resume_from=ck_resume,
            )
        return fn(*pargs, comm=comm, **kw)

    if backend == "thread":
        out = spmd_run(work, ranks, machine=machine, cost_size=max(P, ranks),
                       nb_depth=nb_depth)
    else:
        out = process_spmd_run(
            work, ranks, machine=machine, cost_size=max(P, ranks),
            recover=recover, max_recoveries=max_recoveries,
            nb_depth=nb_depth,
        )
    return out.root


def run_lasso(
    ds: ScaledDataset,
    solver: str,
    *,
    mu: int = 1,
    s: int | None = None,
    max_iter: int = 200,
    P: int = 1,
    machine: MachineSpec | None = CRAY_XC30,
    seed: int = 0,
    record_every: int = 1,
    lam: float | None = None,
    fast: bool = True,
    parity: str = "exact",
    pipeline: bool = False,
    async_: bool = False,
    tau: int = 1,
    backend: str = "virtual",
    ranks: int = 4,
    recover: str = "raise",
    max_recoveries: int = 2,
) -> SolverResult:
    """Run one Lasso-family solver on a scaled dataset at virtual P.

    ``fast`` toggles the SA solvers' fused inner loop (bit-identical
    iterates; exposed for before/after benchmarking) and ``parity`` its
    contract (``"exact"`` / ``"fp-tolerant"``). ``pipeline`` (SA solvers
    only) hides each outer step's reduction behind the next block's
    prefetch; ``async_``/``tau`` (SA solvers only) let ranks proceed on
    reductions up to ``tau`` outer steps stale — a weaker,
    convergence-to-tolerance contract; ``backend``/``ranks`` select real
    thread/process SPMD parallelism instead of the virtual cost model;
    ``recover``/``max_recoveries`` (process backend) enable supervised
    respawn-and-replay on rank death.
    """
    if solver not in LASSO_SOLVERS:
        raise SolverError(f"unknown lasso solver {solver!r}; known: {sorted(LASSO_SOLVERS)}")
    fn = LASSO_SOLVERS[solver]
    lam_val = lam if lam is not None else (ds.lam if ds.lam is not None else 0.1)
    kwargs = dict(max_iter=max_iter, seed=seed, record_every=record_every)
    if solver not in ("cd", "sa-cd", "acccd", "sa-acccd"):
        kwargs["mu"] = mu
    if solver.startswith("sa-"):
        kwargs["s"] = s if s is not None else 8
        kwargs["fast"] = fast
        kwargs["parity"] = parity
        kwargs["pipeline"] = pipeline
        kwargs["async_"] = async_
        kwargs["tau"] = tau
    elif pipeline or async_:
        knob = "pipeline" if pipeline else "async_"
        raise SolverError(
            f"{knob}=True needs an SA solver; {solver!r} synchronises "
            "every iteration"
        )
    return _run_backend(
        fn, (ds.A, ds.b, lam_val), kwargs, ds, backend, ranks, P, machine,
        recover=recover, max_recoveries=max_recoveries,
        recovery_every=(s if s is not None else 8)
        if solver.startswith("sa-") else 10,
        nb_depth=tau + 2 if async_ else NB_RING_DEPTH,
    )


def run_svm(
    ds: ScaledDataset,
    solver: str,
    *,
    s: int | None = None,
    lam: float = 1.0,
    max_iter: int = 1000,
    P: int = 1,
    machine: MachineSpec | None = CRAY_XC30,
    seed: int = 0,
    record_every: int = 0,
    tol: float | None = None,
    fast: bool = True,
    pipeline: bool = False,
    async_: bool = False,
    tau: int = 1,
    backend: str = "virtual",
    ranks: int = 4,
    recover: str = "raise",
    max_recoveries: int = 2,
) -> SolverResult:
    """Run one SVM solver on a scaled dataset at virtual P.

    ``pipeline``/``async_``/``tau``/``backend``/``ranks``/``recover``/
    ``max_recoveries`` as in :func:`run_lasso`.
    """
    if solver not in SVM_SOLVERS:
        raise SolverError(f"unknown svm solver {solver!r}; known: {sorted(SVM_SOLVERS)}")
    fn = SVM_SOLVERS[solver]
    kwargs = dict(
        lam=lam,
        max_iter=max_iter,
        seed=seed,
        record_every=record_every,
        tol=tol,
    )
    if solver.startswith("sa-"):
        kwargs["s"] = s if s is not None else 8
        kwargs["fast"] = fast
        kwargs["pipeline"] = pipeline
        kwargs["async_"] = async_
        kwargs["tau"] = tau
    elif pipeline or async_:
        knob = "pipeline" if pipeline else "async_"
        raise SolverError(
            f"{knob}=True needs an SA solver; {solver!r} synchronises "
            "every iteration"
        )
    return _run_backend(
        fn, (ds.A, ds.b), kwargs, ds, backend, ranks, P, machine,
        recover=recover, max_recoveries=max_recoveries,
        recovery_every=(s if s is not None else 8)
        if solver.startswith("sa-") else 10,
        nb_depth=tau + 2 if async_ else NB_RING_DEPTH,
    )


@dataclass
class ScalingPoint:
    """One (P, s) cell of a strong-scaling study."""

    P: int
    s: int
    seconds: float
    comm_seconds: float
    compute_seconds: float
    messages: int
    words: float


def strong_scaling(
    ds: ScaledDataset,
    solver: str,
    Ps: list,
    *,
    s: int = 1,
    mu: int = 1,
    max_iter: int = 200,
    machine: MachineSpec = CRAY_XC30,
    seed: int = 0,
    task: str = "lasso",
    lam: float = 1.0,
) -> list:
    """Modelled running time of one solver across processor counts
    (paper Fig. 4a-4d)."""
    points = []
    for P in Ps:
        if task == "lasso":
            res = run_lasso(
                ds, solver, mu=mu, s=s if solver.startswith("sa-") else None,
                max_iter=max_iter, P=P, machine=machine, seed=seed, record_every=0,
            )
        else:
            res = run_svm(
                ds, solver, s=s if solver.startswith("sa-") else None, lam=lam,
                max_iter=max_iter, P=P, machine=machine, seed=seed, record_every=0,
            )
        c = res.cost
        points.append(
            ScalingPoint(
                P=P,
                s=s if solver.startswith("sa-") else 1,
                seconds=c.seconds,
                comm_seconds=c.comm_seconds,
                compute_seconds=c.compute_seconds,
                messages=c.messages,
                words=c.words,
            )
        )
    return points


@dataclass
class SpeedupPoint:
    """One s value of a speedup-breakdown study (paper Fig. 4e-4h)."""

    s: int
    total: float
    communication: float
    computation: float


def speedup_vs_s(
    ds: ScaledDataset,
    base_solver: str,
    sa_solver: str,
    s_values: list,
    *,
    mu: int = 1,
    max_iter: int = 200,
    P: int = 1024,
    machine: MachineSpec = CRAY_XC30,
    seed: int = 0,
    task: str = "lasso",
    lam: float = 1.0,
) -> list:
    """Total / communication / computation speedups of the SA variant
    over the classical one, for a sweep of s (paper Fig. 4e-4h)."""

    def _run(solver, s):
        if task == "lasso":
            return run_lasso(
                ds, solver, mu=mu, s=s, max_iter=max_iter, P=P,
                machine=machine, seed=seed, record_every=0,
            )
        return run_svm(
            ds, solver, s=s, lam=lam, max_iter=max_iter, P=P,
            machine=machine, seed=seed, record_every=0,
        )

    base = _run(base_solver, None).cost
    points = []
    for s in s_values:
        sa = _run(sa_solver, s).cost
        points.append(
            SpeedupPoint(
                s=s,
                total=base.seconds / max(sa.seconds, 1e-300),
                communication=base.comm_seconds / max(sa.comm_seconds, 1e-300),
                computation=base.compute_seconds / max(sa.compute_seconds, 1e-300),
            )
        )
    return points
