"""Analytic cost model — the paper's Table I, with constants.

Table I (for a sparse A with ``fmn`` uniformly distributed non-zeros,
density ``f``, P processors, block size mu, unrolling parameter s,
H iterations):

=============  ==============================  ==================================
cost           accBCD                          SA-accBCD
=============  ==============================  ==================================
Ops (F)        O(H mu^2 f m / P + H mu^3)      O(H mu^2 s f m / P + H mu^3)
Memory (M)     O(f m n / P + m / P + mu^2 + n)  O(f m n / P + m / P + mu^2 s^2 + n)
Latency (L)    O(H log P)                      O((H / s) log P)
Bandwidth (W)  O(H mu^2 log P)                 O(H s mu^2 log P)
=============  ==============================  ==================================

The functions here give the same quantities *with the constants our
implementation produces* (symmetric Gram packing, the projected history
vectors riding along with G), so the tracer-measured counts can be
asserted against them exactly, and modelled runtimes can be predicted
without running the solver (used by the ``communication_cost_planner``
example and the Fig. 4 crossover analysis).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CostModelError
from repro.linalg.packing import packed_length
from repro.machine.spec import MachineSpec

__all__ = ["TheoreticalCosts", "accbcd_costs", "svm_dcd_costs", "predicted_speedup", "best_s"]


@dataclass(frozen=True)
class TheoreticalCosts:
    """Critical-path costs of H iterations."""

    #: local numeric flops (Gram, projections, subproblem) on the critical path
    flops: float
    #: memory-bound gather work (column/row extraction), scalar-rate flops
    extraction_flops: float
    #: fixed per-iteration subproblem overhead (dataset-size independent)
    fixed_flops: float
    #: per-processor memory footprint, words
    memory: float
    #: messages on the critical path (latency count)
    latency: int
    #: words moved on the critical path (bandwidth count)
    bandwidth: float
    #: synchronisation rounds at the algorithm level (Allreduce calls)
    sync_rounds: int
    #: Gram working-set bytes (drives the cache penalty for large s*mu)
    gram_working_set: float = 0.0

    def modelled_seconds(self, machine: MachineSpec, gram_kind: str = "blas3") -> float:
        """alpha-beta-gamma time: latency + bandwidth + numeric + gather."""
        comm = machine.alpha * self.latency + machine.beta * self.bandwidth
        rate = machine.flop_rate(gram_kind, working_set_bytes=self.gram_working_set or None)
        comp = self.flops / rate
        gather = self.extraction_flops / machine.flop_rate("gather")
        fixed = self.fixed_flops / machine.flop_rate("fixed")
        return comm + comp + gather + fixed


def _rounds(P: int) -> int:
    if P < 1:
        raise CostModelError(f"P must be >= 1, got {P}")
    return 0 if P == 1 else int(math.ceil(math.log2(P)))


def accbcd_costs(
    H: int,
    mu: int,
    f: float,
    m: int,
    n: int,
    P: int,
    s: int = 1,
    extra_vectors: int | None = None,
    symmetric: bool = True,
) -> TheoreticalCosts:
    """Costs of H iterations of (SA-)accBCD; ``s = 1`` is classical accBCD.

    ``extra_vectors`` is the number of m-vectors projected along with the
    Gram matrix. Default: 1 for the classical method (it projects the
    pre-combined ``theta^2 ytil + ztil``), 2 for SA (which must project
    ``ytil`` and ``ztil`` separately because theta changes inside the
    inner loop, Alg. 2 line 12).
    """
    if H < 1 or mu < 1 or s < 1:
        raise CostModelError("H, mu, s must all be >= 1")
    if extra_vectors is None:
        extra_vectors = 1 if s == 1 else 2
    if not (0.0 < f <= 1.0):
        raise CostModelError(f"density f must be in (0, 1], got {f}")
    rounds = _rounds(P)
    outers = math.ceil(H / s)
    k = s * mu
    # one packed Allreduce per outer step
    words_per_outer = packed_length(k, extra_vectors, symmetric)
    latency = outers * rounds
    bandwidth = outers * rounds * float(words_per_outer)
    # local Gram + projections per outer: the sampled block has ~ f*m*k/P
    # local non-zeros; symmetric Gram costs nnz*(k+1), projections 2*nnz*c
    nnz_block = f * m * k / P
    gram = nnz_block * (k + 1) if symmetric else 2.0 * nnz_block * k
    proj = 2.0 * nnz_block * extra_vectors
    # numeric inner work: sampled-column updates of the partitioned vectors
    flops = outers * (gram + proj + 2.0 * nnz_block)
    # column gather from the row-major local shard (memory bound): an index
    # scan over the ~m/P local rows per outer step, a copy of the extracted
    # non-zeros, and streaming updates of the partitioned m-vectors every
    # iteration (plus the theta-combine in the classical method)
    stream_per_iter = 3.0 * m / P + (2.0 * m / P if s == 1 else 0.0)
    extraction = outers * (2.0 * m / P + 6.0 * nnz_block) + H * stream_per_iter
    # fixed per-iteration subproblem overhead: LAPACK eigensolve + prox +
    # replicated-vector bookkeeping, plus SA's Gram-block corrections
    fixed = H * (1200.0 + 10.0 * mu**3) + outers * 2.0 * (mu * mu) * (s * (s - 1))
    memory = f * m * n / P + m / P + float(k) * k + 2.0 * n
    return TheoreticalCosts(
        flops=flops,
        extraction_flops=extraction,
        fixed_flops=fixed,
        memory=memory,
        latency=latency,
        bandwidth=bandwidth,
        sync_rounds=outers,
        gram_working_set=8.0 * k * k + 12.0 * nnz_block,
    )


def svm_dcd_costs(
    H: int,
    f: float,
    m: int,
    n: int,
    P: int,
    s: int = 1,
    symmetric: bool = True,
) -> TheoreticalCosts:
    """Costs of H iterations of (SA-)SVM dual CD (Alg. 3 / Alg. 4)."""
    if H < 1 or s < 1:
        raise CostModelError("H and s must be >= 1")
    if not (0.0 < f <= 1.0):
        raise CostModelError(f"density f must be in (0, 1], got {f}")
    rounds = _rounds(P)
    outers = math.ceil(H / s)
    words_per_outer = packed_length(s, 1, symmetric)
    latency = outers * rounds
    bandwidth = outers * rounds * float(words_per_outer)
    nnz_block = f * n * s / P  # s sampled rows, ~ f*n/P local nnz each
    gram = nnz_block * (s + 1) if symmetric else 2.0 * nnz_block * s
    proj = 2.0 * nnz_block
    flops = outers * (gram + proj + 2.0 * nnz_block)
    extraction = outers * (2.0 * s + 6.0 * nnz_block)
    fixed = H * 1200.0 + outers * 2.0 * (s * (s - 1))
    memory = f * m * n / P + n / P + float(s) * s + 2.0 * m
    return TheoreticalCosts(
        flops=flops,
        extraction_flops=extraction,
        fixed_flops=fixed,
        memory=memory,
        latency=latency,
        bandwidth=bandwidth,
        sync_rounds=outers,
        gram_working_set=8.0 * s * s + 12.0 * nnz_block,
    )


def predicted_speedup(
    machine: MachineSpec,
    H: int,
    mu: int,
    f: float,
    m: int,
    n: int,
    P: int,
    s: int,
    kind: str = "lasso",
) -> float:
    """Modelled speedup of the SA variant at unrolling ``s`` over s=1."""
    cost_fn = accbcd_costs if kind == "lasso" else svm_dcd_costs
    if kind == "lasso":
        base = cost_fn(H, mu, f, m, n, P, s=1)
        sa = cost_fn(H, mu, f, m, n, P, s=s)
    else:
        base = cost_fn(H, f, m, n, P, s=1)
        sa = cost_fn(H, f, m, n, P, s=s)
    # classical method: single dots run at BLAS-1 rate; SA: BLAS-3 Gram
    # (until the cache penalty bites, via gram_working_set)
    t0 = base.modelled_seconds(machine, gram_kind="blas1" if mu == 1 else "blas3")
    t1 = sa.modelled_seconds(machine, gram_kind="blas3")
    return t0 / t1


def best_s(
    machine: MachineSpec,
    H: int,
    mu: int,
    f: float,
    m: int,
    n: int,
    P: int,
    s_grid=(2, 4, 8, 16, 32, 64, 128, 256, 512),
    kind: str = "lasso",
) -> tuple[int, float]:
    """Grid-search the unrolling parameter: ``(s*, speedup(s*))``.

    This is the tuning decision the paper leaves to the user ("the best
    choice of s depends on the relative ... costs", §V).
    """
    best = (1, 1.0)
    for s in s_grid:
        sp = predicted_speedup(machine, H, mu, f, m, n, P, s, kind=kind)
        if sp > best[1]:
            best = (s, sp)
    return best
