"""Checkpoint/resume for the SPMD solvers (fault-tolerance layer).

A solver checkpoint is a small JSON-serialisable dict of the *replicated*
solver state — the solution iterate(s), the momentum scalar where one
exists, the termination state, the convergence history, and the cost
ledger totals. Local shards (partitioned residuals, primal column shards)
are **recomputed** from the replicated state on resume, and the sampler
is resumed by **replay**: the checkpoint stores the integer seed plus the
number of draws consumed, and resume recreates the sampler and burns that
many draws.

Replay is what makes a checkpoint backend- and schedule-portable: the
same file resumes under the virtual, thread, or process backend, blocking
or pipelined, with any SA depth ``s`` — every solver consumes exactly one
draw per iteration from the shared stream (the same invariant behind the
paper's SA/classical exact equivalence), so "burn ``iteration`` draws" is
a complete description of the sampler state. A pipelined run's
speculative prefetch draws ahead of the iteration counter, but those
draws feed exactly the iterations that follow, so the replayed stream
stays aligned.

Checkpoints written to a path use :func:`repro.utils.io.atomic_write_json`
(rank 0 only — the payload is replicated knowledge), so a crash mid-write
never corrupts the previous checkpoint. A callable sink is invoked on
every rank with the payload dict.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable

import numpy as np

from repro.errors import CheckpointError
from repro.machine.ledger import CostSnapshot
from repro.utils.io import atomic_write_json

__all__ = [
    "SOLVER_CHECKPOINT_VERSION",
    "require_int_seed",
    "read_checkpoint_json",
    "make_solver_checkpoint",
    "emit_solver_checkpoint",
    "load_solver_checkpoint",
    "resume_solver",
    "state_vector",
    "state_scalar",
]

#: Format version of solver checkpoint payloads. Bump on layout changes;
#: resume refuses versions it does not understand rather than guessing.
SOLVER_CHECKPOINT_VERSION = 1


def require_int_seed(seed: Any, what: str = "checkpointing") -> int:
    """Checkpointing resumes the sampler by replay, which needs the seed.

    A prebuilt sampler or a live ``numpy`` Generator cannot be replayed
    from a file, so both checkpoint emission and resume insist on a plain
    integer seed.
    """
    if isinstance(seed, (bool, np.bool_)) or not isinstance(seed, (int, np.integer)):
        raise CheckpointError(
            f"{what} requires an integer sampling seed (resume replays the"
            f" coordinate stream from it); got {type(seed).__name__}"
        )
    return int(seed)


def read_checkpoint_json(
    source: str | os.PathLike, what: str = "checkpoint"
) -> dict:
    """Read a checkpoint file into a dict, or raise CheckpointError.

    Every failure mode names the path and the reason: a missing file
    says so explicitly (the most common ``resume_from=`` typo), while
    truncated or garbage JSON surfaces the decoder's complaint instead
    of a raw ``JSONDecodeError``. A payload that parses to something
    other than an object is rejected here too, so callers can index the
    result without ``KeyError``/``TypeError`` escapes.
    """
    path = os.fspath(source)
    if not os.path.exists(path):
        raise CheckpointError(
            f"{what} file {path!r} does not exist — was resume_from="
            f" pointing at a checkpoint that was never written?"
        )
    try:
        with open(path, "r", encoding="utf-8") as fh:
            ck = json.load(fh)
    except OSError as exc:
        raise CheckpointError(
            f"could not read {what} {path!r}: {exc}"
        ) from exc
    except ValueError as exc:  # includes json.JSONDecodeError
        raise CheckpointError(
            f"{what} {path!r} is not valid JSON (truncated or corrupted"
            f" write?): {exc}"
        ) from exc
    if not isinstance(ck, dict):
        raise CheckpointError(
            f"{what} {path!r} holds a JSON {type(ck).__name__}, expected"
            f" an object"
        )
    return ck


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return np.asarray(value, dtype=np.float64).ravel().tolist()
    if isinstance(value, (np.floating, float)):
        return float(value)
    if isinstance(value, (np.integer, int)):
        return int(value)
    return value


def make_solver_checkpoint(
    *,
    family: str,
    solver: str,
    iteration: int,
    seed: int,
    params: dict,
    state: dict,
    term,
    history,
    ledger,
) -> dict:
    """Assemble one checkpoint payload (pure dict; no I/O).

    ``family`` scopes what the state means ("lasso-plain" carries ``x``,
    "lasso-acc" carries ``y``/``z``/``theta``, "svm" carries ``alpha``);
    ``params`` are the run parameters resume must match (``n``/``mu`` for
    Lasso, ``m``/``loss``/``lam`` for SVM). Arrays round-trip exactly:
    ``json`` emits shortest-repr floats, which reparse bit-identical.
    """
    return {
        "format_version": SOLVER_CHECKPOINT_VERSION,
        "kind": "solver",
        "family": family,
        "solver": solver,
        "iteration": int(iteration),
        "seed": require_int_seed(seed),
        "params": {k: _jsonable(v) for k, v in params.items()},
        "state": {k: _jsonable(v) for k, v in state.items()},
        "term_last": None if term._last is None else float(term._last),
        "history": {
            "metric_name": history.metric_name,
            "iterations": list(history.iterations),
            "metric": list(history.metric),
            "seconds": list(history.seconds),
            "comm_seconds": list(history.comm_seconds),
            "flops": list(history.flops),
        },
        "ledger": {
            "comm_seconds": ledger.comm_seconds,
            "compute_seconds": ledger.compute_seconds,
            "messages": ledger.messages,
            "words": ledger.words,
            "flops": ledger.flops,
            "comm_seconds_hidden": ledger.comm_seconds_hidden,
            "stale_seconds": ledger.stale_seconds,
            "max_staleness": ledger.max_staleness,
            "retries": ledger.retries,
            "timeouts": ledger.timeouts,
            # informational only: recovery counters describe the physical
            # run that wrote the checkpoint and are never restored (the
            # resuming run's worker pool owns its own counters)
            "recoveries": ledger.recoveries,
            "respawns": ledger.respawns,
            "replayed_iterations": ledger.replayed_iterations,
        },
    }


def emit_solver_checkpoint(
    payload: dict, sink: Callable | str | os.PathLike | None, rank: int = 0
) -> None:
    """Deliver a checkpoint: call a callable sink on every rank, or
    atomically write a path on rank 0 (the payload is replicated)."""
    if sink is None:
        return
    if callable(sink):
        sink(payload)
    elif rank == 0:
        # repro: lint-ignore[collective-in-rank-branch] -- rank-0 checkpoint
        # IO: a local atomic file write, no communication
        atomic_write_json(os.fspath(sink), payload)


def load_solver_checkpoint(
    source: dict | str | os.PathLike,
    *,
    family: str,
    seed: Any,
    params: dict,
) -> dict:
    """Read + validate a checkpoint against the resuming run's setup.

    ``source`` is a payload dict (e.g. captured by a callable sink) or a
    JSON path. The checkpoint must carry the same family, the same seed,
    and the same ``params`` the caller was invoked with — anything else
    would silently resume a *different* run, so it is a
    :class:`~repro.errors.CheckpointError` instead.
    """
    if isinstance(source, dict):
        ck = source
    else:
        ck = read_checkpoint_json(source, "solver checkpoint")
    if not isinstance(ck, dict) or ck.get("kind") != "solver":
        raise CheckpointError(
            f"resume_from is not a solver checkpoint"
            f" (kind={ck.get('kind')!r})"
            if isinstance(ck, dict)
            else "resume_from is not a solver checkpoint"
        )
    version = ck.get("format_version")
    if version != SOLVER_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format_version {version!r}"
            f" (this build reads {SOLVER_CHECKPOINT_VERSION})"
        )
    if ck.get("family") != family:
        raise CheckpointError(
            f"checkpoint family {ck.get('family')!r} cannot resume a"
            f" {family!r} solver"
        )
    seed_int = require_int_seed(seed, "resume")
    try:
        ck_seed = int(ck.get("seed", -1))
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint carries a garbage seed {ck.get('seed')!r}"
        ) from exc
    if ck_seed != seed_int:
        raise CheckpointError(
            f"checkpoint was written with seed {ck.get('seed')!r};"
            f" resume was called with seed {seed_int}"
        )
    got = ck.get("params", {})
    if not isinstance(got, dict):
        raise CheckpointError(
            f"checkpoint params are {type(got).__name__}, expected an object"
        )
    for key, want in params.items():
        have = got.get(key)
        if have != _jsonable(want):
            raise CheckpointError(
                f"checkpoint parameter mismatch: {key}={have!r} in the"
                f" checkpoint vs {want!r} in the resuming call"
            )
    it = ck.get("iteration")
    if not isinstance(it, int) or it < 0:
        raise CheckpointError(f"invalid checkpoint iteration {it!r}")
    return ck


def state_vector(ck: dict, key: str, length: int) -> np.ndarray:
    """A float64 state vector of the expected length, or CheckpointError."""
    state = ck.get("state", {})
    vals = state.get(key) if isinstance(state, dict) else None
    if vals is None:
        raise CheckpointError(f"checkpoint is missing state vector {key!r}")
    try:
        arr = np.asarray(vals, dtype=np.float64).ravel()
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint state {key!r} is not a numeric vector: {exc}"
        ) from exc
    if arr.shape[0] != length:
        raise CheckpointError(
            f"checkpoint state {key!r} has length {arr.shape[0]},"
            f" expected {length}"
        )
    return arr


def state_scalar(ck: dict, key: str) -> float:
    state = ck.get("state", {})
    vals = state.get(key) if isinstance(state, dict) else None
    if vals is None:
        raise CheckpointError(f"checkpoint is missing state scalar {key!r}")
    try:
        return float(vals)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint state {key!r} is not a scalar: {vals!r}"
        ) from exc


def resume_solver(ck: dict, *, sampler, term, history, ledger) -> int:
    """Restore runtime state from a validated checkpoint.

    Replays the sampler (burns ``iteration`` draws — one per completed
    iteration), restores the terminator's relative-change anchor, the
    history columns, and the ledger totals. Returns the iteration count
    to continue from.
    """
    hd = ck.get("history", {})
    if not isinstance(hd, dict):
        raise CheckpointError(
            f"checkpoint history is {type(hd).__name__}, expected an object"
        )
    if hd.get("metric_name") != history.metric_name:
        raise CheckpointError(
            f"checkpoint tracks {hd.get('metric_name')!r}, the resuming"
            f" solver tracks {history.metric_name!r}"
        )
    if not hd.get("metric"):
        raise CheckpointError("checkpoint history is empty")
    led = ck.get("ledger") or {}
    if not isinstance(led, dict):
        raise CheckpointError(
            f"checkpoint ledger is {type(led).__name__}, expected an object"
        )
    try:
        last = ck.get("term_last")
        term_last = None if last is None else float(last)
        columns = {
            "iterations": [int(v) for v in hd.get("iterations", [])],
            "metric": [float(v) for v in hd.get("metric", [])],
            "seconds": [float(v) for v in hd.get("seconds", [])],
            "comm_seconds": [float(v) for v in hd.get("comm_seconds", [])],
            "flops": [float(v) for v in hd.get("flops", [])],
        }
        snap = CostSnapshot(
            comm_seconds=float(led.get("comm_seconds", 0.0)),
            compute_seconds=float(led.get("compute_seconds", 0.0)),
            messages=int(led.get("messages", 0)),
            words=float(led.get("words", 0.0)),
            flops=float(led.get("flops", 0.0)),
            comm_seconds_hidden=float(led.get("comm_seconds_hidden", 0.0)),
            stale_seconds=float(led.get("stale_seconds", 0.0)),
            max_staleness=int(led.get("max_staleness", 0)),
            retries=int(led.get("retries", 0)),
            timeouts=int(led.get("timeouts", 0)),
        )
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint history/ledger columns hold non-numeric data: {exc}"
        ) from exc
    term._last = term_last
    history.iterations[:] = columns["iterations"]
    history.metric[:] = columns["metric"]
    history.seconds[:] = columns["seconds"]
    history.comm_seconds[:] = columns["comm_seconds"]
    history.flops[:] = columns["flops"]
    ledger.restore(snap)
    draws = int(ck["iteration"])
    advance = getattr(sampler, "next_block", None)
    if advance is None:
        advance = sampler.next_index
    for _ in range(draws):
        advance()
    return draws
