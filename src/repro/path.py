"""Warm-started regularization-path engine with cross-solve cache reuse.

Real deployments rarely solve one ``(lambda, mu, s)`` point — they sweep
a regularization path. Solving each point independently pays full
cold-start cost every time: a fresh communicator and ledger, a re-sliced
and re-converted shard (the CSC sampling view), fresh gather/pack/Gram
buffers, a cold eigenvalue memo, and ``x0 = 0``. This module amortises
all of it:

* :class:`SweepContext` owns the partitioned matrix (and with it the
  cached CSC/CSR sampling views, the reusable :class:`~repro.linalg.
  kernels.GatherWorkspace`, the packed-collective send/receive buffers,
  and the reusable Gram output buffers of ``gram_and_project``), the
  communicator whose ledger is reset per point (so each
  :class:`~repro.solvers.base.SolverResult` carries *per-point* modelled
  cost), and the persistent eigenvalue memo shared by every solve.
* :func:`lasso_path` / :func:`svm_path` walk a lambda grid, threading
  each point's solution (primal ``x`` for Lasso, dual ``alpha`` for SVM)
  into the next solve as a warm start.

Warm-started path solves are the standard trick that makes coordinate
methods competitive in practice; combined with the shared context the
sweep runs several times faster than independent cold solves
(``benchmarks/bench_path_sweep.py`` tracks the trajectory in
``BENCH_path_sweep.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro._api import _check_backend, _run_spmd, fit_lasso, fit_svm
from repro.errors import CheckpointError, SolverError
from repro.linalg.distmatrix import ColPartitionedMatrix, RowPartitionedMatrix
from repro.linalg.kernels import EigMemo, default_eig_memo
from repro.machine.ledger import CostSnapshot
from repro.machine.spec import MachineSpec
from repro.mpi.comm import Comm
from repro.mpi.thread_backend import NB_RING_DEPTH
from repro.mpi.virtual_backend import VirtualComm
from repro.solvers.base import SolverResult
from repro.solvers.serialization import result_from_dict, result_to_dict
from repro.solvers.svm.duality import loss_params
from repro.utils.io import atomic_write_json

__all__ = [
    "SweepContext",
    "PathResult",
    "PATH_CHECKPOINT_VERSION",
    "lambda_grid",
    "adaptive_schedule",
    "lasso_path",
    "svm_path",
]


def _data_fingerprint(A) -> tuple:
    """Cheap content signature: shape, weighted column sums, abs-sum.

    Representation-invariant (a dense array and its sparse form agree to
    rounding), sensitive to rescaling and column reordering. Partitioned
    matrices are fingerprinted on the *local shard*, so a multi-rank
    context compares shards — pass the context's own ``dist`` (which
    skips the check) when the global matrix is not rank-local.
    """
    if isinstance(A, (RowPartitionedMatrix, ColPartitionedMatrix)):
        A = A.local
    shape = tuple(A.shape)
    w = np.cos(np.arange(shape[1], dtype=np.float64))
    colsum = np.asarray(A.sum(axis=0)).ravel()
    if sp.issparse(A):
        abssum = float(np.abs(A.data).sum())
    else:
        abssum = float(np.abs(np.asarray(A, dtype=np.float64)).sum())
    return (shape, float(colsum @ w), abssum)


def _fingerprints_match(fp1: tuple, fp2: tuple, rtol: float = 1e-9) -> bool:
    """Compare signatures with rounding slack (summation orders differ
    between sparse and dense representations of the same data)."""
    if fp1[0] != fp2[0]:
        return False
    for a, b in zip(fp1[1:], fp2[1:], strict=True):
        if abs(a - b) > rtol * max(abs(a), abs(b), 1.0):
            return False
    return True


def _sum_costs(snaps: Sequence[CostSnapshot]) -> CostSnapshot:
    """Aggregate per-point snapshots into one sweep total."""
    return CostSnapshot(
        comm_seconds=sum(s.comm_seconds for s in snaps),
        compute_seconds=sum(s.compute_seconds for s in snaps),
        messages=sum(s.messages for s in snaps),
        words=sum(s.words for s in snaps),
        flops=sum(s.flops for s in snaps),
        comm_seconds_hidden=sum(s.comm_seconds_hidden for s in snaps),
        stale_seconds=sum(s.stale_seconds for s in snaps),
        max_staleness=max((s.max_staleness for s in snaps), default=0),
        retries=sum(s.retries for s in snaps),
        timeouts=sum(s.timeouts for s in snaps),
        recoveries=sum(s.recoveries for s in snaps),
        respawns=sum(s.respawns for s in snaps),
        replayed_iterations=sum(s.replayed_iterations for s in snaps),
    )


#: format version of path-sweep checkpoints (distinct from solver ones)
PATH_CHECKPOINT_VERSION = 1


def _emit_path_checkpoint(sink, rank, lams, results, x_warm, params) -> None:
    """One path checkpoint: completed points + the warm-start vector.

    Coarser-grained than solver checkpoints: a path resumes at the last
    completed grid point (each point's solve re-runs from its warm
    start), which keeps the payload to finished results only.
    """
    payload = {
        "format_version": PATH_CHECKPOINT_VERSION,
        "kind": "lasso-path",
        "lambdas": np.asarray(lams, dtype=np.float64).tolist(),
        "completed": len(results),
        "params": dict(params),
        "results": [result_to_dict(r) for r in results],
        "x_warm": None if x_warm is None else np.asarray(x_warm).tolist(),
    }
    if callable(sink):
        sink(payload)
    elif rank == 0:
        # repro: lint-ignore[collective-in-rank-branch] -- rank-0 checkpoint
        # IO: a local atomic file write, no communication
        atomic_write_json(sink, payload)


def _load_path_checkpoint(source, lams, params) -> tuple:
    """Validate + unpack a path checkpoint: (results, x_warm)."""
    if isinstance(source, dict):
        ck = source
    else:
        try:
            with open(source, "r", encoding="utf-8") as fh:
                ck = json.load(fh)
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"could not read path checkpoint {source!r}: {exc}"
            ) from exc
    if not isinstance(ck, dict) or ck.get("kind") != "lasso-path":
        raise CheckpointError("resume_from is not a lasso-path checkpoint")
    if ck.get("format_version") != PATH_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported path checkpoint format_version"
            f" {ck.get('format_version')!r}"
        )
    want = np.asarray(lams, dtype=np.float64)
    got = np.asarray(ck.get("lambdas", []), dtype=np.float64)
    if got.shape != want.shape or not np.array_equal(got, want):
        raise CheckpointError(
            "path checkpoint was written for a different lambda grid"
        )
    have = ck.get("params", {})
    for key, val in params.items():
        if have.get(key) != val:
            raise CheckpointError(
                f"path checkpoint parameter mismatch: {key}="
                f"{have.get(key)!r} vs {val!r}"
            )
    completed = ck.get("completed", 0)
    res_dicts = ck.get("results", [])
    if not isinstance(completed, int) or completed != len(res_dicts):
        raise CheckpointError("path checkpoint completed/results disagree")
    if completed > want.size:
        raise CheckpointError("path checkpoint has more points than the grid")
    results = [result_from_dict(d) for d in res_dicts]
    x_warm = ck.get("x_warm")
    if x_warm is not None:
        x_warm = np.asarray(x_warm, dtype=np.float64)
    return results, x_warm


def adaptive_schedule(
    n_points: int,
    max_iter: int,
    tol: float | None,
    tol_factor: float = 100.0,
    iter_factor: float = 0.25,
) -> list[tuple[int, float | None]]:
    """Per-point ``(max_iter, tol)`` budgets: loose early, tight late.

    Early grid points exist to warm-start later ones — solving them to
    the final tolerance wastes iterations on solutions nobody reads.
    Point ``i`` of ``n`` (solve order) gets ``tol * tol_factor^(1 - f)``
    and ``max_iter * (iter_factor + (1 - iter_factor) f)`` with
    ``f = i/(n-1)``; the *last* point always gets exactly ``(max_iter,
    tol)``, so the returned solution satisfies the caller's tolerance —
    tested to match the cold solve. ``tol=None`` stays None (budget-only
    points) while the iteration ramp still applies.
    """
    if n_points < 1:
        raise SolverError(f"n_points must be >= 1, got {n_points}")
    if tol_factor < 1.0 or not (0.0 < iter_factor <= 1.0):
        raise SolverError(
            f"need tol_factor >= 1 and 0 < iter_factor <= 1, got "
            f"({tol_factor}, {iter_factor})"
        )
    out = []
    for i in range(n_points):
        f = 1.0 if n_points == 1 else i / (n_points - 1)
        it = max(1, int(round(max_iter * (iter_factor + (1.0 - iter_factor) * f))))
        t = None if tol is None else tol * tol_factor ** (1.0 - f)
        out.append((it, t))
    return out


class SweepContext:
    """Shared state for a multi-solve sweep over one dataset.

    Parameters
    ----------
    A, b:
        Data matrix (global dense/CSR, or an already-partitioned
        :class:`RowPartitionedMatrix` / :class:`ColPartitionedMatrix`
        whose communicator is then adopted) and the label vector.
    task:
        ``"lasso"`` (row partition) or ``"svm"`` (column partition).
    comm, virtual_p, machine:
        Communicator, or the virtual-P model to build one from.

    The context builds the partitioned matrix **once**; every solve
    through it reuses the cached sampling views, gather workspace,
    packed-collective buffers, and Gram output buffers.

    The context **takes ownership of the communicator's ledger**: it is
    zeroed at every :meth:`begin_point` — including for an adopted
    communicator — so per-point modelled costs never accumulate
    silently; the sweep total stays available as :attr:`total_cost`. If
    a communicator's pre-sweep totals must survive, build the context
    from a fresh sibling instead (``SweepContext(A, b, comm=
    parent.child())`` — see :meth:`VirtualComm.child`).
    """

    def __init__(
        self,
        A,
        b,
        *,
        task: str = "lasso",
        comm: Comm | None = None,
        virtual_p: int = 1,
        machine: MachineSpec | None = None,
        balance_nnz: bool = True,
        eig_memo: EigMemo | None = None,
    ) -> None:
        if task not in ("lasso", "svm"):
            raise SolverError(f"unknown sweep task {task!r}; known: ['lasso', 'svm']")
        self.task = task
        if isinstance(A, (RowPartitionedMatrix, ColPartitionedMatrix)):
            want = RowPartitionedMatrix if task == "lasso" else ColPartitionedMatrix
            if not isinstance(A, want):
                raise SolverError(
                    f"{task} sweeps need a {want.__name__}, got {type(A).__name__}"
                )
            self.dist = A
        else:
            if comm is None:
                comm = VirtualComm(virtual_size=virtual_p, machine=machine)
            cls = RowPartitionedMatrix if task == "lasso" else ColPartitionedMatrix
            self.dist = cls.from_global(A, comm, balance_nnz=balance_nnz)
        self.comm = self.dist.comm
        self._fingerprint = _data_fingerprint(A)
        self.b = np.asarray(b, dtype=np.float64).ravel()
        #: the eigenvalue memo every solve through this context consults
        #: (threaded into the SA solvers via ``fit_lasso(eig_memo=)``).
        #: By default this is a reference to the *process-wide* memo: it
        #: persists across points and sweeps, which is what lets a
        #: repeated sampled-block stream skip its eigensolves — and it
        #: is shared with every other sweep in the process. Pass an
        #: explicit ``eig_memo=EigMemo()`` to isolate this sweep
        #: (concurrent sweeps/ranks then never contend on one memo).
        #: Exposed for hit-rate inspection (``ctx.eig_memo.hit_rate``).
        self.eig_memo: EigMemo = (
            eig_memo if eig_memo is not None else default_eig_memo()
        )
        self.point_costs: list[CostSnapshot] = []

    def check_problem(self, A, b) -> None:
        """Reject a (A, b) pair that is not this context's problem.

        ``lasso_path``/``svm_path`` solve the *context's* dataset when
        ``context=`` is given; this guard turns a silently-wrong sweep
        (results labelled with the caller's data but computed on the
        context's) into an error. ``A`` is matched by shape plus a
        content fingerprint (weighted column sums + abs-sum), so a
        rescaled, column-permuted, or re-generated same-shape matrix is
        caught, not just a wrong-shaped one. Passing the context's own
        ``dist`` skips the check (always valid).
        """
        if A is not self.dist:
            shape = getattr(A, "shape", None)
            if shape != self.dist.shape:
                raise SolverError(
                    f"context holds a {self.dist.shape} matrix, got A with "
                    f"shape {shape}"
                )
            if not _fingerprints_match(_data_fingerprint(A), self._fingerprint):
                raise SolverError(
                    "context was built for a different data matrix A "
                    "(same shape, different values)"
                )
        b = np.asarray(b, dtype=np.float64).ravel()
        if b.shape != self.b.shape or not np.array_equal(b, self.b):
            raise SolverError("context was built for a different label vector b")

    def refresh_problem(self, b=None) -> None:
        """Re-derive the problem signature after an in-place data mutation.

        The streaming engine appends rows to the context's partitioned
        matrix between solves; without this, :meth:`check_problem` would
        keep comparing against the pre-append fingerprint (and the stale
        label vector) and reject the context's own data.
        """
        if b is not None:
            self.b = np.asarray(b, dtype=np.float64).ravel()
        self._fingerprint = _data_fingerprint(self.dist)

    # -- per-point ledger discipline ---------------------------------------
    def begin_point(self) -> None:
        """Zero the ledger so the next solve reports per-point cost."""
        self.comm.reset()

    def end_point(self, result: SolverResult) -> None:
        """Bank one solve's per-point cost into the sweep total."""
        self.point_costs.append(result.cost)

    @property
    def total_cost(self) -> CostSnapshot:
        """Modelled cost of the whole sweep so far (summed points)."""
        return _sum_costs(self.point_costs)


@dataclass
class PathResult:
    """Outcome of one regularization-path sweep."""

    task: str
    #: the grid actually solved, in solve order
    lambdas: np.ndarray
    #: one :class:`SolverResult` per grid point (``cost`` is per-point)
    results: list[SolverResult]
    #: the live sweep context (``None`` when the sweep ran on a real
    #: SPMD backend — the context lives and dies inside the worker ranks)
    context: SweepContext | None
    warm_start: bool = True
    extras: dict = field(default_factory=dict)

    @property
    def coefs(self) -> np.ndarray:
        """Solutions stacked as (n_points, n)."""
        return np.stack([r.x for r in self.results])

    @property
    def iterations(self) -> list[int]:
        """Iterations each point ran (warm starts shrink these)."""
        return [r.iterations for r in self.results]

    @property
    def final_metrics(self) -> np.ndarray:
        """Final objective (Lasso) / duality gap (SVM) per point."""
        return np.array([r.final_metric for r in self.results])

    @property
    def total_cost(self) -> CostSnapshot:
        """Modelled cost of the whole sweep (summed per-point costs)."""
        return _sum_costs([r.cost for r in self.results])

    def support_sizes(self, atol: float = 0.0) -> list[int]:
        """Non-zero count of each point's solution (Lasso sparsity trace)."""
        return [int(np.sum(np.abs(r.x) > atol)) for r in self.results]

    def __len__(self) -> int:
        return len(self.results)


def _lambda_max_dist(dist: RowPartitionedMatrix, b: np.ndarray) -> float:
    """``||A^T b||_inf`` from the row-partitioned shard (instrumentation)."""
    lo, hi = dist.partition.range_of(dist.comm.rank)
    with dist.comm.ledger.paused():
        part = np.asarray(dist.local.T @ b[lo:hi]).ravel()
        g = np.asarray(dist.comm.Allreduce(part)).ravel()
    return float(np.max(np.abs(g))) if g.size else 0.0


def lambda_grid(lam_max: float, n_lambdas: int = 16, eps: float = 1e-3) -> np.ndarray:
    """Descending geometric grid ``lam_max * [1, ..., eps]``.

    The standard path grid: the first point (``lam_max``) has ``x = 0``
    optimal, and each subsequent point shrinks lambda geometrically down
    to ``eps * lam_max``.
    """
    if n_lambdas < 1:
        raise SolverError(f"n_lambdas must be >= 1, got {n_lambdas}")
    if not (0.0 < eps <= 1.0):
        raise SolverError(f"eps must be in (0, 1], got {eps}")
    if lam_max <= 0.0:
        raise SolverError(f"lam_max must be positive, got {lam_max}")
    if n_lambdas == 1:
        return np.array([lam_max])
    return lam_max * np.geomspace(1.0, eps, n_lambdas)


def lasso_path(
    A,
    b,
    lambdas=None,
    *,
    n_lambdas: int = 16,
    eps: float = 1e-3,
    solver: str = "sa-accbcd",
    mu: int = 8,
    s: int = 16,
    max_iter: int = 500,
    tol: float | None = 1e-6,
    seed: int = 0,
    record_every: int = 10,
    warm_start: bool = True,
    fast: bool = True,
    parity: str = "exact",
    pipeline: bool = False,
    async_: bool = False,
    tau: int = 1,
    adaptive: bool = False,
    adapt_tol_factor: float = 100.0,
    adapt_iter_factor: float = 0.25,
    comm: Comm | None = None,
    virtual_p: int = 1,
    machine: MachineSpec | None = None,
    context: SweepContext | None = None,
    checkpoint_every: int = 0,
    checkpoint_sink=None,
    resume_from=None,
    backend: str = "virtual",
    ranks: int = 4,
    recover: str = "raise",
    max_recoveries: int = 2,
) -> PathResult:
    """Solve a Lasso problem over a descending lambda grid with warm starts.

    Parameters
    ----------
    lambdas:
        Explicit grid (solved in descending order). Default: a geometric
        grid of ``n_lambdas`` points from ``lambda_max`` (the smallest
        lambda with ``x = 0`` optimal) down to ``eps * lambda_max``.
    warm_start:
        Thread each point's solution into the next solve as ``x0``
        (default). ``False`` gives independent solves that still share
        the context's caches.
    pipeline:
        Run every SA solve with the nonblocking pipelined outer loop
        (identical iterates; see :func:`repro.fit_lasso`).
    async_, tau:
        Run every SA solve with the bounded-staleness outer loop
        (convergence-to-tolerance contract; see :func:`repro.fit_lasso`).
        Each solve drains its in-flight reductions before returning, so
        the shared communicator's nonblocking ring is clean at every
        warm-start hand-off.
    adaptive:
        Loosen per-point budgets along the grid (see
        :func:`adaptive_schedule`): intermediate points — which exist
        only to warm-start their successors — get ``tol *
        adapt_tol_factor^(1-f)`` and an iteration ramp starting at
        ``adapt_iter_factor * max_iter``; the final point always runs at
        exactly ``(max_iter, tol)``, so its solution matches a cold
        solve at the same tolerance.
    context:
        Reuse an existing :class:`SweepContext` (e.g. to run several
        sweeps — different solvers, grids, seeds — against one dataset).
    tol, record_every:
        Stopping tolerance, checked at recording points — keep
        ``record_every >= 1`` or every solve runs its full ``max_iter``.
    checkpoint_every / checkpoint_sink / resume_from:
        Path-level fault tolerance: every ``checkpoint_every`` completed
        grid points, emit a checkpoint (callable sink, or a path written
        atomically by rank 0) carrying the finished results and the
        warm-start vector; ``resume_from`` skips those points and
        continues the sweep (the grid and solver knobs must match).
    backend, ranks, recover, max_recoveries:
        As in :func:`repro.fit_lasso`: run the whole sweep SPMD on a
        real backend (``context=`` must be None — a live
        :class:`SweepContext` cannot cross process boundaries; the
        returned :class:`PathResult` carries ``context=None``). Under
        ``recover="checkpoint"`` the supervisor resumes a respawned
        sweep at the last *completed grid point* via the path
        checkpoints (forced on, every point, when the caller left
        ``checkpoint_every=0``).

    All other knobs match :func:`repro.fit_lasso`.
    """
    if backend != "virtual":
        _check_backend(backend, comm, recover)
        if context is not None:
            raise SolverError(
                "context= holds a live SweepContext and cannot be shipped"
                " to a real backend; drop context= or use backend='virtual'"
            )

        def work(wcomm, wrank):
            rctx = getattr(wcomm, "recovery", None)
            ck_every, ck_sink, ck_resume = (
                checkpoint_every, checkpoint_sink, resume_from
            )
            if rctx is not None and rctx.active:
                if rctx.resume is not None:
                    ck_resume = rctx.resume
                if ck_every == 0:
                    ck_every = 1
                user_sink = checkpoint_sink

                def ck_sink(payload, _user=user_sink, _rctx=rctx):
                    _rctx.save(payload)
                    if callable(_user):
                        _user(payload)
                    elif _user is not None and wcomm.rank == 0:
                        # repro: lint-ignore[collective-in-rank-branch] -- rank-0 local write
                        atomic_write_json(_user, payload)
            inner = lasso_path(
                A, b, lambdas, n_lambdas=n_lambdas, eps=eps, solver=solver,
                mu=mu, s=s, max_iter=max_iter, tol=tol, seed=seed,
                record_every=record_every, warm_start=warm_start,
                fast=fast, parity=parity, pipeline=pipeline,
                async_=async_, tau=tau,
                adaptive=adaptive, adapt_tol_factor=adapt_tol_factor,
                adapt_iter_factor=adapt_iter_factor, comm=wcomm,
                checkpoint_every=ck_every, checkpoint_sink=ck_sink,
                resume_from=ck_resume,
            )
            # the SweepContext (and its comm) stays in the worker; only
            # picklable parts cross back to the parent
            return {
                "lambdas": inner.lambdas, "results": inner.results,
                "warm_start": inner.warm_start, "extras": inner.extras,
            }

        part = _run_spmd(
            work, backend=backend, ranks=ranks, machine=machine,
            cost_size=max(virtual_p, ranks), recover=recover,
            max_recoveries=max_recoveries,
            nb_depth=tau + 2 if async_ else NB_RING_DEPTH,
        )
        return PathResult(
            task="lasso", lambdas=part["lambdas"], results=part["results"],
            context=None, warm_start=part["warm_start"],
            extras=part["extras"],
        )
    ctx = context
    if ctx is None:
        ctx = SweepContext(
            A, b, task="lasso", comm=comm, virtual_p=virtual_p, machine=machine
        )
    else:
        if ctx.task != "lasso":
            raise SolverError(f"context is a {ctx.task!r} sweep, need 'lasso'")
        ctx.check_problem(A, b)
    if lambdas is None:
        lam_max = _lambda_max_dist(ctx.dist, ctx.b)
        if lam_max <= 0.0:
            raise SolverError(
                "cannot build a default grid: ||A^T b||_inf is 0 (pass lambdas=)"
            )
        lams = lambda_grid(lam_max, n_lambdas=n_lambdas, eps=eps)
    else:
        lams = np.sort(np.asarray(lambdas, dtype=np.float64).ravel())[::-1]
        if lams.size == 0:
            raise SolverError("lambdas must be non-empty")
    if adaptive:
        budgets = adaptive_schedule(
            lams.size, max_iter, tol,
            tol_factor=adapt_tol_factor, iter_factor=adapt_iter_factor,
        )
    else:
        budgets = [(max_iter, tol)] * lams.size
    ck_params = {
        "solver": solver, "mu": mu, "s": s, "seed": seed,
        "warm_start": warm_start, "adaptive": adaptive,
    }
    results: list[SolverResult] = []
    x_warm = None
    if resume_from is not None:
        results, x_warm = _load_path_checkpoint(resume_from, lams, ck_params)
        for res in results:
            ctx.end_point(res)
    for lam, (it_i, tol_i) in list(zip(lams, budgets, strict=True))[len(results):]:
        ctx.begin_point()
        res = fit_lasso(
            ctx.dist, ctx.b, float(lam), solver=solver, mu=mu, s=s,
            max_iter=it_i, seed=seed, tol=tol_i, comm=ctx.comm,
            record_every=record_every, x0=x_warm if warm_start else None,
            fast=fast, parity=parity, pipeline=pipeline,
            async_=async_, tau=tau, eig_memo=ctx.eig_memo,
        )
        ctx.end_point(res)
        results.append(res)
        x_warm = res.x
        if (
            checkpoint_sink is not None
            and checkpoint_every
            and len(results) % checkpoint_every == 0
            and len(results) < lams.size
        ):
            _emit_path_checkpoint(
                checkpoint_sink, ctx.comm.rank, lams, results, x_warm,
                ck_params,
            )
    return PathResult(
        task="lasso", lambdas=lams, results=results, context=ctx,
        warm_start=warm_start,
        extras={"solver": solver, "mu": mu, "s": s,
                "pipeline": pipeline, "async": async_, "tau": tau,
                "adaptive": adaptive},
    )


def svm_path(
    A,
    b,
    lams=None,
    *,
    n_lambdas: int = 8,
    loss: str = "l1",
    solver: str = "sa-svm",
    s: int = 16,
    max_iter: int = 5000,
    tol: float | None = None,
    seed: int = 0,
    record_every: int = 0,
    warm_start: bool = True,
    fast: bool = True,
    parity: str = "exact",
    pipeline: bool = False,
    async_: bool = False,
    tau: int = 1,
    adaptive: bool = False,
    adapt_tol_factor: float = 100.0,
    adapt_iter_factor: float = 0.25,
    comm: Comm | None = None,
    virtual_p: int = 1,
    machine: MachineSpec | None = None,
    context: SweepContext | None = None,
    backend: str = "virtual",
    ranks: int = 4,
    recover: str = "raise",
    max_recoveries: int = 2,
) -> PathResult:
    """Train SVMs over an ascending penalty (C) grid with dual warm starts.

    The grid is solved in *ascending* order: the hinge loss caps each
    dual coordinate at ``nu = lam``, so a solution for a smaller ``lam``
    is always feasible for the next larger one — the warm start never
    needs projection (it is still clipped defensively). Each point's
    dual ``alpha`` seeds the next solve; the primal is rebuilt from it
    (Alg. 3 line 2). Default grid: ``n_lambdas`` points geometric in
    ``[0.1, 10]`` around the paper's ``C = 1``.

    ``pipeline``, ``async_``/``tau`` and ``adaptive`` mirror
    :func:`lasso_path` (adaptive loosens the *duality-gap* tolerance
    early on the grid; the final point always runs at exactly
    ``(max_iter, tol)``).

    ``backend``/``ranks``/``recover``/``max_recoveries`` mirror
    :func:`lasso_path`, except the SVM sweep has no path checkpoints:
    ``recover="checkpoint"`` restarts a recovered sweep from scratch
    (deterministic, so the result is unchanged — only wall time is
    lost).
    """
    if backend != "virtual":
        _check_backend(backend, comm, recover)
        if context is not None:
            raise SolverError(
                "context= holds a live SweepContext and cannot be shipped"
                " to a real backend; drop context= or use backend='virtual'"
            )

        def work(wcomm, wrank):
            inner = svm_path(
                A, b, lams, n_lambdas=n_lambdas, loss=loss, solver=solver,
                s=s, max_iter=max_iter, tol=tol, seed=seed,
                record_every=record_every, warm_start=warm_start,
                fast=fast, parity=parity, pipeline=pipeline,
                async_=async_, tau=tau,
                adaptive=adaptive, adapt_tol_factor=adapt_tol_factor,
                adapt_iter_factor=adapt_iter_factor, comm=wcomm,
            )
            return {
                "lambdas": inner.lambdas, "results": inner.results,
                "warm_start": inner.warm_start, "extras": inner.extras,
            }

        part = _run_spmd(
            work, backend=backend, ranks=ranks, machine=machine,
            cost_size=max(virtual_p, ranks), recover=recover,
            max_recoveries=max_recoveries,
            nb_depth=tau + 2 if async_ else NB_RING_DEPTH,
        )
        return PathResult(
            task="svm", lambdas=part["lambdas"], results=part["results"],
            context=None, warm_start=part["warm_start"],
            extras=part["extras"],
        )
    ctx = context
    if ctx is None:
        ctx = SweepContext(
            A, b, task="svm", comm=comm, virtual_p=virtual_p, machine=machine
        )
    else:
        if ctx.task != "svm":
            raise SolverError(f"context is a {ctx.task!r} sweep, need 'svm'")
        ctx.check_problem(A, b)
    if lams is None:
        lam_grid = np.geomspace(0.1, 10.0, n_lambdas)
    else:
        lam_grid = np.asarray(lams, dtype=np.float64).ravel()
        if lam_grid.size == 0:
            raise SolverError("lams must be non-empty")
    lam_grid = np.sort(lam_grid)
    if adaptive:
        budgets = adaptive_schedule(
            lam_grid.size, max_iter, tol,
            tol_factor=adapt_tol_factor, iter_factor=adapt_iter_factor,
        )
    else:
        budgets = [(max_iter, tol)] * lam_grid.size
    results: list[SolverResult] = []
    alpha_warm = None
    for lam, (it_i, tol_i) in zip(lam_grid, budgets, strict=True):
        ctx.begin_point()
        alpha0 = None
        if warm_start and alpha_warm is not None:
            _, nu = loss_params(loss, float(lam))
            alpha0 = np.clip(alpha_warm, 0.0, nu) if np.isfinite(nu) else alpha_warm
        res = fit_svm(
            ctx.dist, ctx.b, loss=loss, lam=float(lam), solver=solver, s=s,
            max_iter=it_i, seed=seed, tol=tol_i, comm=ctx.comm,
            record_every=record_every, alpha0=alpha0, fast=fast, parity=parity,
            pipeline=pipeline, async_=async_, tau=tau,
        )
        ctx.end_point(res)
        results.append(res)
        alpha_warm = res.extras["alpha"]
    return PathResult(
        task="svm", lambdas=lam_grid, results=results, context=ctx,
        warm_start=warm_start,
        extras={"solver": solver, "loss": loss, "s": s,
                "pipeline": pipeline, "async": async_, "tau": tau,
                "adaptive": adaptive},
    )
