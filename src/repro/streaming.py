"""Streaming/online refit engine over the warm-start machinery.

Production fitting is rarely one-shot: new data rows arrive between
solves and the model must be *refit*, not retrained from scratch. The
sweep machinery built for regularization paths — one partitioned matrix
with persistent sampling views and collective buffers, warm starts
through ``fit_lasso(x0=)`` / ``fit_svm(alpha0=)``, a persistent
:class:`~repro.linalg.kernels.EigMemo`, per-solve ledger resets — is
exactly what makes repeated solves cheap, and this module points it at
the streaming workload:

* :class:`StreamingSweep` accepts batches of new rows (and labels)
  between solves. The batch is appended **in place** to the partitioned
  matrix (:meth:`RowPartitionedMatrix.append_rows` /
  :meth:`ColPartitionedMatrix.append_rows` — balanced per-rank appends
  invalidating only the sampling views that actually changed), the
  ``lambda_max`` gradient ``A^T b`` is extended *incrementally* (one
  ``O(nnz(batch))`` local product plus an n-word Allreduce instead of a
  full ``O(nnz(A))`` recompute), and the previous solution warm-starts
  the refit — the primal ``x`` unchanged for Lasso, the dual ``alpha``
  zero-padded for the new SVM rows (new rows enter the dual box at 0,
  which is always feasible).
* Rows are retired the same way they arrive: :meth:`StreamingSweep.
  evict` removes rows by arrival index (per-rank shard compaction via
  :meth:`RowPartitionedMatrix.remove_rows` /
  :meth:`ColPartitionedMatrix.remove_rows`, again invalidating only the
  CSC sampling view), ``max_rows=`` keeps a sliding count window by
  auto-evicting the oldest rows after each append, and the ``A^T b``
  state is *downdated* (``A^T b -= B_evicted^T y_evicted``, one n-word
  Allreduce) so ``lambda_max`` stays exact without a full rescan. The
  Lasso primal warm start is kept verbatim (its dimension never
  changes); the SVM warm dual drops the evicted rows' coordinates.
* :meth:`StreamingSweep.update_labels` applies **label-only updates**:
  ``A^T b`` is re-derived via a delta reduction
  (``A^T b += A_rows^T (y_new - y_old)``) without touching the shards.
* Ledger accounting is split per **data revision**: each append's own
  incremental work, each eviction's downdate + compaction
  (:attr:`DataRevision.evict_cost`), and every subsequent solve's cost
  are banked against the revision they belong to, so "what does a refit
  after +k rows cost?" is a first-class measurable
  (``benchmarks/bench_streaming.py`` tracks warm refit vs. cold
  re-solve in ``BENCH_streaming.json``, including windowed entries).

Row-order contract: the row-partitioned (Lasso) layout appends each
rank's share at the end of its local shard, so the effective global row
order is *rank-blocked* — a deterministic permutation of arrival order
(:meth:`StreamingSweep.arrival_order`). The column-partitioned (SVM)
layout keeps exact arrival order. :meth:`StreamingSweep.materialize`
reassembles the effective global problem on every rank (instrumentation
only), which is how the equivalence tests pin every streaming refit
against a cold solve on the concatenated data.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro._api import fit_lasso, fit_svm
from repro.errors import CheckpointError, SolverError
from repro.linalg.distmatrix import ColPartitionedMatrix, RowPartitionedMatrix
from repro.linalg.kernels import EigMemo
from repro.linalg.partition import Partition1D
from repro.machine.ledger import CostSnapshot
from repro.machine.spec import MachineSpec
from repro.mpi.comm import Comm
from repro.mpi.process_backend import process_spmd_run
from repro.mpi.thread_backend import NB_RING_DEPTH, spmd_run
from repro.mpi.virtual_backend import VirtualComm
from repro.path import SweepContext
from repro.solvers.base import SolverResult
from repro.solvers.svm.duality import loss_params
from repro.utils.io import atomic_write_json
from repro.utils.validation import nnz_of

__all__ = [
    "StreamingSweep",
    "DataRevision",
    "replay_schedule",
    "STREAM_CHECKPOINT_VERSION",
]

#: report schema version emitted by :func:`replay_schedule` (and the
#: ``repro stream`` CLI's ``--save``); v2 added eviction / label-edit
#: events, the structured ``schedule`` entries, and per-revision
#: ``rows_removed`` / ``labels_changed`` / ``evict_cost``; v3 added the
#: ``("sleep", seconds)`` virtual-time token (``seconds`` on its
#: schedule entry, ``totals.slept_seconds``) shared with the serving
#: engine's trace replayer (:mod:`repro.serve`)
STREAM_REPORT_VERSION = 3

#: format version of streaming checkpoints (:meth:`StreamingSweep.
#: checkpoint` engine snapshots and the ``kind="streaming-replay"``
#: wrappers :func:`replay_schedule` writes); resume refuses versions it
#: does not understand rather than guessing
STREAM_CHECKPOINT_VERSION = 1

_DEFAULT_SOLVER = {"lasso": "sa-accbcd", "svm": "sa-svm"}


def _matrix_to_dict(A) -> dict:
    """JSON-serialisable dense/CSR matrix (exact float64 round-trip)."""
    if sp.issparse(A):
        A = A.tocsr()
        return {"csr": {
            "data": np.asarray(A.data, dtype=np.float64).tolist(),
            "indices": A.indices.tolist(),
            "indptr": A.indptr.tolist(),
            "shape": [int(A.shape[0]), int(A.shape[1])],
        }}
    return {"dense": np.asarray(A, dtype=np.float64).tolist(),
            "shape": [int(A.shape[0]), int(A.shape[1])]}


def _matrix_from_dict(d: dict):
    """Inverse of :func:`_matrix_to_dict`."""
    if "csr" in d:
        c = d["csr"]
        return sp.csr_matrix(
            (np.asarray(c["data"], dtype=np.float64),
             np.asarray(c["indices"], dtype=np.intp),
             np.asarray(c["indptr"], dtype=np.intp)),
            shape=tuple(c["shape"]),
        )
    return np.asarray(d["dense"], dtype=np.float64).reshape(tuple(d["shape"]))


def _snapshot_to_dict(c: CostSnapshot) -> dict:
    return {
        "comm_seconds": c.comm_seconds,
        "compute_seconds": c.compute_seconds,
        "messages": int(c.messages),
        "words": c.words,
        "flops": c.flops,
        "comm_seconds_hidden": c.comm_seconds_hidden,
        "stale_seconds": c.stale_seconds,
        "max_staleness": int(c.max_staleness),
        "retries": int(c.retries),
        "timeouts": int(c.timeouts),
        "recoveries": int(c.recoveries),
        "respawns": int(c.respawns),
        "replayed_iterations": int(c.replayed_iterations),
    }


def _snapshot_from_dict(d: dict) -> CostSnapshot:
    return CostSnapshot(
        comm_seconds=float(d.get("comm_seconds", 0.0)),
        compute_seconds=float(d.get("compute_seconds", 0.0)),
        messages=int(d.get("messages", 0)),
        words=float(d.get("words", 0.0)),
        flops=float(d.get("flops", 0.0)),
        comm_seconds_hidden=float(d.get("comm_seconds_hidden", 0.0)),
        stale_seconds=float(d.get("stale_seconds", 0.0)),
        max_staleness=int(d.get("max_staleness", 0)),
        retries=int(d.get("retries", 0)),
        timeouts=int(d.get("timeouts", 0)),
        recoveries=int(d.get("recoveries", 0)),
        respawns=int(d.get("respawns", 0)),
        replayed_iterations=int(d.get("replayed_iterations", 0)),
    )


def _load_stream_checkpoint(source, kind: str) -> dict:
    """Read + validate a streaming checkpoint payload (dict or JSON path)."""
    if isinstance(source, dict):
        ck = source
    else:
        try:
            with open(source, "r", encoding="utf-8") as fh:
                ck = json.load(fh)
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"could not read checkpoint {os.fspath(source)!r}: {exc}"
            ) from exc
    if not isinstance(ck, dict) or ck.get("kind") != kind:
        raise CheckpointError(
            f"resume_from is not a {kind!r} checkpoint"
            f" (kind={None if not isinstance(ck, dict) else ck.get('kind')!r})"
        )
    version = ck.get("format_version")
    if version != STREAM_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported streaming checkpoint format_version {version!r}"
            f" (this build reads {STREAM_CHECKPOINT_VERSION})"
        )
    if ck.get("task") not in ("lasso", "svm"):
        raise CheckpointError(
            f"streaming checkpoint has unknown task {ck.get('task')!r}"
        )
    return ck


@dataclass
class DataRevision:
    """Ledger bucket for one state of the streamed dataset."""

    #: revision number (0 = the initial data)
    rev: int
    #: total rows after this revision's mutation
    rows_total: int
    #: rows this revision added (= ``rows_total`` for revision 0)
    rows_added: int
    #: rows this revision evicted (explicit ``evict`` or the ``max_rows``
    #: window trimming the oldest rows after an append)
    rows_removed: int = 0
    #: rows whose labels this revision rewrote in place
    labels_changed: int = 0
    #: modelled cost of the incremental state update itself (shard
    #: append + the ``A^T b`` extension; the label-delta reduction for a
    #: label revision; for revision 0, the initial ``A^T b`` derivation)
    append_cost: CostSnapshot = field(default_factory=CostSnapshot.zero)
    #: modelled cost of this revision's eviction (the ``A^T b`` downdate
    #: — one n-word Allreduce — plus the per-rank shard compaction)
    evict_cost: CostSnapshot = field(default_factory=CostSnapshot.zero)
    #: per-solve modelled costs banked against this revision
    solve_costs: list = field(default_factory=list)

    @property
    def refit_cost(self) -> CostSnapshot:
        """Total solve cost at this revision (summed solves)."""
        return sum(self.solve_costs, CostSnapshot.zero())


def _check_svm_labels(y: np.ndarray) -> None:
    if not np.all(np.isin(y, (-1.0, 1.0))):
        raise SolverError("SVM labels must be in {-1, +1}")


def _check_row_ids(ids, op: str) -> np.ndarray:
    """Arrival-index array for a mutation op, validated *before* the
    intp cast — a NaN/inf would raise an opaque cast error and a
    fractional id would silently truncate onto the wrong row."""
    arr = np.asarray(ids).ravel()
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        try:
            flt = arr.astype(np.float64)
        except (TypeError, ValueError) as exc:
            raise SolverError(
                f"{op}: row ids must be integers, got dtype {arr.dtype}"
            ) from exc
        if not np.all(np.isfinite(flt)):
            raise SolverError(f"{op}: row ids contain non-finite entries")
        if not np.all(flt == np.floor(flt)):
            raise SolverError(
                f"{op}: row ids must be integral arrival indices, got "
                "fractional values"
            )
        arr = flt
    return arr.astype(np.intp)


class StreamingSweep:
    """Online refit engine: append/evict rows between solves, warm-restart.

    Parameters
    ----------
    A, b:
        Initial data (global dense/CSR, or an already-partitioned
        matrix whose communicator is adopted) and labels.
    task:
        ``"lasso"`` (row partition, warm primal) or ``"svm"`` (column
        partition, warm dual).
    max_rows:
        Sliding count window: after every append, the oldest surviving
        rows are evicted until at most ``max_rows`` remain (within the
        same :class:`DataRevision`, the trim measured as its
        ``evict_cost``). The initial data must already fit the window.
        ``None`` (default) keeps every row.
    comm, virtual_p, machine, balance_nnz, eig_memo:
        As in :class:`~repro.path.SweepContext` (which this engine owns;
        the context's caches — sampling views, gather workspace, packed
        buffers, eig memo — persist across appends, evictions, and
        solves).
    solver, loss, lam, mu, s, max_iter, tol, seed, record_every, fast,
    parity, pipeline:
        Default solver knobs for :meth:`solve`, each overridable per
        call. ``lam=None`` resolves per solve: ``0.1 * lambda_max`` of
        the *current* data for Lasso, ``1.0`` for SVM.

    Rows are identified by **arrival index** — the position of the row
    in the full arrival history (initial rows get ``0..m0-1``, each
    appended batch the next block) — which is what :meth:`evict` and
    :meth:`update_labels` take and what :meth:`arrival_order` /
    :meth:`surviving_rows` report. Arrival indices are never reused.

    Like the sweep context it owns, the engine takes ownership of the
    communicator's ledger: it is zeroed at every mutation and every
    solve so each :class:`DataRevision` carries isolated per-revision
    cost.
    """

    def __init__(
        self,
        A,
        b,
        *,
        task: str = "lasso",
        max_rows: int | None = None,
        comm: Comm | None = None,
        virtual_p: int = 1,
        machine: MachineSpec | None = None,
        balance_nnz: bool = True,
        eig_memo: EigMemo | None = None,
        solver: str | None = None,
        loss: str = "l1",
        lam=None,
        mu: int = 8,
        s: int = 16,
        max_iter: int = 500,
        tol: float | None = 1e-6,
        seed: int = 0,
        record_every: int = 10,
        fast: bool = True,
        parity: str = "exact",
        pipeline: bool = False,
        async_: bool = False,
        tau: int = 1,
    ) -> None:
        self.ctx = SweepContext(
            A, b, task=task, comm=comm, virtual_p=virtual_p, machine=machine,
            balance_nnz=balance_nnz, eig_memo=eig_memo,
        )
        self.task = task
        self.dist = self.ctx.dist
        self.comm = self.ctx.comm
        self.balance_nnz = balance_nnz
        self.defaults = dict(
            solver=solver if solver is not None else _DEFAULT_SOLVER[task],
            loss=loss, lam=lam, mu=mu, s=s, max_iter=max_iter, tol=tol,
            seed=seed, record_every=record_every, fast=fast, parity=parity,
            pipeline=pipeline, async_=async_, tau=tau,
        )
        self._x_warm: np.ndarray | None = None
        self._alpha_warm: np.ndarray | None = None
        m = self.dist.shape[0]
        if max_rows is not None:
            max_rows = int(max_rows)
            if max_rows < 1:
                raise SolverError(f"max_rows must be >= 1, got {max_rows}")
            if m > max_rows:
                raise SolverError(
                    f"initial data has {m} rows, more than max_rows="
                    f"{max_rows}; trim the data or widen the window"
                )
        self.max_rows = max_rows
        part = self.dist.partition
        if task == "lasso":
            #: per-rank arrival indices, mirroring the rank-blocked
            #: global row order of the row-partitioned layout
            self._arrivals = [
                np.arange(*part.range_of(r)) for r in range(self.comm.size)
            ]
        else:
            #: arrival index per row of the (arrival-ordered) SVM layout
            self._svm_arrivals = np.arange(m)
        self._next_arrival = m
        # revision 0: derive the incremental lambda_max state (measured)
        self.comm.reset()
        if task == "lasso":
            lo, hi = part.range_of(self.comm.rank)
            local_part = np.asarray(
                self.dist.local.T @ self.ctx.b[lo:hi], dtype=np.float64
            ).ravel()
            self.comm.account_flops(2.0 * self.dist.local_nnz, "spmv")
            self._atb = np.asarray(self.comm.Allreduce(local_part)).ravel()
        else:
            _check_svm_labels(self.ctx.b)
            self._atb = None
        self.revisions: list[DataRevision] = [
            DataRevision(0, m, m, append_cost=self.comm.ledger.snapshot())
        ]

    # -- state ---------------------------------------------------------------
    @property
    def b(self) -> np.ndarray:
        """Labels in the engine's effective global row order."""
        return self.ctx.b

    @property
    def n_rows(self) -> int:
        return self.dist.shape[0]

    @property
    def revision(self) -> int:
        """Current data revision (0 = the initial data)."""
        return self.revisions[-1].rev

    @property
    def lambda_max(self) -> float:
        """``||A^T b||_inf`` of the current data, maintained incrementally."""
        if self._atb is None:
            raise SolverError("lambda_max is a Lasso quantity (task='svm')")
        return float(np.max(np.abs(self._atb))) if self._atb.size else 0.0

    def arrival_order(self) -> np.ndarray:
        """Arrival index of each row of the effective global matrix.

        ``materialize()[0]`` equals the full arrival-history
        concatenation ``[A; B_1; B_2; ...]`` indexed by this array
        (evicted rows simply never appear). Ascending for the SVM
        layout (exact arrival order); rank-blocked for the Lasso
        layout.
        """
        if self.task == "svm":
            return self._svm_arrivals.copy()
        return np.concatenate(self._arrivals)

    def surviving_rows(self) -> np.ndarray:
        """Sorted arrival indices of the rows currently in the window."""
        return np.sort(self.arrival_order())

    def materialize(self):
        """``(A_eff, b_eff)``: the effective global problem, on every rank.

        Instrumentation only (the gather is ledger-paused): this is the
        reference the equivalence tests cold-solve against. Partition
        ``A_eff`` with ``self.dist.partition`` to reproduce the engine's
        shards bit for bit.
        """
        with self.comm.ledger.paused():
            shards = self.comm.allgather(self.dist.local)
        if self.task == "lasso":
            if self.dist.is_sparse:
                A_eff = sp.vstack(shards, format="csr")
            else:
                A_eff = np.vstack(shards)
        else:
            if self.dist.is_sparse:
                A_eff = sp.hstack(shards, format="csr")
            else:
                A_eff = np.hstack(shards)
        return A_eff, self.ctx.b.copy()

    # -- checkpoint / resume -------------------------------------------------
    def checkpoint(self, sink=None) -> dict:
        """Snapshot the engine as a JSON-serialisable dict (and optionally
        deliver it).

        SPMD-collective (the effective matrix is reassembled via
        :meth:`materialize`, ledger-paused). The payload carries the
        materialized data, the explicit partition offsets (so resume
        reproduces every rank's shard bit for bit), the arrival-index
        bookkeeping, the incremental ``A^T b`` state, the warm vectors,
        the solve defaults, and the full per-revision cost history —
        everything :meth:`from_checkpoint` needs to continue the stream
        as if the process had never died.

        ``sink`` follows the solver-checkpoint convention: a callable is
        invoked on every rank with the payload; a path is written
        atomically by rank 0 only.
        """
        A_eff, b_eff = self.materialize()
        payload = {
            "format_version": STREAM_CHECKPOINT_VERSION,
            "kind": "streaming",
            "task": self.task,
            "max_rows": self.max_rows,
            "defaults": dict(self.defaults),
            "matrix": _matrix_to_dict(A_eff),
            "b": b_eff.tolist(),
            "offsets": [int(o) for o in self.dist.partition.offsets],
            "arrivals": (
                [arr.tolist() for arr in self._arrivals]
                if self.task == "lasso" else self._svm_arrivals.tolist()
            ),
            "next_arrival": int(self._next_arrival),
            "atb": None if self._atb is None else self._atb.tolist(),
            "x_warm": None if self._x_warm is None else self._x_warm.tolist(),
            "alpha_warm": (
                None if self._alpha_warm is None else self._alpha_warm.tolist()
            ),
            "revisions": [
                {
                    "rev": int(r.rev),
                    "rows_total": int(r.rows_total),
                    "rows_added": int(r.rows_added),
                    "rows_removed": int(r.rows_removed),
                    "labels_changed": int(r.labels_changed),
                    "append_cost": _snapshot_to_dict(r.append_cost),
                    "evict_cost": _snapshot_to_dict(r.evict_cost),
                    "solve_costs": [
                        _snapshot_to_dict(c) for c in r.solve_costs
                    ],
                }
                for r in self.revisions
            ],
        }
        if sink is not None:
            if callable(sink):
                sink(payload)
            elif self.comm.rank == 0:
                # repro: lint-ignore[collective-in-rank-branch] -- rank-0
                # checkpoint IO: a local atomic file write, no communication
                atomic_write_json(os.fspath(sink), payload)
        return payload

    @classmethod
    def from_checkpoint(
        cls,
        source,
        *,
        comm: Comm | None = None,
        virtual_p: int = 1,
        machine: MachineSpec | None = None,
        eig_memo: EigMemo | None = None,
    ) -> "StreamingSweep":
        """Rebuild an engine from a :meth:`checkpoint` payload (or path).

        The partitioned matrix is reconstructed from the materialized
        data with the checkpoint's *explicit* partition offsets — not
        re-balanced — so every rank's shard, the arrival bookkeeping,
        the ``A^T b`` state, and the warm vectors come back exactly as
        checkpointed: a resumed :meth:`solve` produces the same iterates
        the uninterrupted engine would have. The communicator must have
        the same size the checkpoint was taken at (the offsets are
        per-rank); the backend is free to differ.
        """
        ck = _load_stream_checkpoint(source, "streaming")
        task = ck["task"]
        if comm is None:
            comm = VirtualComm(virtual_size=virtual_p, machine=machine)
        offsets = tuple(int(o) for o in ck.get("offsets", ()))
        if len(offsets) - 1 != comm.size:
            raise CheckpointError(
                f"streaming checkpoint was taken at {len(offsets) - 1}"
                f" ranks; the resuming communicator has {comm.size}"
            )
        A_eff = _matrix_from_dict(ck["matrix"])
        mat_cls = RowPartitionedMatrix if task == "lasso" else ColPartitionedMatrix
        dist = mat_cls.from_global(A_eff, comm, partition=Partition1D(offsets))
        engine = cls(
            dist, np.asarray(ck["b"], dtype=np.float64), task=task,
            max_rows=ck.get("max_rows"), eig_memo=eig_memo, **ck["defaults"],
        )
        # overwrite the constructor's fresh revision-0 state with the
        # checkpointed stream state (arrival history, incremental A^T b,
        # warm vectors, per-revision cost ledgers)
        if task == "lasso":
            engine._arrivals = [
                np.asarray(a, dtype=np.intp) for a in ck["arrivals"]
            ]
            engine._atb = np.asarray(ck["atb"], dtype=np.float64)
        else:
            engine._svm_arrivals = np.asarray(ck["arrivals"], dtype=np.intp)
        engine._next_arrival = int(ck["next_arrival"])
        engine._x_warm = (
            None if ck.get("x_warm") is None
            else np.asarray(ck["x_warm"], dtype=np.float64)
        )
        engine._alpha_warm = (
            None if ck.get("alpha_warm") is None
            else np.asarray(ck["alpha_warm"], dtype=np.float64)
        )
        engine.revisions = [
            DataRevision(
                int(r["rev"]), int(r["rows_total"]), int(r["rows_added"]),
                rows_removed=int(r["rows_removed"]),
                labels_changed=int(r["labels_changed"]),
                append_cost=_snapshot_from_dict(r["append_cost"]),
                evict_cost=_snapshot_from_dict(r["evict_cost"]),
                solve_costs=[
                    _snapshot_from_dict(c) for c in r["solve_costs"]
                ],
            )
            for r in ck["revisions"]
        ]
        return engine

    # -- streaming -----------------------------------------------------------
    def append(self, B, y) -> int:
        """Ingest a batch of ``k`` new rows (and labels); returns the new
        revision number.

        SPMD-collective: every rank calls with the same global batch.
        The incremental work — per-rank shard append, the ``O(nnz(B))``
        extension of ``A^T b`` (Lasso), the label reordering — is
        measured into the new revision's ``append_cost``. With
        ``max_rows=`` set, the oldest surviving rows are then evicted
        until the batch fits the window, measured separately into the
        same revision's ``evict_cost``.

        An empty batch (``k == 0``) is a defined no-op: no revision is
        emitted, no cost charged, no cache invalidated; the current
        revision number is returned.
        """
        y = np.asarray(y, dtype=np.float64).ravel()
        k = int(B.shape[0])
        if y.shape[0] != k:
            raise SolverError(
                f"labels must match the batch: got {y.shape[0]} labels "
                f"for {k} rows"
            )
        if k == 0:
            return self.revision
        if not np.all(np.isfinite(y)):
            raise SolverError("append: labels contain non-finite entries")
        if self.task == "svm":
            _check_svm_labels(y)
        self.comm.reset()
        if self.task == "lasso":
            old_part = self.dist.partition
            batch_part = self.dist.append_rows(B, balance_nnz=self.balance_nnz)
            # labels follow the rank-blocked row order of the shards
            segs = []
            for r in range(self.comm.size):
                olo, ohi = old_part.range_of(r)
                blo, bhi = batch_part.range_of(r)
                segs.append(self.ctx.b[olo:ohi])
                segs.append(y[blo:bhi])
                self._arrivals[r] = np.concatenate(
                    [self._arrivals[r],
                     self._next_arrival + np.arange(blo, bhi)]
                )
            new_b = np.concatenate(segs)
            # incremental lambda_max: A^T b gains B_share^T y_share,
            # summed across ranks — O(nnz(B)) + one n-word Allreduce
            # instead of an O(nnz(A)) recompute
            blo, bhi = batch_part.range_of(self.comm.rank)
            share = B[blo:bhi]
            part = np.asarray(share.T @ y[blo:bhi], dtype=np.float64).ravel()
            self.comm.account_flops(2.0 * nnz_of(share), "spmv")
            self._atb = self._atb + np.asarray(self.comm.Allreduce(part)).ravel()
            self.comm.account_flops(float(self._atb.shape[0]), "blas1")
        else:
            self.dist.append_rows(B)
            new_b = np.concatenate([self.ctx.b, y])
            # the dual box gains k coordinates; the warm dual enters at 0
            # (always feasible — the box is [0, nu] per coordinate)
            if self._alpha_warm is not None:
                self._alpha_warm = np.concatenate([self._alpha_warm, np.zeros(k)])
            self._svm_arrivals = np.concatenate(
                [self._svm_arrivals, self._next_arrival + np.arange(k)]
            )
        self._next_arrival += k
        removed = (0 if self.max_rows is None
                   else max(0, self.n_rows - self.max_rows))
        # the window trim re-derives the problem signature itself, so
        # fingerprint the post-append shard only when no trim follows
        self.ctx.b = new_b
        if removed == 0:
            self.ctx.refresh_problem()
        append_cost = self.comm.ledger.snapshot()
        if removed:
            self._apply_evict(self.surviving_rows()[:removed])
        self.revisions.append(
            DataRevision(
                self.revision + 1, self.n_rows, k, rows_removed=removed,
                append_cost=append_cost,
                evict_cost=self.comm.ledger.snapshot() - append_cost,
            )
        )
        return self.revision

    def _apply_evict(self, ids: np.ndarray) -> None:
        """State change for one eviction of the (unique, sorted) arrival
        indices ``ids``; the caller owns the ledger reset and the
        revision bookkeeping. Validates before mutating anything."""
        if self.task == "lasso":
            masks = [np.isin(arr, ids) for arr in self._arrivals]
            found = sum(int(m.sum()) for m in masks)
        else:
            svm_mask = np.isin(self._svm_arrivals, ids)
            found = int(svm_mask.sum())
        if found != ids.size:
            raise SolverError(
                f"evict: {ids.size - found} of {ids.size} row ids are not "
                "present (already evicted, or never appended)"
            )
        if found >= self.n_rows:
            raise SolverError("cannot evict every row")
        part = self.dist.partition
        if self.task == "lasso":
            # downdate A^T b from the owned evicted rows *before* the
            # compaction drops them: A^T b -= B_ev_share^T y_ev_share,
            # summed across ranks — O(nnz(B_ev)) + one n-word Allreduce
            # instead of an O(nnz(A)) rescan of the survivors
            lo, hi = part.range_of(self.comm.rank)
            own = np.nonzero(masks[self.comm.rank])[0]
            B_ev = self.dist.local[own]
            y_ev = self.ctx.b[lo:hi][masks[self.comm.rank]]
            contrib = np.asarray(B_ev.T @ y_ev, dtype=np.float64).ravel()
            self.comm.account_flops(2.0 * nnz_of(B_ev), "spmv")
            self._atb = self._atb - np.asarray(self.comm.Allreduce(contrib)).ravel()
            self.comm.account_flops(float(self._atb.shape[0]), "blas1")
            global_idx, segs = [], []
            for r in range(self.comm.size):
                rlo, rhi = part.range_of(r)
                global_idx.append(rlo + np.nonzero(masks[r])[0])
                segs.append(self.ctx.b[rlo:rhi][~masks[r]])
                self._arrivals[r] = self._arrivals[r][~masks[r]]
            self.dist.remove_rows(np.concatenate(global_idx))
            new_b = np.concatenate(segs)
        else:
            self.dist.remove_rows(np.nonzero(svm_mask)[0])
            new_b = self.ctx.b[~svm_mask]
            if self._alpha_warm is not None:
                # surviving duals keep their (compacted) positions; the
                # evicted coordinates leave the box with their rows
                self._alpha_warm = self._alpha_warm[~svm_mask]
            self._svm_arrivals = self._svm_arrivals[~svm_mask]
        self.ctx.refresh_problem(new_b)

    def evict(self, ids) -> int:
        """Retire rows by arrival index; returns the new revision number.

        SPMD-collective: every rank calls with the same ``ids`` —
        arrival indices of currently-present rows (:meth:`arrival_order`
        / :meth:`surviving_rows`; duplicates are merged). Each rank
        compacts its own shard in place; the Lasso ``A^T b`` state is
        *downdated* (one ``O(nnz(B_ev))`` local product plus an n-word
        Allreduce), so :attr:`lambda_max` stays exact without a rescan.
        The Lasso primal warm start is kept verbatim — its dimension
        ``n`` is untouched — while the SVM warm dual drops the evicted
        rows' coordinates (the survivors stay feasible: the dual box is
        per-coordinate). The downdate + compaction cost is measured into
        the new revision's ``evict_cost``.

        Evicting an unknown id or the entire dataset raises
        :class:`SolverError` before any state changes; empty ``ids`` is
        a no-op (no revision, current number returned).
        """
        ids = np.unique(_check_row_ids(ids, "evict"))
        if ids.size == 0:
            return self.revision
        self.comm.reset()
        self._apply_evict(ids)
        self.revisions.append(
            DataRevision(
                self.revision + 1, self.n_rows, 0, rows_removed=int(ids.size),
                evict_cost=self.comm.ledger.snapshot(),
            )
        )
        return self.revision

    def update_labels(self, ids, y_new) -> int:
        """Rewrite the labels of rows ``ids`` (arrival indices) in place;
        returns the new revision number.

        SPMD-collective, and the shards are never touched: for Lasso the
        ``A^T b`` state is re-derived via a **delta reduction** —
        ``A^T b += A_rows^T (y_new - y_old)``, an ``O(nnz(rows))`` local
        product plus one n-word Allreduce — so :attr:`lambda_max` stays
        exact; the primal warm start is kept verbatim. For SVM the
        labels are replicated, so only ``b`` changes; the warm dual's
        *changed* coordinates are reset to 0 (the old alpha pushed for
        the old label; 0 is always feasible), the rest kept. The delta
        reduction's cost is measured into the new revision's
        ``append_cost``.

        Unknown ids or duplicate ids raise :class:`SolverError` before
        any state changes; empty ``ids`` is a no-op.
        """
        ids = _check_row_ids(ids, "update_labels")
        y_new = np.asarray(y_new, dtype=np.float64).ravel()
        if y_new.shape[0] != ids.shape[0]:
            raise SolverError(
                f"labels must match the ids: got {y_new.shape[0]} labels "
                f"for {ids.shape[0]} ids"
            )
        if ids.size == 0:
            return self.revision
        if not np.all(np.isfinite(y_new)):
            raise SolverError(
                "update_labels: labels contain non-finite entries"
            )
        order = np.argsort(ids)
        ids_sorted = ids[order]
        if np.unique(ids_sorted).size != ids.size:
            raise SolverError("update_labels got duplicate row ids")
        y_sorted = y_new[order]
        if self.task == "svm":
            _check_svm_labels(y_new)
            mask = np.isin(self._svm_arrivals, ids_sorted)
            pos = np.nonzero(mask)[0]
            found = int(pos.size)
        else:
            sel = [np.nonzero(np.isin(arr, ids_sorted))[0]
                   for arr in self._arrivals]
            found = sum(int(p.size) for p in sel)
        if found != ids.size:
            raise SolverError(
                f"update_labels: {ids.size - found} of {ids.size} row ids "
                "are not present (evicted, or never appended)"
            )
        self.comm.reset()
        new_b = self.ctx.b.copy()
        if self.task == "lasso":
            part = self.dist.partition
            contrib = np.zeros(self.dist.shape[1])
            for r in range(self.comm.size):
                pos = sel[r]
                if pos.size == 0:
                    continue
                lo, _ = part.range_of(r)
                y_vals = y_sorted[
                    np.searchsorted(ids_sorted, self._arrivals[r][pos])
                ]
                if r == self.comm.rank:
                    rows = self.dist.local[pos]
                    delta = y_vals - self.ctx.b[lo + pos]
                    # repro: lint-ignore[collective-in-rank-branch] -- the
                    # owning rank's local partial product, no communication;
                    # every rank joins the Allreduce below
                    contrib = np.asarray(rows.T @ delta, dtype=np.float64).ravel()
                    # repro: lint-ignore[collective-in-rank-branch] -- owner-only flop accounting
                    self.comm.account_flops(2.0 * nnz_of(rows), "spmv")
                new_b[lo + pos] = y_vals
            # every rank joins the reduction, edits owned or not
            self._atb = self._atb + np.asarray(self.comm.Allreduce(contrib)).ravel()
            self.comm.account_flops(float(self._atb.shape[0]), "blas1")
        else:
            new_b[pos] = y_sorted[
                np.searchsorted(ids_sorted, self._svm_arrivals[pos])
            ]
            if self._alpha_warm is not None:
                self._alpha_warm = self._alpha_warm.copy()
                self._alpha_warm[pos] = 0.0
            self.comm.account_flops(float(ids.size), "blas1")
        # label-only: the matrix (and its fingerprint) is unchanged
        self.ctx.b = new_b
        self.revisions.append(
            DataRevision(
                self.revision + 1, self.n_rows, 0,
                labels_changed=int(ids.size),
                append_cost=self.comm.ledger.snapshot(),
            )
        )
        return self.revision

    # -- solving -------------------------------------------------------------
    def solve(self, lam=None, warm_start: bool = True, **overrides) -> SolverResult:
        """Refit at the current revision; warm-started by default.

        ``lam`` and any solver knob override the engine defaults for
        this call. The solve's modelled cost is banked against the
        current :class:`DataRevision`.
        """
        unknown = set(overrides) - set(self.defaults)
        if unknown:
            raise SolverError(f"unknown solve override(s): {sorted(unknown)}")
        p = {**self.defaults, **overrides}
        if lam is None:
            lam = p["lam"]
        self.ctx.begin_point()
        if self.task == "lasso":
            if lam is None:
                lam = 0.1 * self.lambda_max
            res = fit_lasso(
                self.dist, self.ctx.b, lam, solver=p["solver"], mu=p["mu"],
                s=p["s"], max_iter=p["max_iter"], tol=p["tol"], seed=p["seed"],
                comm=self.comm, record_every=p["record_every"],
                x0=self._x_warm if warm_start else None,
                fast=p["fast"], parity=p["parity"], pipeline=p["pipeline"],
                async_=p["async_"], tau=p["tau"],
                eig_memo=self.ctx.eig_memo,
            )
            self._x_warm = res.x
        else:
            if lam is None:
                lam = 1.0
            alpha0 = None
            if warm_start and self._alpha_warm is not None:
                _, nu = loss_params(p["loss"], float(lam))
                alpha0 = (
                    np.clip(self._alpha_warm, 0.0, nu)
                    if np.isfinite(nu) else self._alpha_warm
                )
            res = fit_svm(
                self.dist, self.ctx.b, loss=p["loss"], lam=float(lam),
                solver=p["solver"], s=p["s"], max_iter=p["max_iter"],
                tol=p["tol"], seed=p["seed"], comm=self.comm,
                record_every=p["record_every"],
                alpha0=alpha0, fast=p["fast"], parity=p["parity"],
                pipeline=p["pipeline"], async_=p["async_"], tau=p["tau"],
            )
            self._alpha_warm = res.extras["alpha"]
        self.ctx.end_point(res)
        self.revisions[-1].solve_costs.append(res.cost)
        return res

    def refit(self, B, y, lam=None, **overrides) -> SolverResult:
        """``append(B, y)`` + warm :meth:`solve` in one call."""
        self.append(B, y)
        return self.solve(lam=lam, **overrides)


# ---------------------------------------------------------------------------
# schedule replay (CLI / benchmark / test harness)
# ---------------------------------------------------------------------------


def _cost_dict(c: CostSnapshot) -> dict:
    return {
        "seconds": c.seconds,
        "comm_seconds": c.comm_seconds,
        "compute_seconds": c.compute_seconds,
        "comm_seconds_hidden": c.comm_seconds_hidden,
        "stale_seconds": c.stale_seconds,
        "max_staleness": int(c.max_staleness),
        "messages": int(c.messages),
        "words": c.words,
        "flops": c.flops,
        "retries": int(c.retries),
        "timeouts": int(c.timeouts),
        "recoveries": int(c.recoveries),
        "respawns": int(c.respawns),
        "replayed_iterations": int(c.replayed_iterations),
    }


def _solve_dict(res: SolverResult) -> dict:
    return {
        "iterations": int(res.iterations),
        "final_metric": float(res.final_metric),
        "converged": bool(res.converged),
        "cost": _cost_dict(res.cost),
    }


def _sum_cost_dicts(costs: list) -> dict:
    total = {k: 0 if k in ("messages", "retries", "timeouts", "recoveries",
                           "respawns", "replayed_iterations",
                           "max_staleness") else 0.0
             for k in ("seconds", "comm_seconds", "compute_seconds",
                       "comm_seconds_hidden", "stale_seconds",
                       "max_staleness", "messages", "words", "flops",
                       "retries", "timeouts", "recoveries", "respawns",
                       "replayed_iterations")}
    for c in costs:
        for k in total:
            if k == "max_staleness":
                total[k] = max(total[k], c.get(k, 0))
            else:
                total[k] += c.get(k, 0)
    return total


def _normalize_events(batches) -> list:
    """Coerce a replay schedule into ``(op, ...)`` event tuples.

    Accepted entries: a plain ``(B, y)`` pair (row arrival, backward
    compatible), or an op-tagged tuple — ``("append", B, y)``,
    ``("evict", ids)`` / ``("evict_oldest", n)``, ``("labels", ids,
    y_new)`` / ``("relabel_oldest", n)`` (the latter negates the current
    labels of the ``n`` oldest surviving rows, a deterministic label
    edit valid for both tasks), and ``("sleep", seconds)`` — advance
    virtual time by ``seconds`` without touching the data or refitting
    (charged to the ledger as idle time; no wall clock is spent). The
    sleep token is how timestamped arrival traces are expressed in the
    schedule vocabulary shared with the serving engine
    (:mod:`repro.serve`).
    """
    events = []
    for ev in batches:
        if not isinstance(ev, (tuple, list)) or not len(ev):
            raise SolverError(f"unknown streaming event {ev!r}")
        if not isinstance(ev[0], str):
            if len(ev) != 2:
                raise SolverError(f"unknown streaming event {ev!r}")
            events.append(("append", ev[0], ev[1]))
            continue
        op = ev[0]
        if op == "append" and len(ev) == 3:
            events.append(("append", ev[1], ev[2]))
        elif op == "evict" and len(ev) == 2:
            events.append(("evict", np.asarray(ev[1], dtype=np.intp).ravel()))
        elif op == "evict_oldest" and len(ev) == 2:
            events.append(("evict_oldest", int(ev[1])))
        elif op == "labels" and len(ev) == 3:
            events.append((
                "labels",
                np.asarray(ev[1], dtype=np.intp).ravel(),
                np.asarray(ev[2], dtype=np.float64).ravel(),
            ))
        elif op == "relabel_oldest" and len(ev) == 2:
            events.append(("relabel_oldest", int(ev[1])))
        elif op == "sleep" and len(ev) == 2:
            seconds = float(ev[1])
            if not np.isfinite(seconds) or seconds < 0:
                raise SolverError(
                    f"sleep seconds must be finite and >= 0, got {ev[1]!r}"
                )
            events.append(("sleep", seconds))
        else:
            raise SolverError(f"unknown streaming event {ev!r}")
    return events


def _sched_entry(ev) -> dict:
    """Echo one input event for the report's ``schedule`` field.

    ``rows`` is the *requested* count; for the ``*_oldest`` ops it may
    exceed the surviving rows, in which case the matching revision's
    ``rows_removed`` / ``labels_changed`` records what was actually
    affected.
    """
    op = ev[0]
    if op == "append":
        return {"op": "append", "rows": int(ev[1].shape[0])}
    if op == "sleep":
        return {"op": "sleep", "rows": 0, "seconds": float(ev[1])}
    if op in ("evict", "labels"):
        return {"op": op, "rows": int(len(ev[1]))}
    # the *_oldest ops carry a count, not ids
    return {"op": {"evict_oldest": "evict", "relabel_oldest": "labels"}[op],
            "rows": int(ev[1])}


def replay_schedule(
    A,
    b,
    batches,
    *,
    task: str = "lasso",
    max_rows: int | None = None,
    lam=None,
    solver: str | None = None,
    loss: str = "l1",
    mu: int = 8,
    s: int = 16,
    max_iter: int = 500,
    tol: float | None = 1e-6,
    seed: int = 0,
    record_every: int = 10,
    fast: bool = True,
    parity: str = "exact",
    pipeline: bool = False,
    async_: bool = False,
    tau: int = 1,
    backend: str = "virtual",
    ranks: int = 4,
    virtual_p: int = 1,
    machine: MachineSpec | None = None,
    warm_start: bool = True,
    compare_cold: bool = False,
    checkpoint_path=None,
    resume_from=None,
    recover: str = "raise",
    max_recoveries: int = 2,
) -> dict:
    """Replay a streaming schedule through a :class:`StreamingSweep`.

    ``batches`` is a sequence of events ingested in order — plain
    ``(B_i, y_i)`` pairs (row arrivals) or op-tagged tuples carrying
    evictions and label edits (see :func:`_normalize_events`); the
    initial fit happens at revision 0 and each event triggers one warm
    refit. ``max_rows`` turns the replay into a sliding window: each
    append evicts the oldest surviving rows beyond the window within the
    same revision. With ``compare_cold=True`` every refit is also
    measured against a cold re-solve (fresh partitioned matrix over the
    *surviving* materialized data, zero start, fresh eig memo) — the
    honest "retrain from scratch" baseline — and the warm/cold
    solutions' relative difference is recorded.

    ``backend`` selects where the whole engine runs: ``"virtual"``
    in-process at ``virtual_p`` modelled ranks, or ``"thread"`` /
    ``"process"`` as ``ranks`` real SPMD participants (costs modelled at
    ``max(virtual_p, ranks)``). Returns a plain-dict report (JSON-ready,
    picklable across the process backend).

    ``checkpoint_path`` makes the replay crash-safe: after the initial
    fit and after every processed event, a ``kind="streaming-replay"``
    checkpoint (engine snapshot + completed report entries + the number
    of events applied) is written atomically by rank 0. ``resume_from``
    (the payload dict or its path) continues a killed replay: the engine
    and completed entries are restored, the already-applied prefix of
    ``batches`` is skipped, and the remaining events run as usual — the
    final report is identical to an uninterrupted replay (modelled
    costs included). Pass the same schedule and knobs when resuming;
    the checkpoint pins the engine's solve defaults.

    ``recover="checkpoint"`` (``backend="process"`` only) turns a rank
    death mid-replay into a supervised recovery: the dead rank is
    respawned and the replay resumes from the supervisor's latest
    in-memory streaming checkpoint (shipped after every event, whether
    or not ``checkpoint_path`` is set), at most ``max_recoveries``
    times. The report's ``recovery`` block carries the counters.
    """
    if task not in ("lasso", "svm"):
        raise SolverError(f"unknown streaming task {task!r}; known: ['lasso', 'svm']")
    events = _normalize_events(batches)
    knobs = dict(
        solver=solver, loss=loss, lam=lam, mu=mu, s=s, max_iter=max_iter,
        tol=tol, seed=seed, record_every=record_every, fast=fast,
        parity=parity, pipeline=pipeline, async_=async_, tau=tau,
    )

    def work(comm, rank):
        rctx = getattr(comm, "recovery", None)
        if rctx is not None and not rctx.active:
            rctx = None
        resume_src = resume_from
        if rctx is not None and rctx.resume is not None:
            # a redispatched attempt resumes from the supervisor's latest
            # collected checkpoint, not the caller's original one
            resume_src = rctx.resume
        if resume_src is not None:
            rck = _load_stream_checkpoint(resume_src, "streaming-replay")
            if rck["task"] != task:
                raise CheckpointError(
                    f"replay checkpoint is a {rck['task']!r} run; resume"
                    f" was called with task={task!r}"
                )
            applied = int(rck["events_applied"])
            if applied > len(events):
                raise CheckpointError(
                    f"replay checkpoint already applied {applied} events;"
                    f" the resuming schedule has only {len(events)}"
                )
            engine = StreamingSweep.from_checkpoint(rck["engine"], comm=comm)
            lam_used = rck["lam_used"]
            entries = list(rck["entries"])
            slept = float(rck.get("slept_seconds", 0.0))
        else:
            engine = StreamingSweep(
                A, b, task=task, comm=comm, max_rows=max_rows, **knobs
            )
            # resolve lambda once, on the initial data, and hold it
            # fixed across revisions (the production scenario: the model
            # spec does not change when data arrives)
            lam_used = knobs["lam"]
            if lam_used is None:
                lam_used = 0.1 * engine.lambda_max if task == "lasso" else 1.0
            applied = 0
            entries = []
            slept = 0.0

        def emit_replay_ck(n_applied):
            if checkpoint_path is None and rctx is None:
                return
            # collective (the engine snapshot gathers the shards), but
            # only rank 0 writes — the payload is replicated knowledge
            payload = {
                "format_version": STREAM_CHECKPOINT_VERSION,
                "kind": "streaming-replay",
                "task": task,
                "events_applied": int(n_applied),
                "slept_seconds": float(slept),
                "lam_used": float(lam_used),
                "warm_start": bool(warm_start),
                "entries": entries,
                "engine": engine.checkpoint(),
            }
            if rctx is not None:
                rctx.save(payload)
            if checkpoint_path is not None and comm.rank == 0:
                # repro: lint-ignore[collective-in-rank-branch] -- rank-0
                # checkpoint IO: a local atomic file write, no communication
                atomic_write_json(os.fspath(checkpoint_path), payload)

        def run_cold(revision):
            # same solver configuration (fast/parity/pipeline) as the
            # warm refits — the variable under measurement is the warm
            # start + incremental state, not the solver mode
            A_eff, b_eff = engine.materialize()
            comm.reset()
            if task == "lasso":
                cold_dist = RowPartitionedMatrix.from_global(
                    A_eff, comm, partition=engine.dist.partition
                )
                cold = fit_lasso(
                    cold_dist, b_eff, lam_used, solver=engine.defaults["solver"],
                    mu=mu, s=s, max_iter=max_iter, tol=tol, seed=seed,
                    record_every=record_every, fast=fast, parity=parity,
                    pipeline=pipeline, async_=async_, tau=tau,
                    eig_memo=EigMemo(),
                )
            else:
                cold_dist = ColPartitionedMatrix.from_global(
                    A_eff, comm, partition=engine.dist.partition
                )
                cold = fit_svm(
                    cold_dist, b_eff, loss=loss, lam=float(lam_used),
                    solver=engine.defaults["solver"], s=s, max_iter=max_iter,
                    tol=tol, seed=seed, record_every=record_every,
                    fast=fast, parity=parity, pipeline=pipeline,
                    async_=async_, tau=tau,
                )
            return cold

        def entry(rev_obj, warm_res, cold_res):
            e = {
                "rev": rev_obj.rev,
                "rows_total": rev_obj.rows_total,
                "rows_added": rev_obj.rows_added,
                "rows_removed": rev_obj.rows_removed,
                "labels_changed": rev_obj.labels_changed,
                "append_cost": _cost_dict(rev_obj.append_cost),
                "evict_cost": _cost_dict(rev_obj.evict_cost),
                "warm": _solve_dict(warm_res),
                "cold": _solve_dict(cold_res) if cold_res is not None else None,
                "solution_rel_diff": None,
            }
            if cold_res is not None:
                scale = max(float(np.max(np.abs(cold_res.x))), 1e-30)
                e["solution_rel_diff"] = (
                    float(np.max(np.abs(warm_res.x - cold_res.x))) / scale
                )
            return e

        def apply_event(ev):
            op = ev[0]
            if op == "append":
                engine.append(ev[1], ev[2])
            elif op == "evict":
                engine.evict(ev[1])
            elif op == "evict_oldest":
                engine.evict(engine.surviving_rows()[: ev[1]])
            elif op == "labels":
                engine.update_labels(ev[1], ev[2])
            else:  # relabel_oldest: negate the oldest rows' current labels
                ids = engine.surviving_rows()[: ev[1]]
                order = engine.arrival_order()
                pos = np.nonzero(np.isin(order, ids))[0]
                engine.update_labels(order[pos], -engine.b[pos])

        if not entries:
            res0 = engine.solve(lam=lam_used, warm_start=False)
            entries.append(entry(engine.revisions[0], res0, None))
            emit_replay_ck(applied)
        for ev in events[applied:]:
            if ev[0] == "sleep":
                # virtual time only: charge the ledger's idle counter,
                # advance the replay clock, no revision and no refit —
                # but the event still counts as applied for resume
                comm.ledger.add_idle(ev[1])
                slept += ev[1]
                applied += 1
                emit_replay_ck(applied)
                continue
            before = engine.revision
            apply_event(ev)
            applied += 1
            if engine.revision == before:
                # defined no-op (empty batch/ids): no refit, no entry —
                # but the event still counts as applied for resume
                emit_replay_ck(applied)
                continue
            res = engine.solve(lam=lam_used, warm_start=warm_start)
            cold = run_cold(engine.revision) if compare_cold else None
            entries.append(entry(engine.revisions[-1], res, cold))
            emit_replay_ck(applied)
        # a warm refit's cost is the revision's incremental state work
        # (append and/or eviction) PLUS the warm solve — the same
        # definition the per-revision table rows (and the bench gates)
        # use
        warm_costs = [e["warm"]["cost"] for e in entries[1:]]
        warm_costs += [e["append_cost"] for e in entries[1:]]
        warm_costs += [e["evict_cost"] for e in entries[1:]]
        cold_costs = [e["cold"]["cost"] for e in entries[1:] if e["cold"]]
        return {
            "format_version": STREAM_REPORT_VERSION,
            "task": task,
            "solver": engine.defaults["solver"],
            "backend": backend,
            "ranks": 1 if backend == "virtual" else ranks,
            "virtual_p": virtual_p,
            "warm_start": bool(warm_start),
            "max_rows": max_rows,
            "lam": float(lam_used) if np.isscalar(lam_used) else None,
            "m0": int(np.asarray(b).ravel().shape[0]),
            "n": int(engine.dist.shape[1]),
            "schedule": [_sched_entry(ev) for ev in events],
            "revisions": entries,
            # physical-attempt bookkeeping from the supervised pool (the
            # counters at the final — successful — dispatch, so they are
            # whole-run totals); all zeros outside recover="checkpoint"
            "recovery": {
                "recoveries": 0 if rctx is None else int(rctx.recoveries),
                "respawns": 0 if rctx is None else int(rctx.respawns),
                "replayed_iterations": (
                    0 if rctx is None else int(rctx.replayed_iterations)
                ),
            },
            "totals": {
                "slept_seconds": float(slept),
                "warm_refit_cost": _sum_cost_dicts(warm_costs),
                "cold_resolve_cost": (
                    _sum_cost_dicts(cold_costs) if cold_costs else None
                ),
            },
        }

    if recover not in ("raise", "checkpoint"):
        raise SolverError(
            f"recover must be 'raise' or 'checkpoint', got {recover!r}"
        )
    if recover == "checkpoint" and backend != "process":
        raise SolverError(
            "recover='checkpoint' needs backend='process' (the supervised"
            " worker pool)"
        )
    if backend == "virtual":
        return work(VirtualComm(virtual_size=virtual_p, machine=machine), 0)
    if backend not in ("thread", "process"):
        raise SolverError(
            f"unknown backend {backend!r}; known: ['virtual', 'thread', 'process']"
        )
    if ranks < 1:
        raise SolverError(f"ranks must be >= 1, got {ranks}")
    nb_depth = tau + 2 if async_ else NB_RING_DEPTH
    if backend == "thread":
        out = spmd_run(work, ranks, machine=machine,
                       cost_size=max(virtual_p, ranks), nb_depth=nb_depth)
    else:
        out = process_spmd_run(
            work, ranks, machine=machine, cost_size=max(virtual_p, ranks),
            recover=recover, max_recoveries=max_recoveries,
            nb_depth=nb_depth,
        )
    return out.values[0]
