"""Process-backed SPMD engine: true GIL-free parallelism.

Runs ``size`` ranks as forked OS processes executing the same function
(SPMD), exchanging data through anonymous shared-memory slabs
(:func:`multiprocessing.sharedctypes.RawArray`, inherited by fork — no
named segments, no cleanup, no resource-tracker noise). This is the
backend that makes wall-clock overlap claims *honest*: thread ranks
share one GIL for the Python-level inner loops, so a thread "speedup"
can be an artifact of scheduling; process ranks genuinely compute in
parallel, and hiding a reduction behind computation genuinely shortens
the critical path (``benchmarks/bench_overlap.py``).

Semantics match :class:`~repro.mpi.thread_backend.ThreadComm` exactly:

* every collective folds contributions in rank order, so results are
  bit-identical run-to-run and identical to the thread and virtual
  backends (each rank performs the same deterministic fold on the same
  rank-ordered payloads);
* SPMD-mismatch detection: each collective publishes its tag; divergent
  ranks raise :class:`~repro.errors.RankMismatchError` instead of
  deadlocking;
* nonblocking collectives run through a double-buffered slot ring.
  There is no background progress process — completion time is
  ``last deposit + latency`` (published in the slot header), and each
  rank's wait sleeps only the *remainder* of that window, which is what
  lets computation before the wait genuinely hide the transit.

Generic object collectives pickle payloads into fixed-capacity per-rank
slabs (``slab_bytes``, default 4 MiB — raise it through
``process_spmd_run(slab_bytes=)`` / ``ProcessWorld(slab_bytes=)`` for
larger payloads); an oversized payload raises a
:class:`~repro.errors.CommError` naming the payload size and the knob —
and aborts the world so peers wake instead of parking on the barrier —
rather than corrupting a neighbour's slab. Nonblocking payloads are raw
float64 (the packed-Gram hot path) — no pickling on the pipelined
critical path.

Teardown is exception-safe: a rank failing mid-collective (or the
parent unwinding) aborts the world — broken barrier, woken nonblocking
waiters — so blocked ranks exit deterministically instead of waiting
out the join-timeout/terminate path. :class:`ProcessWorld` is a context
manager (``shutdown()`` on exit) for direct, non-``process_spmd_run``
use.

Requires a platform with ``fork`` (Linux/macOS): the SPMD function and
its closure are inherited, not pickled, so tests and solvers can pass
lambdas exactly as with :func:`~repro.mpi.thread_backend.spmd_run`.
"""

from __future__ import annotations

import ctypes
import multiprocessing as mp
import os
import pickle
import signal
import threading
import time
from multiprocessing.sharedctypes import RawArray
from threading import BrokenBarrierError
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import (
    CommAborted,
    CommError,
    CommTimeoutError,
    RankDiedError,
    RankMismatchError,
)
from repro.machine.ledger import CostLedger
from repro.machine.spec import MachineSpec
from repro.mpi.comm import Comm
from repro.mpi.thread_backend import NB_RING_DEPTH, SpmdResult

__all__ = ["ProcessComm", "ProcessWorld", "process_spmd_run"]

_TAG_BYTES = 128


def _require_fork() -> mp.context.BaseContext:
    if "fork" not in mp.get_all_start_methods():
        raise CommError(
            "the process backend needs the 'fork' start method "
            "(unavailable on this platform)"
        )
    return mp.get_context("fork")


class _NbProcSlot:
    """One shared-memory slot of the nonblocking-collective ring."""

    def __init__(self, ctx, size: int, seq: int, capacity_doubles: int) -> None:
        self.cond = ctx.Condition()
        self.capacity = capacity_doubles
        self.payload = RawArray(ctypes.c_double, size * capacity_doubles)
        self.lengths = RawArray(ctypes.c_longlong, size)
        self.tags = RawArray(ctypes.c_char, size * _TAG_BYTES)
        self.seq = ctx.Value(ctypes.c_longlong, seq, lock=False)
        self.deposited = ctx.Value(ctypes.c_int, 0, lock=False)
        self.consumed = ctx.Value(ctypes.c_int, 0, lock=False)
        self.complete_at = ctx.Value(ctypes.c_double, 0.0, lock=False)

    def _tag(self, rank: int) -> bytes:
        raw = bytes(self.tags[rank * _TAG_BYTES:(rank + 1) * _TAG_BYTES])
        return raw.rstrip(b"\0")

    def _set_tag(self, rank: int, tag: str) -> None:
        enc = tag.encode()[: _TAG_BYTES - 1]
        self.tags[rank * _TAG_BYTES:rank * _TAG_BYTES + len(enc)] = enc
        # zero-pad the remainder so a shorter tag never inherits suffix bytes
        pad = _TAG_BYTES - len(enc)
        self.tags[rank * _TAG_BYTES + len(enc):(rank + 1) * _TAG_BYTES] = b"\0" * pad


class _ProcNbHandle:
    """Per-rank handle for one in-flight nonblocking collective."""

    __slots__ = ("_world", "_slot", "_seq", "_rank", "_op", "_shape", "_result")

    def __init__(self, world, slot, seq, rank, op, shape) -> None:
        self._world = world
        self._slot = slot
        self._seq = seq
        self._rank = rank
        self._op = op
        self._shape = shape
        self._result = None

    def _ready_locked(self) -> bool:
        slot = self._slot
        return slot.seq.value == self._seq and slot.deposited.value == self._world.size

    def _complete(self):
        """Fold the deposited payloads (deterministic rank order)."""
        world, slot = self._world, self._slot
        n = int(slot.lengths[0])
        flat = np.frombuffer(slot.payload, dtype=np.float64)
        parts = [flat[r * slot.capacity:r * slot.capacity + n] for r in range(world.size)]
        tags = [slot._tag(r) for r in range(world.size)]
        lengths = [int(slot.lengths[r]) for r in range(world.size)]
        err = None
        if any(t != tags[0] for t in tags) or any(ln != n for ln in lengths):
            err = RankMismatchError(
                "SPMD mismatch: ranks posted different nonblocking "
                f"collectives {[t.decode() for t in tags]} with payload "
                f"lengths {lengths}"
            )
            result = None
        else:
            result = self._op.fold(parts).reshape(self._shape)
        with slot.cond:
            slot.consumed.value += 1
            if slot.consumed.value == world.size:
                slot.seq.value += NB_RING_DEPTH
                slot.deposited.value = 0
                slot.consumed.value = 0
                slot.cond.notify_all()
        if err is not None:
            raise err
        self._result = result
        return result

    def wait(self, timeout: float | None = None):
        world, slot = self._world, self._slot
        deadline = None if timeout is None else time.monotonic() + timeout
        with slot.cond:
            while not self._ready_locked():
                if world.is_aborted():
                    raise world._abort_error(self._rank, "Iallreduce")
                if deadline is not None and time.monotonic() >= deadline:
                    stalled = tuple(
                        r
                        for r in range(world.size)
                        if slot.seq.value == self._seq and int(slot.lengths[r]) == 0
                    )
                    world.abort()
                    raise CommTimeoutError(
                        f"rank {self._rank}: nonblocking collective timed out"
                        f" after {timeout}s (no deposit from ranks"
                        f" {list(stalled)})",
                        tag="Iallreduce",
                        stalled=stalled,
                    )
                slot.cond.wait(0.05)
            remaining = slot.complete_at.value - time.monotonic()
        if remaining > 0:
            # unoverlapped transit remainder — computation done before the
            # wait() has already eaten into this window
            time.sleep(remaining)
        return self._complete()

    def test(self):
        world, slot = self._world, self._slot
        with slot.cond:
            if world.is_aborted():
                raise world._abort_error(self._rank, "Iallreduce")
            if not self._ready_locked():
                return None
            remaining = slot.complete_at.value - time.monotonic()
        if remaining > 0:
            return None
        return self._complete()


class ProcessWorld:
    """Shared-memory state for one process-SPMD world.

    Created in the parent *before* forking; children inherit the mapped
    arenas and synchronisation primitives. ``slab_bytes`` bounds one
    rank's pickled payload per blocking collective; ``nb_doubles`` bounds
    one rank's nonblocking float64 payload (defaults fit a packed
    ``(s*mu)^2/2`` Gram up to s*mu ≈ 1000).
    """

    def __init__(
        self,
        size: int,
        slab_bytes: int = 1 << 22,
        nb_doubles: int = 1 << 19,
        latency: float = 0.0,
    ) -> None:
        if size < 1:
            raise CommError(f"size must be >= 1, got {size}")
        ctx = _require_fork()
        self.size = size
        self.slab_bytes = int(slab_bytes)
        self.latency = float(latency)
        self.barrier = ctx.Barrier(size)
        self._aborted = ctx.Value(ctypes.c_int, 0, lock=False)
        #: per-rank death flags set by the watchdog (or any observer);
        #: survivors map a broken barrier to RankDiedError through these
        self._dead = RawArray(ctypes.c_int, size)
        #: per-rank barrier-arrival counters for naming stalled ranks
        self._arrive_gen = RawArray(ctypes.c_longlong, size)
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop: threading.Event | None = None
        self._obj = RawArray(ctypes.c_char, size * self.slab_bytes)
        self._obj_len = RawArray(ctypes.c_longlong, size)
        self._tags = RawArray(ctypes.c_char, size * _TAG_BYTES)
        self._nb_ring = [
            _NbProcSlot(ctx, size, seq, int(nb_doubles))
            for seq in range(NB_RING_DEPTH)
        ]
        self._ctx = ctx

    # -- failure handling --------------------------------------------------
    def abort(self) -> None:
        """Fail peers fast: break the barrier, wake nonblocking waiters.

        Idempotent, callable from any rank or the parent. Every blocked
        participant wakes deterministically: barrier waiters get
        :class:`~threading.BrokenBarrierError` (surfaced as
        :class:`~repro.errors.CommAborted`), nonblocking waiters observe
        the aborted flag on their next condition wake-up (<= 50 ms).
        """
        self._aborted.value = 1
        self.barrier.abort()
        for slot in self._nb_ring:
            with slot.cond:
                slot.cond.notify_all()

    def mark_rank_dead(self, rank: int) -> None:
        """Record that ``rank``'s process died, then abort the world.

        Called by the parent-side watchdog (or any observer of a child
        death). Survivors blocked in a collective wake through the abort
        and, seeing the death flag, raise
        :class:`~repro.errors.RankDiedError` instead of the generic
        :class:`~repro.errors.CommAborted`.
        """
        self._dead[rank] = 1
        self.abort()

    def dead_ranks(self) -> list:
        """Ranks recorded as dead (empty if none)."""
        return [r for r in range(self.size) if self._dead[r]]

    def _abort_error(self, rank: int, tag: str) -> CommError:
        """The error a woken survivor should raise for this abort."""
        dead = self.dead_ranks()
        if dead:
            return RankDiedError(
                f"rank {rank}: collective {tag!r} aborted because ranks"
                f" {dead} died",
                dead_ranks=tuple(dead),
            )
        return CommAborted(
            f"rank {rank}: collective {tag!r} aborted by a peer failure"
        )

    # -- parent-side heartbeat watchdog ------------------------------------
    def start_watchdog(self, procs: Sequence, interval: float = 0.05) -> None:
        """Watch child processes from the parent; mark deaths promptly.

        ``procs[r]`` is rank ``r``'s :class:`multiprocessing.Process`. A
        child that stops being alive with a nonzero exit code is marked
        dead (:meth:`mark_rank_dead`), which aborts the world so every
        surviving rank surfaces :class:`~repro.errors.RankDiedError`
        within one heartbeat instead of hanging. Idempotent per world;
        stop with :meth:`stop_watchdog`.
        """
        if self._watchdog is not None:
            return
        stop = threading.Event()

        def _watch() -> None:
            while not stop.is_set():
                for r, p in enumerate(procs):
                    if not p.is_alive() and p.exitcode not in (0, None):
                        if not self._dead[r]:
                            self.mark_rank_dead(r)
                if self.is_aborted():
                    return
                stop.wait(interval)

        self._watchdog_stop = stop
        self._watchdog = threading.Thread(
            target=_watch, name="spmd-watchdog", daemon=True
        )
        self._watchdog.start()

    def stop_watchdog(self) -> None:
        """Stop the heartbeat watchdog (idempotent)."""
        if self._watchdog_stop is not None:
            self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(1.0)
        self._watchdog = None
        self._watchdog_stop = None

    def shutdown(self) -> None:
        """Deterministic teardown: alias of :meth:`abort` for use as an
        explicit end-of-life call (or via the context manager). After
        shutdown every collective on the world raises
        :class:`~repro.errors.CommAborted` instead of blocking."""
        self.stop_watchdog()
        self.abort()

    def __enter__(self) -> "ProcessWorld":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def is_aborted(self) -> bool:
        return bool(self._aborted.value)

    # -- blocking exchange -------------------------------------------------
    def _read_tag(self, rank: int) -> bytes:
        raw = bytes(self._tags[rank * _TAG_BYTES:(rank + 1) * _TAG_BYTES])
        return raw.rstrip(b"\0")

    def _barrier_wait(self, rank: int, tag: str, timeout: float | None) -> None:
        """One barrier arrival with an optional deadline.

        Mirrors :meth:`ThreadContext._barrier_wait`: a rank whose wait
        expires aborts the world and raises
        :class:`~repro.errors.CommTimeoutError` naming the tag and the
        lagging ranks; peers woken by the broken barrier raise
        :class:`~repro.errors.RankDiedError` if a death was recorded,
        else :class:`~repro.errors.CommAborted`.
        """
        self._arrive_gen[rank] += 1
        start = time.monotonic()
        try:
            self.barrier.wait(timeout)
        except BrokenBarrierError as exc:
            if self.dead_ranks():
                raise self._abort_error(rank, tag) from exc
            timed_out = (
                timeout is not None
                and not self.is_aborted()
                and time.monotonic() - start >= timeout
            )
            if timed_out:
                my_gen = int(self._arrive_gen[rank])
                stalled = tuple(
                    r for r in range(self.size)
                    if int(self._arrive_gen[r]) < my_gen
                )
                self.abort()
                raise CommTimeoutError(
                    f"rank {rank}: collective {tag!r} timed out after"
                    f" {timeout}s waiting for ranks {list(stalled)}",
                    tag=tag,
                    stalled=stalled,
                ) from exc
            raise self._abort_error(rank, tag) from exc

    def exchange(
        self, rank: int, tag: str, obj: Any, fold=None, timeout: float | None = None
    ) -> Any:
        """Deposit, synchronise, snapshot (or fold), synchronise.

        The process twin of :meth:`ThreadContext.exchange`: pickles the
        payload into this rank's slab, barriers, reads every slab (so
        each rank folds its *own copies* — deterministic and isolated),
        barriers again so nobody overwrites a slab early. ``timeout``
        bounds each barrier wait (see :meth:`_barrier_wait`).
        """
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > self.slab_bytes:
            # the collective cannot proceed for anyone: wake peers that
            # already parked on the barrier instead of letting them sit
            # until the parent's timeout/terminate path fires
            self.abort()
            raise CommError(
                f"collective {tag!r}: pickled payload of {len(payload)} "
                f"bytes exceeds the process backend's slab capacity "
                f"(slab_bytes={self.slab_bytes}); raise slab_bytes= in "
                "process_spmd_run / ProcessWorld"
            )
        base = rank * self.slab_bytes
        self._obj[base:base + len(payload)] = payload
        self._obj_len[rank] = len(payload)
        enc = tag.encode()[: _TAG_BYTES - 1]
        self._tags[rank * _TAG_BYTES:rank * _TAG_BYTES + len(enc)] = enc
        pad = _TAG_BYTES - len(enc)
        self._tags[rank * _TAG_BYTES + len(enc):(rank + 1) * _TAG_BYTES] = b"\0" * pad
        self._barrier_wait(rank, tag, timeout)
        try:
            tags = [self._read_tag(r) for r in range(self.size)]
            if any(t != tags[0] for t in tags):
                raise RankMismatchError(
                    "SPMD mismatch: ranks called different collectives "
                    f"{[t.decode() for t in tags]}"
                )
            gathered = [
                pickle.loads(bytes(
                    self._obj[r * self.slab_bytes:
                              r * self.slab_bytes + int(self._obj_len[r])]
                ))
                for r in range(self.size)
            ]
            snapshot = fold(gathered) if fold is not None else gathered
            if self.latency:
                # emulated transit on the critical path (concurrent ranks)
                time.sleep(self.latency)
        finally:
            self._barrier_wait(rank, tag, timeout)
        return snapshot

    # -- nonblocking post --------------------------------------------------
    def nb_post(
        self,
        rank: int,
        seq: int,
        tag: str,
        arr: np.ndarray,
        op,
        timeout: float | None = None,
    ):
        """Deposit one rank's nonblocking contribution; returns a handle.

        ``timeout`` bounds the wait for a free ring slot.
        """
        if arr.dtype != np.float64:
            raise CommError(
                "process-backend Iallreduce supports float64 arrays, got "
                f"{arr.dtype}"
            )
        flat = np.ascontiguousarray(arr).ravel()
        slot = self._nb_ring[seq % NB_RING_DEPTH]
        if flat.shape[0] > slot.capacity:
            self.abort()  # peers waiting on this slot must not park
            raise CommError(
                f"nonblocking collective {tag!r}: payload of "
                f"{flat.shape[0]} doubles exceeds the slot capacity "
                f"(nb_doubles={slot.capacity}); raise nb_doubles= in "
                "process_spmd_run / ProcessWorld"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        with slot.cond:
            while slot.seq.value != seq:
                if self.is_aborted():
                    raise self._abort_error(rank, tag)
                if deadline is not None and time.monotonic() >= deadline:
                    self.abort()
                    raise CommTimeoutError(
                        f"rank {rank}: nonblocking collective {tag!r} timed"
                        f" out after {timeout}s waiting for a free ring slot",
                        tag=tag,
                    )
                slot.cond.wait(0.05)
            dst = np.frombuffer(slot.payload, dtype=np.float64)
            dst[rank * slot.capacity:rank * slot.capacity + flat.shape[0]] = flat
            slot.lengths[rank] = flat.shape[0]
            slot._set_tag(rank, tag)
            slot.deposited.value += 1
            if slot.deposited.value == self.size:
                slot.complete_at.value = time.monotonic() + self.latency
                slot.cond.notify_all()
        return _ProcNbHandle(self, slot, seq, rank, op, arr.shape)


class ProcessComm(Comm):
    """Communicator bound to one rank of a :class:`ProcessWorld`."""

    def __init__(
        self,
        world: ProcessWorld,
        rank: int,
        machine: MachineSpec | None = None,
        cost_size: int | None = None,
        ledger: CostLedger | None = None,
        timeout: float | None = None,
    ) -> None:
        super().__init__(
            rank=rank,
            size=world.size,
            cost_size=cost_size,
            machine=machine,
            ledger=ledger,
            timeout=timeout,
        )
        self._world = world
        self._nb_seq = 0

    def _allgather_impl(self, tag: str, obj: Any) -> list:
        try:
            return self._world.exchange(
                self._rank, tag, obj, timeout=self._active_timeout
            )
        except CommTimeoutError:
            self.ledger.add_timeout()
            raise

    def _exchange_fold(self, tag: str, obj: Any, fold) -> Any:
        # the pickled slabs are private copies, so the fold is trivially
        # safe against send-buffer reuse; run it between the barriers for
        # symmetry with the thread backend
        try:
            return self._world.exchange(
                self._rank, tag, obj, fold=fold, timeout=self._active_timeout
            )
        except CommTimeoutError:
            self.ledger.add_timeout()
            raise

    def _iallreduce_impl(self, tag: str, arr, op):
        seq = self._nb_seq
        self._nb_seq += 1
        return self._world.nb_post(
            self._rank, seq, tag, arr, op, timeout=self._active_timeout
        )


def process_spmd_run(
    fn: Callable[..., Any],
    size: int,
    args: Sequence = (),
    machine: MachineSpec | None = None,
    cost_size: int | None = None,
    timeout: float | None = 120.0,
    latency: float = 0.0,
    slab_bytes: int = 1 << 22,
    nb_doubles: int = 1 << 19,
    comm_timeout: float | None = None,
) -> SpmdResult:
    """Run ``fn(comm, rank, *args)`` on ``size`` forked process ranks.

    The process twin of :func:`~repro.mpi.thread_backend.spmd_run`, same
    signature and same :class:`SpmdResult` (per-rank values + ledgers:
    each child ships its return value and ledger back through a queue).
    ``fn`` and its closure are inherited by fork, so lambdas work; the
    *return value* must be picklable.

    ``slab_bytes`` bounds one rank's pickled payload per blocking
    collective (default 4 MiB) and ``nb_doubles`` one rank's nonblocking
    float64 payload; an oversized payload raises a :class:`CommError`
    naming the size and the knob, and aborts the world so peers wake
    instead of parking. Teardown is exception-safe: a rank raising
    mid-collective aborts the world (broken barrier + woken nonblocking
    waiters), so every surviving rank exits deterministically and no
    forked child outlives the call.

    ``comm_timeout`` installs a default per-collective deadline on every
    rank's communicator (``None`` = wait forever).

    Children install signal handlers before running ``fn``: SIGTERM
    aborts the world and exits immediately, SIGINT is ignored (the
    parent coordinates Ctrl-C teardown through its ``finally`` path), so
    an interrupted run leaves no orphan processes.

    Raises the first per-rank exception (rank order) if any rank failed;
    a killed rank raises :class:`~repro.errors.RankDiedError` (on the
    survivors and in the parent), hung ranks raise :class:`CommAborted`.
    """
    world = ProcessWorld(
        size, slab_bytes=slab_bytes, nb_doubles=nb_doubles, latency=latency
    )
    ctx = world._ctx
    # result channel: one pipe, many writers serialized by a lock (the
    # public-API equivalent of SimpleQueue, which offers no timed poll).
    # send() is synchronous, so a child's report is fully in the pipe
    # before the child exits.
    recv_end, send_end = ctx.Pipe(duplex=False)
    send_lock = ctx.Lock()

    def report(item) -> None:
        with send_lock:
            send_end.send(item)

    def worker(r: int) -> None:
        # Signal safety: the parent's finally-path owns teardown. SIGTERM
        # (e.g. an external kill of this rank) still aborts the world so
        # peers fail fast; SIGINT is ignored because a terminal Ctrl-C is
        # delivered to the whole process group and the parent's unwind
        # already aborts + joins every child — handling it here too would
        # race that teardown and strand peers mid-collective.
        signal.signal(signal.SIGINT, signal.SIG_IGN)

        def _sigterm(signum, frame):
            world.abort()
            os._exit(1)

        signal.signal(signal.SIGTERM, _sigterm)
        comm = ProcessComm(
            world, r, machine=machine, cost_size=cost_size, timeout=comm_timeout
        )
        try:
            value = fn(comm, r, *args)
        except BaseException as exc:  # noqa: BLE001 - reported to the parent
            world.abort()
            try:
                report((r, "err", exc, None))
            except Exception:
                report((r, "err", CommError(repr(exc)), None))
            return
        try:
            report((r, "ok", value, comm.ledger))
        except Exception as exc:  # unpicklable return value
            report((r, "err", CommError(
                f"rank {r} returned an unpicklable value: {exc!r}"
            ), None))

    procs = [
        ctx.Process(target=worker, args=(r,), name=f"spmd-proc-{r}", daemon=True)
        for r in range(size)
    ]
    for p in procs:
        p.start()
    # heartbeat: a killed child is marked dead (aborting the world) within
    # one watchdog interval, independently of the report-poll loop below
    world.start_watchdog(procs)
    deadline = None if timeout is None else time.monotonic() + timeout
    values: list[Any] = [None] * size
    ledgers: list[CostLedger | None] = [None] * size
    errors: list[BaseException | None] = [None] * size
    reported = [False] * size
    try:
        while not all(reported):
            if deadline is not None and time.monotonic() > deadline:
                world.abort()
                hung = [p.name for p in procs if p.is_alive()]
                raise CommAborted(
                    f"SPMD ranks did not finish within {timeout}s: {hung}"
                )
            if not recv_end.poll(0.05):
                dead_unreported = [
                    r for r in range(size)
                    if not reported[r] and not procs[r].is_alive()
                ]
                if dead_unreported and not recv_end.poll(0):
                    # report() is synchronous, so a dead child with no
                    # queued report genuinely never reported (crash/kill)
                    for r in dead_unreported:
                        world.mark_rank_dead(r)
                    if all(not p.is_alive() for p in procs):
                        break
                    # peers can never complete a collective with it:
                    # wake them now (mark_rank_dead aborted the world) so
                    # survivors raise RankDiedError rather than waiting
                    # out the timeout
                continue
            r, status, payload, ledger = recv_end.recv()
            reported[r] = True
            if status == "ok":
                values[r] = payload
                ledgers[r] = ledger
            else:
                errors[r] = payload
    finally:
        world.stop_watchdog()
        # Deterministic teardown: if any rank is still running — a peer
        # raised mid-collective, the parent is unwinding on its own
        # exception, or a child died without reporting — break the
        # barrier and wake every blocked waiter *before* joining, so
        # survivors exit on CommAborted instead of parking until the
        # join timeout forces a terminate().
        if any(p.is_alive() for p in procs):
            world.abort()
        for p in procs:
            p.join(1.0)
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join(1.0)
    real_errors = [e for e in errors if e is not None and not isinstance(e, CommAborted)]
    if real_errors:
        raise real_errors[0]
    if not all(reported):
        # a rank died without reporting: name it, even if survivors only
        # managed a generic CommAborted before the death flag landed
        dead = [r for r in range(size) if not reported[r]]
        raise RankDiedError(
            f"SPMD ranks died without reporting a result: {dead}",
            dead_ranks=tuple(dead),
        )
    aborted = [e for e in errors if e is not None]
    if aborted:
        raise aborted[0]
    return SpmdResult(values=values, ledgers=ledgers)
