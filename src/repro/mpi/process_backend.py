"""Process-backed SPMD engine: true GIL-free parallelism.

Runs ``size`` ranks as forked OS processes executing the same function
(SPMD), exchanging data through anonymous shared-memory slabs
(:func:`multiprocessing.sharedctypes.RawArray`, inherited by fork — no
named segments, no cleanup, no resource-tracker noise). This is the
backend that makes wall-clock overlap claims *honest*: thread ranks
share one GIL for the Python-level inner loops, so a thread "speedup"
can be an artifact of scheduling; process ranks genuinely compute in
parallel, and hiding a reduction behind computation genuinely shortens
the critical path (``benchmarks/bench_overlap.py``).

Semantics match :class:`~repro.mpi.thread_backend.ThreadComm` exactly:

* every collective folds contributions in rank order, so results are
  bit-identical run-to-run and identical to the thread and virtual
  backends (each rank performs the same deterministic fold on the same
  rank-ordered payloads);
* SPMD-mismatch detection: each collective publishes its tag; divergent
  ranks raise :class:`~repro.errors.RankMismatchError` instead of
  deadlocking;
* nonblocking collectives run through a double-buffered slot ring.
  There is no background progress process — completion time is
  ``last deposit + latency`` (published in the slot header), and each
  rank's wait sleeps only the *remainder* of that window, which is what
  lets computation before the wait genuinely hide the transit.

Generic object collectives pickle payloads into fixed-capacity per-rank
slabs (``slab_bytes``, default 4 MiB — raise it through
``process_spmd_run(slab_bytes=)`` / ``ProcessWorld(slab_bytes=)`` for
larger payloads); an oversized payload raises a
:class:`~repro.errors.CommError` naming the payload size and the knob —
and aborts the world so peers wake instead of parking on the barrier —
rather than corrupting a neighbour's slab. Nonblocking payloads are raw
float64 (the packed-Gram hot path) — no pickling on the pipelined
critical path.

Teardown is exception-safe: a rank failing mid-collective (or the
parent unwinding) aborts the world — broken barrier, woken nonblocking
waiters — so blocked ranks exit deterministically instead of waiting
out the join-timeout/terminate path. :class:`ProcessWorld` is a context
manager (``shutdown()`` on exit) for direct, non-``process_spmd_run``
use.

Execution runs through a persistent, supervised :class:`WorkerPool`:
workers are forked once, park between jobs, and accept ``(job_id, fn,
payload)`` work items over per-rank pipes. The pool's supervisor
extends the heartbeat watchdog from detect-and-abort to
detect-respawn-rebarrier — with ``recover="checkpoint"`` a dead rank
(or a collective deadline miss) triggers a recovery round: the dead
rank(s) are respawned by a fresh fork, the slab/NB-ring state is
rebuilt (:meth:`ProcessWorld.reset_for_reuse`), and the job is
redispatched to every rank, replaying from the latest checkpoint the
workers shipped up through :class:`RecoveryContext`. With the default
``recover="raise"`` a rank death surfaces exactly as before
(:class:`~repro.errors.RankDiedError` after deterministic teardown).

Requires a platform with ``fork`` (Linux/macOS): the SPMD function and
its closure are inherited, not pickled, for the fork that dispatches
them — tests and solvers can pass lambdas exactly as with
:func:`~repro.mpi.thread_backend.spmd_run`. Only a *subsequent* job
dispatched to already-running workers crosses a pipe; a mini function
codec (pickle by reference, falling back to marshalled code objects
with recursively-encoded closures) covers the lambdas and closures the
repo's callers use.
"""

from __future__ import annotations

import builtins
import ctypes
import marshal
import multiprocessing as mp
import os
import pickle
import signal
import sys
import threading
import time
import types
from multiprocessing.sharedctypes import RawArray
from threading import BrokenBarrierError
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import (
    CommAborted,
    CommError,
    CommTimeoutError,
    NbRingDepthError,
    RankDiedError,
    RankMismatchError,
)
from repro.machine.ledger import CostLedger
from repro.machine.spec import MachineSpec
from repro.mpi.comm import Comm
from repro.mpi.thread_backend import NB_RING_DEPTH, SpmdResult

__all__ = [
    "ProcessComm",
    "ProcessWorld",
    "RecoveryContext",
    "WorkerPool",
    "process_spmd_run",
]

_TAG_BYTES = 128


def _require_fork() -> mp.context.BaseContext:
    if "fork" not in mp.get_all_start_methods():
        raise CommError(
            "the process backend needs the 'fork' start method "
            "(unavailable on this platform)"
        )
    return mp.get_context("fork")


class _NbProcSlot:
    """One shared-memory slot of the nonblocking-collective ring."""

    def __init__(self, ctx, size: int, seq: int, capacity_doubles: int) -> None:
        self.cond = ctx.Condition()
        self.capacity = capacity_doubles
        self.payload = RawArray(ctypes.c_double, size * capacity_doubles)
        self.lengths = RawArray(ctypes.c_longlong, size)
        self.tags = RawArray(ctypes.c_char, size * _TAG_BYTES)
        self.seq = ctx.Value(ctypes.c_longlong, seq, lock=False)
        self.deposited = ctx.Value(ctypes.c_int, 0, lock=False)
        self.consumed = ctx.Value(ctypes.c_int, 0, lock=False)
        self.complete_at = ctx.Value(ctypes.c_double, 0.0, lock=False)

    def _tag(self, rank: int) -> bytes:
        raw = bytes(self.tags[rank * _TAG_BYTES:(rank + 1) * _TAG_BYTES])
        return raw.rstrip(b"\0")

    def _set_tag(self, rank: int, tag: str) -> None:
        enc = tag.encode()[: _TAG_BYTES - 1]
        self.tags[rank * _TAG_BYTES:rank * _TAG_BYTES + len(enc)] = enc
        # zero-pad the remainder so a shorter tag never inherits suffix bytes
        pad = _TAG_BYTES - len(enc)
        self.tags[rank * _TAG_BYTES + len(enc):(rank + 1) * _TAG_BYTES] = b"\0" * pad


class _ProcNbHandle:
    """Per-rank handle for one in-flight nonblocking collective."""

    __slots__ = (
        "_world", "_slot", "_seq", "_rank", "_op", "_shape", "_result",
        "_on_consume",
    )

    def __init__(self, world, slot, seq, rank, op, shape, on_consume=None) -> None:
        self._world = world
        self._slot = slot
        self._seq = seq
        self._rank = rank
        self._op = op
        self._shape = shape
        self._result = None
        self._on_consume = on_consume

    def _ready_locked(self) -> bool:
        slot = self._slot
        return slot.seq.value == self._seq and slot.deposited.value == self._world.size

    def _complete(self):
        """Fold the deposited payloads (deterministic rank order)."""
        world, slot = self._world, self._slot
        n = int(slot.lengths[0])
        flat = np.frombuffer(slot.payload, dtype=np.float64)
        parts = [flat[r * slot.capacity:r * slot.capacity + n] for r in range(world.size)]
        tags = [slot._tag(r) for r in range(world.size)]
        lengths = [int(slot.lengths[r]) for r in range(world.size)]
        err = None
        if any(t != tags[0] for t in tags) or any(ln != n for ln in lengths):
            err = RankMismatchError(
                "SPMD mismatch: ranks posted different nonblocking "
                f"collectives {[t.decode() for t in tags]} with payload "
                f"lengths {lengths}"
            )
            result = None
        else:
            result = self._op.fold(parts).reshape(self._shape)
        with slot.cond:
            slot.consumed.value += 1
            if slot.consumed.value == world.size:
                slot.seq.value += world.nb_depth
                slot.deposited.value = 0
                slot.consumed.value = 0
                # clear the deposit markers so the stalled-rank diagnostic
                # on the *next* cycle of this slot reports fresh state
                for r in range(world.size):
                    slot.lengths[r] = 0
                slot.cond.notify_all()
        if self._on_consume is not None:
            self._on_consume(self._seq)
            self._on_consume = None
        if err is not None:
            raise err
        self._result = result
        return result

    def wait(self, timeout: float | None = None):
        world, slot = self._world, self._slot
        deadline = None if timeout is None else time.monotonic() + timeout
        with slot.cond:
            while not self._ready_locked():
                if world.is_aborted():
                    raise world._abort_error(self._rank, "Iallreduce")
                if deadline is not None and time.monotonic() >= deadline:
                    stalled = tuple(
                        r
                        for r in range(world.size)
                        if slot.seq.value == self._seq and int(slot.lengths[r]) == 0
                    )
                    world.abort()
                    raise CommTimeoutError(
                        f"rank {self._rank}: nonblocking collective timed out"
                        f" after {timeout}s (no deposit from ranks"
                        f" {list(stalled)})",
                        tag="Iallreduce",
                        stalled=stalled,
                    )
                slot.cond.wait(0.05)
            remaining = slot.complete_at.value - time.monotonic()
        if remaining > 0:
            # unoverlapped transit remainder — computation done before the
            # wait() has already eaten into this window
            time.sleep(remaining)
        return self._complete()

    def test(self):
        world, slot = self._world, self._slot
        with slot.cond:
            if world.is_aborted():
                raise world._abort_error(self._rank, "Iallreduce")
            if not self._ready_locked():
                return None
            remaining = slot.complete_at.value - time.monotonic()
        if remaining > 0:
            return None
        return self._complete()


class ProcessWorld:
    """Shared-memory state for one process-SPMD world.

    Created in the parent *before* forking; children inherit the mapped
    arenas and synchronisation primitives. ``slab_bytes`` bounds one
    rank's pickled payload per blocking collective; ``nb_doubles`` bounds
    one rank's nonblocking float64 payload (defaults fit a packed
    ``(s*mu)^2/2`` Gram up to s*mu ≈ 1000).
    """

    def __init__(
        self,
        size: int,
        slab_bytes: int = 1 << 22,
        nb_doubles: int = 1 << 19,
        latency: float = 0.0,
        nb_depth: int = NB_RING_DEPTH,
    ) -> None:
        if size < 1:
            raise CommError(f"size must be >= 1, got {size}")
        if int(nb_depth) < 1:
            raise NbRingDepthError(
                f"nb_depth must be >= 1, got {nb_depth}", depth=int(nb_depth)
            )
        ctx = _require_fork()
        self.size = size
        self.slab_bytes = int(slab_bytes)
        self.latency = float(latency)
        self.nb_depth = int(nb_depth)
        self.barrier = ctx.Barrier(size)
        self._aborted = ctx.Value(ctypes.c_int, 0, lock=False)
        #: per-rank death flags set by the watchdog (or any observer);
        #: survivors map a broken barrier to RankDiedError through these
        self._dead = RawArray(ctypes.c_int, size)
        #: per-rank barrier-arrival counters for naming stalled ranks
        self._arrive_gen = RawArray(ctypes.c_longlong, size)
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop: threading.Event | None = None
        self._obj = RawArray(ctypes.c_char, size * self.slab_bytes)
        self._obj_len = RawArray(ctypes.c_longlong, size)
        self._tags = RawArray(ctypes.c_char, size * _TAG_BYTES)
        self._nb_ring = [
            _NbProcSlot(ctx, size, seq, int(nb_doubles))
            for seq in range(self.nb_depth)
        ]
        self._ctx = ctx

    # -- failure handling --------------------------------------------------
    def abort(self) -> None:
        """Fail peers fast: break the barrier, wake nonblocking waiters.

        Idempotent, callable from any rank or the parent. Every blocked
        participant wakes deterministically: barrier waiters get
        :class:`~threading.BrokenBarrierError` (surfaced as
        :class:`~repro.errors.CommAborted`), nonblocking waiters observe
        the aborted flag on their next condition wake-up (<= 50 ms).
        """
        self._aborted.value = 1
        self.barrier.abort()
        for slot in self._nb_ring:
            with slot.cond:
                slot.cond.notify_all()

    def mark_rank_dead(self, rank: int) -> None:
        """Record that ``rank``'s process died, then abort the world.

        Called by the parent-side watchdog (or any observer of a child
        death). Survivors blocked in a collective wake through the abort
        and, seeing the death flag, raise
        :class:`~repro.errors.RankDiedError` instead of the generic
        :class:`~repro.errors.CommAborted`.
        """
        self._dead[rank] = 1
        self.abort()

    def dead_ranks(self) -> list:
        """Ranks recorded as dead (empty if none)."""
        return [r for r in range(self.size) if self._dead[r]]

    def _abort_error(self, rank: int, tag: str) -> CommError:
        """The error a woken survivor should raise for this abort."""
        dead = self.dead_ranks()
        if dead:
            return RankDiedError(
                f"rank {rank}: collective {tag!r} aborted because ranks"
                f" {dead} died",
                dead_ranks=tuple(dead),
            )
        return CommAborted(
            f"rank {rank}: collective {tag!r} aborted by a peer failure"
        )

    # -- parent-side heartbeat watchdog ------------------------------------
    def start_watchdog(self, procs: Sequence, interval: float = 0.05) -> None:
        """Watch child processes from the parent; mark deaths promptly.

        ``procs[r]`` is rank ``r``'s :class:`multiprocessing.Process`. A
        child that stops being alive with a nonzero exit code is marked
        dead (:meth:`mark_rank_dead`), which aborts the world so every
        surviving rank surfaces :class:`~repro.errors.RankDiedError`
        within one heartbeat instead of hanging. Idempotent per world;
        stop with :meth:`stop_watchdog`.
        """
        if self._watchdog is not None:
            return
        stop = threading.Event()

        def _watch() -> None:
            while not stop.is_set():
                for r, p in enumerate(procs):
                    if not p.is_alive() and p.exitcode not in (0, None):
                        if not self._dead[r]:
                            self.mark_rank_dead(r)
                if self.is_aborted():
                    return
                stop.wait(interval)

        self._watchdog_stop = stop
        self._watchdog = threading.Thread(
            target=_watch, name="spmd-watchdog", daemon=True
        )
        self._watchdog.start()

    def stop_watchdog(self) -> None:
        """Stop the heartbeat watchdog (idempotent)."""
        if self._watchdog_stop is not None:
            self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(1.0)
        self._watchdog = None
        self._watchdog_stop = None

    def shutdown(self) -> None:
        """Deterministic teardown: alias of :meth:`abort` for use as an
        explicit end-of-life call (or via the context manager). After
        shutdown every collective on the world raises
        :class:`~repro.errors.CommAborted` instead of blocking."""
        self.stop_watchdog()
        self.abort()

    def __enter__(self) -> "ProcessWorld":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def is_aborted(self) -> bool:
        return bool(self._aborted.value)

    # -- recovery ----------------------------------------------------------
    def reset_for_reuse(self) -> None:
        """Rebuild the collective state so the world can run another job.

        Restores the barrier, clears the aborted/death flags, and reseeds
        the slabs and the nonblocking slot ring to their just-constructed
        state. Only safe when no rank is inside a collective: the
        :class:`WorkerPool` guarantees this by waiting until every
        surviving rank has reported (and is parked on its job pipe)
        before resetting.
        """
        self.barrier.reset()
        self._aborted.value = 0
        for r in range(self.size):
            self._dead[r] = 0
            self._arrive_gen[r] = 0
            self._obj_len[r] = 0
        self._tags[:] = b"\0" * (self.size * _TAG_BYTES)
        for i, slot in enumerate(self._nb_ring):
            with slot.cond:
                slot.seq.value = i
                slot.deposited.value = 0
                slot.consumed.value = 0
                slot.complete_at.value = 0.0
                for r in range(self.size):
                    slot.lengths[r] = 0
                slot.tags[:] = b"\0" * (self.size * _TAG_BYTES)
                slot.cond.notify_all()

    # -- blocking exchange -------------------------------------------------
    def _read_tag(self, rank: int) -> bytes:
        raw = bytes(self._tags[rank * _TAG_BYTES:(rank + 1) * _TAG_BYTES])
        return raw.rstrip(b"\0")

    def _barrier_wait(self, rank: int, tag: str, timeout: float | None) -> None:
        """One barrier arrival with an optional deadline.

        Mirrors :meth:`ThreadContext._barrier_wait`: a rank whose wait
        expires aborts the world and raises
        :class:`~repro.errors.CommTimeoutError` naming the tag and the
        lagging ranks; peers woken by the broken barrier raise
        :class:`~repro.errors.RankDiedError` if a death was recorded,
        else :class:`~repro.errors.CommAborted`.
        """
        self._arrive_gen[rank] += 1
        start = time.monotonic()
        try:
            self.barrier.wait(timeout)
        except BrokenBarrierError as exc:
            if self.dead_ranks():
                raise self._abort_error(rank, tag) from exc
            timed_out = (
                timeout is not None
                and not self.is_aborted()
                and time.monotonic() - start >= timeout
            )
            if timed_out:
                my_gen = int(self._arrive_gen[rank])
                stalled = tuple(
                    r for r in range(self.size)
                    if int(self._arrive_gen[r]) < my_gen
                )
                self.abort()
                raise CommTimeoutError(
                    f"rank {rank}: collective {tag!r} timed out after"
                    f" {timeout}s waiting for ranks {list(stalled)}",
                    tag=tag,
                    stalled=stalled,
                ) from exc
            raise self._abort_error(rank, tag) from exc

    def exchange(
        self, rank: int, tag: str, obj: Any, fold=None, timeout: float | None = None
    ) -> Any:
        """Deposit, synchronise, snapshot (or fold), synchronise.

        The process twin of :meth:`ThreadContext.exchange`: pickles the
        payload into this rank's slab, barriers, reads every slab (so
        each rank folds its *own copies* — deterministic and isolated),
        barriers again so nobody overwrites a slab early. ``timeout``
        bounds each barrier wait (see :meth:`_barrier_wait`).
        """
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > self.slab_bytes:
            # the collective cannot proceed for anyone: wake peers that
            # already parked on the barrier instead of letting them sit
            # until the parent's timeout/terminate path fires
            self.abort()
            raise CommError(
                f"collective {tag!r}: pickled payload of {len(payload)} "
                f"bytes exceeds the process backend's slab capacity "
                f"(slab_bytes={self.slab_bytes}); raise slab_bytes= in "
                "process_spmd_run / ProcessWorld"
            )
        base = rank * self.slab_bytes
        self._obj[base:base + len(payload)] = payload
        self._obj_len[rank] = len(payload)
        enc = tag.encode()[: _TAG_BYTES - 1]
        self._tags[rank * _TAG_BYTES:rank * _TAG_BYTES + len(enc)] = enc
        pad = _TAG_BYTES - len(enc)
        self._tags[rank * _TAG_BYTES + len(enc):(rank + 1) * _TAG_BYTES] = b"\0" * pad
        self._barrier_wait(rank, tag, timeout)
        try:
            tags = [self._read_tag(r) for r in range(self.size)]
            if any(t != tags[0] for t in tags):
                raise RankMismatchError(
                    "SPMD mismatch: ranks called different collectives "
                    f"{[t.decode() for t in tags]}"
                )
            gathered = [
                pickle.loads(bytes(
                    self._obj[r * self.slab_bytes:
                              r * self.slab_bytes + int(self._obj_len[r])]
                ))
                for r in range(self.size)
            ]
            snapshot = fold(gathered) if fold is not None else gathered
            if self.latency:
                # emulated transit on the critical path (concurrent ranks)
                time.sleep(self.latency)
        finally:
            self._barrier_wait(rank, tag, timeout)
        return snapshot

    # -- nonblocking post --------------------------------------------------
    def nb_post(
        self,
        rank: int,
        seq: int,
        tag: str,
        arr: np.ndarray,
        op,
        timeout: float | None = None,
        on_consume=None,
    ):
        """Deposit one rank's nonblocking contribution; returns a handle.

        ``timeout`` bounds the wait for a free ring slot. ``on_consume``
        (if given) is invoked exactly once in the posting process when
        the handle is harvested — :class:`ProcessComm` uses it to track
        its own outstanding-request count.
        """
        if arr.dtype != np.float64:
            raise CommError(
                "process-backend Iallreduce supports float64 arrays, got "
                f"{arr.dtype}"
            )
        flat = np.ascontiguousarray(arr).ravel()
        slot = self._nb_ring[seq % self.nb_depth]
        if flat.shape[0] > slot.capacity:
            self.abort()  # peers waiting on this slot must not park
            raise CommError(
                f"nonblocking collective {tag!r}: payload of "
                f"{flat.shape[0]} doubles exceeds the slot capacity "
                f"(nb_doubles={slot.capacity}); raise nb_doubles= in "
                "process_spmd_run / ProcessWorld"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        with slot.cond:
            while slot.seq.value != seq:
                if self.is_aborted():
                    raise self._abort_error(rank, tag)
                if deadline is not None and time.monotonic() >= deadline:
                    self.abort()
                    raise CommTimeoutError(
                        f"rank {rank}: nonblocking collective {tag!r} timed"
                        f" out after {timeout}s waiting for a free ring slot",
                        tag=tag,
                    )
                slot.cond.wait(0.05)
            dst = np.frombuffer(slot.payload, dtype=np.float64)
            dst[rank * slot.capacity:rank * slot.capacity + flat.shape[0]] = flat
            slot.lengths[rank] = flat.shape[0]
            slot._set_tag(rank, tag)
            slot.deposited.value += 1
            if slot.deposited.value == self.size:
                slot.complete_at.value = time.monotonic() + self.latency
                slot.cond.notify_all()
        return _ProcNbHandle(
            self, slot, seq, rank, op, arr.shape, on_consume=on_consume
        )


class ProcessComm(Comm):
    """Communicator bound to one rank of a :class:`ProcessWorld`."""

    def __init__(
        self,
        world: ProcessWorld,
        rank: int,
        machine: MachineSpec | None = None,
        cost_size: int | None = None,
        ledger: CostLedger | None = None,
        timeout: float | None = None,
    ) -> None:
        super().__init__(
            rank=rank,
            size=world.size,
            cost_size=cost_size,
            machine=machine,
            ledger=ledger,
            timeout=timeout,
        )
        self._world = world
        self._nb_seq = 0
        #: sequence numbers posted but not yet harvested by this rank —
        #: out-of-order harvest means the ring-reuse guard must know
        #: *which* requests are open, not just how many
        self._nb_open: set[int] = set()

    @property
    def nb_ring_depth(self) -> int | None:
        """Depth of the shared nonblocking slot ring (max in flight)."""
        return self._world.nb_depth

    def _allgather_impl(self, tag: str, obj: Any) -> list:
        try:
            return self._world.exchange(
                self._rank, tag, obj, timeout=self._active_timeout
            )
        except CommTimeoutError:
            self.ledger.add_timeout()
            raise

    def _exchange_fold(self, tag: str, obj: Any, fold) -> Any:
        # the pickled slabs are private copies, so the fold is trivially
        # safe against send-buffer reuse; run it between the barriers for
        # symmetry with the thread backend
        try:
            return self._world.exchange(
                self._rank, tag, obj, fold=fold, timeout=self._active_timeout
            )
        except CommTimeoutError:
            self.ledger.add_timeout()
            raise

    def _nb_consumed_one(self, seq: int) -> None:
        self._nb_open.discard(seq)

    def _iallreduce_impl(self, tag: str, arr, op):
        # posting while this rank's own request `seq - depth` (which
        # shares the target ring slot) is unharvested would park forever
        # on that slot: fail typed *before* blocking. Out-of-order
        # harvest can create the conflict with fewer than `depth`
        # requests open, so the guard tracks open sequence numbers.
        depth = self._world.nb_depth
        seq = self._nb_seq
        if seq - depth in self._nb_open:
            raise NbRingDepthError(
                f"rank {self._rank}: posting nonblocking collective {tag!r}"
                f" would reuse the ring slot of its own unharvested request"
                f" #{seq - depth} ({len(self._nb_open)} open on a ring of"
                f" depth {depth}); harvest it first or raise nb_depth",
                depth=depth,
                outstanding=len(self._nb_open),
            )
        self._nb_seq += 1
        handle = self._world.nb_post(
            self._rank, seq, tag, arr, op, timeout=self._active_timeout,
            on_consume=self._nb_consumed_one,
        )
        self._nb_open.add(seq)
        return handle


# -- job codec (for shipping a job to already-running workers) -------------
#
# The first job a worker ever sees rides fork inheritance (no encoding at
# all, exactly like the historical fork-and-join path), and a respawned
# worker likewise inherits the in-flight job through its fresh fork. Only a
# *subsequent* job dispatched to workers that are already parked has to
# cross a pipe; pickling covers module-level functions and most data, and
# the marshal fallback covers the lambdas/closures the repo's callers use.

def _encode_obj(value: Any) -> tuple:
    try:
        return ("pickle", pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        if isinstance(value, types.FunctionType):
            return ("code", _encode_code_fn(value))
        raise


def _encode_code_fn(fn: types.FunctionType) -> dict:
    closure = ()
    if fn.__closure__:
        closure = tuple(_encode_obj(c.cell_contents) for c in fn.__closure__)
    return {
        "code": marshal.dumps(fn.__code__),
        "module": fn.__module__,
        "name": fn.__name__,
        "closure": closure,
        "defaults": tuple(_encode_obj(d) for d in fn.__defaults__ or ()),
        "kwdefaults": {
            k: _encode_obj(v) for k, v in (fn.__kwdefaults__ or {}).items()
        },
    }


def _decode_obj(enc: tuple) -> Any:
    kind, payload = enc
    if kind == "pickle":
        return pickle.loads(payload)
    return _decode_code_fn(payload)


def _decode_code_fn(spec: dict) -> types.FunctionType:
    code = marshal.loads(spec["code"])
    mod = sys.modules.get(spec["module"])
    globs = mod.__dict__ if mod is not None else {"__builtins__": builtins}
    closure = tuple(types.CellType(_decode_obj(c)) for c in spec["closure"])
    defaults = tuple(_decode_obj(d) for d in spec["defaults"]) or None
    fn = types.FunctionType(code, globs, spec["name"], defaults, closure)
    if spec["kwdefaults"]:
        fn.__kwdefaults__ = {
            k: _decode_obj(v) for k, v in spec["kwdefaults"].items()
        }
    return fn


class RecoveryContext:
    """Per-rank view of the supervisor's recovery state for one attempt.

    The pool attaches one to every communicator it hands a job
    (``comm.recovery``). Entry points that support checkpoint-resume use
    it in two ways:

    * :attr:`resume` — the most recent checkpoint payload the supervisor
      collected for this job (``None`` on a first attempt, or when the
      job never checkpointed). A redispatched attempt resumes from it
      instead of starting cold.
    * :meth:`save` — ship a checkpoint payload up to the supervisor so a
      *future* recovery can resume from it. Rank 0 only (replicated
      state), a no-op under ``recover="raise"`` — callers can install it
      unconditionally as a checkpoint sink.

    ``recoveries``/``respawns``/``replayed_iterations`` mirror the
    supervisor's counters at dispatch time so in-job cost snapshots
    carry them. :attr:`last_failure` classifies what triggered the most
    recent recovery round (``"rank-died"`` / ``"timeout"``; ``None`` on
    a first attempt) — resumable entry points that distinguish a retry
    from a cancel (the multi-tenant serving engine fails a timed-out
    request but replays one interrupted by a death) branch on it.
    """

    __slots__ = (
        "rank", "job_id", "attempt", "mode", "resume",
        "recoveries", "respawns", "replayed_iterations", "last_failure",
        "_report",
    )

    def __init__(
        self,
        rank: int,
        job_id: int,
        attempt: int,
        mode: str = "raise",
        resume: Any = None,
        recoveries: int = 0,
        respawns: int = 0,
        replayed_iterations: int = 0,
        last_failure: str | None = None,
        _report: Callable[[tuple], None] | None = None,
    ) -> None:
        self.rank = rank
        self.job_id = job_id
        self.attempt = attempt
        self.mode = mode
        self.resume = resume
        self.recoveries = recoveries
        self.respawns = respawns
        self.replayed_iterations = replayed_iterations
        self.last_failure = last_failure
        self._report = _report

    @property
    def active(self) -> bool:
        """True when the supervisor will attempt checkpoint recovery."""
        return self.mode == "checkpoint"

    def save(self, payload: Any) -> None:
        """Ship a checkpoint payload to the supervisor (rank 0 only).

        Synchronous: the payload is fully in the report pipe before this
        returns, so a checkpoint written just before a rank dies is
        never lost.
        """
        if self.mode != "checkpoint" or self.rank != 0 or self._report is None:
            return
        self._report(("ckpt", self.job_id, self.attempt, payload))


def _pool_worker_main(
    world: ProcessWorld,
    rank: int,
    send_end,
    send_lock,
    job_conn,
    machine: MachineSpec | None,
    cost_size: int | None,
    comm_timeout: float | None,
    first_job: tuple | None,
) -> None:
    """Persistent worker: run the inherited job, then park for more.

    ``first_job`` is ``(jid, attempt, ctx_state, fn, args)`` inherited by
    fork (so lambdas need no codec); subsequent jobs arrive on
    ``job_conn`` as ``("run", jid, attempt, ctx_state, fn_enc, args_enc)``
    with ``fn_enc=None`` meaning "re-run the job you already hold" (a
    survivor being redispatched after a recovery). ``None`` on the pipe —
    or a closed pipe — is an orderly shutdown.
    """
    # Signal safety: the parent's shutdown path owns teardown. SIGTERM
    # (e.g. an external kill of this rank) still aborts the world so
    # peers fail fast; SIGINT is ignored because a terminal Ctrl-C is
    # delivered to the whole process group and the parent's unwind
    # already aborts + joins every child — handling it here too would
    # race that teardown and strand peers mid-collective.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    def _sigterm(signum, frame):
        world.abort()
        os._exit(1)

    signal.signal(signal.SIGTERM, _sigterm)

    def report(item) -> None:
        # send() is synchronous, so a report is fully in the pipe before
        # the worker moves on (or dies)
        with send_lock:
            send_end.send(item)

    def execute(jid: int, attempt: int, ctx_state: dict, fn, args) -> None:
        comm = ProcessComm(
            world, rank, machine=machine, cost_size=cost_size,
            timeout=comm_timeout,
        )
        ctx = RecoveryContext(
            rank=rank, job_id=jid, attempt=attempt, _report=report,
            **ctx_state,
        )
        comm.recovery = ctx
        # seed the attempt counters so cost snapshots taken *inside* the
        # job (SolverResult.cost) already carry the recovery history;
        # the parent re-patches the returned ledgers authoritatively
        comm.ledger.recoveries = ctx.recoveries
        comm.ledger.respawns = ctx.respawns
        comm.ledger.replayed_iterations = ctx.replayed_iterations
        try:
            value = fn(comm, rank, *args)
        # The worker's top-level catch: every failure (aborts included) must
        # reach the parent as an "err" report; world.abort() here IS the
        # abort propagation, and a failed report re-raises the abort below.
        except BaseException as exc:  # noqa: BLE001 - reported to the parent
            world.abort()
            try:
                report(("res", jid, attempt, rank, "err", exc, None))
            except (CommAborted, RankDiedError, KeyboardInterrupt):
                # a failed report cannot outrank the abort itself: die
                # loudly, the parent detects the rank via its sentinel
                raise
            except Exception:
                report(("res", jid, attempt, rank, "err",
                        CommError(repr(exc)), None))
            return
        try:
            report(("res", jid, attempt, rank, "ok", value, comm.ledger))
        except (CommAborted, RankDiedError, KeyboardInterrupt):
            raise
        except Exception as exc:  # unpicklable return value
            report(("res", jid, attempt, rank, "err", CommError(
                f"rank {rank} returned an unpicklable value: {exc!r}"
            ), None))

    cur_fn: Callable | None = None
    cur_args: tuple = ()
    if first_job is not None:
        jid, attempt, ctx_state, cur_fn, cur_args = first_job
        execute(jid, attempt, ctx_state, cur_fn, cur_args)
    while True:
        try:
            msg = job_conn.recv()
        except (EOFError, OSError):
            os._exit(0)
        if msg is None:
            os._exit(0)
        _, jid, attempt, ctx_state, fn_enc, args_enc = msg
        if fn_enc is not None:
            try:
                cur_fn = _decode_obj(fn_enc)
                cur_args = tuple(_decode_obj(a) for a in args_enc)
            except (CommAborted, RankDiedError, KeyboardInterrupt):
                raise
            except Exception as exc:
                world.abort()
                report(("res", jid, attempt, rank, "err", CommError(
                    f"rank {rank} could not decode the dispatched job: "
                    f"{exc!r}"
                ), None))
                continue
        if cur_fn is None:
            world.abort()
            report(("res", jid, attempt, rank, "err", CommError(
                f"rank {rank} was redispatched with no job held"
            ), None))
            continue
        execute(jid, attempt, ctx_state, cur_fn, cur_args)


class WorkerPool:
    """Persistent, supervised pool of forked SPMD workers.

    Workers are forked lazily at the first :meth:`run` (the first job —
    function, closure and all — rides fork inheritance, so lambdas work
    exactly as they always have), then *outlive the job*: after
    reporting, each worker parks on its job pipe waiting for the next
    ``(job_id, fn, payload)`` work item. The pool's supervisor loop owns
    the heartbeat watchdog and extends it from detect-and-abort to
    detect-respawn-rebarrier:

    * ``recover="raise"`` (default) — a failure surfaces exactly like
      the historical fork-and-join path: first real per-rank error, then
      :class:`~repro.errors.RankDiedError` for silent deaths, then the
      first abort echo.
    * ``recover="checkpoint"`` — on a rank death (or a collective
      deadline), the supervisor respawns the dead rank(s) by a fresh
      fork, rebuilds the shared collective state
      (:meth:`ProcessWorld.reset_for_reuse`), redispatches the job to
      every rank, and the job replays from the latest checkpoint it
      shipped up through :class:`RecoveryContext` — at most
      ``max_recoveries`` times per job, after which the final failure is
      raised as usual.

    ``timeout`` bounds one whole :meth:`run` call (all attempts
    included). Shut the pool down with :meth:`shutdown` (or use it as a
    context manager); shutdown is idempotent and leaves no orphans.
    """

    def __init__(
        self,
        size: int,
        *,
        machine: MachineSpec | None = None,
        cost_size: int | None = None,
        timeout: float | None = 120.0,
        latency: float = 0.0,
        slab_bytes: int = 1 << 22,
        nb_doubles: int = 1 << 19,
        comm_timeout: float | None = None,
        nb_depth: int = NB_RING_DEPTH,
    ) -> None:
        self.size = size
        self._machine = machine
        self._cost_size = cost_size
        self._timeout = timeout
        self._comm_timeout = comm_timeout
        self._world = ProcessWorld(
            size, slab_bytes=slab_bytes, nb_doubles=nb_doubles,
            latency=latency, nb_depth=nb_depth,
        )
        ctx = self._world._ctx
        self._ctx = ctx
        # report channel: one pipe, many writers serialized by a lock (the
        # public-API equivalent of SimpleQueue, which offers no timed poll)
        self._recv, self._send = ctx.Pipe(duplex=False)
        self._send_lock = ctx.Lock()
        self._procs: list = [None] * size
        self._job_w: list = [None] * size
        self._jid = 0
        self._started = False
        self._shut = False

    @property
    def world(self) -> ProcessWorld:
        return self._world

    # -- lifecycle ---------------------------------------------------------
    def _spawn(self, rank: int, first_job: tuple | None) -> None:
        """Fork one worker; ``first_job`` rides fork inheritance."""
        job_r, job_w = self._ctx.Pipe(duplex=False)
        p = self._ctx.Process(
            target=_pool_worker_main,
            args=(
                self._world, rank, self._send, self._send_lock, job_r,
                self._machine, self._cost_size, self._comm_timeout,
                first_job,
            ),
            name=f"spmd-proc-{rank}",
            daemon=True,
        )
        p.start()
        # the child holds its own copy of the recv end; dropping the
        # parent's copy keeps fd ownership tidy (shutdown still uses an
        # explicit None message because sibling forks inherit the send
        # ends, so EOF alone is not a reliable shutdown signal)
        job_r.close()
        old = self._job_w[rank]
        if old is not None:
            try:
                old.close()
            except OSError:
                pass
        self._procs[rank] = p
        self._job_w[rank] = job_w

    def _retire_workers(self) -> None:
        """Orderly-stop every live worker (next dispatch forks fresh)."""
        for w in self._job_w:
            if w is not None:
                try:
                    w.send(None)
                except (OSError, BrokenPipeError, ValueError):
                    pass
        for p in self._procs:
            if p is not None:
                p.join(1.0)
        for p in self._procs:
            if p is not None and p.is_alive():
                p.terminate()
                p.join(1.0)
        self._procs = [None] * self.size

    def _dispatch(
        self, jid: int, attempt: int, ctx_state: dict, fn, args,
        survivors_hold_job: bool,
    ) -> None:
        """Hand one attempt to every rank.

        Dead or never-spawned ranks get a fresh fork with the job
        inherited; live (parked) ranks get a pipe message — encoded when
        they don't already hold this job, ``fn_enc=None`` when they do
        (recovery redispatch). If the job cannot cross a pipe (encoding
        failure), the live workers are retired and everything forks
        fresh — correctness over pool persistence.
        """
        live = [
            r for r in range(self.size)
            if self._procs[r] is not None and self._procs[r].is_alive()
            and not self._world._dead[r]
        ]
        fn_enc = args_enc = None
        if live and not survivors_hold_job:
            try:
                fn_enc = _encode_obj(fn)
                args_enc = tuple(_encode_obj(a) for a in args)
            except (CommAborted, RankDiedError, KeyboardInterrupt):
                raise
            except Exception:
                self._retire_workers()
                live = []
        for r in range(self.size):
            if r in live:
                self._job_w[r].send(
                    ("run", jid, attempt, ctx_state, fn_enc, args_enc)
                )
            else:
                self._spawn(r, (jid, attempt, ctx_state, fn, args))

    def shutdown(self) -> None:
        """Stop the supervisor and every worker; idempotent, no orphans."""
        if self._shut:
            return
        self._shut = True
        self._world.stop_watchdog()
        # wake anything still blocked in a collective, then ask parked
        # workers to exit; stragglers are terminated after a grace join
        self._world.abort()
        self._retire_workers()
        for w in self._job_w:
            if w is not None:
                try:
                    w.close()
                except OSError:
                    pass
        self._job_w = [None] * self.size
        try:
            self._recv.close()
            self._send.close()
        except OSError:
            pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- supervisor loop ---------------------------------------------------
    def _collect(self, jid: int, attempt: int, deadline: float | None):
        """Collect one attempt's reports; returns per-rank outcome.

        Exits when every rank has reported, or when every *unreported*
        rank is dead and the report pipe is drained (survivors park
        alive after reporting, so "all procs dead" is no longer an exit
        condition). A blown deadline aborts the world and raises
        :class:`CommAborted` with today's message.
        """
        size = self.size
        values: list[Any] = [None] * size
        ledgers: list[CostLedger | None] = [None] * size
        errors: list[BaseException | None] = [None] * size
        reported = [False] * size
        ckpt = None
        while True:
            if deadline is not None and time.monotonic() > deadline:
                self._world.abort()
                hung = [
                    p.name for p in self._procs
                    if p is not None and p.is_alive()
                ]
                raise CommAborted(
                    f"SPMD ranks did not finish within {self._timeout}s:"
                    f" {hung}"
                )
            if not self._recv.poll(0.05):
                dead_unreported = [
                    r for r in range(size)
                    if not reported[r] and not self._procs[r].is_alive()
                ]
                if dead_unreported and not self._recv.poll(0):
                    # report() is synchronous, so a dead child with no
                    # queued report genuinely never reported (crash/kill);
                    # mark_rank_dead aborts the world, so live survivors
                    # wake, raise RankDiedError, report it, and park —
                    # we keep looping until those reports land
                    for r in dead_unreported:
                        self._world.mark_rank_dead(r)
                    if all(
                        reported[r] or not self._procs[r].is_alive()
                        for r in range(size)
                    ):
                        break
                continue
            msg = self._recv.recv()
            if msg[0] == "ckpt":
                _, cjid, _cattempt, payload = msg
                if cjid == jid:
                    # send() is FIFO per attempt and attempts are
                    # sequential, so the last one received is the newest
                    ckpt = payload
                continue
            _, mjid, mattempt, r, status, payload, ledger = msg
            if mjid != jid or mattempt != attempt:
                continue  # stale report from a pre-recovery attempt
            reported[r] = True
            if status == "ok":
                values[r] = payload
                ledgers[r] = ledger
            else:
                errors[r] = payload
            if all(reported):
                break
        return values, ledgers, errors, reported, ckpt

    def run(
        self,
        fn: Callable[..., Any],
        args: Sequence = (),
        recover: str = "raise",
        max_recoveries: int = 2,
    ) -> SpmdResult:
        """Run ``fn(comm, rank, *args)`` as one supervised job.

        Returns the same :class:`SpmdResult` as the historical
        fork-and-join path; under ``recover="checkpoint"`` a rank death
        or collective deadline triggers up to ``max_recoveries``
        respawn-and-replay rounds before the failure is raised.
        """
        if self._shut:
            raise CommError("WorkerPool has been shut down")
        if recover not in ("raise", "checkpoint"):
            raise CommError(
                f"recover must be 'raise' or 'checkpoint', got {recover!r}"
            )
        self._jid += 1
        jid = self._jid
        attempt = 0
        recoveries = 0
        respawns = 0
        replayed = 0
        last_failure: str | None = None
        ckpt = None
        deadline = (
            None if self._timeout is None
            else time.monotonic() + self._timeout
        )
        args = tuple(args)
        while True:
            ctx_state = {
                "mode": recover,
                "resume": ckpt,
                "recoveries": recoveries,
                "respawns": respawns,
                "replayed_iterations": replayed,
                "last_failure": last_failure,
            }
            if self._started:
                # between attempts (and between jobs) every live worker
                # is parked outside any collective, so the shared state
                # can be rebuilt safely; the watchdog is restarted fresh
                # because it exits on its own once the world aborts
                self._world.stop_watchdog()
                self._world.reset_for_reuse()
            self._dispatch(
                jid, attempt, ctx_state, fn, args,
                survivors_hold_job=attempt > 0,
            )
            self._started = True
            # heartbeat: a killed child is marked dead (aborting the
            # world) within one watchdog interval, independently of the
            # report-poll loop
            self._world.start_watchdog(self._procs)
            values, ledgers, errors, reported, new_ckpt = self._collect(
                jid, attempt, deadline
            )
            if new_ckpt is not None:
                ckpt = new_ckpt
            if all(reported) and not any(e is not None for e in errors):
                for led in ledgers:
                    if led is not None:
                        led.recoveries = recoveries
                        led.respawns = respawns
                        led.replayed_iterations = replayed
                return SpmdResult(values=values, ledgers=ledgers)
            # -- failure: classify, then recover or raise ------------------
            dead_unreported = [r for r in range(self.size) if not reported[r]]
            present = [e for e in errors if e is not None]
            real = [e for e in present if not isinstance(e, CommAborted)]
            # RankDiedError subclasses CommAborted (it lands in the abort
            # echoes); CommTimeoutError is a "real" error but marks a
            # recoverable stall. Anything else real — a solver bug, a
            # mismatch — must not be retried.
            recoverable_kinds = (RankDiedError, CommTimeoutError)
            blocking = [
                e for e in real if not isinstance(e, recoverable_kinds)
            ]
            failure_signal = bool(dead_unreported) or any(
                isinstance(e, recoverable_kinds) for e in present
            )
            if (
                recover == "checkpoint"
                and recoveries < max_recoveries
                and not blocking
                and failure_signal
            ):
                recoveries += 1
                # classify the trigger for the redispatched attempt:
                # deaths dominate (a timeout echo often accompanies a
                # death via the aborted barrier), then pure deadlines
                if dead_unreported or any(
                    isinstance(e, RankDiedError) for e in present
                ):
                    last_failure = "rank-died"
                elif any(isinstance(e, CommTimeoutError) for e in present):
                    last_failure = "timeout"
                else:
                    last_failure = "rank-died"
                dead = sorted(set(dead_unreported) | {
                    r for r in range(self.size)
                    if self._world._dead[r]
                    or (self._procs[r] is not None
                        and not self._procs[r].is_alive())
                })
                self._world.stop_watchdog()
                for r in dead:
                    p = self._procs[r]
                    if p is not None:
                        p.join(1.0)
                        if p.is_alive():
                            p.terminate()
                            p.join(1.0)
                respawns += len(dead)
                if isinstance(ckpt, dict):
                    # work units the redispatched attempt will *not* have
                    # to redo — saved by checkpointing, cumulative across
                    # recovery rounds. Solver checkpoints count
                    # iterations, path checkpoints completed grid points,
                    # streaming checkpoints applied events, serving
                    # checkpoints resolved requests.
                    units = ckpt.get("iteration")
                    if units is None:
                        units = ckpt.get("completed")
                    if units is None:
                        units = ckpt.get("events_applied")
                    if units is None:
                        units = ckpt.get("requests_done")
                    replayed += int(units or 0)
                attempt += 1
                continue
            # raise path: today's precedence, bit-for-bit
            if real:
                raise real[0]
            if dead_unreported:
                # a rank died without reporting: name it, even if
                # survivors only managed a generic CommAborted before
                # the death flag landed
                raise RankDiedError(
                    "SPMD ranks died without reporting a result:"
                    f" {dead_unreported}",
                    dead_ranks=tuple(dead_unreported),
                )
            raise present[0]


def process_spmd_run(
    fn: Callable[..., Any],
    size: int,
    args: Sequence = (),
    machine: MachineSpec | None = None,
    cost_size: int | None = None,
    timeout: float | None = 120.0,
    latency: float = 0.0,
    slab_bytes: int = 1 << 22,
    nb_doubles: int = 1 << 19,
    comm_timeout: float | None = None,
    recover: str = "raise",
    max_recoveries: int = 2,
    nb_depth: int = NB_RING_DEPTH,
) -> SpmdResult:
    """Run ``fn(comm, rank, *args)`` on ``size`` forked process ranks.

    The process twin of :func:`~repro.mpi.thread_backend.spmd_run`, same
    signature and same :class:`SpmdResult` (per-rank values + ledgers:
    each child ships its return value and ledger back through a pipe).
    ``fn`` and its closure are inherited by fork, so lambdas work; the
    *return value* must be picklable. Execution runs through a one-job
    :class:`WorkerPool` (shut down on exit, success or not).

    ``slab_bytes`` bounds one rank's pickled payload per blocking
    collective (default 4 MiB) and ``nb_doubles`` one rank's nonblocking
    float64 payload; an oversized payload raises a :class:`CommError`
    naming the size and the knob, and aborts the world so peers wake
    instead of parking. Teardown is exception-safe: a rank raising
    mid-collective aborts the world (broken barrier + woken nonblocking
    waiters), so every surviving rank exits deterministically and no
    forked child outlives the call.

    ``comm_timeout`` installs a default per-collective deadline on every
    rank's communicator (``None`` = wait forever). ``nb_depth`` sets the
    nonblocking slot-ring depth — the most in-flight ``Iallreduce``
    requests any rank may hold (bounded-staleness solvers need
    ``tau + 2``); exceeding it raises
    :class:`~repro.errors.NbRingDepthError` instead of deadlocking.

    ``recover="checkpoint"`` turns a rank death (or collective deadline)
    into a supervised recovery: the dead rank is respawned, the shared
    collective state rebuilt, and the job redispatched to every rank,
    resuming from the latest checkpoint it shipped through
    ``comm.recovery`` (:class:`RecoveryContext`) — at most
    ``max_recoveries`` times, after which the failure raises as usual.
    The ``recoveries``/``respawns``/``replayed_iterations`` counters land
    in every returned ledger. The default ``recover="raise"`` preserves
    the historical behavior exactly.

    Children install signal handlers before running ``fn``: SIGTERM
    aborts the world and exits immediately, SIGINT is ignored (the
    parent coordinates Ctrl-C teardown through its ``finally`` path), so
    an interrupted run leaves no orphan processes.

    Raises the first per-rank exception (rank order) if any rank failed;
    a killed rank raises :class:`~repro.errors.RankDiedError` (on the
    survivors and in the parent), hung ranks raise :class:`CommAborted`.
    """
    pool = WorkerPool(
        size,
        machine=machine,
        cost_size=cost_size,
        timeout=timeout,
        latency=latency,
        slab_bytes=slab_bytes,
        nb_doubles=nb_doubles,
        comm_timeout=comm_timeout,
        nb_depth=nb_depth,
    )
    try:
        return pool.run(
            fn, args=args, recover=recover, max_recoveries=max_recoveries
        )
    finally:
        pool.shutdown()
