"""Process-backed SPMD engine: true GIL-free parallelism.

Runs ``size`` ranks as forked OS processes executing the same function
(SPMD), exchanging data through anonymous shared-memory slabs
(:func:`multiprocessing.sharedctypes.RawArray`, inherited by fork — no
named segments, no cleanup, no resource-tracker noise). This is the
backend that makes wall-clock overlap claims *honest*: thread ranks
share one GIL for the Python-level inner loops, so a thread "speedup"
can be an artifact of scheduling; process ranks genuinely compute in
parallel, and hiding a reduction behind computation genuinely shortens
the critical path (``benchmarks/bench_overlap.py``).

Semantics match :class:`~repro.mpi.thread_backend.ThreadComm` exactly:

* every collective folds contributions in rank order, so results are
  bit-identical run-to-run and identical to the thread and virtual
  backends (each rank performs the same deterministic fold on the same
  rank-ordered payloads);
* SPMD-mismatch detection: each collective publishes its tag; divergent
  ranks raise :class:`~repro.errors.RankMismatchError` instead of
  deadlocking;
* nonblocking collectives run through a double-buffered slot ring.
  There is no background progress process — completion time is
  ``last deposit + latency`` (published in the slot header), and each
  rank's wait sleeps only the *remainder* of that window, which is what
  lets computation before the wait genuinely hide the transit.

Generic object collectives pickle payloads into fixed-capacity per-rank
slabs (``slab_bytes``, default 4 MiB — raise it through
``process_spmd_run(slab_bytes=)`` / ``ProcessWorld(slab_bytes=)`` for
larger payloads); an oversized payload raises a
:class:`~repro.errors.CommError` naming the payload size and the knob —
and aborts the world so peers wake instead of parking on the barrier —
rather than corrupting a neighbour's slab. Nonblocking payloads are raw
float64 (the packed-Gram hot path) — no pickling on the pipelined
critical path.

Teardown is exception-safe: a rank failing mid-collective (or the
parent unwinding) aborts the world — broken barrier, woken nonblocking
waiters — so blocked ranks exit deterministically instead of waiting
out the join-timeout/terminate path. :class:`ProcessWorld` is a context
manager (``shutdown()`` on exit) for direct, non-``process_spmd_run``
use.

Requires a platform with ``fork`` (Linux/macOS): the SPMD function and
its closure are inherited, not pickled, so tests and solvers can pass
lambdas exactly as with :func:`~repro.mpi.thread_backend.spmd_run`.
"""

from __future__ import annotations

import ctypes
import multiprocessing as mp
import pickle
import time
from multiprocessing.sharedctypes import RawArray
from threading import BrokenBarrierError
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import CommAborted, CommError, RankMismatchError
from repro.machine.ledger import CostLedger
from repro.machine.spec import MachineSpec
from repro.mpi.comm import Comm
from repro.mpi.thread_backend import NB_RING_DEPTH, SpmdResult

__all__ = ["ProcessComm", "ProcessWorld", "process_spmd_run"]

_TAG_BYTES = 128


def _require_fork() -> mp.context.BaseContext:
    if "fork" not in mp.get_all_start_methods():
        raise CommError(
            "the process backend needs the 'fork' start method "
            "(unavailable on this platform)"
        )
    return mp.get_context("fork")


class _NbProcSlot:
    """One shared-memory slot of the nonblocking-collective ring."""

    def __init__(self, ctx, size: int, seq: int, capacity_doubles: int) -> None:
        self.cond = ctx.Condition()
        self.capacity = capacity_doubles
        self.payload = RawArray(ctypes.c_double, size * capacity_doubles)
        self.lengths = RawArray(ctypes.c_longlong, size)
        self.tags = RawArray(ctypes.c_char, size * _TAG_BYTES)
        self.seq = ctx.Value(ctypes.c_longlong, seq, lock=False)
        self.deposited = ctx.Value(ctypes.c_int, 0, lock=False)
        self.consumed = ctx.Value(ctypes.c_int, 0, lock=False)
        self.complete_at = ctx.Value(ctypes.c_double, 0.0, lock=False)

    def _tag(self, rank: int) -> bytes:
        raw = bytes(self.tags[rank * _TAG_BYTES:(rank + 1) * _TAG_BYTES])
        return raw.rstrip(b"\0")

    def _set_tag(self, rank: int, tag: str) -> None:
        enc = tag.encode()[: _TAG_BYTES - 1]
        self.tags[rank * _TAG_BYTES:rank * _TAG_BYTES + len(enc)] = enc
        # zero-pad the remainder so a shorter tag never inherits suffix bytes
        pad = _TAG_BYTES - len(enc)
        self.tags[rank * _TAG_BYTES + len(enc):(rank + 1) * _TAG_BYTES] = b"\0" * pad


class _ProcNbHandle:
    """Per-rank handle for one in-flight nonblocking collective."""

    __slots__ = ("_world", "_slot", "_seq", "_rank", "_op", "_shape", "_result")

    def __init__(self, world, slot, seq, rank, op, shape) -> None:
        self._world = world
        self._slot = slot
        self._seq = seq
        self._rank = rank
        self._op = op
        self._shape = shape
        self._result = None

    def _ready_locked(self) -> bool:
        slot = self._slot
        return slot.seq.value == self._seq and slot.deposited.value == self._world.size

    def _complete(self):
        """Fold the deposited payloads (deterministic rank order)."""
        world, slot = self._world, self._slot
        n = int(slot.lengths[0])
        flat = np.frombuffer(slot.payload, dtype=np.float64)
        parts = [flat[r * slot.capacity:r * slot.capacity + n] for r in range(world.size)]
        tags = [slot._tag(r) for r in range(world.size)]
        lengths = [int(slot.lengths[r]) for r in range(world.size)]
        err = None
        if any(t != tags[0] for t in tags) or any(ln != n for ln in lengths):
            err = RankMismatchError(
                "SPMD mismatch: ranks posted different nonblocking "
                f"collectives {[t.decode() for t in tags]} with payload "
                f"lengths {lengths}"
            )
            result = None
        else:
            result = self._op.fold(parts).reshape(self._shape)
        with slot.cond:
            slot.consumed.value += 1
            if slot.consumed.value == world.size:
                slot.seq.value += NB_RING_DEPTH
                slot.deposited.value = 0
                slot.consumed.value = 0
                slot.cond.notify_all()
        if err is not None:
            raise err
        self._result = result
        return result

    def wait(self):
        world, slot = self._world, self._slot
        with slot.cond:
            while not self._ready_locked():
                if world.is_aborted():
                    raise CommAborted(
                        "nonblocking collective aborted by a peer failure"
                    )
                slot.cond.wait(0.05)
            remaining = slot.complete_at.value - time.monotonic()
        if remaining > 0:
            # unoverlapped transit remainder — computation done before the
            # wait() has already eaten into this window
            time.sleep(remaining)
        return self._complete()

    def test(self):
        world, slot = self._world, self._slot
        with slot.cond:
            if world.is_aborted():
                raise CommAborted(
                    "nonblocking collective aborted by a peer failure"
                )
            if not self._ready_locked():
                return None
            remaining = slot.complete_at.value - time.monotonic()
        if remaining > 0:
            return None
        return self._complete()


class ProcessWorld:
    """Shared-memory state for one process-SPMD world.

    Created in the parent *before* forking; children inherit the mapped
    arenas and synchronisation primitives. ``slab_bytes`` bounds one
    rank's pickled payload per blocking collective; ``nb_doubles`` bounds
    one rank's nonblocking float64 payload (defaults fit a packed
    ``(s*mu)^2/2`` Gram up to s*mu ≈ 1000).
    """

    def __init__(
        self,
        size: int,
        slab_bytes: int = 1 << 22,
        nb_doubles: int = 1 << 19,
        latency: float = 0.0,
    ) -> None:
        if size < 1:
            raise CommError(f"size must be >= 1, got {size}")
        ctx = _require_fork()
        self.size = size
        self.slab_bytes = int(slab_bytes)
        self.latency = float(latency)
        self.barrier = ctx.Barrier(size)
        self._aborted = ctx.Value(ctypes.c_int, 0, lock=False)
        self._obj = RawArray(ctypes.c_char, size * self.slab_bytes)
        self._obj_len = RawArray(ctypes.c_longlong, size)
        self._tags = RawArray(ctypes.c_char, size * _TAG_BYTES)
        self._nb_ring = [
            _NbProcSlot(ctx, size, seq, int(nb_doubles))
            for seq in range(NB_RING_DEPTH)
        ]
        self._ctx = ctx

    # -- failure handling --------------------------------------------------
    def abort(self) -> None:
        """Fail peers fast: break the barrier, wake nonblocking waiters.

        Idempotent, callable from any rank or the parent. Every blocked
        participant wakes deterministically: barrier waiters get
        :class:`~threading.BrokenBarrierError` (surfaced as
        :class:`~repro.errors.CommAborted`), nonblocking waiters observe
        the aborted flag on their next condition wake-up (<= 50 ms).
        """
        self._aborted.value = 1
        self.barrier.abort()
        for slot in self._nb_ring:
            with slot.cond:
                slot.cond.notify_all()

    def shutdown(self) -> None:
        """Deterministic teardown: alias of :meth:`abort` for use as an
        explicit end-of-life call (or via the context manager). After
        shutdown every collective on the world raises
        :class:`~repro.errors.CommAborted` instead of blocking."""
        self.abort()

    def __enter__(self) -> "ProcessWorld":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def is_aborted(self) -> bool:
        return bool(self._aborted.value)

    # -- blocking exchange -------------------------------------------------
    def _read_tag(self, rank: int) -> bytes:
        raw = bytes(self._tags[rank * _TAG_BYTES:(rank + 1) * _TAG_BYTES])
        return raw.rstrip(b"\0")

    def exchange(self, rank: int, tag: str, obj: Any, fold=None) -> Any:
        """Deposit, synchronise, snapshot (or fold), synchronise.

        The process twin of :meth:`ThreadContext.exchange`: pickles the
        payload into this rank's slab, barriers, reads every slab (so
        each rank folds its *own copies* — deterministic and isolated),
        barriers again so nobody overwrites a slab early.
        """
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > self.slab_bytes:
            # the collective cannot proceed for anyone: wake peers that
            # already parked on the barrier instead of letting them sit
            # until the parent's timeout/terminate path fires
            self.abort()
            raise CommError(
                f"collective {tag!r}: pickled payload of {len(payload)} "
                f"bytes exceeds the process backend's slab capacity "
                f"(slab_bytes={self.slab_bytes}); raise slab_bytes= in "
                "process_spmd_run / ProcessWorld"
            )
        base = rank * self.slab_bytes
        self._obj[base:base + len(payload)] = payload
        self._obj_len[rank] = len(payload)
        enc = tag.encode()[: _TAG_BYTES - 1]
        self._tags[rank * _TAG_BYTES:rank * _TAG_BYTES + len(enc)] = enc
        pad = _TAG_BYTES - len(enc)
        self._tags[rank * _TAG_BYTES + len(enc):(rank + 1) * _TAG_BYTES] = b"\0" * pad
        try:
            self.barrier.wait()
        except BrokenBarrierError as exc:
            raise CommAborted(
                f"rank {rank}: collective {tag!r} aborted by a peer failure"
            ) from exc
        try:
            tags = [self._read_tag(r) for r in range(self.size)]
            if any(t != tags[0] for t in tags):
                raise RankMismatchError(
                    "SPMD mismatch: ranks called different collectives "
                    f"{[t.decode() for t in tags]}"
                )
            gathered = [
                pickle.loads(bytes(
                    self._obj[r * self.slab_bytes:
                              r * self.slab_bytes + int(self._obj_len[r])]
                ))
                for r in range(self.size)
            ]
            snapshot = fold(gathered) if fold is not None else gathered
            if self.latency:
                # emulated transit on the critical path (concurrent ranks)
                time.sleep(self.latency)
        finally:
            try:
                self.barrier.wait()
            except BrokenBarrierError as exc:
                raise CommAborted(
                    f"rank {rank}: collective {tag!r} aborted by a peer failure"
                ) from exc
        return snapshot

    # -- nonblocking post --------------------------------------------------
    def nb_post(self, rank: int, seq: int, tag: str, arr: np.ndarray, op):
        """Deposit one rank's nonblocking contribution; returns a handle."""
        if arr.dtype != np.float64:
            raise CommError(
                "process-backend Iallreduce supports float64 arrays, got "
                f"{arr.dtype}"
            )
        flat = np.ascontiguousarray(arr).ravel()
        slot = self._nb_ring[seq % NB_RING_DEPTH]
        if flat.shape[0] > slot.capacity:
            self.abort()  # peers waiting on this slot must not park
            raise CommError(
                f"nonblocking collective {tag!r}: payload of "
                f"{flat.shape[0]} doubles exceeds the slot capacity "
                f"(nb_doubles={slot.capacity}); raise nb_doubles= in "
                "process_spmd_run / ProcessWorld"
            )
        with slot.cond:
            while slot.seq.value != seq:
                if self.is_aborted():
                    raise CommAborted(
                        f"rank {rank}: nonblocking collective {tag!r} aborted"
                    )
                slot.cond.wait(0.05)
            dst = np.frombuffer(slot.payload, dtype=np.float64)
            dst[rank * slot.capacity:rank * slot.capacity + flat.shape[0]] = flat
            slot.lengths[rank] = flat.shape[0]
            slot._set_tag(rank, tag)
            slot.deposited.value += 1
            if slot.deposited.value == self.size:
                slot.complete_at.value = time.monotonic() + self.latency
                slot.cond.notify_all()
        return _ProcNbHandle(self, slot, seq, rank, op, arr.shape)


class ProcessComm(Comm):
    """Communicator bound to one rank of a :class:`ProcessWorld`."""

    def __init__(
        self,
        world: ProcessWorld,
        rank: int,
        machine: MachineSpec | None = None,
        cost_size: int | None = None,
        ledger: CostLedger | None = None,
    ) -> None:
        super().__init__(
            rank=rank,
            size=world.size,
            cost_size=cost_size,
            machine=machine,
            ledger=ledger,
        )
        self._world = world
        self._nb_seq = 0

    def _allgather_impl(self, tag: str, obj: Any) -> list:
        return self._world.exchange(self._rank, tag, obj)

    def _exchange_fold(self, tag: str, obj: Any, fold) -> Any:
        # the pickled slabs are private copies, so the fold is trivially
        # safe against send-buffer reuse; run it between the barriers for
        # symmetry with the thread backend
        return self._world.exchange(self._rank, tag, obj, fold=fold)

    def _iallreduce_impl(self, tag: str, arr, op):
        seq = self._nb_seq
        self._nb_seq += 1
        return self._world.nb_post(self._rank, seq, tag, arr, op)


def process_spmd_run(
    fn: Callable[..., Any],
    size: int,
    args: Sequence = (),
    machine: MachineSpec | None = None,
    cost_size: int | None = None,
    timeout: float | None = 120.0,
    latency: float = 0.0,
    slab_bytes: int = 1 << 22,
    nb_doubles: int = 1 << 19,
) -> SpmdResult:
    """Run ``fn(comm, rank, *args)`` on ``size`` forked process ranks.

    The process twin of :func:`~repro.mpi.thread_backend.spmd_run`, same
    signature and same :class:`SpmdResult` (per-rank values + ledgers:
    each child ships its return value and ledger back through a queue).
    ``fn`` and its closure are inherited by fork, so lambdas work; the
    *return value* must be picklable.

    ``slab_bytes`` bounds one rank's pickled payload per blocking
    collective (default 4 MiB) and ``nb_doubles`` one rank's nonblocking
    float64 payload; an oversized payload raises a :class:`CommError`
    naming the size and the knob, and aborts the world so peers wake
    instead of parking. Teardown is exception-safe: a rank raising
    mid-collective aborts the world (broken barrier + woken nonblocking
    waiters), so every surviving rank exits deterministically and no
    forked child outlives the call.

    Raises the first per-rank exception (rank order) if any rank failed;
    hung or killed ranks raise :class:`CommAborted`.
    """
    world = ProcessWorld(
        size, slab_bytes=slab_bytes, nb_doubles=nb_doubles, latency=latency
    )
    ctx = world._ctx
    # result channel: one pipe, many writers serialized by a lock (the
    # public-API equivalent of SimpleQueue, which offers no timed poll).
    # send() is synchronous, so a child's report is fully in the pipe
    # before the child exits.
    recv_end, send_end = ctx.Pipe(duplex=False)
    send_lock = ctx.Lock()

    def report(item) -> None:
        with send_lock:
            send_end.send(item)

    def worker(r: int) -> None:
        comm = ProcessComm(world, r, machine=machine, cost_size=cost_size)
        try:
            value = fn(comm, r, *args)
        except BaseException as exc:  # noqa: BLE001 - reported to the parent
            world.abort()
            try:
                report((r, "err", exc, None))
            except Exception:
                report((r, "err", CommError(repr(exc)), None))
            return
        try:
            report((r, "ok", value, comm.ledger))
        except Exception as exc:  # unpicklable return value
            report((r, "err", CommError(
                f"rank {r} returned an unpicklable value: {exc!r}"
            ), None))

    procs = [
        ctx.Process(target=worker, args=(r,), name=f"spmd-proc-{r}", daemon=True)
        for r in range(size)
    ]
    for p in procs:
        p.start()
    deadline = None if timeout is None else time.monotonic() + timeout
    values: list[Any] = [None] * size
    ledgers: list[CostLedger | None] = [None] * size
    errors: list[BaseException | None] = [None] * size
    reported = [False] * size
    try:
        while not all(reported):
            if deadline is not None and time.monotonic() > deadline:
                world.abort()
                hung = [p.name for p in procs if p.is_alive()]
                raise CommAborted(
                    f"SPMD ranks did not finish within {timeout}s: {hung}"
                )
            if not recv_end.poll(0.05):
                dead_unreported = [
                    r for r in range(size)
                    if not reported[r] and not procs[r].is_alive()
                ]
                if dead_unreported and not recv_end.poll(0):
                    # report() is synchronous, so a dead child with no
                    # queued report genuinely never reported (crash/kill)
                    if all(not p.is_alive() for p in procs):
                        break
                    # peers can never complete a collective with it:
                    # wake them now rather than waiting out the timeout
                    world.abort()
                continue
            r, status, payload, ledger = recv_end.recv()
            reported[r] = True
            if status == "ok":
                values[r] = payload
                ledgers[r] = ledger
            else:
                errors[r] = payload
    finally:
        # Deterministic teardown: if any rank is still running — a peer
        # raised mid-collective, the parent is unwinding on its own
        # exception, or a child died without reporting — break the
        # barrier and wake every blocked waiter *before* joining, so
        # survivors exit on CommAborted instead of parking until the
        # join timeout forces a terminate().
        if any(p.is_alive() for p in procs):
            world.abort()
        for p in procs:
            p.join(1.0)
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join(1.0)
    real_errors = [e for e in errors if e is not None and not isinstance(e, CommAborted)]
    if real_errors:
        raise real_errors[0]
    aborted = [e for e in errors if e is not None]
    if aborted:
        raise aborted[0]
    if not all(reported):
        dead = [r for r in range(size) if not reported[r]]
        raise CommAborted(
            f"SPMD ranks died without reporting a result: {dead}"
        )
    return SpmdResult(values=values, ledgers=ledgers)
