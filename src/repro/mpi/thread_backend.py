"""Thread-backed SPMD engine.

Runs ``size`` ranks as Python threads executing the same function (SPMD),
synchronising at collectives through a reusable barrier. NumPy performs
the heavy lifting with the GIL released, so this is genuinely concurrent
for the kernels that matter; more importantly it *faithfully exercises the
distributed code path* — each rank owns only its shard of the matrix and
contributes partial sums, exactly like the paper's MPI ranks.

Determinism: every collective snapshots all contributions after a barrier
and folds them in rank order, so results are identical run-to-run and
identical to what a sequential fold would produce. A second barrier
prevents a fast rank from starting the next collective before everyone
has read the slots.

SPMD-mismatch detection: each collective publishes its tag; if ranks
disagree (a classic SPMD deadlock bug), all ranks raise
:class:`~repro.errors.RankMismatchError` instead of hanging.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import (
    CommAborted,
    CommTimeoutError,
    NbRingDepthError,
    RankMismatchError,
)
from repro.machine.ledger import CostLedger
from repro.machine.spec import MachineSpec
from repro.mpi.comm import Comm

__all__ = ["ThreadComm", "ThreadContext", "spmd_run", "SpmdResult"]

#: default outstanding nonblocking collectives per world (double-buffered:
#: the pipelined solvers keep at most one reduction in flight while packing
#: the next payload into the other buffer; the async bounded-staleness
#: solvers pass ``nb_depth = tau + 2`` for a deeper ring)
NB_RING_DEPTH = 2


class _NbSlot:
    """One slot of the nonblocking-collective ring.

    Lifecycle per sequence number: every rank deposits (buffer, tag); the
    last deposit hands the slot to the background fold thread, which
    (after the emulated transit latency) folds the contributions in rank
    order and publishes the result; each rank's wait copies the result
    out and the last consumer recycles the slot for ``seq + ring``.
    """

    __slots__ = ("cond", "seq", "bufs", "tags", "op", "deposited",
                 "consumed", "result", "error", "done")

    def __init__(self, size: int, seq: int) -> None:
        self.cond = threading.Condition()
        self.seq = seq
        self.bufs: list[Any] = [None] * size
        self.tags: list[str | None] = [None] * size
        self.op = None
        self.deposited = 0
        self.consumed = 0
        self.result = None
        self.error: BaseException | None = None
        self.done = False

    def recycle(self, size: int, ring: int = NB_RING_DEPTH) -> None:
        """Reset for the sequence ``ring`` steps later (cond held)."""
        self.seq += ring
        self.bufs = [None] * size
        self.tags = [None] * size
        self.op = None
        self.deposited = 0
        self.consumed = 0
        self.result = None
        self.error = None
        self.done = False


class _ThreadNbHandle:
    """Per-rank handle for one in-flight nonblocking collective."""

    __slots__ = ("_ctx", "_slot", "_seq", "_tag", "_rank", "_result")

    def __init__(
        self, ctx: "ThreadContext", slot: _NbSlot, seq: int, tag: str = "",
        rank: int = 0,
    ) -> None:
        self._ctx = ctx
        self._slot = slot
        self._seq = seq
        self._tag = tag
        self._rank = rank
        self._result = None

    def _consume_locked(self):
        """Copy the published result and recycle the slot (cond held)."""
        err = self._slot.error
        if err is None:
            self._result = self._slot.result.copy()
        self._ctx._nb_open[self._rank].discard(self._seq)
        self._slot.consumed += 1
        if self._slot.consumed == self._ctx.size:
            self._slot.recycle(self._ctx.size, self._ctx.nb_depth)
            self._slot.cond.notify_all()
        if err is not None:
            raise err
        return self._result

    def wait(self, timeout: float | None = None):
        slot = self._slot
        deadline = None if timeout is None else time.monotonic() + timeout
        with slot.cond:
            while not (slot.seq == self._seq and slot.done):
                if self._ctx.aborted:
                    raise CommAborted(
                        "nonblocking collective aborted by a peer failure"
                    )
                if deadline is not None and time.monotonic() >= deadline:
                    stalled = tuple(
                        r
                        for r in range(self._ctx.size)
                        if slot.seq == self._seq and slot.tags[r] is None
                    )
                    self._ctx.abort()
                    raise CommTimeoutError(
                        f"nonblocking collective {self._tag!r} timed out after"
                        f" {timeout}s (no deposit from ranks {list(stalled)})",
                        tag=self._tag,
                        stalled=stalled,
                    )
                slot.cond.wait(0.05)
            return self._consume_locked()

    def test(self):
        slot = self._slot
        with slot.cond:
            if self._ctx.aborted:
                raise CommAborted(
                    "nonblocking collective aborted by a peer failure"
                )
            if not (slot.seq == self._seq and slot.done):
                return None
            return self._consume_locked()


class ThreadContext:
    """Shared state for one thread-SPMD world.

    ``latency`` emulates the network transit of each collective: blocking
    collectives sleep it on the critical path (between the two barriers,
    all ranks concurrently), nonblocking ones sleep it on the background
    fold thread — which is what lets pipelined callers genuinely hide it
    behind computation. Used by the overlap benchmarks; defaults to 0.
    """

    def __init__(
        self, size: int, latency: float = 0.0, nb_depth: int = NB_RING_DEPTH
    ) -> None:
        self.size = size
        self.latency = float(latency)
        if int(nb_depth) < 1:
            raise NbRingDepthError(
                f"nb_depth must be >= 1, got {nb_depth}", depth=int(nb_depth)
            )
        self.nb_depth = int(nb_depth)
        self.barrier = threading.Barrier(size)
        self.slots: list[Any] = [None] * size
        self.tags: list[str | None] = [None] * size
        self.generation = 0
        self.aborted = False
        #: per-rank barrier-arrival counters; a rank that times out names
        #: the peers whose counter lags its own as the stalled ranks
        self.arrive_gen = [0] * size
        self._nb_ring = [_NbSlot(size, seq) for seq in range(self.nb_depth)]
        self._nb_seq = [0] * size
        #: per-rank sequence numbers posted but not yet harvested — the
        #: ring-reuse guard must know *which* requests are open, not just
        #: how many: out-of-order harvest can leave the exact request
        #: that shares the next post's slot unharvested while newer ones
        #: are already consumed
        self._nb_open: list[set] = [set() for _ in range(size)]
        self._nb_queue: queue.Queue = queue.Queue()
        self._folder: threading.Thread | None = None
        self._folder_lock = threading.Lock()

    def _barrier_wait(self, rank: int, tag: str, timeout: float | None) -> None:
        """One barrier arrival with an optional deadline.

        A rank whose wait expires aborts the world and raises
        :class:`CommTimeoutError` naming the tag and the ranks whose
        arrival counter lags its own; peers woken by the broken barrier
        raise :class:`CommAborted`.
        """
        self.arrive_gen[rank] += 1
        start = time.monotonic()
        try:
            self.barrier.wait(timeout)
        except threading.BrokenBarrierError as exc:
            timed_out = (
                timeout is not None
                and not self.aborted
                and time.monotonic() - start >= timeout
            )
            if timed_out:
                my_gen = self.arrive_gen[rank]
                stalled = tuple(
                    r for r in range(self.size) if self.arrive_gen[r] < my_gen
                )
                self.abort()
                raise CommTimeoutError(
                    f"rank {rank}: collective {tag!r} timed out after {timeout}s"
                    f" waiting for ranks {list(stalled)}",
                    tag=tag,
                    stalled=stalled,
                ) from exc
            raise CommAborted(
                f"rank {rank}: collective {tag!r} aborted by a peer failure"
            ) from exc

    def exchange(
        self, rank: int, tag: str, obj: Any, fold=None, timeout: float | None = None
    ) -> Any:
        """Deposit, synchronise, snapshot (or fold), synchronise.

        With ``fold`` each rank reduces the contributions *between* the
        two barriers — i.e. before any peer can overwrite its slot for
        the next collective. That is what lets callers reuse their send
        buffers across iterations (zero-copy packed collectives): by the
        time ``exchange`` returns, every rank has finished reading every
        buffer. ``timeout`` bounds each barrier wait (see
        :meth:`_barrier_wait`).
        """
        self.slots[rank] = obj
        self.tags[rank] = tag
        self._barrier_wait(rank, tag, timeout)
        try:
            expected = self.tags[0]
            if any(t != expected for t in self.tags):
                raise RankMismatchError(
                    f"SPMD mismatch: ranks called different collectives {self.tags}"
                )
            snapshot = fold(list(self.slots)) if fold is not None else list(self.slots)
            if self.latency:
                # emulated transit, on the critical path (ranks sleep it
                # concurrently inside the collective)
                time.sleep(self.latency)
        finally:
            # Second barrier: nobody may overwrite slots until all have read.
            # On mismatch every rank raises the same error after this point.
            self._barrier_wait(rank, tag, timeout)
        return snapshot

    # -- nonblocking collectives -------------------------------------------
    def _ensure_folder(self) -> None:
        """Start the background fold thread on first nonblocking use."""
        with self._folder_lock:
            if self._folder is None:
                self._folder = threading.Thread(
                    target=self._fold_loop, name="spmd-nb-folder", daemon=True
                )
                self._folder.start()

    def _fold_loop(self) -> None:
        """Background progress engine: complete nonblocking collectives.

        Receives fully-deposited slots, sleeps the emulated transit
        latency *off* every rank's critical path, folds the contributions
        in rank order (deterministic, bit-identical to the blocking
        fold), and publishes result-or-error to the waiting ranks.
        """
        while True:
            slot = self._nb_queue.get()
            if slot is None:
                return
            if self.latency:
                time.sleep(self.latency)
            with slot.cond:
                try:
                    expected = slot.tags[0]
                    if any(t != expected for t in slot.tags):
                        raise RankMismatchError(
                            "SPMD mismatch: ranks posted different nonblocking"
                            f" collectives {slot.tags}"
                        )
                    slot.result = slot.op.fold(slot.bufs)
                # repro: lint-ignore[abort-swallow] -- capture, not swallow:
                # the folder thread stores the error and every waiting rank
                # re-raises it from slot.error at harvest time
                except BaseException as exc:  # noqa: BLE001 - republished per rank
                    slot.error = exc
                slot.done = True
                slot.cond.notify_all()

    def nb_post(
        self, rank: int, tag: str, obj: Any, op, timeout: float | None = None
    ) -> _ThreadNbHandle:
        """Deposit one rank's contribution to a nonblocking collective.

        Returns immediately once the contribution is recorded (blocking
        only if the ring slot is still occupied by the collective
        ``nb_depth`` sequences earlier — i.e. callers may keep at most
        ``nb_depth`` requests in flight; harvesting them out of order
        *within* that window is well-defined, each slot recycles when all
        ranks consumed it). Posting while this rank already holds
        ``nb_depth`` unharvested handles would deadlock on the rank's own
        slot, so it raises :class:`~repro.errors.NbRingDepthError`
        *before* blocking. The caller must not modify ``obj`` until the
        request completes. ``timeout`` bounds the ring-slot wait.
        """
        seq = self._nb_seq[rank]
        open_seqs = self._nb_open[rank]
        if seq - self.nb_depth in open_seqs:
            # this post's slot is still held by the rank's own unharvested
            # request `seq - depth`; blocking here would deadlock — raise
            # before touching the ring (out-of-order harvest means the
            # conflict can exist with fewer than `depth` requests open)
            raise NbRingDepthError(
                f"rank {rank}: posting nonblocking collective {tag!r} would"
                f" reuse the ring slot of its own unharvested request"
                f" #{seq - self.nb_depth} ({len(open_seqs)} open on a ring of"
                f" depth {self.nb_depth}); harvest it first or raise"
                " nb_depth",
                depth=self.nb_depth,
                outstanding=len(open_seqs),
            )
        self._nb_seq[rank] += 1
        open_seqs.add(seq)
        slot = self._nb_ring[seq % self.nb_depth]
        deadline = None if timeout is None else time.monotonic() + timeout
        with slot.cond:
            while slot.seq != seq:
                if self.aborted:
                    raise CommAborted(
                        f"rank {rank}: nonblocking collective {tag!r} aborted"
                    )
                if deadline is not None and time.monotonic() >= deadline:
                    self.abort()
                    raise CommTimeoutError(
                        f"rank {rank}: nonblocking collective {tag!r} timed out"
                        f" after {timeout}s waiting for a free ring slot",
                        tag=tag,
                    )
                slot.cond.wait(0.05)
            slot.bufs[rank] = obj
            slot.tags[rank] = tag
            if slot.op is None:
                slot.op = op
            slot.deposited += 1
            last = slot.deposited == self.size
        if last:
            self._ensure_folder()
            self._nb_queue.put(slot)
        return _ThreadNbHandle(self, slot, seq, tag, rank)

    def abort(self) -> None:
        """Break the barrier so peers blocked in a collective fail fast."""
        self.aborted = True
        self.barrier.abort()
        for slot in self._nb_ring:
            with slot.cond:
                slot.cond.notify_all()

    def close(self) -> None:
        """Stop the background fold thread (idempotent)."""
        with self._folder_lock:
            if self._folder is not None:
                self._nb_queue.put(None)
                self._folder = None


class ThreadComm(Comm):
    """Communicator bound to one rank of a :class:`ThreadContext`."""

    def __init__(
        self,
        ctx: ThreadContext,
        rank: int,
        machine: MachineSpec | None = None,
        cost_size: int | None = None,
        ledger: CostLedger | None = None,
        timeout: float | None = None,
    ) -> None:
        super().__init__(
            rank=rank,
            size=ctx.size,
            cost_size=cost_size,
            machine=machine,
            ledger=ledger,
            timeout=timeout,
        )
        self._ctx = ctx

    @property
    def nb_ring_depth(self) -> int | None:
        """Depth of the shared nonblocking slot ring (max in flight)."""
        return self._ctx.nb_depth

    def _allgather_impl(self, tag: str, obj: Any) -> list:
        try:
            return self._ctx.exchange(
                self._rank, tag, obj, timeout=self._active_timeout
            )
        except CommTimeoutError:
            self.ledger.add_timeout()
            raise

    def _exchange_fold(self, tag: str, obj: Any, fold) -> Any:
        # fold inside the critical section so send buffers are reusable
        try:
            return self._ctx.exchange(
                self._rank, tag, obj, fold=fold, timeout=self._active_timeout
            )
        except CommTimeoutError:
            self.ledger.add_timeout()
            raise

    def _iallreduce_impl(self, tag: str, arr, op):
        # true asynchrony: the context's background fold thread completes
        # the reduction while this rank keeps computing
        return self._ctx.nb_post(
            self._rank, tag, arr, op, timeout=self._active_timeout
        )


@dataclass
class SpmdResult:
    """Outcome of an SPMD run: per-rank return values and cost ledgers."""

    values: list
    ledgers: list

    @property
    def root(self) -> Any:
        """Rank 0's return value (conventionally the result)."""
        return self.values[0]


def spmd_run(
    fn: Callable[..., Any],
    size: int,
    args: Sequence = (),
    machine: MachineSpec | None = None,
    cost_size: int | None = None,
    timeout: float | None = 120.0,
    latency: float = 0.0,
    comm_timeout: float | None = None,
    nb_depth: int = NB_RING_DEPTH,
) -> SpmdResult:
    """Run ``fn(comm, rank, *args)`` on ``size`` thread ranks.

    Parameters
    ----------
    fn:
        SPMD function; first two arguments are the communicator and rank.
    size:
        Number of thread ranks (keep modest; this is a simulator).
    machine:
        Optional machine spec for cost modelling.
    cost_size:
        Model costs as if running on this many ranks (>= size).
    timeout:
        Join timeout per thread; a hung rank raises :class:`CommAborted`.
    latency:
        Emulated per-collective transit seconds (overlap studies): paid
        on the critical path by blocking collectives, hidden behind
        computation by pipelined nonblocking ones.
    comm_timeout:
        Default per-collective deadline installed on every rank's
        communicator (``None`` = wait forever, the historical behaviour).
    nb_depth:
        Nonblocking slot-ring depth: the most in-flight ``Iallreduce``
        requests any rank may hold (bounded-staleness solvers need
        ``tau + 2``).

    Raises the first per-rank exception (rank order) if any rank failed.
    """
    ctx = ThreadContext(size, latency=latency, nb_depth=nb_depth)
    values: list[Any] = [None] * size
    errors: list[BaseException | None] = [None] * size
    comms = [
        ThreadComm(ctx, r, machine=machine, cost_size=cost_size, timeout=comm_timeout)
        for r in range(size)
    ]

    def worker(r: int) -> None:
        try:
            values[r] = fn(comms[r], r, *args)
        # repro: lint-ignore[abort-swallow] -- the rank thread's top-level
        # catch: errors[r] is re-raised by spmd_run's caller-side collection
        # and ctx.abort() here IS the abort propagation
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[r] = exc
            ctx.abort()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    hung = [t.name for t in threads if t.is_alive()]
    ctx.close()
    if hung:
        ctx.abort()
        raise CommAborted(f"SPMD ranks did not finish within {timeout}s: {hung}")
    real_errors = [e for e in errors if e is not None and not isinstance(e, CommAborted)]
    if real_errors:
        raise real_errors[0]
    aborted = [e for e in errors if e is not None]
    if aborted:
        raise aborted[0]
    return SpmdResult(values=values, ledgers=[c.ledger for c in comms])
