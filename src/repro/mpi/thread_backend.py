"""Thread-backed SPMD engine.

Runs ``size`` ranks as Python threads executing the same function (SPMD),
synchronising at collectives through a reusable barrier. NumPy performs
the heavy lifting with the GIL released, so this is genuinely concurrent
for the kernels that matter; more importantly it *faithfully exercises the
distributed code path* — each rank owns only its shard of the matrix and
contributes partial sums, exactly like the paper's MPI ranks.

Determinism: every collective snapshots all contributions after a barrier
and folds them in rank order, so results are identical run-to-run and
identical to what a sequential fold would produce. A second barrier
prevents a fast rank from starting the next collective before everyone
has read the slots.

SPMD-mismatch detection: each collective publishes its tag; if ranks
disagree (a classic SPMD deadlock bug), all ranks raise
:class:`~repro.errors.RankMismatchError` instead of hanging.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import CommAborted, RankMismatchError
from repro.machine.ledger import CostLedger
from repro.machine.spec import MachineSpec
from repro.mpi.comm import Comm

__all__ = ["ThreadComm", "ThreadContext", "spmd_run", "SpmdResult"]


class ThreadContext:
    """Shared state for one thread-SPMD world."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.barrier = threading.Barrier(size)
        self.slots: list[Any] = [None] * size
        self.tags: list[str | None] = [None] * size
        self.generation = 0

    def exchange(self, rank: int, tag: str, obj: Any, fold=None) -> Any:
        """Deposit, synchronise, snapshot (or fold), synchronise.

        With ``fold`` each rank reduces the contributions *between* the
        two barriers — i.e. before any peer can overwrite its slot for
        the next collective. That is what lets callers reuse their send
        buffers across iterations (zero-copy packed collectives): by the
        time ``exchange`` returns, every rank has finished reading every
        buffer.
        """
        self.slots[rank] = obj
        self.tags[rank] = tag
        try:
            self.barrier.wait()
        except threading.BrokenBarrierError as exc:
            raise CommAborted(
                f"rank {rank}: collective {tag!r} aborted by a peer failure"
            ) from exc
        try:
            expected = self.tags[0]
            if any(t != expected for t in self.tags):
                raise RankMismatchError(
                    f"SPMD mismatch: ranks called different collectives {self.tags}"
                )
            snapshot = fold(list(self.slots)) if fold is not None else list(self.slots)
        finally:
            # Second barrier: nobody may overwrite slots until all have read.
            # On mismatch every rank raises the same error after this point.
            try:
                self.barrier.wait()
            except threading.BrokenBarrierError as exc:
                raise CommAborted(
                    f"rank {rank}: collective {tag!r} aborted by a peer failure"
                ) from exc
        return snapshot

    def abort(self) -> None:
        """Break the barrier so peers blocked in a collective fail fast."""
        self.barrier.abort()


class ThreadComm(Comm):
    """Communicator bound to one rank of a :class:`ThreadContext`."""

    def __init__(
        self,
        ctx: ThreadContext,
        rank: int,
        machine: MachineSpec | None = None,
        cost_size: int | None = None,
        ledger: CostLedger | None = None,
    ) -> None:
        super().__init__(
            rank=rank,
            size=ctx.size,
            cost_size=cost_size,
            machine=machine,
            ledger=ledger,
        )
        self._ctx = ctx

    def _allgather_impl(self, tag: str, obj: Any) -> list:
        return self._ctx.exchange(self._rank, tag, obj)

    def _exchange_fold(self, tag: str, obj: Any, fold) -> Any:
        # fold inside the critical section so send buffers are reusable
        return self._ctx.exchange(self._rank, tag, obj, fold=fold)


@dataclass
class SpmdResult:
    """Outcome of an SPMD run: per-rank return values and cost ledgers."""

    values: list
    ledgers: list

    @property
    def root(self) -> Any:
        """Rank 0's return value (conventionally the result)."""
        return self.values[0]


def spmd_run(
    fn: Callable[..., Any],
    size: int,
    args: Sequence = (),
    machine: MachineSpec | None = None,
    cost_size: int | None = None,
    timeout: float | None = 120.0,
) -> SpmdResult:
    """Run ``fn(comm, rank, *args)`` on ``size`` thread ranks.

    Parameters
    ----------
    fn:
        SPMD function; first two arguments are the communicator and rank.
    size:
        Number of thread ranks (keep modest; this is a simulator).
    machine:
        Optional machine spec for cost modelling.
    cost_size:
        Model costs as if running on this many ranks (>= size).
    timeout:
        Join timeout per thread; a hung rank raises :class:`CommAborted`.

    Raises the first per-rank exception (rank order) if any rank failed.
    """
    ctx = ThreadContext(size)
    values: list[Any] = [None] * size
    errors: list[BaseException | None] = [None] * size
    comms = [
        ThreadComm(ctx, r, machine=machine, cost_size=cost_size) for r in range(size)
    ]

    def worker(r: int) -> None:
        try:
            values[r] = fn(comms[r], r, *args)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[r] = exc
            ctx.abort()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
    hung = [t.name for t in threads if t.is_alive()]
    if hung:
        ctx.abort()
        raise CommAborted(f"SPMD ranks did not finish within {timeout}s: {hung}")
    real_errors = [e for e in errors if e is not None and not isinstance(e, CommAborted)]
    if real_errors:
        raise real_errors[0]
    aborted = [e for e in errors if e is not None]
    if aborted:
        raise aborted[0]
    return SpmdResult(values=values, ledgers=[c.ledger for c in comms])
