"""Views over communication counters for Table-I style verification.

The ledgers already record per-collective calls/messages/words; this
module shapes those counters into the quantities the paper's Table I
reports: latency cost L (messages on the critical path) and bandwidth
cost W (words on the critical path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.machine.ledger import CostLedger

__all__ = ["CommStats", "comm_stats"]


@dataclass(frozen=True)
class CommStats:
    """Critical-path communication counters of one run."""

    #: total collective calls (synchronisation rounds at the algorithm level)
    calls: int
    #: latency cost L: messages along the critical path (calls x tree rounds)
    messages: int
    #: bandwidth cost W: words along the critical path
    words: float
    #: modelled communication seconds
    seconds: float

    def per_iteration(self, iterations: int) -> "CommStats":
        """Average counters per algorithm iteration."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        return CommStats(
            calls=self.calls // iterations,
            messages=self.messages // iterations,
            words=self.words / iterations,
            seconds=self.seconds / iterations,
        )


def comm_stats(ledgers: CostLedger | Iterable[CostLedger]) -> CommStats:
    """Extract :class:`CommStats` from one ledger or the max over ranks."""
    if isinstance(ledgers, CostLedger):
        ledgers = [ledgers]
    ledgers = list(ledgers)
    if not ledgers:
        raise ValueError("need at least one ledger")
    # Bulk-synchronous algorithms: every rank sees the same collectives, so
    # the max over ranks equals any rank's counters; max is safe regardless.
    best = max(ledgers, key=lambda led: led.comm_seconds)
    calls = sum(entry[0] for entry in best.by_collective.values())
    return CommStats(
        calls=calls,
        messages=best.messages,
        words=best.words,
        seconds=best.comm_seconds,
    )
