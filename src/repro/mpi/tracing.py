"""Views over communication counters, plus runtime collective tracing.

The ledgers already record per-collective calls/messages/words; this
module shapes those counters into the quantities the paper's Table I
reports: latency cost L (messages on the critical path) and bandwidth
cost W (words on the critical path).

It also owns the **runtime collective trace**: a per-rank recorder of
the exact collective schedule a solver executes — one
:class:`TraceEvent` per collective entered (nonblocking ones at post
time), carrying the operation name and a coarse payload shape class.
The static analyzer (:mod:`repro.analyze.schedule`) predicts the same
sequence from the source alone; ``tests/test_analyze_schedule.py``
cross-checks the two so a rank-divergent or drifted collective schedule
fails as a test diff instead of a runtime hang. Tracing is off unless a
:class:`CollectiveTracer` is attached (``attach_tracer``), and records
even collectives whose modelled cost is paused (instrumentation
collectives are still real synchronization points).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.machine.ledger import CostLedger

__all__ = [
    "CommStats",
    "comm_stats",
    "TraceEvent",
    "CollectiveTracer",
    "attach_tracer",
    "classify_payload",
]


def classify_payload(obj: Any) -> str:
    """Coarse payload shape class of one collective's operand.

    ``"none"`` (barrier), ``"scalar"`` (numbers / 0-d arrays), ``"vec"``
    (1-D arrays), ``"mat"`` (>= 2-D arrays), or ``"obj"`` (anything
    else). The schedule verifier compares classes, not element counts:
    class drift already catches the rank-divergence bug family without
    re-deriving the packed-buffer length arithmetic statically.
    """
    if obj is None:
        return "none"
    if isinstance(obj, np.ndarray):
        if obj.ndim == 0:
            return "scalar"
        return "vec" if obj.ndim == 1 else "mat"
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return "scalar"
    return "obj"


@dataclass(frozen=True)
class TraceEvent:
    """One collective as seen by one rank (nonblocking: at post time)."""

    #: public :class:`~repro.mpi.comm.Comm` method name, e.g.
    #: ``"Allreduce"``, ``"allreduce"``, ``"Iallreduce"``, ``"barrier"``
    op: str
    #: payload shape class, see :func:`classify_payload`
    shape: str

    @property
    def key(self) -> str:
        return f"{self.op}:{self.shape}"


class CollectiveTracer:
    """Per-rank recorder of the executed collective schedule.

    Attach one per communicator (``comm.tracer = CollectiveTracer()`` or
    :func:`attach_tracer`); every public collective appends one
    :class:`TraceEvent` on entry. Events are recorded regardless of
    ledger pausing — the SPMD contract is about synchronization points,
    not modelled cost.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(self, op: str, payload: Any = None) -> None:
        self.events.append(TraceEvent(op, classify_payload(payload)))

    def keys(self) -> list[str]:
        """The schedule as compact ``"op:shape"`` strings."""
        return [e.key for e in self.events]

    def ops(self) -> set[str]:
        """The distinct collective operations observed."""
        return {e.op for e in self.events}

    def clear(self) -> None:
        self.events.clear()


def attach_tracer(comm) -> CollectiveTracer:
    """Attach (and return) a fresh tracer to ``comm``."""
    tracer = CollectiveTracer()
    comm.tracer = tracer
    return tracer


@dataclass(frozen=True)
class CommStats:
    """Critical-path communication counters of one run."""

    #: total collective calls (synchronisation rounds at the algorithm level)
    calls: int
    #: latency cost L: messages along the critical path (calls x tree rounds)
    messages: int
    #: bandwidth cost W: words along the critical path
    words: float
    #: modelled communication seconds
    seconds: float

    def per_iteration(self, iterations: int) -> "CommStats":
        """Average counters per algorithm iteration."""
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        return CommStats(
            calls=self.calls // iterations,
            messages=self.messages // iterations,
            words=self.words / iterations,
            seconds=self.seconds / iterations,
        )


def comm_stats(ledgers: CostLedger | Iterable[CostLedger]) -> CommStats:
    """Extract :class:`CommStats` from one ledger or the max over ranks."""
    if isinstance(ledgers, CostLedger):
        ledgers = [ledgers]
    ledgers = list(ledgers)
    if not ledgers:
        raise ValueError("need at least one ledger")
    # Bulk-synchronous algorithms: every rank sees the same collectives, so
    # the max over ranks equals any rank's counters; max is safe regardless.
    best = max(ledgers, key=lambda led: led.comm_seconds)
    calls = sum(entry[0] for entry in best.by_collective.values())
    return CommStats(
        calls=calls,
        messages=best.messages,
        words=best.words,
        seconds=best.comm_seconds,
    )
