"""Simulated MPI: mpi4py-style communicators with cost accounting.

Backends
--------
:class:`ThreadComm` (via :func:`spmd_run`)
    Real SPMD execution with P thread ranks — validates the distributed
    algorithm logic (partitioned data, partial dot products, Allreduce).
:class:`ProcessComm` (via :func:`process_spmd_run`)
    P forked OS processes over shared-memory slabs — true GIL-free
    parallelism for honest wall-clock overlap measurements.
:class:`VirtualComm`
    Single process standing in for a virtual P (up to the paper's 12,288
    cores) with alpha-beta-gamma cost modelling.

All three implement the blocking collectives *and* the nonblocking
:meth:`Comm.Iallreduce` (returning a :class:`CommRequest`), with honest
overlap accounting: only unoverlapped collective latency is charged.

See DESIGN.md §2 for why this substitution preserves the paper's
behaviour.
"""

from repro.mpi.comm import Comm, CommRequest
from repro.mpi.ops import LAND, LOR, MAX, MIN, PROD, SUM, Op
from repro.mpi.process_backend import ProcessComm, ProcessWorld, process_spmd_run
from repro.mpi.thread_backend import SpmdResult, ThreadComm, ThreadContext, spmd_run
from repro.mpi.tracing import CommStats, comm_stats
from repro.mpi.virtual_backend import VirtualComm

__all__ = [
    "Op",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "LAND",
    "LOR",
    "Comm",
    "CommRequest",
    "ThreadComm",
    "ThreadContext",
    "spmd_run",
    "SpmdResult",
    "ProcessComm",
    "ProcessWorld",
    "process_spmd_run",
    "VirtualComm",
    "CommStats",
    "comm_stats",
]
