"""Reduction operations for collectives (mirrors ``mpi4py.MPI.SUM`` etc.).

Reductions are applied *in rank order* by every backend, which makes
results bit-reproducible across runs and across thread schedules — a
prerequisite for the paper's key invariant that SA and non-SA methods
produce identical iterate sequences given the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["Op", "SUM", "MAX", "MIN", "PROD", "LAND", "LOR"]


@dataclass(frozen=True)
class Op:
    """A binary, associative reduction operation.

    ``ufunc`` (optional) is the NumPy ufunc equivalent of ``combine``;
    when present, :meth:`fold_into` accumulates in place with
    ``ufunc(out, item, out=out)`` — the same arithmetic as
    ``combine(out, item)`` without the per-rank allocation.
    """

    name: str
    combine: Callable
    ufunc: Callable | None = None

    def fold(self, contributions: Sequence):
        """Reduce ``contributions`` left-to-right (rank order).

        NumPy arrays are accumulated into a fresh output buffer so no
        rank's send buffer is mutated.
        """
        if len(contributions) == 0:
            raise ValueError(f"cannot {self.name}-reduce zero contributions")
        first = contributions[0]
        if isinstance(first, np.ndarray):
            acc = np.array(first, copy=True)
            for item in contributions[1:]:
                acc = self.combine(acc, item)
            return acc
        acc = first
        for item in contributions[1:]:
            acc = self.combine(acc, item)
        return acc

    def fold_into(self, contributions: Sequence, out: np.ndarray) -> np.ndarray:
        """Rank-order reduce array contributions into preallocated ``out``.

        Bit-identical to :meth:`fold` (same binary ops, same order); the
        only difference is where the accumulator lives. This is the
        zero-allocation path behind ``Comm.Allreduce(..., out=...)``.
        """
        if len(contributions) == 0:
            raise ValueError(f"cannot {self.name}-reduce zero contributions")
        np.copyto(out, contributions[0])
        for item in contributions[1:]:
            if self.ufunc is not None:
                self.ufunc(out, item, out=out)
            else:
                np.copyto(out, self.combine(out, item))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Op({self.name})"


SUM = Op("sum", lambda a, b: a + b, np.add)
PROD = Op("prod", lambda a, b: a * b, np.multiply)
MAX = Op(
    "max",
    lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    np.maximum,
)
MIN = Op(
    "min",
    lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
    np.minimum,
)
LAND = Op("land", lambda a, b: np.logical_and(a, b) if isinstance(a, np.ndarray) else (a and b))
LOR = Op("lor", lambda a, b: np.logical_or(a, b) if isinstance(a, np.ndarray) else (a or b))
