"""Virtual-P communicator.

One actual process stands in for ``virtual_size`` ranks: data is *not*
partitioned (the single rank holds everything and its "partial" sums are
already the full sums, so collectives are identity operations), while
every collective and flop is **charged as if** the run used
``virtual_size`` ranks:

* collectives are priced by the tree model at P = ``virtual_size``;
* flops recorded by the solver are divided by ``virtual_size``
  (balanced-partition assumption; an ``imbalance`` factor models
  stragglers, cf. paper §VI load-balancing discussion).

This is what lets the benchmark harness sweep P up to the paper's 12,288
cores on a laptop: the algorithm's numerics are unchanged (in exact
arithmetic a P-way Allreduce of partials equals the full sum), and the
timing comes from the explicit machine model.
"""

from __future__ import annotations

from typing import Any

from repro.errors import CommError
from repro.machine.ledger import CostLedger
from repro.machine.spec import MachineSpec

from repro.mpi.comm import Comm

__all__ = ["VirtualComm"]


class VirtualComm(Comm):
    """Single-participant communicator with virtual cost size."""

    def __init__(
        self,
        virtual_size: int = 1,
        machine: MachineSpec | None = None,
        imbalance: float = 1.0,
        flop_scale: float = 1.0,
        kind_scales: dict | None = None,
        timeout: float | None = None,
    ) -> None:
        """``flop_scale > 1`` extrapolates computation to a larger dataset:
        experiments run the numerics on a scaled-down stand-in but charge
        ``flop_scale`` times the measured flops (e.g. the full-size /
        stand-in nnz ratio), before the 1/P division. ``kind_scales``
        overrides the factor per kernel kind (e.g. ``{"gather": m_ratio}``
        because index-scan work grows with the row count, not the nnz).
        Communication costs are unaffected — message sizes depend on
        (mu, s), not the data. ``timeout`` is accepted for API symmetry
        with the real backends; with a single actual participant a
        deadline can only fire through injected faults
        (:class:`repro.faults.FaultyComm` honours it).
        """
        if virtual_size < 1:
            raise CommError(f"virtual_size must be >= 1, got {virtual_size}")
        if flop_scale <= 0:
            raise CommError(f"flop_scale must be > 0, got {flop_scale}")
        ledger = CostLedger(
            machine=machine,
            flop_divisor=float(virtual_size),
            imbalance=imbalance,
            default_scale=float(flop_scale),
            kind_scales=dict(kind_scales or {}),
        )
        super().__init__(
            rank=0,
            size=1,
            cost_size=virtual_size,
            machine=machine,
            ledger=ledger,
            timeout=timeout,
        )

    def child(self) -> "VirtualComm":
        """A new communicator with identical modelling and a fresh ledger.

        The sibling of :meth:`Comm.reset` for callers that must keep the
        parent's accumulated costs intact (e.g. comparing one path
        point's cost against the sweep's running total).
        """
        return VirtualComm(
            virtual_size=self.cost_size,
            machine=self.machine,
            imbalance=self.ledger.imbalance,
            flop_scale=self.ledger.default_scale,
            kind_scales=dict(self.ledger.kind_scales),
            timeout=self.timeout,
        )

    def _allgather_impl(self, tag: str, obj: Any) -> list:
        return [obj]

    def _exchange_fold(self, tag: str, obj: Any, fold) -> Any:
        # single participant: fold over the singleton without the list
        # round-trip (the fold still copies, so reusable send buffers
        # never alias the returned reduction)
        return fold((obj,))
