"""Communicator API.

The interface intentionally mirrors :mod:`mpi4py` conventions (see the
mpi4py tutorial): lower-case methods communicate generic Python objects;
Upper-case methods communicate NumPy buffers. Two backends implement it:

* :class:`~repro.mpi.thread_backend.ThreadComm` — P real ranks as threads
  (validates the distributed algorithm: partitioned data, partial sums);
* :class:`~repro.mpi.virtual_backend.VirtualComm` — one actual rank
  standing in for ``virtual_size`` ranks, used for cost-model experiments
  at the paper's scales (P up to 12,288).

Every collective charges its modelled cost (tree Allreduce:
``ceil(log2 P) * (alpha + beta*w)``, the model behind the paper's
Table I) to the attached :class:`~repro.machine.ledger.CostLedger`.
The *cost* communicator size may exceed the *actual* size (virtual mode);
``comm.size`` is always the actual number of SPMD participants so that
data partitioning stays correct.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from repro.errors import CommError
from repro.machine.collectives import CollectiveModel
from repro.machine.ledger import CostLedger
from repro.machine.spec import MachineSpec
from repro.mpi.ops import SUM, Op

__all__ = ["Comm", "CommRequest"]

_WORD_BYTES = 8.0


class CommRequest:
    """Handle for an in-flight nonblocking collective (mpi4py style).

    Returned by :meth:`Comm.Iallreduce`. :meth:`wait` blocks until the
    reduction has completed on every rank and returns the reduced array;
    :meth:`test` is the nonblocking probe. The ledger charge is *honest
    about overlap*: computation charged to this rank's ledger between the
    post and the completion counts as overlapped, and only the
    unoverlapped remainder of the modelled collective latency is charged
    to ``comm_seconds`` (the hidden part accumulates in
    ``comm_seconds_hidden``). Messages and words are charged in full —
    overlap hides time, not traffic.
    """

    __slots__ = ("_comm", "_handle", "_name", "_cost", "_compute_at_post",
                 "_out", "_result", "_done", "_fresh_boundary",
                 "_stale_steps")

    def __init__(self, comm: "Comm", handle, name: str, cost, out=None) -> None:
        self._comm = comm
        self._handle = handle
        self._name = name
        self._cost = cost
        self._compute_at_post = comm.ledger.compute_seconds
        self._out = out
        self._result = None
        self._done = False
        self._fresh_boundary = None
        self._stale_steps = 0

    @property
    def stale_steps(self) -> int:
        """Harvest points this request has outlived (0 = fresh)."""
        return self._stale_steps

    def bump_staleness(self, steps: int = 1) -> None:
        """Mark that a synchronous consumer would have harvested by now.

        Called by the async bounded-staleness drivers once per harvest
        point this request survives: the first call freezes the *fresh*
        overlap window (compute since the post that a pipelined consumer
        would also have hidden); all compute charged after it counts as
        *stale* overlap, landing in ``stale_seconds`` at completion. The
        call count is this request's observed staleness, recorded as the
        ledger's ``max_staleness`` watermark. Never called by blocking or
        pipelined paths, which therefore keep the two-way
        charged/hidden split bit for bit.
        """
        if self._done:
            return
        if self._fresh_boundary is None:
            self._fresh_boundary = self._comm.ledger.compute_seconds
        self._stale_steps += int(steps)

    def _finalize(self, result) -> Any:
        ledger = self._comm.ledger
        if self._fresh_boundary is None:
            overlap = ledger.compute_seconds - self._compute_at_post
            stale = 0.0
        else:
            overlap = self._fresh_boundary - self._compute_at_post
            stale = ledger.compute_seconds - self._fresh_boundary
        ledger.add_collective(self._name, self._cost, overlap, stale)
        if self._stale_steps:
            ledger.note_staleness(self._stale_steps)
        if self._out is not None and result is not self._out:
            np.copyto(self._out, result)
            result = self._out
        self._result = result
        self._done = True
        return result

    @property
    def completed(self) -> bool:
        """True once the collective has completed (after wait/test)."""
        return self._done

    def test(self) -> bool:
        """Probe for completion without blocking.

        Returns True once the reduction is complete; the first True also
        performs the ledger charge, so a poll loop's compute between post
        and completion is counted as overlap exactly once.
        """
        if self._done:
            return True
        result = self._handle.test()
        if result is None:
            return False
        self._finalize(result)
        return True

    def wait(self, timeout: float | None = None) -> Any:
        """Block until complete; returns the reduced array (idempotent).

        ``timeout`` (seconds) bounds the wait; ``None`` falls back to the
        communicator's default deadline. A missed deadline raises
        :class:`~repro.errors.CommTimeoutError` naming the collective's
        tag (and aborts the world so peers fail fast).
        """
        if not self._done:
            if timeout is None:
                timeout = self._comm.timeout
            from repro.errors import CommTimeoutError

            try:
                self._finalize(self._handle.wait(timeout))
            except CommTimeoutError:
                self._comm.ledger.add_timeout()
                raise
        return self._result


class _EagerHandle:
    """Backend handle for collectives completed at post time.

    Used by backends without true asynchrony (one actual participant, or
    no progress engine): the reduction runs eagerly inside the post and
    the overlap accounting alone models the hidden latency.
    """

    __slots__ = ("_result",)

    def __init__(self, result) -> None:
        self._result = result

    def wait(self, timeout=None):
        return self._result

    def test(self):
        return self._result


def _words_of(obj: Any) -> float:
    """Payload size in 8-byte words for cost accounting."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes / _WORD_BYTES
    if isinstance(obj, (int, float, complex, np.generic)):
        return 1.0
    if isinstance(obj, (tuple, list)):
        return float(sum(_words_of(x) for x in obj)) if obj else 0.0
    if obj is None:
        return 0.0
    # generic object: coarse pickle-size proxy
    return 8.0


class Comm(ABC):
    """Abstract communicator. See module docstring."""

    def __init__(
        self,
        rank: int,
        size: int,
        cost_size: int | None = None,
        machine: MachineSpec | None = None,
        ledger: CostLedger | None = None,
        timeout: float | None = None,
    ) -> None:
        if size < 1:
            raise CommError(f"size must be >= 1, got {size}")
        if not (0 <= rank < size):
            raise CommError(f"rank {rank} out of range for size {size}")
        self._rank = int(rank)
        self._size = int(size)
        self._cost_size = int(cost_size if cost_size is not None else size)
        if self._cost_size < self._size:
            raise CommError("cost_size cannot be smaller than actual size")
        self.machine = machine
        #: optional :class:`~repro.mpi.tracing.CollectiveTracer`; when
        #: attached, every public collective records one event on entry
        #: (nonblocking ones at post time) — the runtime side of the
        #: static collective-schedule verifier
        self.tracer = None
        #: default deadline (wall-clock seconds) for every collective;
        #: ``None`` waits forever (the pre-fault-tolerance behaviour)
        self.timeout = timeout
        #: deadline for the collective currently entering the backend —
        #: set by each public collective, read by backend ``*_impl`` hooks
        self._active_timeout = timeout
        if ledger is None:
            divisor = self._cost_size / self._size
            ledger = CostLedger(machine=machine, flop_divisor=divisor)
        self.ledger = ledger
        # Without a machine spec, collectives are counted (messages/words)
        # at zero modelled time — Table-I style count checks still work.
        from repro.machine.spec import NULL_MACHINE

        self._cost_model = CollectiveModel(
            machine if machine is not None else NULL_MACHINE, self._cost_size
        )

    # -- identity ----------------------------------------------------------
    @property
    def rank(self) -> int:
        """Rank of the calling process (0-based)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of actual SPMD participants."""
        return self._size

    @property
    def cost_size(self) -> int:
        """Number of ranks used for cost modelling (>= size)."""
        return self._cost_size

    @property
    def nb_ring_depth(self) -> int | None:
        """Max in-flight nonblocking collectives per rank, or ``None``
        when unbounded (backends that complete eagerly at post time).
        Real backends override this with their NB slot-ring depth; a rank
        posting past it gets :class:`~repro.errors.NbRingDepthError`."""
        return None

    def Get_rank(self) -> int:  # noqa: N802 - mpi4py naming
        return self._rank

    def Get_size(self) -> int:  # noqa: N802 - mpi4py naming
        return self._size

    # -- backend primitive ---------------------------------------------------
    @abstractmethod
    def _allgather_impl(self, tag: str, obj: Any) -> list:
        """Exchange one object per rank; returns the rank-ordered list.

        ``tag`` names the collective for SPMD-mismatch detection.
        """

    def _exchange_fold(self, tag: str, obj: Any, fold) -> Any:
        """Exchange and fold the rank-ordered contributions.

        Backends override this to run ``fold`` *inside* their collective
        critical section, which makes it safe for callers to reuse send
        buffers across iterations (the zero-copy packed-collective path:
        once the call returns, no peer still reads this rank's buffer).
        """
        return fold(self._allgather_impl(tag, obj))

    def _set_timeout(self, timeout: float | None) -> None:
        """Arm the deadline for the collective about to enter the backend."""
        self._active_timeout = self.timeout if timeout is None else timeout

    def _trace(self, op: str, payload=None) -> None:
        """Record one schedule event on the attached tracer, if any."""
        if self.tracer is not None:
            self.tracer.record(op, payload)

    # -- cost hooks -----------------------------------------------------------
    def _charge(self, name: str, words: float) -> None:
        pricer = getattr(self._cost_model, name, None)
        if pricer is None:
            pricer = self._cost_model.allreduce
        self.ledger.add_collective(name, pricer(words))

    def account_flops(
        self,
        flops: float,
        kind: str = "blas1",
        working_set_bytes: float | None = None,
    ) -> None:
        """Charge local computation to this rank's ledger."""
        self.ledger.add_flops(flops, kind, working_set_bytes)

    def reset(self) -> None:
        """Zero this rank's cost ledger.

        Reusing one communicator across solves (warm-started sweeps)
        would otherwise silently accumulate every solve's modelled cost
        into one ledger; sweep engines call this between points so each
        :class:`~repro.solvers.base.SolverResult` carries per-point cost.
        """
        self.ledger.reset()

    # -- object collectives (lower-case, mpi4py style) -------------------------
    def barrier(self, timeout: float | None = None) -> None:
        """Synchronise all ranks."""
        self._set_timeout(timeout)
        self._trace("barrier")
        self._allgather_impl("barrier", None)
        self._charge("barrier", 0.0)

    def bcast(self, obj: Any, root: int = 0, timeout: float | None = None) -> Any:
        """Broadcast ``obj`` from ``root`` to every rank."""
        self._check_root(root)
        self._set_timeout(timeout)
        gathered = self._allgather_impl("bcast", obj if self._rank == root else None)
        result = gathered[root]
        self._trace("bcast", result)
        self._charge("bcast", _words_of(result))
        return result

    def gather(
        self, obj: Any, root: int = 0, timeout: float | None = None
    ) -> list | None:
        """Gather one object per rank on ``root`` (others get None)."""
        self._check_root(root)
        self._set_timeout(timeout)
        self._trace("gather", obj)
        gathered = self._allgather_impl("gather", obj)
        self._charge("reduce", _words_of(obj))
        return gathered if self._rank == root else None

    def allgather(self, obj: Any, timeout: float | None = None) -> list:
        """Gather one object per rank on every rank."""
        self._set_timeout(timeout)
        self._trace("allgather", obj)
        gathered = self._allgather_impl("allgather", obj)
        self._charge("allgather", _words_of(obj))
        return gathered

    def scatter(
        self, objs: Sequence | None, root: int = 0, timeout: float | None = None
    ) -> Any:
        """Scatter ``objs`` (one per rank, provided on root) to all ranks."""
        self._check_root(root)
        self._set_timeout(timeout)
        if self._rank == root:
            if objs is None or len(objs) != self._size:
                raise CommError(
                    f"scatter on root needs exactly {self._size} objects"
                )
            payload = list(objs)
        else:
            payload = None
        gathered = self._allgather_impl("scatter", payload)
        items = gathered[root]
        self._trace("scatter", items[self._rank])
        self._charge("bcast", _words_of(items[self._rank]))
        return items[self._rank]

    def reduce(
        self, obj: Any, op: Op = SUM, root: int = 0, timeout: float | None = None
    ) -> Any:
        """Reduce to ``root`` (others get None). Deterministic rank order."""
        self._check_root(root)
        self._set_timeout(timeout)
        self._trace("reduce", obj)
        gathered = self._allgather_impl("reduce", obj)
        self._charge("reduce", _words_of(obj))
        if self._rank != root:
            return None
        return op.fold(gathered)

    def allreduce(self, obj: Any, op: Op = SUM, timeout: float | None = None) -> Any:
        """Reduce-to-all of generic objects/scalars (deterministic)."""
        self._set_timeout(timeout)
        self._trace("allreduce", obj)
        gathered = self._allgather_impl("allreduce", obj)
        self._charge("allreduce", _words_of(obj))
        return op.fold(gathered)

    # -- buffer collectives (Upper-case, mpi4py style) ---------------------------
    def Allreduce(  # noqa: N802 - mpi4py naming
        self,
        sendbuf: np.ndarray,
        op: Op = SUM,
        out: np.ndarray | None = None,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Reduce-to-all of a NumPy array.

        This is the workhorse of every solver in the package: partial
        Gram matrices and partial dot products are summed here, exactly
        as in the paper's Fig. 1 step 4.

        With ``out`` the reduction accumulates into the given buffer
        (zero allocations on the steady-state path) and both ``sendbuf``
        and ``out`` may be reused by the caller on the next iteration:
        backends complete the fold before releasing their peers. Without
        ``out`` a fresh array is returned, as before. The arithmetic is
        identical either way (rank-ordered accumulation).
        """
        arr = np.asarray(sendbuf)
        if out is None:
            fold = op.fold
        else:
            if np.may_share_memory(arr, out):
                # backends fold while peers still read the deposited send
                # buffers; an aliased out would corrupt this rank's
                # contribution mid-reduction
                raise CommError("Allreduce out must not alias sendbuf")

            def fold(gathered, _op=op, _out=out):
                return _op.fold_into(gathered, _out)

        self._set_timeout(timeout)
        self._trace("Allreduce", arr)
        result = self._exchange_fold("Allreduce", arr, fold)
        self._charge("allreduce", arr.nbytes / _WORD_BYTES)
        return result

    def Iallreduce(  # noqa: N802 - mpi4py naming
        self,
        sendbuf: np.ndarray,
        op: Op = SUM,
        out: np.ndarray | None = None,
        timeout: float | None = None,
    ) -> CommRequest:
        """Nonblocking reduce-to-all; returns a :class:`CommRequest`.

        The SA pipeline's synchronization-hiding primitive: post the
        packed Gram reduction, compute the next outer step's sampled
        block while it is in flight, then ``wait()`` for the result.
        ``sendbuf`` must stay unmodified until the request completes
        (mpi4py contract) — pipelined callers double-buffer it. With
        ``out`` the reduction lands in the given buffer (which must not
        alias ``sendbuf``); without it ``wait()`` returns a fresh array.

        Ledger accounting is honest about overlap: computation charged to
        this rank's ledger between the post and the completion is
        overlapped, and only the unoverlapped remainder of the modelled
        latency is charged (see :class:`CommRequest`). The arithmetic is
        the blocking :meth:`Allreduce`'s bit for bit — every backend
        folds contributions in rank order.
        """
        arr = np.asarray(sendbuf)
        if out is not None and np.may_share_memory(arr, out):
            raise CommError("Iallreduce out must not alias sendbuf")
        self._set_timeout(timeout)
        self._trace("Iallreduce", arr)
        handle = self._iallreduce_impl("Iallreduce", arr, op)
        cost = self._cost_model.allreduce(arr.nbytes / _WORD_BYTES)
        return CommRequest(self, handle, "Iallreduce", cost, out=out)

    def _iallreduce_impl(self, tag: str, arr: np.ndarray, op: Op):
        """Backend hook: start an allreduce, return a wait()/test() handle.

        Default: complete eagerly through the blocking exchange (modelled
        overlap only). Backends with a progress engine (thread, process)
        override this with a genuinely asynchronous implementation.
        """
        return _EagerHandle(self._exchange_fold(tag, arr, op.fold))

    def Bcast(  # noqa: N802
        self, buf: np.ndarray, root: int = 0, timeout: float | None = None
    ) -> np.ndarray:
        """Broadcast array from root; returns the root's array on all ranks."""
        self._check_root(root)
        self._set_timeout(timeout)
        arr = np.asarray(buf) if self._rank == root else None
        gathered = self._allgather_impl("Bcast", arr)
        out = gathered[root]
        self._trace("Bcast", out)
        self._charge("bcast", out.nbytes / _WORD_BYTES)
        return np.array(out, copy=True) if self._rank != root else out

    def Reduce(  # noqa: N802
        self,
        sendbuf: np.ndarray,
        op: Op = SUM,
        root: int = 0,
        timeout: float | None = None,
    ) -> np.ndarray | None:
        """Reduce arrays to root; None elsewhere."""
        self._check_root(root)
        self._set_timeout(timeout)
        arr = np.asarray(sendbuf)
        self._trace("Reduce", arr)
        gathered = self._allgather_impl("Reduce", arr)
        self._charge("reduce", arr.nbytes / _WORD_BYTES)
        if self._rank != root:
            return None
        return op.fold(gathered)

    def Allgather(  # noqa: N802
        self, sendbuf: np.ndarray, timeout: float | None = None
    ) -> np.ndarray:
        """Concatenate each rank's 1-D array in rank order, on every rank."""
        self._set_timeout(timeout)
        arr = np.asarray(sendbuf)
        self._trace("Allgather", arr)
        gathered = self._allgather_impl("Allgather", arr)
        self._charge("allgather", arr.nbytes / _WORD_BYTES)
        return np.concatenate([np.atleast_1d(g) for g in gathered])

    # -- helpers -----------------------------------------------------------------
    def _check_root(self, root: int) -> None:
        if not (0 <= root < self._size):
            raise CommError(f"root {root} out of range for size {self._size}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        virt = f", cost_size={self._cost_size}" if self._cost_size != self._size else ""
        return f"{type(self).__name__}(rank={self._rank}, size={self._size}{virt})"
