"""High-level one-call API.

Wraps the solver registry so downstream users never touch communicators
for single-machine use, while still exposing every knob the paper tunes
(mu, s, machine model, virtual P).
"""

from __future__ import annotations

from repro.errors import SolverError
from repro.machine.spec import MachineSpec
from repro.mpi.comm import Comm
from repro.mpi.process_backend import process_spmd_run
from repro.mpi.thread_backend import NB_RING_DEPTH, spmd_run
from repro.mpi.virtual_backend import VirtualComm
from repro.solvers.base import SolverResult
from repro.solvers.lasso import acc_bcd, bcd, sa_acc_bcd, sa_bcd
from repro.solvers.lasso.common import check_parity
from repro.solvers.svm import dcd, sa_dcd

__all__ = ["fit_lasso", "fit_svm"]

_LASSO = {
    "bcd": (bcd, False),
    "sa-bcd": (sa_bcd, True),
    "accbcd": (acc_bcd, False),
    "sa-accbcd": (sa_acc_bcd, True),
}


def _check_backend(backend: str, comm, recover: str) -> None:
    if backend not in ("virtual", "thread", "process"):
        raise SolverError(
            f"unknown backend {backend!r}; known: ['virtual', 'thread',"
            " 'process']"
        )
    if backend != "virtual" and comm is not None:
        raise SolverError(
            "pass either comm= or backend=; a non-virtual backend builds"
            " its own communicators"
        )
    if recover not in ("raise", "checkpoint"):
        raise SolverError(
            f"recover must be 'raise' or 'checkpoint', got {recover!r}"
        )
    if recover == "checkpoint" and backend != "process":
        raise SolverError(
            "recover='checkpoint' needs backend='process' (the supervised"
            " worker pool); thread/virtual ranks cannot die independently"
        )


def _run_spmd(work, *, backend, ranks, machine, cost_size, recover,
              max_recoveries, nb_depth=NB_RING_DEPTH):
    """Run ``work(comm, rank)`` on a real backend; return rank 0's value."""
    if ranks < 1:
        raise SolverError(f"ranks must be >= 1, got {ranks}")
    if backend == "thread":
        out = spmd_run(
            work, ranks, machine=machine, cost_size=cost_size,
            nb_depth=nb_depth,
        )
    else:
        out = process_spmd_run(
            work, ranks, machine=machine, cost_size=cost_size,
            recover=recover, max_recoveries=max_recoveries,
            nb_depth=nb_depth,
        )
    return out.values[0]


def _check_async(async_: bool, tau: int, pipeline: bool, is_sa: bool,
                 solver: str) -> None:
    """Shared validation for the bounded-staleness knobs."""
    if tau < 0:
        raise SolverError(f"tau must be >= 0, got {tau}")
    if not async_:
        return
    if not is_sa:
        raise SolverError(
            f"async_=True needs an SA solver (one reduction per s "
            f"iterations to run ahead of); {solver!r} synchronises every "
            "iteration"
        )
    if pipeline:
        raise SolverError(
            "async_=True and pipeline=True are mutually exclusive: "
            "pipelining is the tau=0 special case of async_"
        )


def _recovery_knobs(comm, checkpoint_every, checkpoint_sink, resume_from,
                    default_every: int):
    """Resolve checkpoint knobs against the pool's recovery context.

    On a supervised rank (``comm.recovery`` present and active) the
    supervisor's latest collected checkpoint overrides ``resume_from`` on
    a redispatched attempt, and :meth:`RecoveryContext.save` is chained
    into the sink so future recoveries have something to replay from
    (``default_every`` turns checkpointing on when the caller left it
    off — scratch restarts would still be correct, just wasteful).
    """
    ctx = getattr(comm, "recovery", None)
    if ctx is None or not ctx.active:
        return checkpoint_every, checkpoint_sink, resume_from
    if ctx.resume is not None:
        resume_from = ctx.resume
    if checkpoint_every == 0:
        checkpoint_every = default_every
    user_sink = checkpoint_sink

    def sink(payload, _user=user_sink, _ctx=ctx):
        _ctx.save(payload)
        if _user is not None:
            from repro.checkpoint import emit_solver_checkpoint

            emit_solver_checkpoint(payload, _user, comm.rank)

    return checkpoint_every, sink, resume_from


def fit_lasso(
    A,
    b,
    lam,
    *,
    solver: str = "sa-accbcd",
    mu: int = 1,
    s: int = 16,
    max_iter: int = 1000,
    seed: int = 0,
    tol: float | None = None,
    comm: Comm | None = None,
    virtual_p: int = 1,
    machine: MachineSpec | None = None,
    record_every: int = 1,
    x0=None,
    fast: bool = True,
    parity: str = "exact",
    pipeline: bool = False,
    async_: bool = False,
    tau: int = 1,
    eig_memo=None,
    checkpoint_every: int = 0,
    checkpoint_sink=None,
    resume_from=None,
    backend: str = "virtual",
    ranks: int = 4,
    recover: str = "raise",
    max_recoveries: int = 2,
) -> SolverResult:
    """Solve ``min_x 0.5||Ax-b||^2 + g(x)``.

    Parameters
    ----------
    lam:
        Regularisation: a float (L1/Lasso) or any
        :class:`~repro.prox.penalties.Penalty`.
    solver:
        ``"bcd"``, ``"sa-bcd"``, ``"accbcd"`` (paper Alg. 1), or
        ``"sa-accbcd"`` (paper Alg. 2, the default).
    mu:
        Coordinate block size (``mu = 1`` gives CD / accCD).
    s:
        Synchronization-avoiding unrolling (SA solvers only).
    virtual_p, machine:
        Model the run on ``virtual_p`` ranks of ``machine`` (the result's
        ``cost`` then carries modelled seconds, Fig. 3-style).
    x0:
        Warm-start solution (length-n). Regularization-path sweeps thread
        the previous point's solution through here.
    fast, parity:
        SA-solver inner-loop knobs: ``fast=False`` runs the reference
        recurrences; ``parity`` selects the fused loop's contract
        (``"exact"`` bit-parity, ``"fp-tolerant"`` re-association).
    pipeline:
        SA solvers only: post the per-outer-step packed Gram reduction
        as a nonblocking Allreduce and prefetch the next block while it
        is in flight (identical iterates; only unoverlapped latency is
        charged). Raises for non-SA solvers, which have nothing to
        overlap.
    async_, tau:
        SA solvers only: bounded-staleness mode — keep up to ``tau + 1``
        packed reductions in flight and harvest the oldest, so each
        outer step may run against residual data up to ``tau`` outer
        steps stale. Weaker contract than ``pipeline`` (mutually
        exclusive with it): convergence to the synchronous objective
        within tolerance rather than bit-parity; ``tau=0`` degenerates
        to the pipelined schedule bit for bit. Real backends get their
        nonblocking ring sized to ``tau + 2`` automatically; the
        result's ``cost`` carries ``stale_seconds``/``max_staleness``.
    eig_memo:
        Explicit :class:`~repro.linalg.kernels.EigMemo` for the SA fused
        loops; None (default) shares the process-wide memo.
    checkpoint_every / checkpoint_sink / resume_from:
        Fault-tolerance knobs (see :mod:`repro.checkpoint`): emit a
        resumable checkpoint every N iterations to a callable or path,
        and/or continue a run from a checkpoint payload or JSON path.
    backend, ranks:
        ``"virtual"`` (default; modelled single-process run, honors
        ``comm=``/``virtual_p=``), ``"thread"``, or ``"process"`` — the
        real backends run the solve SPMD on ``ranks`` ranks and return
        rank 0's result.
    recover, max_recoveries:
        ``backend="process"`` only: ``recover="checkpoint"`` lets the
        supervised worker pool respawn dead ranks and replay the solve
        from its latest checkpoint (at most ``max_recoveries`` times)
        instead of raising :class:`~repro.errors.RankDiedError`.
    """
    try:
        fn, is_sa = _LASSO[solver]
    except KeyError as exc:
        raise SolverError(
            f"unknown lasso solver {solver!r}; known: {sorted(_LASSO)}"
        ) from exc
    # validated for every solver, so a typo fails even where the knob is
    # a no-op (non-SA solvers have no fused loop)
    check_parity(parity)
    if pipeline and not is_sa:
        raise SolverError(
            f"pipeline=True needs an SA solver (one reduction per s "
            f"iterations to hide); {solver!r} synchronises every iteration"
        )
    _check_async(async_, tau, pipeline, is_sa, solver)
    _check_backend(backend, comm, recover)

    def _solve(wcomm, ck_every, ck_sink, ck_resume):
        kwargs = dict(
            mu=mu, max_iter=max_iter, seed=seed, comm=wcomm,
            tol=tol, record_every=record_every, x0=x0,
            checkpoint_every=ck_every, checkpoint_sink=ck_sink,
            resume_from=ck_resume,
        )
        if is_sa:
            kwargs.update(s=s, fast=fast, parity=parity, pipeline=pipeline,
                          async_=async_, tau=tau, eig_memo=eig_memo)
        return fn(A, b, lam, **kwargs)

    if backend == "virtual":
        if comm is None:
            comm = VirtualComm(virtual_size=virtual_p, machine=machine)
        return _solve(comm, checkpoint_every, checkpoint_sink, resume_from)

    def work(wcomm, wrank):
        ck_every, ck_sink, ck_resume = _recovery_knobs(
            wcomm, checkpoint_every, checkpoint_sink, resume_from,
            default_every=max(1, s) if is_sa else 10,
        )
        return _solve(wcomm, ck_every, ck_sink, ck_resume)

    return _run_spmd(
        work, backend=backend, ranks=ranks, machine=machine,
        cost_size=max(virtual_p, ranks), recover=recover,
        max_recoveries=max_recoveries,
        nb_depth=tau + 2 if async_ else NB_RING_DEPTH,
    )


def fit_svm(
    A,
    b,
    *,
    loss: str = "l1",
    lam: float = 1.0,
    solver: str = "sa-svm",
    s: int = 16,
    max_iter: int = 5000,
    seed: int = 0,
    tol: float | None = None,
    comm: Comm | None = None,
    virtual_p: int = 1,
    machine: MachineSpec | None = None,
    record_every: int = 0,
    alpha0=None,
    fast: bool = True,
    parity: str = "exact",
    pipeline: bool = False,
    async_: bool = False,
    tau: int = 1,
    checkpoint_every: int = 0,
    checkpoint_sink=None,
    resume_from=None,
    backend: str = "virtual",
    ranks: int = 4,
    recover: str = "raise",
    max_recoveries: int = 2,
) -> SolverResult:
    """Train a linear SVM by dual coordinate descent.

    Parameters
    ----------
    loss:
        ``"l1"`` (hinge) or ``"l2"`` (squared hinge).
    solver:
        ``"svm"`` (paper Alg. 3) or ``"sa-svm"`` (paper Alg. 4, default).
    tol:
        Optional duality-gap stopping tolerance (checked when recording).
    alpha0:
        Warm-start dual vector (length-m); the primal is rebuilt from it
        (Alg. 3 line 2). Path sweeps thread the previous point's
        ``extras["alpha"]`` through here.
    fast, parity:
        SA-solver inner-loop knobs (see :func:`fit_lasso`).
    pipeline:
        ``"sa-svm"`` only: nonblocking per-outer-step reduction with the
        next row block prefetched while it is in flight (see
        :func:`fit_lasso`).
    async_, tau:
        ``"sa-svm"`` only: bounded-staleness mode, as in
        :func:`fit_lasso` (convergence-to-tolerance contract; ``tau=0``
        is bit-identical to ``pipeline=True``).
    checkpoint_every / checkpoint_sink / resume_from:
        Fault-tolerance knobs, as in :func:`fit_lasso`.
    backend, ranks, recover, max_recoveries:
        SPMD backend dispatch and supervised recovery, as in
        :func:`fit_lasso`.
    """
    if solver not in ("svm", "sa-svm"):
        raise SolverError(f"unknown svm solver {solver!r}; known: ['svm', 'sa-svm']")
    check_parity(parity)
    if pipeline and solver != "sa-svm":
        raise SolverError(
            "pipeline=True needs the SA solver ('sa-svm'); 'svm' "
            "synchronises every iteration"
        )
    _check_async(async_, tau, pipeline, solver == "sa-svm", solver)
    _check_backend(backend, comm, recover)

    def _solve(wcomm, ck_every, ck_sink, ck_resume):
        kwargs = dict(
            loss=loss, lam=lam, max_iter=max_iter, seed=seed, comm=wcomm,
            tol=tol, record_every=record_every, alpha0=alpha0,
            checkpoint_every=ck_every, checkpoint_sink=ck_sink,
            resume_from=ck_resume,
        )
        if solver == "sa-svm":
            return sa_dcd(A, b, s=s, fast=fast, parity=parity,
                          pipeline=pipeline, async_=async_, tau=tau,
                          **kwargs)
        return dcd(A, b, **kwargs)

    if backend == "virtual":
        if comm is None:
            comm = VirtualComm(virtual_size=virtual_p, machine=machine)
        return _solve(comm, checkpoint_every, checkpoint_sink, resume_from)

    def work(wcomm, wrank):
        ck_every, ck_sink, ck_resume = _recovery_knobs(
            wcomm, checkpoint_every, checkpoint_sink, resume_from,
            default_every=max(1, s) if solver == "sa-svm" else 10,
        )
        return _solve(wcomm, ck_every, ck_sink, ck_resume)

    return _run_spmd(
        work, backend=backend, ranks=ranks, machine=machine,
        cost_size=max(virtual_p, ranks), recover=recover,
        max_recoveries=max_recoveries,
        nb_depth=tau + 2 if async_ else NB_RING_DEPTH,
    )
