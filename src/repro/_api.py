"""High-level one-call API.

Wraps the solver registry so downstream users never touch communicators
for single-machine use, while still exposing every knob the paper tunes
(mu, s, machine model, virtual P).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError
from repro.machine.spec import MachineSpec
from repro.mpi.comm import Comm
from repro.mpi.virtual_backend import VirtualComm
from repro.solvers.base import SolverResult
from repro.solvers.lasso import acc_bcd, bcd, sa_acc_bcd, sa_bcd
from repro.solvers.lasso.common import check_parity
from repro.solvers.svm import dcd, sa_dcd

__all__ = ["fit_lasso", "fit_svm"]

_LASSO = {
    "bcd": (bcd, False),
    "sa-bcd": (sa_bcd, True),
    "accbcd": (acc_bcd, False),
    "sa-accbcd": (sa_acc_bcd, True),
}


def fit_lasso(
    A,
    b,
    lam,
    *,
    solver: str = "sa-accbcd",
    mu: int = 1,
    s: int = 16,
    max_iter: int = 1000,
    seed: int = 0,
    tol: float | None = None,
    comm: Comm | None = None,
    virtual_p: int = 1,
    machine: MachineSpec | None = None,
    record_every: int = 1,
    x0=None,
    fast: bool = True,
    parity: str = "exact",
    pipeline: bool = False,
    eig_memo=None,
    checkpoint_every: int = 0,
    checkpoint_sink=None,
    resume_from=None,
) -> SolverResult:
    """Solve ``min_x 0.5||Ax-b||^2 + g(x)``.

    Parameters
    ----------
    lam:
        Regularisation: a float (L1/Lasso) or any
        :class:`~repro.prox.penalties.Penalty`.
    solver:
        ``"bcd"``, ``"sa-bcd"``, ``"accbcd"`` (paper Alg. 1), or
        ``"sa-accbcd"`` (paper Alg. 2, the default).
    mu:
        Coordinate block size (``mu = 1`` gives CD / accCD).
    s:
        Synchronization-avoiding unrolling (SA solvers only).
    virtual_p, machine:
        Model the run on ``virtual_p`` ranks of ``machine`` (the result's
        ``cost`` then carries modelled seconds, Fig. 3-style).
    x0:
        Warm-start solution (length-n). Regularization-path sweeps thread
        the previous point's solution through here.
    fast, parity:
        SA-solver inner-loop knobs: ``fast=False`` runs the reference
        recurrences; ``parity`` selects the fused loop's contract
        (``"exact"`` bit-parity, ``"fp-tolerant"`` re-association).
    pipeline:
        SA solvers only: post the per-outer-step packed Gram reduction
        as a nonblocking Allreduce and prefetch the next block while it
        is in flight (identical iterates; only unoverlapped latency is
        charged). Raises for non-SA solvers, which have nothing to
        overlap.
    eig_memo:
        Explicit :class:`~repro.linalg.kernels.EigMemo` for the SA fused
        loops; None (default) shares the process-wide memo.
    checkpoint_every / checkpoint_sink / resume_from:
        Fault-tolerance knobs (see :mod:`repro.checkpoint`): emit a
        resumable checkpoint every N iterations to a callable or path,
        and/or continue a run from a checkpoint payload or JSON path.
    """
    try:
        fn, is_sa = _LASSO[solver]
    except KeyError as exc:
        raise SolverError(
            f"unknown lasso solver {solver!r}; known: {sorted(_LASSO)}"
        ) from exc
    # validated for every solver, so a typo fails even where the knob is
    # a no-op (non-SA solvers have no fused loop)
    check_parity(parity)
    if pipeline and not is_sa:
        raise SolverError(
            f"pipeline=True needs an SA solver (one reduction per s "
            f"iterations to hide); {solver!r} synchronises every iteration"
        )
    if comm is None:
        comm = VirtualComm(virtual_size=virtual_p, machine=machine)
    kwargs = dict(
        mu=mu, max_iter=max_iter, seed=seed, comm=comm,
        tol=tol, record_every=record_every, x0=x0,
        checkpoint_every=checkpoint_every, checkpoint_sink=checkpoint_sink,
        resume_from=resume_from,
    )
    if is_sa:
        kwargs.update(s=s, fast=fast, parity=parity, pipeline=pipeline,
                      eig_memo=eig_memo)
    return fn(A, b, lam, **kwargs)


def fit_svm(
    A,
    b,
    *,
    loss: str = "l1",
    lam: float = 1.0,
    solver: str = "sa-svm",
    s: int = 16,
    max_iter: int = 5000,
    seed: int = 0,
    tol: float | None = None,
    comm: Comm | None = None,
    virtual_p: int = 1,
    machine: MachineSpec | None = None,
    record_every: int = 0,
    alpha0=None,
    fast: bool = True,
    parity: str = "exact",
    pipeline: bool = False,
    checkpoint_every: int = 0,
    checkpoint_sink=None,
    resume_from=None,
) -> SolverResult:
    """Train a linear SVM by dual coordinate descent.

    Parameters
    ----------
    loss:
        ``"l1"`` (hinge) or ``"l2"`` (squared hinge).
    solver:
        ``"svm"`` (paper Alg. 3) or ``"sa-svm"`` (paper Alg. 4, default).
    tol:
        Optional duality-gap stopping tolerance (checked when recording).
    alpha0:
        Warm-start dual vector (length-m); the primal is rebuilt from it
        (Alg. 3 line 2). Path sweeps thread the previous point's
        ``extras["alpha"]`` through here.
    fast, parity:
        SA-solver inner-loop knobs (see :func:`fit_lasso`).
    pipeline:
        ``"sa-svm"`` only: nonblocking per-outer-step reduction with the
        next row block prefetched while it is in flight (see
        :func:`fit_lasso`).
    checkpoint_every / checkpoint_sink / resume_from:
        Fault-tolerance knobs, as in :func:`fit_lasso`.
    """
    if solver not in ("svm", "sa-svm"):
        raise SolverError(f"unknown svm solver {solver!r}; known: ['svm', 'sa-svm']")
    check_parity(parity)
    if pipeline and solver != "sa-svm":
        raise SolverError(
            "pipeline=True needs the SA solver ('sa-svm'); 'svm' "
            "synchronises every iteration"
        )
    if comm is None:
        comm = VirtualComm(virtual_size=virtual_p, machine=machine)
    kwargs = dict(
        loss=loss, lam=lam, max_iter=max_iter, seed=seed, comm=comm,
        tol=tol, record_every=record_every, alpha0=alpha0,
        checkpoint_every=checkpoint_every, checkpoint_sink=checkpoint_sink,
        resume_from=resume_from,
    )
    if solver == "sa-svm":
        return sa_dcd(A, b, s=s, fast=fast, parity=parity, pipeline=pipeline,
                      **kwargs)
    return dcd(A, b, **kwargs)
