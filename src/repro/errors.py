"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CommError",
    "CommAborted",
    "RankMismatchError",
    "PartitionError",
    "DatasetError",
    "SolverError",
    "ConvergenceError",
    "CostModelError",
]


class ReproError(Exception):
    """Base class for all :mod:`repro` exceptions."""


class CommError(ReproError):
    """A collective or point-to-point communication call was misused."""


class CommAborted(CommError):
    """A peer rank raised, aborting the collective the caller was in."""


class RankMismatchError(CommError):
    """Ranks disagreed about the collective being executed (SPMD bug)."""


class PartitionError(ReproError):
    """Invalid data partition (empty ranges, overlap, wrong axis...)."""


class DatasetError(ReproError):
    """Dataset could not be parsed, generated, or validated."""


class SolverError(ReproError):
    """Solver received invalid inputs or reached an invalid state."""


class ConvergenceError(SolverError):
    """A solver failed to reach the requested tolerance within budget."""


class CostModelError(ReproError):
    """Machine/cost model was configured or queried inconsistently."""
