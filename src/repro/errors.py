"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CommError",
    "CommAborted",
    "CommTimeoutError",
    "NbRingDepthError",
    "RankDiedError",
    "TransientCommError",
    "RankMismatchError",
    "PartitionError",
    "DatasetError",
    "SolverError",
    "ConvergenceError",
    "CostModelError",
    "CheckpointError",
    "ServeError",
    "AdmissionError",
    "DeadlineError",
    "TenantQuarantinedError",
]


class ReproError(Exception):
    """Base class for all :mod:`repro` exceptions."""


class CommError(ReproError):
    """A collective or point-to-point communication call was misused."""


class CommAborted(CommError):
    """A peer rank raised, aborting the collective the caller was in."""


class CommTimeoutError(CommError):
    """A collective missed its deadline.

    Raised by the rank whose wait expired; the message names the
    collective's tag and, where the backend can tell, the ranks that had
    not yet arrived. The timing-out rank aborts the world so peers fail
    fast with :class:`CommAborted` instead of blocking forever.
    """

    def __init__(self, message: str, *, tag: str = "", stalled: tuple = ()):
        super().__init__(message)
        self.tag = tag
        self.stalled = tuple(stalled)


class NbRingDepthError(CommError):
    """A rank posted more in-flight nonblocking collectives than the ring holds.

    The thread/process backends recycle each nonblocking slot only after
    every rank has harvested it, so posting ``nb_depth`` reductions while
    this rank's oldest handle is still unharvested would deadlock inside
    the post (the rank itself holds the slot it is waiting for). The
    error is raised *before* blocking, deterministically on every rank
    (the check is against the posting rank's own unharvested handles).
    ``depth`` is the configured ring depth; raise it via the backends'
    ``nb_depth=`` knob (the async solvers size it as ``tau + 2``).
    """

    def __init__(self, message: str, *, depth: int = 0, outstanding: int = 0):
        super().__init__(message)
        self.depth = int(depth)
        self.outstanding = int(outstanding)


class RankDiedError(CommAborted):
    """A peer rank died (process exit / kill) mid-collective.

    A structured refinement of :class:`CommAborted` (callers catching
    the generic abort keep working): surfaced on every surviving rank by
    the :class:`ProcessWorld` watchdog so an unrecoverable rank death
    never turns into a hang, and raised by the parent driver naming the
    dead ranks.
    """

    def __init__(self, message: str, *, dead_ranks: tuple = ()):
        super().__init__(message)
        self.dead_ranks = tuple(dead_ranks)


class TransientCommError(CommError):
    """A collective failed in a way marked recoverable (retry-safe).

    :class:`repro.faults.FaultyComm` raises this for injected transient
    faults *before* touching the real collective, so a bounded-backoff
    retry re-enters the collective with all peers still waiting.
    """


class RankMismatchError(CommError):
    """Ranks disagreed about the collective being executed (SPMD bug)."""


class PartitionError(ReproError):
    """Invalid data partition (empty ranges, overlap, wrong axis...)."""


class DatasetError(ReproError):
    """Dataset could not be parsed, generated, or validated."""


class SolverError(ReproError):
    """Solver received invalid inputs or reached an invalid state."""


class ConvergenceError(SolverError):
    """A solver failed to reach the requested tolerance within budget."""


class CostModelError(ReproError):
    """Machine/cost model was configured or queried inconsistently."""


class CheckpointError(ReproError):
    """A checkpoint could not be produced, parsed, or resumed from."""


class ServeError(ReproError):
    """The multi-tenant serving engine was misconfigured or misused
    (unknown tenant, malformed trace, invalid engine state)."""


class AdmissionError(ServeError):
    """A request was rejected at admission: the bounded queue is full.

    Explicit backpressure instead of unbounded growth: the error names
    the queue depth it bounced off (``queue_depth``) and carries a
    modelled retry hint (``retry_after``, virtual seconds — an estimate
    of when capacity frees up, 0.0 when the engine has no service-time
    history yet).
    """

    def __init__(self, message: str, *, queue_depth: int = 0,
                 retry_after: float = 0.0):
        super().__init__(message)
        self.queue_depth = int(queue_depth)
        self.retry_after = float(retry_after)


class DeadlineError(ServeError):
    """A request missed its per-request deadline.

    Raised/recorded for requests that expire while queued, and for
    refits whose completion lands past every coalesced member's
    deadline (the refit is rolled back — the tenant keeps serving its
    last committed model). ``latency`` is the virtual seconds the
    request had been waiting; ``deadline`` the budget it missed.
    """

    def __init__(self, message: str, *, deadline: float = 0.0,
                 latency: float = 0.0):
        super().__init__(message)
        self.deadline = float(deadline)
        self.latency = float(latency)


class TenantQuarantinedError(ServeError):
    """A mutating request was refused because its tenant is quarantined.

    The tenant exceeded its fault budget (rank deaths, comm deadlines,
    or solver divergence during its refits); its last committed model
    stays servable (``predict`` requests are still admitted) while other
    tenants are unaffected.
    """

    def __init__(self, message: str, *, tenant: str = "", faults: int = 0):
        super().__init__(message)
        self.tenant = tenant
        self.faults = int(faults)
