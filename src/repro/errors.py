"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "CommError",
    "CommAborted",
    "CommTimeoutError",
    "RankDiedError",
    "TransientCommError",
    "RankMismatchError",
    "PartitionError",
    "DatasetError",
    "SolverError",
    "ConvergenceError",
    "CostModelError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for all :mod:`repro` exceptions."""


class CommError(ReproError):
    """A collective or point-to-point communication call was misused."""


class CommAborted(CommError):
    """A peer rank raised, aborting the collective the caller was in."""


class CommTimeoutError(CommError):
    """A collective missed its deadline.

    Raised by the rank whose wait expired; the message names the
    collective's tag and, where the backend can tell, the ranks that had
    not yet arrived. The timing-out rank aborts the world so peers fail
    fast with :class:`CommAborted` instead of blocking forever.
    """

    def __init__(self, message: str, *, tag: str = "", stalled: tuple = ()):
        super().__init__(message)
        self.tag = tag
        self.stalled = tuple(stalled)


class RankDiedError(CommAborted):
    """A peer rank died (process exit / kill) mid-collective.

    A structured refinement of :class:`CommAborted` (callers catching
    the generic abort keep working): surfaced on every surviving rank by
    the :class:`ProcessWorld` watchdog so an unrecoverable rank death
    never turns into a hang, and raised by the parent driver naming the
    dead ranks.
    """

    def __init__(self, message: str, *, dead_ranks: tuple = ()):
        super().__init__(message)
        self.dead_ranks = tuple(dead_ranks)


class TransientCommError(CommError):
    """A collective failed in a way marked recoverable (retry-safe).

    :class:`repro.faults.FaultyComm` raises this for injected transient
    faults *before* touching the real collective, so a bounded-backoff
    retry re-enters the collective with all peers still waiting.
    """


class RankMismatchError(CommError):
    """Ranks disagreed about the collective being executed (SPMD bug)."""


class PartitionError(ReproError):
    """Invalid data partition (empty ranges, overlap, wrong axis...)."""


class DatasetError(ReproError):
    """Dataset could not be parsed, generated, or validated."""


class SolverError(ReproError):
    """Solver received invalid inputs or reached an invalid state."""


class ConvergenceError(SolverError):
    """A solver failed to reach the requested tolerance within budget."""


class CostModelError(ReproError):
    """Machine/cost model was configured or queried inconsistently."""


class CheckpointError(ReproError):
    """A checkpoint could not be produced, parsed, or resumed from."""
