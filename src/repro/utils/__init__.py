"""Small shared utilities: seeding, validation, and table formatting."""

from repro.utils.seeds import SeedBundle, spawn_rank_seed, shared_generator
from repro.utils.validation import (
    check_dense_or_csr,
    check_positive,
    check_in_range,
    check_vector,
    as_float64_array,
)
from repro.utils.tables import format_table, format_series

__all__ = [
    "SeedBundle",
    "spawn_rank_seed",
    "shared_generator",
    "check_dense_or_csr",
    "check_positive",
    "check_in_range",
    "check_vector",
    "as_float64_array",
    "format_table",
    "format_series",
]
