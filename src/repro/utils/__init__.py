"""Small shared utilities: seeding, validation, and table formatting."""

from repro.utils.seeds import SeedBundle, shared_generator, spawn_rank_seed
from repro.utils.tables import format_series, format_table
from repro.utils.validation import (
    as_float64_array,
    check_dense_or_csr,
    check_in_range,
    check_positive,
    check_vector,
)

__all__ = [
    "SeedBundle",
    "spawn_rank_seed",
    "shared_generator",
    "check_dense_or_csr",
    "check_positive",
    "check_in_range",
    "check_vector",
    "as_float64_array",
    "format_table",
    "format_series",
]
