"""Plain-text table/series rendering for experiment output.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _fmt_cell(x: object, floatfmt: str) -> str:
    if isinstance(x, float):
        return format(x, floatfmt)
    return str(x)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    floatfmt: str = ".4g",
) -> str:
    """Render an ASCII table with one header row.

    Floats are formatted with ``floatfmt``; everything else via ``str``.
    """
    str_rows = [[_fmt_cell(c, floatfmt) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths, strict=True)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[object],
    xlabel: str = "x",
    ylabel: str = "y",
    max_points: int = 16,
    floatfmt: str = ".6g",
) -> str:
    """Render a named (x, y) series, decimated to ``max_points`` rows.

    Used to print figure data (e.g. objective vs. iteration) in a form
    that can be eyeballed against the paper's plots.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    n = len(xs)
    if n == 0:
        return f"[{name}] (empty series)"
    if n <= max_points:
        idx = list(range(n))
    else:
        step = (n - 1) / (max_points - 1)
        idx = sorted({round(i * step) for i in range(max_points)})
    lines = [f"[{name}] {xlabel} -> {ylabel} ({n} points, showing {len(idx)})"]
    for i in idx:
        lines.append(
            f"  {_fmt_cell(xs[i], floatfmt):>12}  {_fmt_cell(ys[i], floatfmt)}"
        )
    return "\n".join(lines)
