"""Crash-safe file output helpers.

Reports, checkpoints, and benchmark payloads are written
write-temp-then-:func:`os.replace` so a crash (or SIGKILL) mid-write can
never leave a truncated or half-serialized JSON file behind: readers see
either the previous complete file or the new complete file.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text", "atomic_write_json"]


def atomic_write_text(path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp + replace)."""
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path, payload, indent: int | None = 2) -> None:
    """Serialize ``payload`` as JSON and write it atomically to ``path``."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
