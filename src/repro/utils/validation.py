"""Input validation helpers used across the public API.

All solvers accept either dense :class:`numpy.ndarray` matrices or
:class:`scipy.sparse.csr_matrix`/``csr_array`` — the same two layouts the
paper's C++ implementation supports (dense BLAS and 3-array CSR).
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.errors import SolverError

__all__ = [
    "check_dense_or_csr",
    "check_positive",
    "check_in_range",
    "check_vector",
    "as_float64_array",
    "is_sparse",
    "nnz_of",
]


def is_sparse(A: Any) -> bool:
    """True if ``A`` is any scipy sparse container."""
    return sp.issparse(A)


def nnz_of(A: Any) -> int:
    """Number of stored non-zeros (dense arrays count every entry)."""
    if sp.issparse(A):
        return int(A.nnz)
    return int(np.asarray(A).size)


def check_dense_or_csr(A: Any, name: str = "A"):
    """Validate and normalise a data matrix.

    Returns a 2-D ``float64`` ndarray or a canonical-format
    ``csr_matrix`` with ``float64`` data. Raises :class:`SolverError`
    otherwise.
    """
    if sp.issparse(A):
        A = A.tocsr().astype(np.float64, copy=False)
        if A.ndim != 2:
            raise SolverError(f"{name} must be 2-D, got shape {A.shape}")
        A.sum_duplicates()
        return A
    arr = np.asarray(A, dtype=np.float64)
    if arr.ndim != 2:
        raise SolverError(f"{name} must be 2-D, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise SolverError(f"{name} contains non-finite entries")
    return arr


def check_vector(v: Any, length: int, name: str = "b") -> np.ndarray:
    """Validate a 1-D float vector of the given length."""
    arr = np.asarray(v, dtype=np.float64).ravel()
    if arr.shape[0] != length:
        raise SolverError(f"{name} must have length {length}, got {arr.shape[0]}")
    if not np.all(np.isfinite(arr)):
        raise SolverError(f"{name} contains non-finite entries")
    return arr


def check_positive(value: float, name: str, strict: bool = True) -> float:
    """Validate a (strictly) positive scalar."""
    v = float(value)
    if strict and not v > 0:
        raise SolverError(f"{name} must be > 0, got {v}")
    if not strict and v < 0:
        raise SolverError(f"{name} must be >= 0, got {v}")
    return v


def check_in_range(value: int, lo: int, hi: int, name: str) -> int:
    """Validate an integer in the inclusive range [lo, hi]."""
    v = int(value)
    if not (lo <= v <= hi):
        raise SolverError(f"{name} must be in [{lo}, {hi}], got {v}")
    return v


def as_float64_array(x: Any) -> np.ndarray:
    """Contiguous float64 copy-if-needed view of ``x``."""
    return np.ascontiguousarray(x, dtype=np.float64)
