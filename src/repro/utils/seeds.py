"""Deterministic seeding helpers for SPMD execution.

The synchronization-avoiding derivations in the paper rely on one crucial
implementation trick (paper §III and §V): *every processor initialises its
random number generator with the same seed*, so the sampled coordinate
blocks are known redundantly on all ranks without communication.

:class:`SeedBundle` packages that convention:

* ``shared`` — a seed every rank uses identically (coordinate sampling);
* ``per_rank(rank)`` — an independent stream per rank (e.g. local noise in
  dataset generation), derived via :class:`numpy.random.SeedSequence`
  spawning so streams never collide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SeedBundle", "spawn_rank_seed", "shared_generator"]


def shared_generator(seed: int | np.random.SeedSequence | None) -> np.random.Generator:
    """Return the generator that *all* ranks must construct identically.

    Using ``PCG64`` explicitly (NumPy's default, but pinned here) so the
    sampled index stream is stable across NumPy versions within a run.
    """
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return np.random.Generator(np.random.PCG64(seq))


def spawn_rank_seed(root_seed: int, rank: int) -> np.random.SeedSequence:
    """Derive a per-rank :class:`~numpy.random.SeedSequence`.

    ``spawn_key`` incorporates the rank, so any two ranks (and the shared
    stream, which uses an empty spawn key) are statistically independent.
    """
    if rank < 0:
        raise ValueError(f"rank must be non-negative, got {rank}")
    return np.random.SeedSequence(root_seed, spawn_key=(rank + 1,))


@dataclass(frozen=True)
class SeedBundle:
    """Seeds for one SPMD run.

    Parameters
    ----------
    root:
        User-facing seed. ``None`` draws fresh OS entropy (irreproducible,
        allowed but discouraged in experiments).
    """

    root: int | None = 0

    def shared(self) -> np.random.Generator:
        """Generator identical on all ranks (coordinate sampling)."""
        return shared_generator(self.root)

    def per_rank(self, rank: int) -> np.random.Generator:
        """Generator unique to ``rank`` (local perturbations)."""
        if self.root is None:
            return np.random.default_rng()
        return np.random.Generator(np.random.PCG64(spawn_rank_seed(self.root, rank)))

    def child(self, tag: int) -> "SeedBundle":
        """A derived bundle for a sub-experiment (e.g. one lambda on a path)."""
        if self.root is None:
            return SeedBundle(None)
        mixed = np.random.SeedSequence(self.root, spawn_key=(0xC0FFEE, tag))
        return SeedBundle(int(mixed.generate_state(1, dtype=np.uint64)[0] % (2**63)))
