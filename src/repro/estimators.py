"""Scikit-learn-style estimator wrappers.

``SALasso`` and ``SASVMClassifier`` expose the paper's solvers through
the fit/predict/score conventions downstream ML code expects, without
depending on scikit-learn itself. Hyper-parameters mirror the paper's
tuning knobs: block size ``mu``, unrolling ``s``, and the solver family.
"""

from __future__ import annotations

import numpy as np

from repro._api import fit_lasso, fit_svm
from repro.errors import SolverError
from repro.solvers.base import SolverResult
from repro.solvers.svm.duality import prediction_accuracy

__all__ = ["SALasso", "SASVMClassifier"]


class _FittedMixin:
    def _check_fitted(self) -> None:
        if not hasattr(self, "result_"):
            raise SolverError(
                f"{type(self).__name__} is not fitted; call fit(X, y) first"
            )

    def get_params(self) -> dict:
        """Constructor parameters (sklearn convention)."""
        return dict(self._params)

    def set_params(self, **params):
        for k, v in params.items():
            if k not in self._params:
                raise SolverError(f"unknown parameter {k!r}")
            self._params[k] = v
        return self


class SALasso(_FittedMixin):
    """Lasso / sparse linear regression via (SA-)accelerated BCD.

    Parameters
    ----------
    lam:
        L1 penalty strength (or any :class:`~repro.prox.penalties.Penalty`).
    solver:
        ``"bcd"``, ``"sa-bcd"``, ``"accbcd"``, or ``"sa-accbcd"``.
    mu, s, max_iter, tol, seed:
        Paper tuning knobs; see :func:`repro.fit_lasso`.

    Attributes (after fit)
    ----------------------
    coef_:
        Learned weight vector (n_features,).
    result_:
        The full :class:`~repro.solvers.base.SolverResult`.
    """

    def __init__(
        self,
        lam: float = 1.0,
        solver: str = "sa-accbcd",
        mu: int = 8,
        s: int = 16,
        max_iter: int = 2000,
        tol: float | None = 1e-8,
        seed: int = 0,
    ) -> None:
        self._params = dict(lam=lam, solver=solver, mu=mu, s=s,
                            max_iter=max_iter, tol=tol, seed=seed)

    def fit(self, X, y) -> "SALasso":
        p = self._params
        res: SolverResult = fit_lasso(
            X, y, lam=p["lam"], solver=p["solver"], mu=p["mu"], s=p["s"],
            max_iter=p["max_iter"], tol=p["tol"], seed=p["seed"],
            record_every=max(1, p["max_iter"] // 50),
        )
        self.result_ = res
        self.coef_ = res.x
        self.n_iter_ = res.iterations
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted()
        return np.asarray(X @ self.coef_).ravel()

    def score(self, X, y) -> float:
        """Coefficient of determination R^2 (sklearn convention)."""
        self._check_fitted()
        y = np.asarray(y, dtype=np.float64).ravel()
        resid = y - self.predict(X)
        ss_res = float(resid @ resid)
        centered = y - y.mean()
        ss_tot = float(centered @ centered)
        if ss_tot == 0.0:
            return 0.0 if ss_res > 0 else 1.0
        return 1.0 - ss_res / ss_tot

    @property
    def sparsity_(self) -> float:
        """Fraction of exactly zero coefficients."""
        self._check_fitted()
        return float(np.mean(self.coef_ == 0.0))


class SASVMClassifier(_FittedMixin):
    """Linear SVM via (SA-)dual coordinate descent.

    Parameters
    ----------
    loss:
        ``"l1"`` (hinge) or ``"l2"`` (squared hinge).
    lam:
        Penalty parameter C (the paper uses 1).
    solver:
        ``"svm"`` (Alg. 3) or ``"sa-svm"`` (Alg. 4).
    """

    def __init__(
        self,
        loss: str = "l2",
        lam: float = 1.0,
        solver: str = "sa-svm",
        s: int = 64,
        max_iter: int = 50_000,
        tol: float | None = 1e-2,
        seed: int = 0,
    ) -> None:
        self._params = dict(loss=loss, lam=lam, solver=solver, s=s,
                            max_iter=max_iter, tol=tol, seed=seed)

    def fit(self, X, y) -> "SASVMClassifier":
        y = np.asarray(y, dtype=np.float64).ravel()
        classes = np.unique(y)
        if classes.shape[0] != 2:
            raise SolverError(
                f"SASVMClassifier is binary; got {classes.shape[0]} classes"
            )
        self.classes_ = classes
        b = np.where(y == classes[1], 1.0, -1.0)
        p = self._params
        res: SolverResult = fit_svm(
            X, b, loss=p["loss"], lam=p["lam"], solver=p["solver"], s=p["s"],
            max_iter=p["max_iter"], tol=p["tol"], seed=p["seed"],
            record_every=max(1, p["max_iter"] // 100),
        )
        self.result_ = res
        self.coef_ = res.x
        self.dual_coef_ = res.extras["alpha"]
        self.n_iter_ = res.iterations
        return self

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted()
        return np.asarray(X @ self.coef_).ravel()

    def predict(self, X) -> np.ndarray:
        scores = self.decision_function(X)
        neg, pos = self.classes_
        return np.where(scores >= 0.0, pos, neg)

    def score(self, X, y) -> float:
        """Mean accuracy."""
        self._check_fitted()
        y = np.asarray(y).ravel()
        b = np.where(y == self.classes_[1], 1.0, -1.0)
        return prediction_accuracy(self.decision_function(X), b)

    @property
    def duality_gap_(self) -> float:
        self._check_fitted()
        return self.result_.final_metric
